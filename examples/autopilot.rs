//! The whole decision pipeline of the paper, end to end:
//!
//! 1. **Profile offline** (§5.1 / Fig. 4): sweep the degree of parallelism.
//! 2. **Pick knobs** (§6): cheapest parallelism meeting the SLO, the
//!    VM/Lambda split, and whether to launch replacement VMs.
//! 3. **Execute** with the launching facility, and let the
//!    dynamic-allocation controller retire idle Lambdas afterwards.
//!
//! ```sh
//! cargo run --release --example autopilot
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{
    cheapest_meeting_slo, fig1_crossover_default, plan_split, profile_sweep, start_allocator,
    AllocatorConfig, Deployment, DriverProgram, ProfileMode, ScenarioSpec, ShuffleStoreKind,
};
use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
use splitserve_des::{Sim, SimTime};
use splitserve_workloads::PageRank;

fn main() {
    // ---- 1. offline profiling --------------------------------------
    let spec = ScenarioSpec::default();
    let pages = 60_000;
    let factory =
        |p: u32| -> Box<dyn DriverProgram> { Box::new(PageRank::new(pages, 3, p as usize, 7)) };
    let profile = profile_sweep(ProfileMode::VmOnly, &[1, 2, 4, 8, 16], &spec, &factory);
    println!("offline profile (PageRank, {pages} pages):");
    for p in &profile {
        println!(
            "  p={:<3} exec={:>6.2}s cost=${:.4}",
            p.parallelism, p.execution_secs, p.cost_usd
        );
    }

    // ---- 2. knob selection ------------------------------------------
    let slo_secs = 1.6 * profile.last().expect("profiled").execution_secs.max(1.0);
    let choice = cheapest_meeting_slo(&profile, slo_secs).expect("some config meets the SLO");
    println!("\nSLO {slo_secs:.1}s → cheapest parallelism: {}", choice.parallelism);

    let free_vm_cores = 2; // what the job happens to find
    let plan = plan_split(
        choice.parallelism,
        free_vm_cores,
        choice.execution_secs,
        110.0,
        fig1_crossover_default(),
    );
    println!(
        "launch plan: {} VM cores + {} Lambdas, replacement VMs: {}, lambda timeout {}",
        plan.vm_cores, plan.lambdas, plan.launch_replacement_vms, plan.lambda_timeout
    );

    // ---- 3. execution ------------------------------------------------
    let mut sim = Sim::new(7);
    let d = Deployment::new(
        &mut sim,
        CloudSpec::default(),
        ShuffleStoreKind::Hdfs,
        M4_XLARGE,
    );
    d.add_vm_workers(&mut sim, M4_4XLARGE, plan.vm_cores);
    d.add_lambda_executors(&mut sim, plan.lambdas);
    let allocator = start_allocator(&mut sim, &d, AllocatorConfig::default());

    let workload = PageRank::new(pages, 3, choice.parallelism as usize, 7);
    let finished = Rc::new(RefCell::new(None));
    let fin = Rc::clone(&finished);
    workload.submit(
        &mut sim,
        d.engine(),
        Box::new(move |sim| {
            *fin.borrow_mut() = Some(sim.now().as_secs_f64());
        }),
    );
    sim.run_until(SimTime::from_secs_f64(slo_secs * 3.0));
    allocator.stop();
    d.shutdown(&mut sim);
    sim.run();

    let t = finished.borrow().expect("job finished");
    println!("\nexecuted in {t:.2}s (SLO {slo_secs:.1}s) — met: {}", t <= slo_secs);
    println!("total cost: ${:.4}", d.cloud().total_cost());
    assert!(t <= slo_secs, "the autopilot's plan must meet its own SLO");
}
