//! Quickstart: run one Spark-like job split across VM and Lambda
//! executors — the core SplitServe move.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{Deployment, ShuffleStoreKind};
use splitserve_cloud::{CloudSpec, M4_XLARGE};
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset};

fn main() {
    // A deterministic simulated cloud; the master VM (with a colocated
    // HDFS datanode for shuffle state) comes up immediately.
    let mut sim = Sim::new(42);
    let deployment = Deployment::new(
        &mut sim,
        CloudSpec::default(),
        ShuffleStoreKind::Hdfs,
        M4_XLARGE,
    );

    // A job needs 6 cores; only 2 are free on VMs. Bridge the shortfall
    // with 4 warm Lambdas (~100 ms away) instead of waiting ~2 minutes
    // for a new VM.
    deployment.add_vm_workers(&mut sim, M4_XLARGE, 2);
    deployment.add_lambda_executors(&mut sim, 4);

    // A classic word-count over synthetic data. The engine really
    // computes this; the simulation only decides how long it takes.
    let words: Vec<(String, u64)> = (0..200_000)
        .map(|i| (format!("word-{}", i % 1_000), 1u64))
        .collect();
    let counts = Dataset::parallelize(words, 12).reduce_by_key(6, |a, b| a + b);

    let result = Rc::new(RefCell::new(None));
    let slot = Rc::clone(&result);
    let d = deployment.clone();
    deployment
        .engine()
        .submit_job(&mut sim, counts.node(), move |sim, out| {
            *slot.borrow_mut() = Some(out);
            d.shutdown(sim); // finalize the bill
        });
    sim.run();

    let out = result.borrow_mut().take().expect("job completed");
    let rows = collect_partitions::<(String, u64)>(out.partitions);
    println!("distinct words: {}", rows.len());
    println!(
        "every count correct: {}",
        rows.iter().all(|(_, c)| *c == 200)
    );
    println!(
        "execution time: {:.2} s (virtual)",
        out.metrics.execution_time().as_secs_f64()
    );
    println!(
        "tasks on VMs: {}, tasks on Lambdas: {}",
        out.metrics.tasks_on_vm, out.metrics.tasks_on_lambda
    );
    println!("total cost: ${:.6}", deployment.cloud().total_cost());
    for (category, usd) in deployment.cloud().cost_by_category() {
        println!("  {category}: ${usd:.6}");
    }
}
