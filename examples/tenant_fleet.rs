//! The tenant fleet: 10k+ jobs across 100+ tenants driven through the
//! multi-tenant admission control plane, swept over three provisioning
//! policies (vm-only / splitserve / lambda-heavy) — the paper's
//! Figure 2/3 judgement at fleet scale. Emits one deterministic JSON
//! artifact with per-class SLO-attainment and bill curves.
//!
//! ```text
//! cargo run --release --example tenant_fleet [out.json]
//! ```
//!
//! Deterministic: run it twice and the artifact is byte-identical, and
//! `SPLITSERVE_WORKERS` (the engine's worker-thread count) must not
//! change a byte either — `scripts/verify.sh` diffs both (normalizing
//! only the embedded `"workers":N` field).
//!
//! Sizing knobs for quick local iterations (defaults satisfy the
//! acceptance floor): `SPLITSERVE_FLEET_TENANTS`, `SPLITSERVE_FLEET_JOBS`.

use std::hash::Hasher;

use splitserve::tenancy::{
    combined_fingerprint, default_fleet_jobs, default_tenant_specs, fleet_workload,
    render_fleet_json, run_tenant_fleet, verify_log, FleetPolicy, TenantFleetConfig,
};
use splitserve_rt::hash::XxHash64;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let workers = env_usize("SPLITSERVE_WORKERS", 1);
    let tenants_n = env_usize("SPLITSERVE_FLEET_TENANTS", 100);
    let target_jobs = env_usize("SPLITSERVE_FLEET_JOBS", 10_500);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tenant_fleet.json".to_string());

    let horizon_secs = 1_200.0;
    let pool_cores = 40;
    let tenants = default_tenant_specs(tenants_n);
    let jobs = default_fleet_jobs(&tenants, 11, target_jobs, horizon_secs);
    eprintln!(
        "tenant-fleet: {} tenants, {} jobs over {horizon_secs}s, pool {pool_cores} cores",
        tenants.len(),
        jobs.len()
    );

    let mut results = Vec::new();
    for policy in FleetPolicy::all() {
        let mut cfg = TenantFleetConfig::for_policy(policy, tenants.clone(), pool_cores);
        cfg.engine.workers = workers;
        let (wl, sink) = fleet_workload(8);
        let r = run_tenant_fleet(&cfg, &jobs, wl);
        verify_log(cfg.slots, &tenants, &r.admission).expect("admission invariants");
        let fp = combined_fingerprint(&sink.borrow());
        eprintln!(
            "  {policy:>12}: attainment {:.3}, cost ${:.2}, {} lambdas, \
             mean wait {:.2}s, hol {:.1}s",
            r.slo.fleet_attainment(),
            r.cost_usd,
            r.lambdas_launched,
            r.mean_admission_wait_secs(),
            r.hol_blocking_secs()
        );
        results.push((r, fp));
    }

    let json = render_fleet_json(workers, &tenants, jobs.len(), &results);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write fleet artifact");
    let mut digest = XxHash64::with_seed(0);
    digest.write(json.as_bytes());
    println!(
        "tenant-fleet: workers={workers} wrote {} ({} bytes) digest={:016x}",
        out_path,
        json.len(),
        digest.finish()
    );
}
