//! The paper's CloudSort workload under the observability layer: runs the
//! `SS VM / La Segue` scenario with tracing enabled and exports the
//! executor timeline as a Chrome trace plus a Prometheus snapshot.
//!
//! ```sh
//! cargo run --release --example trace_timeline [out-dir]
//! ```
//!
//! Open the JSON in `chrome://tracing` (or <https://ui.perfetto.dev>): one
//! row per executor, with the VM lanes filling up as the Lambda lanes
//! drain at the segue.

use splitserve::{
    plan_split, record_split_plan, run_scenario, DriverProgram, Scenario, ScenarioSpec,
};
use splitserve_des::{SimDuration, SimTime};
use splitserve_workloads::CloudSort;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "target".into());

    // The §4.2 walkthrough shape: the sort needs 16 cores, finds 3 free,
    // bridges with 13 Lambdas. The sort is short (~1 s virtual), so the
    // segue is scaled to land mid-job: replacement VM cores free up at
    // 500 ms and Lambdas drain once they are 500 ms old.
    let mut spec = ScenarioSpec {
        required_cores: 16,
        available_cores: 3,
        segue_existing_cores_at: Some(SimDuration::from_millis(500)),
        lambda_timeout: SimDuration::from_millis(500),
        seed: 7,
        ..ScenarioSpec::default()
    };
    let obs = spec.enable_observability();

    // The launching facility's decision, recorded on the driver lane so
    // the trace explains the executor mix it shows.
    let plan = plan_split(
        spec.required_cores,
        spec.available_cores,
        60.0,
        110.0,
        splitserve::fig1_crossover_default(),
    );
    record_split_plan(&obs, SimTime::from_secs(0), &plan);

    let sort = CloudSort::new(300_000, 16, 7);
    println!("running {} under Scenario::SsHybridSegue ...", sort.name());
    let factory = move || -> Box<dyn DriverProgram> { Box::new(sort.clone()) };
    let result = run_scenario(Scenario::SsHybridSegue, &spec, &factory);
    println!(
        "{}: finished in {:.1} s (virtual), {} tasks on VMs, {} on Lambdas, {} recomputed, ${:.4}",
        result.label,
        result.execution_secs,
        result.tasks_on_vm,
        result.tasks_on_lambda,
        result.tasks_recomputed,
        result.cost_usd,
    );

    // The acceptance shape of the trace: both executor substrates did
    // work, and the segue drain is visible.
    let spans = obs.spans.finished_spans();
    let vm_tasks = spans
        .iter()
        .filter(|s| s.lane == "vm" && s.name.starts_with("task "))
        .count();
    let lambda_tasks = spans
        .iter()
        .filter(|s| s.lane == "lambda" && s.name.starts_with("task "))
        .count();
    let drains = spans
        .iter()
        .filter(|s| s.name.starts_with("segue drain"))
        .count();
    assert!(vm_tasks > 0, "trace must show VM-lane task spans");
    assert!(lambda_tasks > 0, "trace must show Lambda-lane task spans");
    assert!(drains > 0, "trace must show a segue-drain span");
    assert_eq!(obs.spans.nesting_violation(), None, "spans nest cleanly");
    println!(
        "trace: {} spans ({vm_tasks} VM tasks, {lambda_tasks} Lambda tasks, {drains} drains)",
        spans.len()
    );

    let trace_path = format!("{out_dir}/trace_timeline.json");
    let prom_path = format!("{out_dir}/trace_timeline.prom");
    obs.spans
        .write_chrome_trace(&trace_path)
        .expect("write trace");
    obs.metrics
        .write_prometheus(&prom_path)
        .expect("write metrics");
    println!("wrote {trace_path} (open in chrome://tracing) and {prom_path}");
}
