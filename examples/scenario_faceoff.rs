//! Runs a TPC-DS-style query under all eight evaluation scenarios of the
//! paper's §5 and prints the comparison — a miniature Figure 5.
//!
//! ```sh
//! cargo run --release --example scenario_faceoff
//! ```

use splitserve::{run_scenarios, DriverProgram, Scenario, ScenarioSpec};
use splitserve_workloads::{TpcdsLoad, TpcdsQuery};

fn main() {
    let spec = ScenarioSpec {
        required_cores: 16,
        available_cores: 4,
        ..ScenarioSpec::default()
    };
    let workload = || -> Box<dyn DriverProgram> {
        let mut load = TpcdsLoad::tiny(TpcdsQuery::Q95, 1);
        load.shuffle_partitions = 32;
        load.tables.sf = 4;
        load.tables.input_partitions = 32;
        load.tables.row_cost_secs = 5.0e-4; // long enough that the cluster mix matters
        Box::new(load)
    };

    println!("TPC-DS Q95 under every scenario (R = 16, r = 4):\n");
    println!(
        "{:<24} {:>9} {:>10} {:>9} {:>9}",
        "scenario", "exec (s)", "cost ($)", "vm tasks", "la tasks"
    );
    let results = run_scenarios(&Scenario::all(), &spec, &workload);
    let baseline = results
        .iter()
        .find(|r| r.scenario == Scenario::SparkRVm)
        .map(|r| r.execution_secs)
        .expect("baseline present");
    for r in &results {
        println!(
            "{:<24} {:>9.2} {:>10.4} {:>9} {:>9}   ({:.2}x)",
            r.label,
            r.execution_secs,
            r.cost_usd,
            r.tasks_on_vm,
            r.tasks_on_lambda,
            r.execution_secs / baseline,
        );
    }

    // The paper's qualitative claims, checked live:
    let by = |s: Scenario| {
        results
            .iter()
            .find(|r| r.scenario == s)
            .expect("scenario ran")
    };
    let hybrid = by(Scenario::SsHybrid);
    let autoscale = by(Scenario::SparkAutoscale);
    println!(
        "\nhybrid vs VM autoscale: {:.0}% less execution time",
        (1.0 - hybrid.execution_secs / autoscale.execution_secs) * 100.0
    );
    assert!(
        hybrid.execution_secs < autoscale.execution_secs,
        "SplitServe's headline: the hybrid beats VM-based autoscaling"
    );
}
