//! The cold-start policy sweep: the same recurrent-burst tenant fleet
//! run under each warm-pool policy (`forever` / `fixed:15` /
//! `pressure:6144` / `hybrid:15`), next to an engine-free recurrent
//! microtrace whose cold-fraction ordering the property suites
//! guarantee. One deterministic JSON artifact out.
//!
//! ```text
//! cargo run --release --example coldstart_sweep [out.json]
//! ```
//!
//! Deterministic: byte-identical across runs and across
//! `SPLITSERVE_WORKERS` (verify.sh diffs both, normalizing only the
//! embedded `"workers":N` label). Set `SPLITSERVE_COLDSTART` to a
//! selector (`forever`, `fixed:<secs>`, `pressure:<cap_mb>`,
//! `hybrid[:<fallback_secs>]`) to append one extra arm to the sweep.

use std::hash::Hasher;

use splitserve::tenancy::{
    default_tenant_specs, recurrent_fleet_jobs, render_coldstart_sweep_json, run_coldstart_sweep,
    verify_log, FleetPolicy, TenantFleetConfig,
};
use splitserve_cloud::ColdStartSpec;
use splitserve_rt::hash::XxHash64;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const MICRO_ROUNDS: usize = 30;
const MICRO_GAP_SECS: u64 = 45;

fn main() {
    let workers = env_usize("SPLITSERVE_WORKERS", 1);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/coldstart_sweep.json".to_string());

    let pool_cores = 8;
    let tenants = default_tenant_specs(6);
    let jobs = recurrent_fleet_jobs(&tenants, 6, 20, 45);
    eprintln!(
        "coldstart-sweep: {} tenants, {} jobs in 6 bursts of 20 every 45s, pool {pool_cores} cores",
        tenants.len(),
        jobs.len()
    );

    let mut arms = run_coldstart_sweep(workers, &tenants, &jobs, pool_cores);
    if let Ok(extra) = std::env::var("SPLITSERVE_COLDSTART") {
        let spec = ColdStartSpec::parse(&extra)
            .unwrap_or_else(|e| panic!("SPLITSERVE_COLDSTART: {e}"));
        eprintln!("coldstart-sweep: extra arm {}", spec.selector());
        let mut cfg =
            TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.clone(), pool_cores);
        cfg.engine.workers = workers;
        cfg.cloud.coldstart = spec.clone();
        cfg.cloud.prewarmed_lambdas = 0;
        let (wl, sink) = splitserve::tenancy::fleet_workload(8);
        let outcome = splitserve::tenancy::run_tenant_fleet(&cfg, &jobs, wl);
        let fingerprint = splitserve::tenancy::combined_fingerprint(&sink.borrow());
        arms.push(splitserve::tenancy::ColdstartArm {
            selector: spec.selector(),
            outcome,
            fingerprint,
        });
    }

    for arm in &arms {
        let cfg =
            TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.clone(), pool_cores);
        verify_log(cfg.slots, &tenants, &arm.outcome.admission).expect("admission invariants");
        let p = &arm.outcome.pool;
        eprintln!(
            "  {:>13} ({}): {} warm / {} cold / {} prewarm, cold frac {:.3}, \
             wasted {:.2} GB·s, evicted {}/{}/{}, attainment {:.3}, ${:.2}",
            arm.selector,
            arm.outcome.coldstart_policy,
            p.warm_starts,
            p.cold_starts,
            p.prewarm_starts,
            p.cold_fraction(),
            p.wasted_gb_seconds(),
            p.evicted_expired,
            p.evicted_pressure,
            p.evicted_shutdown,
            arm.outcome.slo.fleet_attainment(),
            arm.outcome.cost_usd,
        );
    }

    let json =
        render_coldstart_sweep_json(workers, &tenants, jobs.len(), MICRO_ROUNDS, MICRO_GAP_SECS, &arms);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write sweep artifact");
    let mut digest = XxHash64::with_seed(0);
    digest.write(json.as_bytes());
    println!(
        "coldstart-sweep: workers={workers} wrote {} ({} bytes) digest={:016x}",
        out_path,
        json.len(),
        digest.finish()
    );
}
