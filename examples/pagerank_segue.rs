//! The full SplitServe story on PageRank: a latency-critical job arrives
//! to find 3 of its 16 cores free, bridges with 13 Lambdas, and segues
//! back to VM cores that free up at t = 45 s — the paper's Figure 7
//! timeline, as a runnable program.
//!
//! ```sh
//! cargo run --release --example pagerank_segue
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{arm_segue, Deployment, SegueConfig, ShuffleStoreKind};
use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
use splitserve_des::{Sim, SimDuration};
use splitserve_engine::EngineEventKind;
use splitserve_workloads::PageRank;

fn main() {
    let mut sim = Sim::new(7);
    // Master + single HDFS node colocated on an m4.xlarge: its 750 Mbps
    // EBS pipe is the shuffle bottleneck, exactly as in the paper.
    let d = Deployment::new(
        &mut sim,
        CloudSpec::default(),
        ShuffleStoreKind::Hdfs,
        M4_XLARGE,
    );

    // Launching facility: 3 free VM cores + 13 Lambdas.
    d.add_vm_workers(&mut sim, M4_4XLARGE, 3);
    d.add_lambda_executors(&mut sim, 13);

    // Segueing facility: 13 cores free up on the existing VM at 45 s;
    // Lambdas older than spark.lambda.executor.timeout = 30 s drain
    // gracefully once replacements register.
    arm_segue(
        &mut sim,
        &d,
        SegueConfig::existing_cores(13, SimDuration::from_secs(45))
            .with_lambda_timeout(SimDuration::from_secs(30)),
    );

    // HiBench-style PageRank (scaled down so the example runs in seconds
    // of host time; Figure 7 in the repo uses 850 000 pages).
    let workload = PageRank::new(120_000, 3, 16, 7).with_contrib_cost(1.0e-4);
    let finished = Rc::new(RefCell::new(None));
    let f = Rc::clone(&finished);
    let d2 = d.clone();
    use splitserve::DriverProgram;
    workload.submit(
        &mut sim,
        d.engine(),
        Box::new(move |sim| {
            *f.borrow_mut() = Some(sim.now().as_secs_f64());
            d2.shutdown(sim);
        }),
    );
    sim.run();

    println!(
        "PageRank finished at t = {:.1} s (virtual)",
        finished.borrow().expect("finished")
    );

    // Replay the lifecycle from the engine's event log.
    println!("\ntimeline:");
    for e in d.engine().event_log().snapshot() {
        let at = e.at.as_secs_f64();
        match &e.kind {
            EngineEventKind::ExecutorRegistered { exec, kind } => {
                println!("  {at:7.2}s  + executor {exec} ({kind})");
            }
            EngineEventKind::Marker(m) => println!("  {at:7.2}s  ** {m} **"),
            EngineEventKind::ExecutorDraining { exec } => {
                println!("  {at:7.2}s  ~ draining {exec}");
            }
            EngineEventKind::ExecutorDecommissioned { exec } => {
                println!("  {at:7.2}s  - decommissioned {exec}");
            }
            EngineEventKind::StageCompleted { stage } => {
                println!("  {at:7.2}s  stage {stage} complete");
            }
            _ => {}
        }
    }

    let metrics = d
        .engine()
        .completed_job_metrics()
        .pop()
        .expect("one job ran");
    println!(
        "\ntasks on VMs: {} | on Lambdas: {} | recomputed: {}",
        metrics.tasks_on_vm, metrics.tasks_on_lambda, metrics.tasks_recomputed
    );
    assert_eq!(metrics.tasks_recomputed, 0, "graceful segue never rolls back");
    println!("total cost: ${:.4}", d.cloud().total_cost());
}
