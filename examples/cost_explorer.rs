//! Explores the economics behind SplitServe: the Figure 1 cost curves,
//! the crossover where a Lambda becomes pricier than a VM vCPU, and what
//! a short burst actually costs on each substrate.
//!
//! ```sh
//! cargo run --example cost_explorer
//! ```

use splitserve_cloud::{
    fig1_crossover, fig1_vcpu_cost_at, lambda_cost, vm_cost, M4_10XLARGE, M4_LARGE, M4_XLARGE,
};
use splitserve_des::SimDuration;

fn main() {
    println!("cost of ONE vCPU: m4.large vs 1536 MB Lambda (Figure 1)\n");
    println!("{:>8} {:>12} {:>12}  winner", "t (s)", "vm ($)", "lambda ($)");
    for secs in [0.5, 2.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0] {
        let (vm, la) = fig1_vcpu_cost_at(&M4_LARGE, SimDuration::from_secs_f64(secs));
        println!(
            "{:>8.1} {:>12.7} {:>12.7}  {}",
            secs,
            vm,
            la,
            if la < vm { "lambda" } else { "vm" }
        );
    }
    let x = fig1_crossover(&M4_LARGE, SimDuration::from_secs(7200)).expect("crossover");
    println!("\ncrossover: the Lambda overtakes the VM vCPU after {x}.");

    println!("\nwhat a 45-second, 16-core burst costs:");
    let burst = SimDuration::from_secs(45);
    let on_lambdas = 16.0 * lambda_cost(1536, burst);
    let on_new_vm = vm_cost(&M4_10XLARGE, burst);
    let on_small_vms = 4.0 * vm_cost(&M4_XLARGE, burst);
    println!("  16 warm Lambdas:          ${on_lambdas:.5}  (and they start in ~100 ms)");
    println!("  1x m4.10xlarge (40 vCPU): ${on_new_vm:.5}  (after ~2 min boot, 60 s minimum billed)");
    println!("  4x m4.xlarge:             ${on_small_vms:.5}  (same boot problem)");
    println!(
        "\nThis asymmetry is the paper's motivation: for short bursts the\n\
         Lambdas are both cheaper AND available immediately — but keep them\n\
         past the crossover and the VM wins, hence the segueing facility."
    );
}
