//! The SLO dashboard: runs the paper's bursty job stream under both
//! stream policies (fixed VM pool vs SplitServe's launching facility)
//! with the full telemetry plane on, and renders what a tenant's
//! dashboard would show — the SLO-attainment curve, the cumulative-bill
//! curve, streaming-digest latency quantiles and the windowed task-run
//! rollups — as one self-contained JSON artifact.
//!
//! ```text
//! cargo run --release --example slo_dashboard [out.json]
//! ```
//!
//! Deterministic: run it twice and the artifact is byte-identical, and
//! `SPLITSERVE_WORKERS` (the engine's worker-thread count) must not
//! change a byte either — `scripts/verify.sh` diffs both.

use std::fmt::Write as _;
use std::hash::Hasher;

use splitserve::{
    bursty_arrivals, run_job_stream, DriverProgram, ScenarioSpec, StreamOutcome, StreamPolicy,
};
use splitserve_cloud::{CloudSpec, M4_4XLARGE};
use splitserve_des::{Dist, Sim};
use splitserve_engine::{Dataset, Engine};
use splitserve_obs::{Obs, TenantId};
use splitserve_rt::hash::XxHash64;

/// The stream workload: a shuffle (reduceByKey) job sized to the cores
/// the inter-job manager prescribes.
struct BurstLoad {
    cores: u32,
}

impl DriverProgram for BurstLoad {
    fn name(&self) -> String {
        "burst".into()
    }
    fn parallelism(&self) -> usize {
        self.cores as usize
    }
    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let width = self.cores as usize * 2;
        let ds = Dataset::<u64>::generate(width, |p| (0..1_000u64).map(|i| i + p as u64).collect())
            .map_with_cost(|x| (*x % 4, 1u64), Some(1e-3))
            .reduce_by_key(4, |a, b| a + b);
        engine.submit_job(sim, ds.node(), move |sim, _| done(sim));
    }
}

fn quantile_block(out: &mut String, obs: &splitserve_obs::SloLedger) {
    let tenant = TenantId::default();
    let _ = write!(out, "\"latency_quantiles\":{{");
    for (i, (label, q)) in [("p50", 0.5), ("p90", 0.9), ("p95", 0.95), ("p99", 0.99)]
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        match obs.latency_quantile(&tenant, *q) {
            Some(v) => {
                let _ = write!(out, "\"{label}\":{v:.6}");
            }
            None => {
                let _ = write!(out, "\"{label}\":null");
            }
        }
    }
    out.push('}');
}

fn policy_block(out: &mut String, r: &StreamOutcome, obs: &Obs) {
    let tenant = TenantId::default();
    let _ = write!(
        out,
        "{{\"policy\":\"{}\",\"jobs\":{},\"slo_attainment\":{:.6},\"cost_usd\":{:.6},\
         \"lambdas_launched\":{},",
        r.policy,
        r.jobs.len(),
        r.slo_attainment(),
        r.cost_usd,
        r.lambdas_launched
    );
    // The attainment curve: one point per job completion.
    out.push_str("\"attainment_curve\":[");
    for (i, p) in r.slo.curve(&tenant).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_us\":{},\"latency_secs\":{:.6},\"slo_secs\":{:.6},\"met\":{},\
             \"attainment\":{:.6}}}",
            p.at.as_micros(),
            p.latency_secs,
            p.slo_secs,
            p.met,
            p.attainment
        );
    }
    out.push_str("],");
    // The cumulative-bill curve.
    out.push_str("\"bill_curve\":[");
    for (i, p) in r.bill.curve(&tenant).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_us\":{},\"kind\":\"{}\",\"amount_usd\":{:.6},\"cumulative_usd\":{:.6}}}",
            p.at.as_micros(),
            p.kind,
            p.amount_usd,
            p.cumulative_usd
        );
    }
    out.push_str("],");
    quantile_block(out, &r.slo);
    out.push(',');
    let _ = write!(
        out,
        "\"stragglers_suspected\":{},",
        obs.metrics.counter_total("stragglers_suspected_total")
    );
    let _ = write!(out, "\"rollups\":{}", obs.rollups.to_json());
    out.push('}');
}

fn main() {
    let workers: usize = std::env::var("SPLITSERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/slo_dashboard.json".to_string());

    // Bursty arrivals with an SLO tight enough that the fixed pool
    // misses some bursts and the launching facility's bridging shows up
    // in the attainment curve.
    let jobs = bursty_arrivals(9, 3, 60.0, 4.0);
    let mut json = String::new();
    let _ = write!(json, "{{\"workers\":{workers},\"jobs\":{},", jobs.len());
    json.push_str("\"policies\":[");
    for (i, policy) in [StreamPolicy::VmPoolOnly, StreamPolicy::SplitServe]
        .into_iter()
        .enumerate()
    {
        // Fresh telemetry per policy so curves and rollups don't mix.
        let mut spec = ScenarioSpec {
            cloud: CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.12),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                ..CloudSpec::default()
            },
            ..ScenarioSpec::default()
        };
        spec.engine.workers = workers;
        let obs = spec.enable_observability();
        let r = run_job_stream(
            policy,
            8,
            M4_4XLARGE,
            &spec,
            &jobs,
            &|cores| Box::new(BurstLoad { cores }) as Box<dyn DriverProgram>,
        );
        if i > 0 {
            json.push(',');
        }
        policy_block(&mut json, &r, &obs);
    }
    json.push_str("]}");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write dashboard artifact");
    let mut digest = XxHash64::with_seed(0);
    digest.write(json.as_bytes());
    println!(
        "slo-dashboard: workers={workers} wrote {} ({} bytes) digest={:016x}",
        out_path,
        json.len(),
        digest.finish()
    );
}
