//! Determinism smoke for the chaos plane: 16 fixed seeds × two workloads
//! × both shuffle stores, one line per case. Run it twice and diff — the
//! output must be byte-identical, or the fault plane has lost the
//! determinism that makes `CHAOS_SEED=…` repro lines trustworthy
//! (`scripts/verify.sh` does exactly that).
//!
//! ```text
//! cargo run --release --example chaos_smoke
//! ```

use std::hash::Hasher;

use splitserve::ShuffleStoreKind;
use splitserve_chaos::workloads::{ChaosCloudSort, ChaosPageRank, ChaosWorkload};
use splitserve_chaos::{run_case, ChaosTopology, FaultPlan};
use splitserve_rt::hash::XxHash64;

const SEEDS: u64 = 16;

fn main() {
    // SPLITSERVE_WORKERS sets the engine's worker-thread count; the
    // digest must not change with it (`scripts/verify.sh` diffs 1 vs 4).
    let workers = std::env::var("SPLITSERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let topo = ChaosTopology {
        workers,
        ..ChaosTopology::default()
    };
    let workloads: [&dyn ChaosWorkload; 2] =
        [&ChaosPageRank::small(), &ChaosCloudSort::small()];
    // Digest over every per-case line, so the final line alone certifies
    // the whole matrix.
    let mut digest = XxHash64::with_seed(0);
    let mut completed = 0u32;
    let mut total = 0u32;
    for w in workloads {
        for seed in 0..SEEDS {
            let plan = FaultPlan::generate(seed);
            for kind in [ShuffleStoreKind::Hdfs, ShuffleStoreKind::Local] {
                let r = run_case(w, kind, Some(&plan), &topo);
                let line = format!(
                    "{:<9} seed={seed:<2} store={kind:<5} fp={} rollbacks={} losses={} \
                     recomputed={} kills={} faults={}/{}/{} done_us={}",
                    w.name(),
                    r.fingerprint
                        .map_or_else(|| "-".to_string(), |fp| format!("{fp:016x}")),
                    r.rollbacks,
                    r.executor_losses,
                    r.recomputed,
                    r.kills,
                    r.fetch_faults,
                    r.write_faults,
                    r.delays,
                    r.completed_at
                        .map_or_else(|| "-".to_string(), |t| t.as_micros().to_string()),
                );
                println!("{line}");
                digest.write(line.as_bytes());
                total += 1;
                if r.fingerprint.is_some() {
                    completed += 1;
                }
            }
        }
    }
    println!(
        "chaos-smoke: {completed}/{total} cases completed, digest={:016x}",
        digest.finish()
    );
}
