//! End-to-end workload correctness *under hybrid clusters*: the numeric
//! answers must be identical no matter which mix of VMs and Lambdas ran
//! the tasks — SplitServe changes where work runs, never what it computes.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{Deployment, ShuffleStoreKind};
use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset};
use splitserve_workloads::{estimate_pi, reference_pagerank, KMeans, PageRank, SparkPi};

/// Builds a hybrid deployment: `vm_cores` VM executors + `lambdas` Lambda
/// executors over HDFS shuffle.
fn hybrid(sim: &mut Sim, vm_cores: u32, lambdas: u32) -> Deployment {
    let d = Deployment::new(sim, CloudSpec::default(), ShuffleStoreKind::Hdfs, M4_XLARGE);
    if vm_cores > 0 {
        d.add_vm_workers(sim, M4_4XLARGE, vm_cores);
    }
    if lambdas > 0 {
        d.add_lambda_executors(sim, lambdas);
    }
    d
}

#[test]
fn pagerank_result_is_identical_on_vm_lambda_and_hybrid_clusters() {
    let workload = PageRank::new(2_000, 2, 6, 99);
    let run = |vm: u32, la: u32| -> Vec<(u64, f64)> {
        let mut sim = Sim::new(5);
        let d = hybrid(&mut sim, vm, la);
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine()
            .submit_job(&mut sim, workload.plan().node(), move |_, r| {
                *o.borrow_mut() = Some(collect_partitions::<(u64, f64)>(r.partitions));
            });
        sim.run();
        let mut rows = out.borrow_mut().take().expect("completed");
        rows.sort_by_key(|a| a.0);
        rows
    };
    let on_vms = run(6, 0);
    let on_lambdas = run(0, 6);
    let on_hybrid = run(2, 4);
    // Floating-point sums are merged in fetch-completion order, which
    // differs per substrate (exactly as in real Spark), so compare with a
    // relative tolerance rather than bitwise.
    let close = |a: &[(u64, f64)], b: &[(u64, f64)]| {
        assert_eq!(a.len(), b.len(), "page sets must match");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.0, y.0);
            assert!(
                (x.1 - y.1).abs() <= 1e-9 * x.1.abs().max(1.0),
                "page {}: {} vs {}",
                x.0,
                x.1,
                y.1
            );
        }
    };
    close(&on_vms, &on_lambdas);
    close(&on_vms, &on_hybrid);
    // …and the answer is the mathematically correct one.
    let reference: std::collections::BTreeMap<u64, f64> =
        reference_pagerank(&workload).into_iter().collect();
    for (page, rank) in &on_vms {
        let r = reference.get(page).expect("page in reference");
        assert!((rank - r).abs() < 1e-9, "page {page}");
    }
}

#[test]
fn kmeans_converges_on_a_hybrid_cluster() {
    let mut sim = Sim::new(3);
    let d = hybrid(&mut sim, 2, 4);
    let w = KMeans::small(5_000, 6, 11);
    let result = Rc::new(RefCell::new(None));
    let r = Rc::clone(&result);
    w.run(&mut sim, d.engine(), move |_, centroids, iters| {
        *r.borrow_mut() = Some((centroids, iters));
    });
    sim.run();
    let (centroids, iters) = result.borrow_mut().take().expect("finished");
    assert!(iters <= 5);
    assert_eq!(centroids.len(), 3);
    // Ran on both substrates.
    let m = d.engine().completed_job_metrics();
    let vm: u64 = m.iter().map(|j| j.tasks_on_vm).sum();
    let la: u64 = m.iter().map(|j| j.tasks_on_lambda).sum();
    assert!(vm > 0 && la > 0, "hybrid must split work: vm={vm} la={la}");
}

#[test]
fn pi_estimate_is_accurate_on_lambdas_only() {
    let mut sim = Sim::new(4);
    let d = hybrid(&mut sim, 0, 8);
    let w = SparkPi::small(2_000_000, 16, 21);
    let result = Rc::new(RefCell::new(None));
    let r = Rc::clone(&result);
    estimate_pi(&mut sim, d.engine(), &w, move |_, pi| {
        *r.borrow_mut() = Some(pi);
    });
    sim.run();
    let pi = result.borrow_mut().take().expect("finished");
    assert!((pi - std::f64::consts::PI).abs() < 0.02, "π = {pi}");
}

#[test]
fn shuffle_data_crosses_substrates_correctly() {
    // Map tasks land on Lambdas, reduce tasks may land on VMs (or vice
    // versa): bytes written by one substrate must be readable by the
    // other through HDFS.
    let mut sim = Sim::new(8);
    let d = hybrid(&mut sim, 1, 1);
    let ds = Dataset::parallelize((0..10_000u64).map(|i| (i % 100, 1u64)).collect(), 8)
        .reduce_by_key(4, |a, b| a + b);
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    d.engine().submit_job(&mut sim, ds.node(), move |_, r| {
        *o.borrow_mut() = Some((
            collect_partitions::<(u64, u64)>(r.partitions),
            r.metrics.clone(),
        ));
    });
    sim.run();
    let (mut rows, metrics) = out.borrow_mut().take().expect("completed");
    rows.sort();
    assert_eq!(rows.len(), 100);
    assert!(rows.iter().all(|(_, c)| *c == 100));
    assert!(metrics.tasks_on_vm > 0 && metrics.tasks_on_lambda > 0);
    assert!(metrics.shuffle_bytes_read > 0);
}

#[test]
fn lambda_memory_sizes_change_speed_not_results() {
    let run_with_memory = |mb: u64| {
        let mut sim = Sim::new(6);
        let d = Deployment::new(
            &mut sim,
            CloudSpec::default(),
            ShuffleStoreKind::Hdfs,
            M4_XLARGE,
        );
        d.set_lambda_memory_mb(mb);
        d.add_lambda_executors(&mut sim, 4);
        let ds = Dataset::parallelize((0..20_000u64).map(|i| (i % 16, i)).collect(), 8)
            .map_with_cost(|kv| *kv, Some(5e-5))
            .reduce_by_key(4, |a, b| a + b);
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine().submit_job(&mut sim, ds.node(), move |sim, r| {
            *o.borrow_mut() = Some((
                sim.now().as_secs_f64(),
                collect_partitions::<(u64, u64)>(r.partitions),
            ));
        });
        sim.run();
        let (t, mut rows) = out.borrow_mut().take().expect("completed");
        rows.sort();
        (t, rows)
    };
    let (t_small, rows_small) = run_with_memory(768);
    let (t_big, rows_big) = run_with_memory(3_008);
    assert_eq!(rows_small, rows_big, "results identical");
    assert!(
        t_small > t_big * 1.5,
        "768 MB Lambdas (≈0.43 core) must be much slower: {t_small} vs {t_big}"
    );
}
