//! Chaos at fleet scale: seeded fault plans fired into the multi-tenant
//! control plane while jobs stream through admission onto a SplitServe
//! deployment. The differential oracle carries over from the single-job
//! sweeps: the computed data (per-job fingerprints) must be bit-identical
//! across shuffle-store kinds and against the fault-free reference, every
//! job must complete (no stranded queues), and the admission log must
//! replay clean (kills never violate caps or strict priority).

use splitserve::tenancy::{
    combined_fingerprint, default_fleet_jobs, default_tenant_specs, fleet_workload, policy_json,
    run_tenant_fleet_with, verify_log, FleetJob, FleetOutcome, FleetPolicy, TenantFleetConfig,
    TenantSpec, WorkloadFn,
};
use splitserve::ShuffleStoreKind;
use splitserve_chaos::{inject, FaultEvent, FaultPlan};
use splitserve_cloud::ColdStartSpec;
use splitserve_storage::{FaultStore, StoreFaults};

/// The fleet under chaos: small enough to sweep 16 plans in a debug-mode
/// test run, busy enough (10 tenants, a 12-core pool, allocator on) that
/// Lambda executors actually launch and kills have targets.
fn chaos_fleet() -> (Vec<TenantSpec>, Vec<FleetJob>) {
    let tenants = default_tenant_specs(10);
    let jobs = default_fleet_jobs(&tenants, 11, 120, 180.0);
    assert!(jobs.len() >= 80, "chaos fleet drew too few jobs: {}", jobs.len());
    (tenants, jobs)
}

/// Runs the chaos fleet under `kind` with an optional fault plan armed on
/// both the storage layer (nth-op failures, latency) and the deployment
/// (kills, drains, straggles, capacity waves). Returns the outcome and
/// the fleet-wide data fingerprint.
fn run_fleet_case(
    tenants: &[TenantSpec],
    jobs: &[FleetJob],
    kind: ShuffleStoreKind,
    plan: Option<&FaultPlan>,
) -> (FleetOutcome, u64, u32) {
    let mut cfg = TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.to_vec(), 12);
    cfg.store = kind;
    let faults = StoreFaults::new();
    if let Some(p) = plan {
        p.arm_store_faults(&faults);
    }
    let (wl, sink) = fleet_workload(8);
    let wrapped = faults.clone();
    let r = run_fleet_guarded(&cfg, jobs, wl, wrapped, plan);
    let fp = combined_fingerprint(&sink.borrow());
    (r, fp, cfg.slots)
}

fn run_fleet_guarded(
    cfg: &TenantFleetConfig,
    jobs: &[FleetJob],
    wl: WorkloadFn,
    faults: StoreFaults,
    plan: Option<&FaultPlan>,
) -> FleetOutcome {
    run_tenant_fleet_with(
        cfg,
        jobs,
        wl,
        move |store| FaultStore::wrap(store, faults),
        |sim, d| {
            if let Some(p) = plan {
                inject::arm(sim, d, p);
            }
        },
    )
}

/// The full judgement for one plan: completion, cap/priority invariants,
/// and data equal to the fault-free reference under both store kinds.
fn judge(seed: u64, plan: &FaultPlan, tenants: &[TenantSpec], jobs: &[FleetJob], reference: u64) {
    for kind in [ShuffleStoreKind::Hdfs, ShuffleStoreKind::Local] {
        let (r, fp, slots) = run_fleet_case(tenants, jobs, kind, Some(plan));
        assert_eq!(
            r.outcomes.len(),
            jobs.len(),
            "seed {seed} {kind:?}: jobs went missing"
        );
        verify_log(slots, tenants, &r.admission).unwrap_or_else(|e| {
            panic!("seed {seed} {kind:?}: admission invariant broken under faults: {e}")
        });
        assert_eq!(
            fp, reference,
            "seed {seed} {kind:?}: data diverged from the fault-free reference \
             (plan: {})",
            plan.to_json()
        );
    }
}

#[test]
fn sixteen_seed_sweep_holds_the_differential_oracle() {
    let (tenants, jobs) = chaos_fleet();
    // Fault-free reference, computed once per store kind; the two must
    // already agree with each other.
    let (r_hdfs, fp_hdfs, slots) = run_fleet_case(&tenants, &jobs, ShuffleStoreKind::Hdfs, None);
    let (_r_local, fp_local, _) = run_fleet_case(&tenants, &jobs, ShuffleStoreKind::Local, None);
    assert_eq!(fp_hdfs, fp_local, "stores disagree before any fault");
    verify_log(slots, &tenants, &r_hdfs.admission).unwrap();

    // Arrivals span ~180s of virtual time; aim the plans at the window
    // where the queue is deepest so kills land on busy executors.
    for seed in 0..16 {
        let plan = FaultPlan::generate_in_window(seed, 5_000_000, 90_000_000);
        judge(seed, &plan, &tenants, &jobs, fp_hdfs);
    }
}

/// 32-seed determinism sweep across the cold-start policy plane: each
/// seed draws a chaos plan filtered to kills + capacity churn (the event
/// classes that reshape the Lambda population mid-run), picks a policy
/// round-robin, and runs the fleet at 1 and 4 engine worker threads.
/// The rendered per-policy artifact must be byte-identical and the
/// warm-pool counters (warm/cold/prewarm starts, evictions, wasted
/// memory) exactly equal — the policy plane schedules no events and
/// draws no RNG, so worker count must not leak into a single decision
/// even while containers are being killed out from under it.
#[test]
fn thirty_two_seed_policy_chaos_is_worker_invariant() {
    let tenants = default_tenant_specs(6);
    let jobs = default_fleet_jobs(&tenants, 11, 48, 120.0);
    let specs = [
        ColdStartSpec::forever(),
        ColdStartSpec::fixed_secs(15),
        ColdStartSpec::UnloadOnPressure { cap_mb: 6_144 },
        ColdStartSpec::parse("hybrid:15").expect("selector"),
    ];
    for seed in 0..32u64 {
        let full = FaultPlan::generate_in_window(seed, 5_000_000, 60_000_000);
        let events: Vec<FaultEvent> = full
            .events
            .into_iter()
            .filter(|e| {
                matches!(
                    e,
                    FaultEvent::Kill { .. }
                        | FaultEvent::BurstKill { .. }
                        | FaultEvent::AddLambdas { .. }
                        | FaultEvent::AddVmCores { .. }
                )
            })
            .collect();
        let plan = FaultPlan { seed, events };
        let spec = &specs[(seed as usize) % specs.len()];
        let run = |workers: usize| {
            let mut cfg =
                TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.clone(), 8);
            cfg.engine.workers = workers;
            cfg.cloud.coldstart = spec.clone();
            cfg.cloud.prewarmed_lambdas = 0;
            let (wl, sink) = fleet_workload(8);
            let r = run_fleet_guarded(&cfg, &jobs, wl, StoreFaults::new(), Some(&plan));
            assert_eq!(
                r.outcomes.len(),
                jobs.len(),
                "seed {seed} {} w{workers}: jobs went missing",
                spec.selector()
            );
            verify_log(cfg.slots, &tenants, &r.admission).unwrap_or_else(|e| {
                panic!("seed {seed} {} w{workers}: admission broke: {e}", spec.selector())
            });
            let fp = combined_fingerprint(&sink.borrow());
            let artifact = policy_json(&r, &tenants, fp);
            (artifact, r.pool, r.coldstart_policy)
        };
        let (a1, pool1, name1) = run(1);
        let (a4, pool4, name4) = run(4);
        assert_eq!(name1, spec.name(), "seed {seed}: policy knob did not reach the pool");
        assert_eq!(name1, name4);
        assert_eq!(
            pool1, pool4,
            "seed {seed} {}: warm-pool counters diverged across worker counts",
            spec.selector()
        );
        assert_eq!(
            a1, a4,
            "seed {seed} {}: fleet artifact not byte-identical across worker counts",
            spec.selector()
        );
    }
}

/// Kills must not leak admitted slots: after a mid-run executor kill the
/// controller still drains every queue and its final state is idle (the
/// runner asserts idleness internally; stranded work panics as
/// "never completed"). This pins the nastiest single plan shape — a
/// burst kill of everything young — rather than relying on the sweep to
/// draw one.
#[test]
fn burst_kill_neither_strands_queues_nor_breaks_caps() {
    use splitserve_chaos::FaultEvent;
    let (tenants, jobs) = chaos_fleet();
    let plan = FaultPlan {
        seed: 999,
        events: vec![
            FaultEvent::BurstKill {
                at_us: 20_000_000,
                min_age_us: 0,
            },
            FaultEvent::BurstKill {
                at_us: 45_000_000,
                min_age_us: 5_000_000,
            },
        ],
    };
    let (r, fp, slots) = run_fleet_case(&tenants, &jobs, ShuffleStoreKind::Hdfs, Some(&plan));
    let (_ref_r, fp_ref, _) = run_fleet_case(&tenants, &jobs, ShuffleStoreKind::Hdfs, None);
    assert_eq!(fp, fp_ref, "burst kills corrupted job data");
    verify_log(slots, &tenants, &r.admission).unwrap();
    // Every admitted job eventually completed despite the kills.
    assert_eq!(r.outcomes.len(), jobs.len());
}
