//! Cross-crate integration tests asserting the paper's *qualitative*
//! claims hold end-to-end at test scale: the ordering relations between
//! scenarios that constitute SplitServe's contribution.

use splitserve::{run_scenario, DriverProgram, Scenario, ScenarioSpec};
use splitserve_des::SimDuration;
use splitserve_workloads::{KMeans, PageRank, SparkPi, TpcdsLoad, TpcdsQuery};

fn spec(required: u32, available: u32, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        required_cores: required,
        available_cores: available,
        seed,
        ..ScenarioSpec::default()
    }
}

fn pagerank_factory(seed: u64) -> impl Fn() -> Box<dyn DriverProgram> {
    move || Box::new(PageRank::new(30_000, 3, 16, seed).with_contrib_cost(2.0e-4))
}

#[test]
fn claim_hybrid_beats_vm_autoscaling_on_shuffle_heavy_work() {
    // The abstract: "improves execution time by up to … 31% in workloads
    // with large amounts of shuffling, when compared to only VM-based
    // autoscaling."
    let s = spec(16, 3, 1);
    let w = pagerank_factory(1);
    let autoscale = run_scenario(Scenario::SparkAutoscale, &s, &w);
    let hybrid = run_scenario(Scenario::SsHybrid, &s, &w);
    assert!(
        hybrid.execution_secs < autoscale.execution_secs * 0.9,
        "hybrid {:.1}s must clearly beat autoscale {:.1}s",
        hybrid.execution_secs,
        autoscale.execution_secs
    );
}

#[test]
fn claim_segue_keeps_most_of_the_hybrid_benefit_and_saves_lambda_cost() {
    let s = ScenarioSpec {
        segue_existing_cores_at: Some(SimDuration::from_secs(20)),
        lambda_timeout: SimDuration::from_secs(10),
        ..spec(16, 3, 2)
    };
    let w = pagerank_factory(2);
    let autoscale = run_scenario(Scenario::SparkAutoscale, &s, &w);
    let segue = run_scenario(Scenario::SsHybridSegue, &s, &w);
    let hybrid = run_scenario(Scenario::SsHybrid, &s, &w);
    assert!(
        segue.execution_secs < autoscale.execution_secs,
        "segue {:.1}s vs autoscale {:.1}s",
        segue.execution_secs,
        autoscale.execution_secs
    );
    // Lambdas released mid-job must not cost more than running them to
    // the end (the paper's 8% cost benefit; exact % varies with scale).
    let hybrid_lambda_cost: f64 = hybrid.cost_usd;
    assert!(
        segue.cost_usd <= hybrid_lambda_cost * 1.05,
        "segue ${} should not exceed hybrid ${}",
        segue.cost_usd,
        hybrid_lambda_cost
    );
    // And no work is rolled back by the graceful drain.
    assert_eq!(segue.tasks_recomputed, 0);
}

#[test]
fn claim_splitserve_overhead_over_vanilla_is_modest() {
    // "SS 32 VM compares closely with Spark 32 VM … performing at par in
    // most cases and doing only 1.6x poorer in the worst case."
    let s = spec(16, 4, 3);
    let w = pagerank_factory(3);
    let vanilla = run_scenario(Scenario::SparkRVm, &s, &w);
    let ss = run_scenario(Scenario::SsRVm, &s, &w);
    let ratio = ss.execution_secs / vanilla.execution_secs;
    assert!(
        ratio < 1.6,
        "SplitServe-on-VMs overhead {ratio:.2}x exceeds the paper's worst case"
    );
}

#[test]
fn claim_qubole_s3_shuffle_is_slowest_lambda_option() {
    // Qubole (S3 shuffle) must trail SplitServe's all-Lambda (HDFS
    // shuffle) on a shuffle-intensive query.
    let s = spec(16, 4, 4);
    let w = || -> Box<dyn DriverProgram> {
        Box::new(TpcdsLoad {
            shuffle_partitions: 64,
            ..TpcdsLoad::tiny(TpcdsQuery::Q95, 4)
        })
    };
    let qubole = run_scenario(Scenario::QuboleLambda, &s, &w);
    let ss_la = run_scenario(Scenario::SsRLambda, &s, &w);
    assert!(
        qubole.execution_secs > ss_la.execution_secs,
        "Qubole {:.1}s must trail SS-Lambda {:.1}s",
        qubole.execution_secs,
        ss_la.execution_secs
    );
}

#[test]
fn claim_under_provisioning_hurts_most() {
    let s = spec(16, 2, 5);
    let w = pagerank_factory(5);
    let results: Vec<_> = Scenario::all()
        .iter()
        .map(|sc| run_scenario(*sc, &s, &w))
        .collect();
    let small = results
        .iter()
        .find(|r| r.scenario == Scenario::SparkSmallVm)
        .expect("ran");
    for r in &results {
        assert!(
            r.execution_secs <= small.execution_secs + 1e-9,
            "{} ({:.1}s) should not be slower than the stuck-small cluster ({:.1}s)",
            r.label,
            r.execution_secs,
            small.execution_secs
        );
    }
}

#[test]
fn claim_compute_bound_work_is_indifferent_to_substrate() {
    // SparkPi (Fig. 9): "both Qubole's Spark-on-Lambda and SplitServe's
    // all-Lambda setup give similar performance to that of Vanilla Spark
    // … mainly due to the fact that there is no shuffling involved."
    let s = spec(16, 4, 6);
    let w = || -> Box<dyn DriverProgram> {
        Box::new(SparkPi {
            parallelism: 16,
            tasks: 32,
            darts: 4_000_000_000,
            real_darts_cap_per_task: 20_000,
            ..SparkPi::paper_config(16, 6)
        })
    };
    let vanilla = run_scenario(Scenario::SparkRVm, &s, &w);
    let ss_la = run_scenario(Scenario::SsRLambda, &s, &w);
    let qubole = run_scenario(Scenario::QuboleLambda, &s, &w);
    // Lambdas run at ~0.87 core speed; allow up to 1.35x.
    for (name, r) in [("SS La", &ss_la), ("Qubole", &qubole)] {
        let ratio = r.execution_secs / vanilla.execution_secs;
        assert!(
            ratio < 1.35,
            "{name} should be near-par on no-shuffle work, got {ratio:.2}x"
        );
    }
}

#[test]
fn claim_all_lambda_kmeans_close_to_vm_baseline() {
    // Fig. 8: "when we run the same job on SplitServe with only Lambdas,
    // we do only 11% worse than Spark 16 VM."
    let s = spec(16, 4, 7);
    let w = || -> Box<dyn DriverProgram> {
        Box::new(KMeans {
            parallelism: 16,
            ..KMeans::small(50_000, 16, 7)
        })
    };
    let vanilla = run_scenario(Scenario::SparkRVm, &s, &w);
    let ss_la = run_scenario(Scenario::SsRLambda, &s, &w);
    let ratio = ss_la.execution_secs / vanilla.execution_secs;
    assert!(
        (0.9..1.6).contains(&ratio),
        "all-Lambda K-means should be mildly worse, got {ratio:.2}x"
    );
}

#[test]
fn costs_are_consistent_with_resource_usage() {
    let s = spec(8, 2, 8);
    let w = pagerank_factory(8);
    let vm = run_scenario(Scenario::SparkRVm, &s, &w);
    let la = run_scenario(Scenario::SsRLambda, &s, &w);
    assert!(vm.cost_usd > 0.0 && la.cost_usd > 0.0);
    // The all-Lambda run rents no worker VMs; for a sub-minute job the VM
    // run pays full instances (60s minimums), so Lambda wins on cost.
    assert!(
        la.cost_usd < vm.cost_usd,
        "short job: Lambdas (${:.4}) should undercut VMs (${:.4})",
        la.cost_usd,
        vm.cost_usd
    );
}
