//! Workspace-level property tests: invariants that must hold for *any*
//! small workload under *any* cluster composition.

use splitserve_rt::check::{self, Gen};
use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{Deployment, ShuffleStoreKind};
use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset};

fn arb_records(g: &mut Gen, min: usize, max: usize) -> Vec<(u8, u32)> {
    g.vec(min, max, |g| (g.u64() as u8, g.u64() as u32))
}

/// Runs a keyed-sum job on an arbitrary cluster mix and returns
/// (sorted results, execution seconds, cost).
fn run_mix(
    records: &[(u8, u32)],
    map_parts: usize,
    reduce_parts: usize,
    vm_cores: u32,
    lambdas: u32,
    store: ShuffleStoreKind,
    seed: u64,
) -> (Vec<(u8, u64)>, f64, f64) {
    let mut sim = Sim::new(seed);
    let d = Deployment::new(&mut sim, CloudSpec::default(), store, M4_XLARGE);
    if vm_cores > 0 {
        d.add_vm_workers(&mut sim, M4_4XLARGE, vm_cores);
    }
    if lambdas > 0 {
        d.add_lambda_executors(&mut sim, lambdas);
    }
    let data: Vec<(u8, u64)> = records.iter().map(|(k, v)| (*k, *v as u64)).collect();
    let ds = Dataset::parallelize(data, map_parts).reduce_by_key(reduce_parts, |a, b| a + b);
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    let d2 = d.clone();
    d.engine().submit_job(&mut sim, ds.node(), move |sim, r| {
        *o.borrow_mut() = Some((
            collect_partitions::<(u8, u64)>(r.partitions),
            sim.now().as_secs_f64(),
        ));
        d2.shutdown(sim);
    });
    sim.run();
    let (mut rows, t) = out.borrow_mut().take().expect("job completes");
    rows.sort();
    (rows, t, d.cloud().total_cost())
}

/// Ground truth for the keyed sum.
fn expected(records: &[(u8, u32)]) -> Vec<(u8, u64)> {
    let mut m = std::collections::BTreeMap::<u8, u64>::new();
    for (k, v) in records {
        *m.entry(*k).or_default() += *v as u64;
    }
    m.into_iter().collect()
}

/// The answer never depends on cluster composition or store choice.
#[test]
fn results_invariant_to_cluster_composition() {
    check::run("results_invariant_to_cluster_composition", 16, |g| {
        let records = arb_records(g, 1, 300);
        let map_parts = g.usize_in(1, 7);
        let reduce_parts = g.usize_in(1, 5);
        let vm_cores = g.u64_in(0, 3) as u32;
        let lambdas = g.u64_in(0, 3) as u32;
        let lambdas = if vm_cores + lambdas == 0 { 1 } else { lambdas };
        let store = match g.usize_in(0, 2) {
            0 => ShuffleStoreKind::Local,
            1 => ShuffleStoreKind::Hdfs,
            _ => ShuffleStoreKind::S3,
        };
        let (rows, t, cost) = run_mix(
            &records, map_parts, reduce_parts, vm_cores, lambdas, store, 7,
        );
        assert_eq!(rows, expected(&records));
        assert!(t > 0.0 && t.is_finite());
        assert!(cost > 0.0 && cost.is_finite());
    });
}

/// Determinism: identical configuration twice gives bit-identical
/// time and cost.
#[test]
fn runs_are_deterministic() {
    check::run("runs_are_deterministic", 16, |g| {
        let records = arb_records(g, 1, 100);
        let seed = g.u64();
        let a = run_mix(&records, 4, 2, 1, 2, ShuffleStoreKind::Hdfs, seed);
        let b = run_mix(&records, 4, 2, 1, 2, ShuffleStoreKind::Hdfs, seed);
        assert_eq!(a, b);
    });
}

/// More parallelism never changes the answer and never slows the job.
#[test]
fn wider_clusters_preserve_answers() {
    check::run("wider_clusters_preserve_answers", 16, |g| {
        let records = arb_records(g, 1, 200);
        let narrow = run_mix(&records, 6, 3, 1, 0, ShuffleStoreKind::Hdfs, 3);
        let wide = run_mix(&records, 6, 3, 4, 4, ShuffleStoreKind::Hdfs, 3);
        assert_eq!(&narrow.0, &wide.0);
        assert!(
            wide.1 <= narrow.1 + 1e-6,
            "wider cluster must not be slower: {} vs {}",
            wide.1,
            narrow.1
        );
    });
}
