//! Guards the experiment harness itself: every figure's quick-fidelity
//! variant must run and produce structurally sane tables, so the paper's
//! artifacts stay regenerable.

use splitserve::ProfileMode;
use splitserve_bench::experiments as ex;
use splitserve_bench::experiments::Fidelity;

#[test]
fn fig1_curve_has_the_crossover_shape() {
    let t = ex::fig1();
    assert!(t.rows.len() > 50);
    // Early points: lambda cheaper; late points: VM cheaper.
    let parse = |row: &Vec<String>| -> (f64, f64, f64) {
        (
            row[0].parse().expect("time"),
            row[1].parse().expect("vm"),
            row[2].parse().expect("lambda"),
        )
    };
    let (_, vm0, la0) = parse(&t.rows[0]);
    assert!(la0 < vm0, "lambda starts cheaper");
    let (_, vm_last, la_last) = parse(t.rows.last().expect("rows"));
    assert!(la_last > vm_last, "lambda ends pricier");
    let x = ex::fig1_crossover_secs();
    assert!(x > 10.0 && x < 7_200.0, "crossover {x}");
}

#[test]
fn fig2_series_and_policy_tables() {
    let (series, policies) = ex::fig2(5);
    assert_eq!(series.rows.len(), 288);
    assert_eq!(policies.rows.len(), 2);
    // Lean policy provisions fewer core-hours than conservative.
    let prov: Vec<f64> = policies
        .rows
        .iter()
        .map(|r| r[3].parse().expect("core hours"))
        .collect();
    assert!(prov[1] < prov[0]);
}

#[test]
fn fig4_sweeps_produce_u_shaped_lambda_curve() {
    let t = ex::fig4(ProfileMode::LambdaOnly, Fidelity::Quick, 3);
    // rows: size × ladder
    assert_eq!(t.rows.len(), ex::fig4_sizes(Fidelity::Quick).len() * ex::fig4_ladder(Fidelity::Quick).len());
    // For the largest size, p=2 beats p=1 (parallelism helps initially).
    let large_rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "large").collect();
    let t1: f64 = large_rows[0][3].parse().expect("time");
    let t2: f64 = large_rows[1][3].parse().expect("time");
    assert!(t2 < t1, "p=2 ({t2}) must beat p=1 ({t1})");
}

#[test]
fn fig5_quick_has_all_queries_and_scenarios() {
    let t = ex::fig5(Fidelity::Quick, 2);
    assert_eq!(t.rows.len(), 4 * ex::fig5_scenarios().len());
    for q in ["Q5", "Q16", "Q94", "Q95"] {
        assert!(t.rows.iter().any(|r| r[0] == q), "{q} missing");
    }
}

#[test]
fn fig6_quick_covers_all_eight_scenarios() {
    let t = ex::fig6(Fidelity::Quick, 2);
    assert_eq!(t.rows.len(), 8);
    assert!(t.rows.iter().any(|r| r[1].contains("Segue")));
}

#[test]
fn fig7_timelines_show_the_segue() {
    let tls = ex::fig7(Fidelity::Quick, 2);
    assert_eq!(tls.len(), 3);
    assert!(tls[0].segue_at.is_none(), "vanilla run has no segue");
    assert!(tls[1].segue_at.is_none(), "plain hybrid has no segue");
    let segue = &tls[2];
    assert!(segue.segue_at.is_some(), "segue run must mark the segue");
    // Lambda lanes end; VM lanes appear.
    assert!(segue.lanes.iter().any(|l| l.kind == "lambda"));
    assert!(segue.lanes.iter().any(|l| l.kind == "vm"));
    // Stage structure matches PageRank's 3·iters+1 stages.
    assert_eq!(tls[0].stage_completions.len(), 10);
}

#[test]
fn fig8_reports_mean_and_sd_per_scenario() {
    let t = ex::fig8(Fidelity::Quick, 40);
    assert_eq!(t.rows.len(), ex::fig8_scenarios().len());
    for row in &t.rows {
        let mean: f64 = row[1].parse().expect("mean");
        let sd: f64 = row[2].parse().expect("sd");
        assert!(mean > 0.0);
        assert!(sd >= 0.0);
        let cost: f64 = row[3].parse().expect("cost");
        assert!(cost > 0.0);
    }
}

#[test]
fn fig9_compute_bound_scenarios_cluster_near_baseline() {
    let t = ex::fig9(Fidelity::Quick, 2);
    assert_eq!(t.rows.len(), ex::fig9_scenarios().len());
    // All-Lambda and hybrid must be within 1.5x of Spark R VM (negligible
    // shuffle ⇒ substrate indifference).
    for label_fragment in ["SS 64 La", "SS 4 VM / 60 La"] {
        let row = t
            .rows
            .iter()
            .find(|r| r[1] == label_fragment)
            .unwrap_or_else(|| panic!("{label_fragment} missing"));
        let rel: f64 = row[3].trim_end_matches('x').parse().expect("ratio");
        assert!(rel < 1.5, "{label_fragment} at {rel}x");
    }
}

#[test]
fn ablation_tables_run_quick() {
    let stores = ex::ablation_stores(Fidelity::Quick, 2);
    assert_eq!(stores.rows.len(), 4);
    let thresholds = ex::ablation_segue_threshold(Fidelity::Quick, 2);
    assert_eq!(thresholds.rows.len(), 5);
    let memory = ex::ablation_lambda_memory(Fidelity::Quick, 2);
    assert_eq!(memory.rows.len(), 5);
    let cloudsort = ex::ablation_cloudsort(Fidelity::Quick, 2);
    assert_eq!(cloudsort.rows.len(), 3);
    let controller = ex::ablation_controller(Fidelity::Quick, 2);
    assert_eq!(controller.rows.len(), 2);
    let stream = ex::ablation_job_stream(Fidelity::Quick, 2);
    assert_eq!(stream.rows.len(), 2);
    // SplitServe's stream attainment never trails the VM-only pool's.
    let vm_att: f64 = stream.rows[0][1].parse().expect("attainment");
    let ss_att: f64 = stream.rows[1][1].parse().expect("attainment");
    assert!(ss_att >= vm_att, "bridging must not hurt attainment");
    // Larger memory = faster lambdas (monotone trend allowing small noise).
    let t768: f64 = memory.rows[0][1].parse().expect("time");
    let t3008: f64 = memory.rows[4][1].parse().expect("time");
    assert!(t3008 < t768, "3008MB ({t3008}) must beat 768MB ({t768})");
}
