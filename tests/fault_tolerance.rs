//! Failure-injection tests across the whole stack: Lambda lifetime kills,
//! the rollback cascade with local shuffle, and its absence with the
//! shared HDFS layer — the architectural heart of the paper.
//!
//! The churn schedules are named, replayable [`FaultPlan`]s armed through
//! the chaos injector rather than hand-rolled `schedule_at` loops; a
//! failing scenario can be reprinted (`plan.to_json()`) and replayed
//! bit-for-bit from the JSON alone.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{Deployment, DriverProgram, ShuffleStoreKind};
use splitserve_chaos::{inject, FaultPlan};
use splitserve_cloud::{CloudSpec, M4_XLARGE};
use splitserve_des::{Dist, Sim, SimDuration};
use splitserve_engine::{collect_partitions, Dataset, EngineEventKind};
use splitserve_workloads::PageRank;

fn short_lifetime_cloud(lifetime_secs: u64) -> CloudSpec {
    CloudSpec {
        lambda_lifetime: SimDuration::from_secs(lifetime_secs),
        lambda_warm_start: Dist::constant(0.1),
        lambda_net_jitter: Dist::constant(1.0),
        ..CloudSpec::default()
    }
}

/// A job that outlives a short Lambda lifetime.
fn long_job() -> Dataset<(u64, u64)> {
    Dataset::<u64>::generate(32, |p| (0..5_000u64).map(|i| i + p as u64).collect())
        .map_with_cost(|x| (*x % 8, 1u64), Some(8e-4))
        .reduce_by_key(8, |a, b| a + b)
}

/// The named replacement-wave schedule of the original hand-rolled test:
/// overlapping fresh capacity every 5 s while 20 s-lifetime containers
/// age out underneath it.
fn lifetime_churn_plan(waves: u32) -> FaultPlan {
    FaultPlan::replacement_waves(waves, 5, 2)
}

#[test]
fn lambda_lifetime_kill_mid_job_recovers_with_hdfs() {
    // 4 Lambdas with a 20 s lifetime on a ~80 s job: every container is
    // killed and replaced by fresh requests from the replacement-wave
    // plan; shuffle data survives on HDFS so only in-flight tasks are
    // redone.
    let mut sim = Sim::new(9);
    let d = Deployment::new(
        &mut sim,
        short_lifetime_cloud(20),
        ShuffleStoreKind::Hdfs,
        M4_XLARGE,
    );
    d.add_lambda_executors(&mut sim, 4);
    let plan = lifetime_churn_plan(29);
    assert_eq!(
        FaultPlan::from_json(&plan.to_json()).unwrap(),
        plan,
        "the scenario is replayable from its printed form"
    );
    let report = inject::arm(&mut sim, &d, &plan);
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    d.engine().submit_job(&mut sim, long_job().node(), move |_, r| {
        *o.borrow_mut() = Some((
            collect_partitions::<(u64, u64)>(r.partitions),
            r.metrics.clone(),
        ));
    });
    sim.run();
    let (mut rows, metrics) = out.borrow_mut().take().expect("job survives the churn");
    rows.sort();
    assert_eq!(rows.len(), 8);
    assert!(rows.iter().all(|(_, c)| *c == 20_000));
    assert_eq!(report.capacity_adds(), 29, "every wave fired");
    // Kills definitely happened (the platform's, not the injector's)…
    let events = d.engine().event_log().snapshot();
    let kills = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::ExecutorLost { .. }))
        .count();
    assert!(kills >= 2, "expected lifetime kills, saw {kills}");
    // …but no stage ever rolled back: HDFS kept the map outputs.
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. })),
        "HDFS shuffle must prevent rollback"
    );
    // Only in-flight tasks were redone (bounded by the number of kills).
    assert!(metrics.tasks_recomputed <= kills as u64);
}

#[test]
fn same_churn_with_local_shuffle_triggers_rollback_but_still_finishes() {
    let mut sim = Sim::new(9);
    let d = Deployment::new(
        &mut sim,
        short_lifetime_cloud(20),
        ShuffleStoreKind::Local,
        M4_XLARGE,
    );
    d.add_lambda_executors(&mut sim, 4);
    // With executor-local shuffle, perpetual churn livelocks: map outputs
    // die before reducers can drain them (exactly why pure-Lambda vanilla
    // Spark is untenable). Stable VM capacity arriving at t=60 s ends the
    // rollback storm.
    let plan = lifetime_churn_plan(11).with_vm_rescue(60, 8);
    inject::arm(&mut sim, &d, &plan);
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    d.engine().submit_job(&mut sim, long_job().node(), move |_, r| {
        *o.borrow_mut() = Some((
            collect_partitions::<(u64, u64)>(r.partitions),
            r.metrics.clone(),
        ));
    });
    sim.run();
    let (mut rows, metrics) = out.borrow_mut().take().expect("recovers eventually");
    rows.sort();
    assert_eq!(rows.len(), 8);
    assert!(rows.iter().all(|(_, c)| *c == 20_000), "results still exact");
    let events = d.engine().event_log().snapshot();
    // Recovery is visible as re-executed map tasks: the map stage is 32
    // partitions wide, but dead executors' finished outputs had to be
    // recomputed, so more than 32 map tasks ran to completion.
    let map_stage_finishes = events
        .iter()
        .filter(|e| {
            matches!(&e.kind, EngineEventKind::TaskFinished { stage, .. } if stage.0 == 0)
        })
        .count();
    assert!(
        map_stage_finishes > 32,
        "lost local shuffle outputs must be recomputed: {map_stage_finishes} map finishes"
    );
    assert!(
        metrics.tasks_recomputed > 0,
        "rollback means recomputation: {metrics:?}"
    );
}

#[test]
fn rollback_makes_local_store_slower_than_hdfs_under_churn() {
    // The quantitative version of the two tests above: identical churn,
    // identical job — the store choice decides how much work is redone.
    let plan = lifetime_churn_plan(11).with_vm_rescue(60, 8);
    let run = |store: ShuffleStoreKind| {
        let mut sim = Sim::new(13);
        let d = Deployment::new(&mut sim, short_lifetime_cloud(20), store, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 4);
        inject::arm(&mut sim, &d, &plan);
        let done = Rc::new(RefCell::new(None));
        let dn = Rc::clone(&done);
        d.engine().submit_job(&mut sim, long_job().node(), move |sim, r| {
            *dn.borrow_mut() = Some((sim.now().as_secs_f64(), r.metrics.tasks_recomputed));
        });
        sim.run();
        let out = done.borrow_mut().take().expect("completed");
        out
    };
    let (t_hdfs, redo_hdfs) = run(ShuffleStoreKind::Hdfs);
    let (t_local, redo_local) = run(ShuffleStoreKind::Local);
    assert!(
        redo_local > redo_hdfs,
        "local store must redo more work: {redo_local} vs {redo_hdfs}"
    );
    assert!(
        t_local > t_hdfs,
        "rollback must cost time: local {t_local:.1}s vs hdfs {t_hdfs:.1}s"
    );
}

#[test]
fn segue_under_pagerank_never_recomputes() {
    use splitserve::{arm_segue, SegueConfig};
    let mut sim = Sim::new(17);
    let d = Deployment::new(
        &mut sim,
        CloudSpec::default(),
        ShuffleStoreKind::Hdfs,
        M4_XLARGE,
    );
    d.add_vm_workers(&mut sim, splitserve_cloud::M4_4XLARGE, 3);
    d.add_lambda_executors(&mut sim, 13);
    arm_segue(
        &mut sim,
        &d,
        SegueConfig::existing_cores(13, SimDuration::from_secs(15))
            .with_lambda_timeout(SimDuration::from_secs(10)),
    );
    let w = PageRank::new(30_000, 3, 16, 17).with_contrib_cost(2e-4);
    let done = Rc::new(RefCell::new(false));
    let dn = Rc::clone(&done);
    w.submit(
        &mut sim,
        d.engine(),
        Box::new(move |_| *dn.borrow_mut() = true),
    );
    sim.run();
    assert!(*done.borrow());
    let m = &d.engine().completed_job_metrics()[0];
    assert_eq!(m.tasks_recomputed, 0);
    assert!(m.tasks_on_lambda > 0 && m.tasks_on_vm > 0);
}
