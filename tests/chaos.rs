//! The chaos sweep: seeded fault plans × workloads × shuffle stores,
//! judged by the differential oracle; a failing plan is shrunk to a
//! minimal reproduction and printed as a `CHAOS_SEED=… CHAOS_PLAN=…`
//! line that [`replay_from_env`] replays verbatim:
//!
//! ```text
//! CHAOS_SEED=7 CHAOS_PLAN='{"seed":7,…}' cargo test --test chaos replay_from_env
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use splitserve::{arm_segue, Deployment, SegueConfig, ShuffleStoreKind};
use splitserve_chaos::workloads::{
    ChaosCloudSort, ChaosKMeans, ChaosPageRank, ChaosSparkPi, ChaosWorkload,
};
use splitserve_chaos::{
    check_or_shrink, run_case, shrink_events, ChaosTopology, FaultEvent, FaultPlan, Oracle,
};
use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
use splitserve_des::{Sim, SimDuration};
use splitserve_engine::EngineEventKind;
use splitserve_workloads::PageRank;

/// Sweeps 64 generated plans for one workload. Each workload uses its own
/// seed base so the three sweeps exercise disjoint plans; failures are
/// shrunk and printed as replayable repro lines before panicking.
fn sweep(workload: &dyn ChaosWorkload, seed_base: u64, seeds: u64) {
    let oracle = Oracle::new(workload, ChaosTopology::default());
    let mut checked = 0u64;
    for seed in seed_base..seed_base + seeds {
        let plan = FaultPlan::generate(seed);
        if let Err(failure) = check_or_shrink(&oracle, &plan) {
            panic!("seed {seed}: {failure}");
        }
        checked += 1;
    }
    assert_eq!(checked, seeds);
}

#[test]
fn sweep_pagerank_64_seeds() {
    sweep(&ChaosPageRank::small(), 0, 64);
}

#[test]
fn sweep_cloudsort_64_seeds() {
    sweep(&ChaosCloudSort::small(), 1_000, 64);
}

#[test]
fn sweep_sparkpi_64_seeds() {
    sweep(&ChaosSparkPi::small(), 2_000, 64);
}

#[test]
fn sweep_kmeans_16_seeds() {
    // The iterative driver is the most expensive workload; a smaller
    // sweep still covers faults landing *between* its jobs.
    sweep(&ChaosKMeans::small(), 3_000, 16);
}

/// A sanity anchor for the sweeps above: at least some generated plans
/// must actually provoke rollbacks under executor-local shuffle on this
/// topology, otherwise the oracle is vacuously green.
#[test]
fn generated_plans_reach_the_rollback_path() {
    let w = ChaosPageRank::small();
    let topo = ChaosTopology::default();
    let mut provoked = 0;
    for seed in 0..64 {
        let plan = FaultPlan::generate(seed);
        let r = run_case(&w, ShuffleStoreKind::Local, Some(&plan), &topo);
        if r.rollbacks > 0 {
            provoked += 1;
        }
    }
    assert!(
        provoked >= 4,
        "only {provoked}/64 plans provoked a rollback — the sweep lost its teeth"
    );
}

/// Replays a repro line printed by a failed sweep:
/// `CHAOS_PLAN='<json>' cargo test --test chaos replay_from_env`.
/// (`CHAOS_SEED` alone regenerates the unshrunk plan.) A no-op when
/// neither variable is set.
#[test]
fn replay_from_env() {
    let plan = match std::env::var("CHAOS_PLAN") {
        Ok(json) => FaultPlan::from_json(&json).expect("CHAOS_PLAN must be valid plan JSON"),
        Err(_) => match std::env::var("CHAOS_SEED") {
            Ok(seed) => FaultPlan::generate(seed.parse().expect("CHAOS_SEED must be a u64")),
            Err(_) => return,
        },
    };
    let workloads: [&dyn ChaosWorkload; 4] = [
        &ChaosPageRank::small(),
        &ChaosCloudSort::small(),
        &ChaosSparkPi::small(),
        &ChaosKMeans::small(),
    ];
    for w in workloads {
        let oracle = Oracle::new(w, ChaosTopology::default());
        oracle
            .check(&plan)
            .unwrap_or_else(|failure| panic!("{failure}"));
        eprintln!("replayed plan against {}: ok", w.name());
    }
}

/// The acceptance bar for shrinking: a plan whose failure is caused by a
/// single event, buried under padding events, must shrink to ≤3 events —
/// and the shrunk plan must still reproduce.
#[test]
fn a_buried_guilty_event_shrinks_to_a_tiny_repro() {
    let w = ChaosPageRank::small();
    let topo = ChaosTopology::default();
    // The burst kill at 10 s destroys live shuffle blocks mid-job under
    // executor-local storage (verified by `expected_rollback` below); the
    // other five events are noise that must shrink away.
    let guilty = FaultEvent::BurstKill {
        at_us: 10_000_000,
        min_age_us: 0,
    };
    let plan = FaultPlan {
        seed: 4242,
        events: vec![
            FaultEvent::Latency {
                from_us: 2_000_000,
                until_us: 4_000_000,
                extra_us: 50_000,
            },
            FaultEvent::AddLambdas {
                at_us: 3_000_000,
                count: 2,
            },
            guilty.clone(),
            FaultEvent::Straggle {
                at_us: 12_000_000,
                lambda: 1,
                slowdown_pct: 300,
                for_us: 5_000_000,
            },
            FaultEvent::AddLambdas {
                at_us: 20_000_000,
                count: 1,
            },
            FaultEvent::WriteFail { nth: 40 },
        ],
    };
    // "Failing" here = the plan provokes a rollback cascade under local
    // shuffle; the padding events cannot do that on their own.
    let fails = |p: &FaultPlan| {
        let r = run_case(&w, ShuffleStoreKind::Local, Some(p), &topo);
        r.rollbacks > 0
    };
    let full = run_case(&w, ShuffleStoreKind::Local, Some(&plan), &topo);
    assert!(
        full.expected_rollback && full.rollbacks > 0,
        "the guilty event must matter: {full:?}"
    );
    let shrunk = shrink_events(&plan, fails);
    assert!(
        shrunk.events.len() <= 3,
        "repro must be tiny, got {} events: {}",
        shrunk.events.len(),
        shrunk.to_json()
    );
    assert!(shrunk.events.contains(&guilty), "the culprit survives");
    assert!(fails(&shrunk), "the shrunk plan still reproduces");
    // The repro line round-trips and replays to the same verdict.
    let replayed = FaultPlan::from_json(&shrunk.to_json()).unwrap();
    assert_eq!(replayed, shrunk);
    assert!(fails(&replayed));
}

/// The segue regression the paper's §4.3 motivates: a graceful drain
/// (including drains forced by `with_lambda_timeout`) under an active job
/// must never roll a stage back, and a draining executor must never
/// receive another task.
#[test]
fn segue_drain_never_rolls_back_and_never_reschedules_onto_drained_executors() {
    let mut sim = Sim::new(17);
    let d = Deployment::new(
        &mut sim,
        CloudSpec::default(),
        ShuffleStoreKind::Hdfs,
        M4_XLARGE,
    );
    d.add_vm_workers(&mut sim, M4_4XLARGE, 3);
    d.add_lambda_executors(&mut sim, 13);
    arm_segue(
        &mut sim,
        &d,
        SegueConfig::existing_cores(13, SimDuration::from_secs(15))
            .with_lambda_timeout(SimDuration::from_secs(10)),
    );
    let w = PageRank::new(20_000, 3, 16, 17).with_contrib_cost(2e-4);
    let done = Rc::new(RefCell::new(false));
    let dn = Rc::clone(&done);
    use splitserve::DriverProgram;
    w.submit(
        &mut sim,
        d.engine(),
        Box::new(move |_| *dn.borrow_mut() = true),
    );
    sim.run();
    assert!(*done.borrow(), "job completes through the drain");

    let events = d.engine().event_log().snapshot();
    let drains = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::ExecutorDraining { .. }))
        .count();
    assert!(drains > 0, "the lambda timeout must have forced drains");
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. })),
        "a graceful drain never rolls back"
    );
    // Replay the log: once an executor starts draining, no task may start
    // on it — that is what distinguishes segue from a kill.
    let mut draining: HashSet<String> = HashSet::new();
    for e in &events {
        match &e.kind {
            EngineEventKind::ExecutorDraining { exec } => {
                draining.insert(exec.to_string());
            }
            EngineEventKind::TaskStarted { exec, stage, part } => {
                assert!(
                    !draining.contains(&exec.to_string()),
                    "task {stage:?}/{part} started on draining executor {exec} at {:?}",
                    e.at
                );
            }
            _ => {}
        }
    }
    assert_eq!(d.engine().completed_job_metrics()[0].tasks_recomputed, 0);
}

/// An injected drain (the plan's `drain` event) is segue's fault-plane
/// twin, driven through [`inject::arm`] instead of the segue controller.
/// It shows drains alone don't deliver the paper's guarantee — the
/// *store* does: under shared shuffle a drain never rolls back, while
/// under executor-local shuffle the drained executor's blocks vanish at
/// decommission and completed stages re-run. Output is exact either way.
#[test]
fn injected_drains_are_graceful_only_with_shared_shuffle() {
    let topo = ChaosTopology::default();
    let plan = FaultPlan {
        seed: 99,
        events: vec![
            FaultEvent::Drain {
                at_us: 4_000_000,
                lambda: 0,
            },
            FaultEvent::Drain {
                at_us: 6_000_000,
                lambda: 1,
            },
        ],
    };
    let w = ChaosPageRank::small();
    let faultless = run_case(&w, ShuffleStoreKind::Hdfs, None, &topo);
    for kind in [ShuffleStoreKind::Hdfs, ShuffleStoreKind::Local] {
        let r = run_case(&w, kind, Some(&plan), &topo);
        assert_eq!(r.drains, 2, "both drains performed under {kind}");
        assert_eq!(
            r.fingerprint, faultless.fingerprint,
            "drains must not change the output under {kind}"
        );
        match kind {
            ShuffleStoreKind::Hdfs => {
                assert_eq!(r.rollbacks, 0, "shared shuffle makes drains rollback-free");
            }
            _ => {
                assert!(
                    r.rollbacks > 0,
                    "decommissioning a block-holding executor under local shuffle \
                     must re-run its completed stages"
                );
            }
        }
    }
}
