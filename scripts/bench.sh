#!/usr/bin/env bash
# Shuffle data-plane benchmark harness: runs the `shuffle_hot` bench
# (map-side combine+encode, reduce-side decode+merge micro-benchmarks,
# the four paper workloads end to end, and the `parallel/*` worker-pool
# scaling series) and collects the one-line JSON records it prints.
#
# Records whose name starts with `parallel/` go to the second output
# (the worker-pool scaling medians); everything else goes to the first.
#
# Usage: scripts/bench.sh [shuffle_out.json] [parallel_out.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_shuffle.json}"
parallel_out="${2:-BENCH_parallel.json}"

echo "==> cargo bench -p splitserve-bench --bench shuffle_hot"
raw=$(cargo bench --offline -p splitserve-bench --bench shuffle_hot)

# Keep only the JSON result lines; everything else is cargo/bench chatter.
printf '%s\n' "$raw" | grep '^{' | python3 -c '
import json, sys

shuffle_out, parallel_out = sys.argv[1], sys.argv[2]
records = [json.loads(line) for line in sys.stdin]
assert records, "bench produced no JSON records"
for r in records:
    for key in ("bench", "median_ns", "min_ns", "max_ns", "samples"):
        assert key in r, f"record missing {key}: {r}"
    assert r["median_ns"] > 0, f"non-positive median: {r}"
shuffle = [r for r in records if not r["bench"].startswith("parallel/")]
parallel = [r for r in records if r["bench"].startswith("parallel/")]
assert parallel, "bench produced no parallel/ records"
for path, recs in ((shuffle_out, shuffle), (parallel_out, parallel)):
    with open(path, "w") as f:
        json.dump(recs, f, indent=2)
        f.write("\n")
' "$out" "$parallel_out"

echo "==> wrote $out and $parallel_out"
python3 -c '
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        records = json.load(f)
    for r in records:
        name, med, n = r["bench"], r["median_ns"] / 1e6, r["samples"]
        print(f"{name:40s} median {med:10.3f} ms  ({n} samples)")
' "$out" "$parallel_out"
