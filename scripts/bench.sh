#!/usr/bin/env bash
# Shuffle data-plane benchmark harness: runs the `shuffle_hot` bench
# (map-side combine+encode, reduce-side decode+merge micro-benchmarks,
# the four paper workloads end to end, and the `parallel/*` worker-pool
# scaling series), the `obs_overhead` bench (disabled-path record
# costs for counters, histograms, spans, digests, rollups and the flight
# recorder, and the enabled/disabled scenario walltime ratio), and the
# `tenancy` bench (admission-control throughput and trace-generation
# rates for the multi-tenant control plane), and the `fleet_hot` bench
# (dense-admission churn, enabled-path metric-handle record costs, and
# the reduced fleet end-to-end at 1 and 4 workers), and the `coldstart`
# bench (per-policy warm-pool decision costs and 100k-invoke churn for
# the cold-start policy plane), and collects the one-line JSON records
# they print.
#
# Records whose name starts with `parallel/` go to the second output
# (the worker-pool scaling medians); `obs/*` records go to the third;
# `tenancy/*` records go to the fourth; `fleet_hot/*` records go to the
# fifth; `coldstart/*` records go to the sixth; everything else goes to
# the first.
#
# Usage: scripts/bench.sh [shuffle_out.json] [parallel_out.json] [obs_out.json] [tenancy_out.json] [fleet_hot_out.json] [coldstart_out.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_shuffle.json}"
parallel_out="${2:-BENCH_parallel.json}"
obs_out="${3:-BENCH_obs.json}"
tenancy_out="${4:-BENCH_tenancy.json}"
fleet_hot_out="${5:-BENCH_fleet_hot.json}"
coldstart_out="${6:-BENCH_coldstart.json}"

echo "==> cargo bench -p splitserve-bench --bench shuffle_hot"
raw=$(cargo bench --offline -p splitserve-bench --bench shuffle_hot)
echo "==> cargo bench -p splitserve-bench --bench obs_overhead"
raw_obs=$(cargo bench --offline -p splitserve-bench --bench obs_overhead)
echo "==> cargo bench -p splitserve-bench --bench tenancy"
raw_tenancy=$(cargo bench --offline -p splitserve-bench --bench tenancy)
echo "==> cargo bench -p splitserve-bench --bench fleet_hot"
raw_fleet=$(cargo bench --offline -p splitserve-bench --bench fleet_hot)
echo "==> cargo bench -p splitserve-bench --bench coldstart"
raw_coldstart=$(cargo bench --offline -p splitserve-bench --bench coldstart)

# Keep only the JSON result lines; everything else is cargo/bench chatter.
printf '%s\n%s\n%s\n%s\n%s\n' "$raw" "$raw_obs" "$raw_tenancy" "$raw_fleet" "$raw_coldstart" | grep '^{' | python3 -c '
import json, sys

shuffle_out, parallel_out, obs_out, tenancy_out, fleet_hot_out, coldstart_out = sys.argv[1:7]
records = [json.loads(line) for line in sys.stdin]
assert records, "bench produced no JSON records"
for r in records:
    if "ratio" in r:
        # The obs enabled/disabled summary record: a ratio, not a timing.
        for key in ("bench", "ratio", "enabled_ns", "disabled_ns"):
            assert key in r, f"ratio record missing {key}: {r}"
        assert r["ratio"] > 0, f"non-positive ratio: {r}"
        continue
    for key in ("bench", "median_ns", "min_ns", "max_ns", "samples"):
        assert key in r, f"record missing {key}: {r}"
    assert r["median_ns"] > 0, f"non-positive median: {r}"
shuffle = [
    r for r in records
    if not r["bench"].startswith(
        ("parallel/", "obs/", "tenancy/", "fleet_hot/", "coldstart/")
    )
]
parallel = [r for r in records if r["bench"].startswith("parallel/")]
obs = [r for r in records if r["bench"].startswith("obs/")]
tenancy = [r for r in records if r["bench"].startswith("tenancy/")]
fleet_hot = [r for r in records if r["bench"].startswith("fleet_hot/")]
coldstart = [r for r in records if r["bench"].startswith("coldstart/")]
assert parallel, "bench produced no parallel/ records"
assert obs, "bench produced no obs/ records"
assert tenancy, "bench produced no tenancy/ records"
assert fleet_hot, "bench produced no fleet_hot/ records"
assert coldstart, "bench produced no coldstart/ records"
for path, recs in (
    (shuffle_out, shuffle),
    (parallel_out, parallel),
    (obs_out, obs),
    (tenancy_out, tenancy),
    (fleet_hot_out, fleet_hot),
    (coldstart_out, coldstart),
):
    with open(path, "w") as f:
        json.dump(recs, f, indent=2)
        f.write("\n")
' "$out" "$parallel_out" "$obs_out" "$tenancy_out" "$fleet_hot_out" "$coldstart_out"

echo "==> wrote $out, $parallel_out, $obs_out, $tenancy_out, $fleet_hot_out and $coldstart_out"
python3 -c '
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        records = json.load(f)
    for r in records:
        name = r["bench"]
        if "ratio" in r:
            ratio = r["ratio"]
            print(f"{name:44s} ratio  {ratio:10.4f}")
            continue
        med, n = r["median_ns"] / 1e6, r["samples"]
        print(f"{name:44s} median {med:10.3f} ms  ({n} samples)")
' "$out" "$parallel_out" "$obs_out" "$tenancy_out" "$fleet_hot_out" "$coldstart_out"
