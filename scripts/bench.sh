#!/usr/bin/env bash
# Shuffle data-plane benchmark harness: runs the `shuffle_hot` bench
# (map-side combine+encode, reduce-side decode+merge micro-benchmarks
# plus the four paper workloads end to end) and collects the one-line
# JSON records it prints into BENCH_shuffle.json at the repo root.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_shuffle.json}"

echo "==> cargo bench -p splitserve-bench --bench shuffle_hot"
raw=$(cargo bench --offline -p splitserve-bench --bench shuffle_hot)

# Keep only the JSON result lines; everything else is cargo/bench chatter.
printf '%s\n' "$raw" | grep '^{' | python3 -c '
import json, sys

records = [json.loads(line) for line in sys.stdin]
assert records, "bench produced no JSON records"
for r in records:
    for key in ("bench", "median_ns", "min_ns", "max_ns", "samples"):
        assert key in r, f"record missing {key}: {r}"
    assert r["median_ns"] > 0, f"non-positive median: {r}"
json.dump(records, sys.stdout, indent=2)
sys.stdout.write("\n")
' >"$out"

echo "==> wrote $out"
python3 -c '
import json, sys

with open(sys.argv[1]) as f:
    records = json.load(f)
for r in records:
    name, med, n = r["bench"], r["median_ns"] / 1e6, r["samples"]
    print(f"{name:40s} median {med:10.3f} ms  ({n} samples)")
' "$out"
