#!/usr/bin/env bash
# Hermetic-build verification: the whole workspace must build and test
# offline, and every dependency of every workspace package must be a
# path dependency (no registry, no git). Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> exporting and validating the Chrome trace"
cargo run --release --offline --example trace_timeline >/dev/null
python3 -c '
import json, sys

with open("target/trace_timeline.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace must contain events"
phases = {e["ph"] for e in events}
assert "X" in phases, "trace must contain complete (X) spans"
lanes = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
for lane in ("vm", "lambda", "segue"):
    assert lane in lanes, f"missing {lane} lane: {sorted(lanes)}"
print(f"OK: {len(events)} trace events across lanes {sorted(lanes)}")
'

echo "==> perf smoke: benches + BENCH_*.json shape"
scripts/bench.sh target/BENCH_shuffle.json target/BENCH_parallel.json \
    target/BENCH_obs.json target/BENCH_tenancy.json \
    target/BENCH_fleet_hot.json target/BENCH_coldstart.json >/dev/null
python3 -c '
import json

with open("target/BENCH_shuffle.json") as f:
    records = json.load(f)
names = {r["bench"] for r in records}
expected = {
    "shuffle/map_combine_encode_1m",
    "shuffle/map_encode_nocombine_500k",
    "shuffle/reduce_decode_merge_1m",
    "e2e/cloudsort_20k",
    "e2e/tpcds_q95_tiny",
    "e2e/pagerank_2k_2iter",
    "e2e/kmeans_5k",
}
missing = expected - names
assert not missing, f"missing benchmarks: {sorted(missing)}"
assert all(r["median_ns"] > 0 for r in records), "non-positive median"
print(f"OK: {len(records)} benchmarks, all medians positive")
'

echo "==> parallel data plane: worker-pool scaling medians"
python3 -c '
import json, os

with open("target/BENCH_parallel.json") as f:
    records = json.load(f)
med = {r["bench"]: r["median_ns"] for r in records}
expected = {f"parallel/pagerank_e2e_w{w}" for w in (1, 2, 4, 8)}
missing = expected - med.keys()
assert not missing, f"missing parallel benchmarks: {sorted(missing)}"
speedup = med["parallel/pagerank_e2e_w1"] / med["parallel/pagerank_e2e_w4"]
cores = os.cpu_count() or 1
if cores >= 4:
    assert speedup >= 2.5, (
        f"4-worker PageRank e2e speedup {speedup:.2f}x < 2.5x on a "
        f"{cores}-core host"
    )
    print(f"OK: 4-worker speedup {speedup:.2f}x (>= 2.5x, {cores} cores)")
else:
    # A wall-clock parallel speedup needs real cores; on a starved host
    # only record the ratio and bound the pool overhead instead.
    assert speedup >= 0.5, f"worker pool overhead is pathological: {speedup:.2f}x"
    print(
        f"SKIP speedup gate: host has {cores} core(s); "
        f"recorded w1/w4 ratio {speedup:.2f}x"
    )
'

echo "==> obs overhead: disabled-path record calls stay within budget"
python3 -c '
import json

with open("target/BENCH_obs.json") as f:
    records = json.load(f)
med = {r["bench"]: r.get("median_ns") for r in records}
expected = {
    f"obs/hot_path_disabled_1m_{k}"
    for k in ("counter_adds", "observes", "span_pairs",
              "digest_records", "rollup_records", "flight_records")
}
missing = expected - med.keys()
assert missing == set(), f"missing obs benchmarks: {sorted(missing)}"
# The documented budget: a disabled record call is one Option branch,
# single-digit ns. Gate at 15 ns/call to absorb shared-host noise.
for name in sorted(expected):
    per_call = med[name] / 1e6  # 1M calls per sample
    assert per_call <= 15.0, (
        f"{name}: {per_call:.2f} ns/call exceeds the 15 ns disabled budget"
    )
    print(f"OK: {name} {per_call:.2f} ns/call")
ratio = next(r for r in records if r["bench"] == "obs/enabled_over_disabled_ratio")
ratio_val = ratio["ratio"]
print(f"OK: enabled/disabled scenario walltime ratio {ratio_val:.4f}")
'

echo "==> tenancy control plane: admission throughput recorded"
python3 -c '
import json

with open("target/BENCH_tenancy.json") as f:
    records = json.load(f)
med = {r["bench"]: r["median_ns"] for r in records}
expected = {
    "tenancy/admission_50k_jobs_100_tenants",
    "tenancy/admission_50k_jobs_8_tenants",
    "tenancy/arrivals_100k_poisson",
}
missing = expected - med.keys()
assert not missing, f"missing tenancy benchmarks: {sorted(missing)}"
# 50k jobs through the 100-tenant controller: demand at least 20k
# admission decisions per second (measured ~230k/s; 10x headroom).
jobs_per_sec = 50_000 / (med["tenancy/admission_50k_jobs_100_tenants"] / 1e9)
assert jobs_per_sec >= 20_000, (
    f"admission throughput {jobs_per_sec:,.0f} jobs/s below the 20k floor"
)
print(f"OK: admission throughput {jobs_per_sec:,.0f} jobs/s at 100 tenants")
'

echo "==> fleet hot loop: enabled handle records + worker scaling"
python3 -c '
import json, os

with open("target/BENCH_fleet_hot.json") as f:
    records = json.load(f)
med = {r["bench"]: r["median_ns"] for r in records}
expected = {
    "fleet_hot/admission_10k_jobs_100_tenants",
    "fleet_hot/admission_50k_jobs_100_tenants",
    "fleet_hot/handle_record_counter_1m",
    "fleet_hot/handle_record_histogram_1m",
    "fleet_hot/handle_record_quantile_1m",
    "fleet_hot/fleet_e2e_w1",
    "fleet_hot/fleet_e2e_w4",
}
missing = expected - med.keys()
assert not missing, f"missing fleet_hot benchmarks: {sorted(missing)}"
# A pre-resolved handle on the *enabled* path is one OnceLock deref plus
# an atomic (counter) or a lock-free bucket bump (histogram): gate the
# counter at 50 ns/call (measured ~9 ns; 5x headroom for shared hosts)
# and record the heavier instruments.
per_call = med["fleet_hot/handle_record_counter_1m"] / 1e6  # 1M calls
assert per_call <= 50.0, (
    f"enabled counter handle {per_call:.2f} ns/call exceeds the 50 ns budget"
)
print(f"OK: handle_record_counter {per_call:.2f} ns/call (<= 50 ns)")
for name in ("handle_record_histogram_1m", "handle_record_quantile_1m"):
    per = med["fleet_hot/" + name] / 1e6
    print(f"OK: fleet_hot/{name} {per:.2f} ns/call")
speedup = med["fleet_hot/fleet_e2e_w1"] / med["fleet_hot/fleet_e2e_w4"]
cores = os.cpu_count() or 1
if cores >= 4:
    assert speedup >= 1.5, (
        f"4-worker fleet e2e speedup {speedup:.2f}x < 1.5x on a "
        f"{cores}-core host"
    )
    print(f"OK: fleet 4-worker speedup {speedup:.2f}x (>= 1.5x, {cores} cores)")
else:
    # Parallel wall-clock wins need real cores; on a starved host just
    # record the ratio and bound the pool overhead.
    assert speedup >= 0.25, f"worker pool overhead is pathological: {speedup:.2f}x"
    print(
        f"SKIP fleet speedup gate: host has {cores} core(s); "
        f"recorded w1/w4 ratio {speedup:.2f}x"
    )
'
python3 -c '
import json

with open("target/BENCH_coldstart.json") as f:
    records = json.load(f)
med = {r["bench"]: r["median_ns"] for r in records}
expected = {
    "coldstart/decision_fixed_1m",
    "coldstart/decision_pressure_1m",
    "coldstart/decision_hybrid_1m",
    "coldstart/churn_100k_fixed",
    "coldstart/churn_100k_pressure",
    "coldstart/churn_100k_hybrid",
}
missing = expected - med.keys()
assert not missing, f"missing coldstart benchmarks: {sorted(missing)}"
# A park decision sits on the release path of every Lambda the allocator
# drains: gate every policy at 100 ns/call (measured ~2 ns fixed/pressure,
# ~6 ns hybrid answering from its cached windows).
for name in ("decision_fixed_1m", "decision_pressure_1m", "decision_hybrid_1m"):
    per = med["coldstart/" + name] / 1e6  # 1M calls
    assert per <= 100.0, (
        f"coldstart/{name} {per:.2f} ns/call exceeds the 100 ns budget"
    )
    print(f"OK: coldstart/{name} {per:.2f} ns/call (<= 100 ns)")
for name in ("churn_100k_fixed", "churn_100k_pressure", "churn_100k_hybrid"):
    per = med["coldstart/" + name] / 1e5  # 100k invoke/release pairs
    print(f"OK: coldstart/{name} {per:.1f} ns/pair")
'

echo "==> fleet hot loop: no string-keyed ids on dispatch paths"
# The fast path interns executor ids (Copy u32 handles) and backs tenant
# ids with Arc<str>; a String-backed ExecutorId or a per-dispatch string
# clone would silently reintroduce the allocations this plane removed.
if grep -rn "ExecutorId(String)\|ExecutorId(pub String)" crates/; then
    echo "ERROR: string-backed ExecutorId reintroduced" >&2
    exit 1
fi
grep -q "pub struct ExecutorId(Interned)" crates/engine/src/executor.rs || {
    echo "ERROR: ExecutorId is no longer an interned Copy handle" >&2
    exit 1
}
if grep -n "\.id\.0\.clone()\|executor\.id\.clone()" \
    crates/engine/src/scheduler.rs crates/engine/src/executor.rs; then
    echo "ERROR: executor-id clone on the dispatch path" >&2
    exit 1
fi
grep -q "pub struct TenantId(Arc<str>)" crates/obs/src/ledger.rs || {
    echo "ERROR: TenantId is no longer Arc<str>-backed" >&2
    exit 1
}
echo "OK: executor ids interned, tenant ids Arc-backed, no dispatch clones"

echo "==> tenant fleet: bit-deterministic across runs and worker counts"
cargo run --release --offline --example tenant_fleet \
    target/tenant_fleet_run1.json >/dev/null
cargo run --release --offline --example tenant_fleet \
    target/tenant_fleet_run2.json >/dev/null
diff target/tenant_fleet_run1.json target/tenant_fleet_run2.json
SPLITSERVE_WORKERS=1 cargo run --release --offline --example tenant_fleet \
    target/tenant_fleet_w1.json > target/tenant_fleet_w1.out
SPLITSERVE_WORKERS=4 cargo run --release --offline --example tenant_fleet \
    target/tenant_fleet_w4.json > target/tenant_fleet_w4.out
# The artifact embeds the worker count it ran with; normalize that one
# field, then the two runs must be byte-identical.
sed 's/"workers":[0-9]*/"workers":N/' target/tenant_fleet_w1.json \
    > target/tenant_fleet_w1.norm.json
sed 's/"workers":[0-9]*/"workers":N/' target/tenant_fleet_w4.json \
    > target/tenant_fleet_w4.norm.json
diff target/tenant_fleet_w1.norm.json target/tenant_fleet_w4.norm.json
# Pin the artifact digests byte-for-byte (xxhash64 of the JSON, printed
# by the example). The hot-loop fast path claims byte-identity with the
# pre-optimization output; any drift must be a deliberate pin update.
grep -q "digest=8d89667a0715385b" target/tenant_fleet_w1.out || {
    echo "ERROR: tenant_fleet workers=1 digest drifted from 8d89667a0715385b:" >&2
    cat target/tenant_fleet_w1.out >&2
    exit 1
}
grep -q "digest=253741d9db7d2b6f" target/tenant_fleet_w4.out || {
    echo "ERROR: tenant_fleet workers=4 digest drifted from 253741d9db7d2b6f:" >&2
    cat target/tenant_fleet_w4.out >&2
    exit 1
}
echo "OK: tenant_fleet digests pinned (w1 8d89667a0715385b, w4 253741d9db7d2b6f)"
python3 <<'FLEET_CHECK'
import json

with open("target/tenant_fleet_run1.json") as f:
    fleet = json.load(f)
assert fleet["tenants"] >= 100, f"fleet below tenant floor: {fleet['tenants']}"
assert fleet["jobs"] >= 10_000, f"fleet below job floor: {fleet['jobs']}"
policies = fleet["policies"]
assert {p["policy"] for p in policies} == {"vm-only", "splitserve", "lambda-heavy"}
fingerprints = set()
for p in policies:
    assert p["jobs"] == fleet["jobs"], "every policy must run every job"
    assert 0.0 <= p["fleet_slo_attainment"] <= 1.0
    assert p["cost_usd"] > 0.0
    assert p["admission_events"] == 3 * p["jobs"], (
        "each job must log arrive/dispatch/complete"
    )
    fingerprints.add(p["fingerprint"])
    classes = {c["class"] for c in p["classes"]}
    assert classes == {"interactive", "standard", "batch"}, classes
    class_bill = 0.0
    for c in p["classes"]:
        assert c["jobs"] > 0, f"empty class {c['class']} under {p['policy']}"
        assert 0.0 <= c["slo_attainment"] <= 1.0
        assert c["attainment_curve"], "attainment curve must be non-empty"
        assert c["bill_curve"], "bill curve must be non-empty"
        assert abs(c["bill_curve"][-1]["cumulative_usd"] - c["bill_total_usd"]) <= 2e-6
        class_bill += c["bill_total_usd"]
    # Per-tenant accrual plus the final settlement must land exactly on
    # the cloud bill (6-decimal print grid; allow one ulp of it).
    assert abs(p["bill_total_usd"] - p["cost_usd"]) <= 2e-6, (
        f"{p['policy']}: ledger {p['bill_total_usd']} != bill {p['cost_usd']}"
    )
    assert abs(class_bill + p["bill_settle_usd"] - p["bill_total_usd"]) <= 2e-6
assert len(fingerprints) == 1, (
    f"policies computed different data: {sorted(fingerprints)}"
)
vm, ss = (next(p for p in policies if p["policy"] == k)
          for k in ("vm-only", "splitserve"))
assert ss["fleet_slo_attainment"] > vm["fleet_slo_attainment"], (
    "splitserve must beat vm-only on fleet SLO attainment"
)
print(f"OK: tenant_fleet {fleet['tenants']} tenants x {fleet['jobs']} jobs; "
      f"attainment vm-only {vm['fleet_slo_attainment']:.3f} "
      f"vs splitserve {ss['fleet_slo_attainment']:.3f}; bills settle")
FLEET_CHECK

echo "==> coldstart sweep: bit-deterministic, pinned, hybrid beats fixed"
cargo run --release --offline --example coldstart_sweep \
    target/coldstart_sweep_run1.json >/dev/null
cargo run --release --offline --example coldstart_sweep \
    target/coldstart_sweep_run2.json >/dev/null
diff target/coldstart_sweep_run1.json target/coldstart_sweep_run2.json
SPLITSERVE_WORKERS=1 cargo run --release --offline --example coldstart_sweep \
    target/coldstart_sweep_w1.json > target/coldstart_sweep_w1.out
SPLITSERVE_WORKERS=4 cargo run --release --offline --example coldstart_sweep \
    target/coldstart_sweep_w4.json > target/coldstart_sweep_w4.out
# The artifact embeds the worker count it ran with; normalize that one
# field, then the two runs must be byte-identical — the policy plane
# schedules no events and draws no RNG, so worker count cannot reach it.
sed 's/"workers":[0-9]*/"workers":N/' target/coldstart_sweep_w1.json \
    > target/coldstart_sweep_w1.norm.json
sed 's/"workers":[0-9]*/"workers":N/' target/coldstart_sweep_w4.json \
    > target/coldstart_sweep_w4.norm.json
diff target/coldstart_sweep_w1.norm.json target/coldstart_sweep_w4.norm.json
grep -q "digest=ec0839a991f0ee1d" target/coldstart_sweep_w1.out || {
    echo "ERROR: coldstart_sweep workers=1 digest drifted from ec0839a991f0ee1d:" >&2
    cat target/coldstart_sweep_w1.out >&2
    exit 1
}
grep -q "digest=681e16f146535f03" target/coldstart_sweep_w4.out || {
    echo "ERROR: coldstart_sweep workers=4 digest drifted from 681e16f146535f03:" >&2
    cat target/coldstart_sweep_w4.out >&2
    exit 1
}
echo "OK: coldstart_sweep digests pinned (w1 ec0839a991f0ee1d, w4 681e16f146535f03)"
python3 <<'COLDSTART_CHECK'
import json

with open("target/coldstart_sweep_run1.json") as f:
    sweep = json.load(f)
arms = {a["coldstart"]: a for a in sweep["arms"]}
assert set(arms) == {"forever", "fixed:15", "pressure:6144", "hybrid:15"}, set(arms)
micro = {m["coldstart"]: m for m in sweep["microtrace"]["policies"]}
assert set(micro) == set(arms), "microtrace must cover every arm"
for sel, a in arms.items():
    total = a["warm_starts"] + a["cold_starts"] + a["prewarm_starts"]
    assert total > 0, f"{sel}: the fleet never exercised the warm pool"
    assert 0.0 <= a["cold_fraction"] <= 1.0
    assert a["wasted_gb_seconds"] >= 0.0
    assert a["cost_usd"] > 0.0
# The recurrent microtrace is the controlled experiment: a gap beyond the
# fixed window, repeated until the histogram converges. The hybrid policy
# must do no worse than its own fixed fallback — and here, strictly
# better, with prewarms doing the work.
mf, mh = micro["fixed:15"], micro["hybrid:15"]
assert mh["cold_fraction"] <= mf["cold_fraction"], (
    f"hybrid {mh['cold_fraction']} worse than fixed {mf['cold_fraction']}"
)
assert mh["cold_starts"] < mf["cold_starts"], "hybrid never converged"
assert mh["prewarm_starts"] > 0, "hybrid converged without prewarming?"
# The infinite pool is the cold-start lower bound of the non-prewarming
# arms; the capped pool trades cold starts for bounded warm memory.
assert micro["forever"]["cold_starts"] <= mf["cold_starts"]
assert micro["forever"]["wasted_gb_seconds"] >= micro["pressure:6144"]["wasted_gb_seconds"], (
    "the cap must bound wasted warm memory below the infinite pool"
)
# On the fleet itself the same ordering holds for this recurrent-burst
# workload: policy choice reaches attainment-relevant start latencies.
assert arms["hybrid:15"]["cold_fraction"] <= arms["fixed:15"]["cold_fraction"], (
    "hybrid must not exceed fixed cold fraction on the recurrent fleet"
)
print(f"OK: coldstart_sweep micro cold-fractions "
      f"forever {micro['forever']['cold_fraction']:.3f} / "
      f"pressure {micro['pressure:6144']['cold_fraction']:.3f} / "
      f"hybrid {mh['cold_fraction']:.3f} <= fixed {mf['cold_fraction']:.3f}; "
      f"fleet hybrid {arms['hybrid:15']['cold_fraction']:.3f} "
      f"<= fixed {arms['fixed:15']['cold_fraction']:.3f}")
COLDSTART_CHECK

echo "==> slo dashboard: bit-deterministic across runs and worker counts"
cargo run --release --offline --example slo_dashboard \
    target/slo_dashboard_run1.json >/dev/null
cargo run --release --offline --example slo_dashboard \
    target/slo_dashboard_run2.json >/dev/null
diff target/slo_dashboard_run1.json target/slo_dashboard_run2.json
SPLITSERVE_WORKERS=1 cargo run --release --offline --example slo_dashboard \
    target/slo_dashboard_w1.json >/dev/null
SPLITSERVE_WORKERS=4 cargo run --release --offline --example slo_dashboard \
    target/slo_dashboard_w4.json >/dev/null
# The artifact embeds the worker count it ran with; normalize that one
# field, then the two runs must be byte-identical.
sed 's/"workers":[0-9]*/"workers":N/' target/slo_dashboard_w1.json \
    > target/slo_dashboard_w1.norm.json
sed 's/"workers":[0-9]*/"workers":N/' target/slo_dashboard_w4.json \
    > target/slo_dashboard_w4.norm.json
diff target/slo_dashboard_w1.norm.json target/slo_dashboard_w4.norm.json
python3 -c '
import json

with open("target/slo_dashboard_run1.json") as f:
    dash = json.load(f)
policies = dash["policies"]
assert {p["policy"] for p in policies} == {"vm-pool-only", "splitserve"}, policies
for p in policies:
    assert p["jobs"] > 0
    assert 0.0 <= p["slo_attainment"] <= 1.0
    assert p["cost_usd"] > 0.0
    assert p["attainment_curve"], "attainment curve must be non-empty"
    assert p["bill_curve"], "bill curve must be non-empty"
    q = p["latency_quantiles"]
    assert set(q) == {"p50", "p90", "p95", "p99"}, q
    assert q["p50"] <= q["p99"], f"quantiles out of order: {q}"
    cumulative = p["bill_curve"][-1]["cumulative_usd"]
    cost = p["cost_usd"]
    # Both sides are printed at 6 decimals; allow one ulp of that grid.
    assert abs(cumulative - cost) <= 2e-6, (
        f"bill ledger ({cumulative}) must settle to the cloud bill ({cost})"
    )
vm, ss = (next(p for p in policies if p["policy"] == k)
          for k in ("vm-pool-only", "splitserve"))
vm_att, ss_att = vm["slo_attainment"], ss["slo_attainment"]
assert ss_att > vm_att, (
    "splitserve must beat vm-pool-only on SLO attainment in the burst scenario"
)
print(f"OK: slo_dashboard attainment vm-pool-only {vm_att:.3f} "
      f"vs splitserve {ss_att:.3f}")
'

echo "==> chaos smoke: fault plane must be bit-deterministic across runs"
cargo run --release --offline --example chaos_smoke > target/chaos_smoke_run1.txt
cargo run --release --offline --example chaos_smoke > target/chaos_smoke_run2.txt
diff target/chaos_smoke_run1.txt target/chaos_smoke_run2.txt
grep -q "64/64 cases completed" target/chaos_smoke_run1.txt
# Pinned chaos digest: the fault plane's 64-case differential must not
# drift a bit under hot-loop optimizations.
grep -q "digest=26b7f0f21a671813" target/chaos_smoke_run1.txt || {
    echo "ERROR: chaos digest drifted from 26b7f0f21a671813:" >&2
    tail -1 target/chaos_smoke_run1.txt >&2
    exit 1
}
tail -1 target/chaos_smoke_run1.txt

echo "==> chaos smoke: digests identical at workers=1 and workers=4"
SPLITSERVE_WORKERS=1 cargo run --release --offline --example chaos_smoke \
    > target/chaos_smoke_w1.txt
SPLITSERVE_WORKERS=4 cargo run --release --offline --example chaos_smoke \
    > target/chaos_smoke_w4.txt
diff target/chaos_smoke_w1.txt target/chaos_smoke_w4.txt
tail -1 target/chaos_smoke_w4.txt

echo "==> checking for non-path dependencies"
cargo metadata --offline --format-version 1 |
    python3 -c '
import json, sys

meta = json.load(sys.stdin)
bad = [
    (pkg["name"], dep["name"])
    for pkg in meta["packages"]
    for dep in pkg["dependencies"]
    if dep.get("path") is None
]
if bad:
    for pkg, dep in bad:
        print(f"non-path dependency: {pkg} -> {dep}", file=sys.stderr)
    sys.exit(1)
count = len(meta["packages"])
print(f"OK: {count} packages, all dependencies are path dependencies")
'

echo "==> verify.sh passed"
