//! Umbrella crate: hosts the workspace-level integration tests and examples.
