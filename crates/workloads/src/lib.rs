//! # splitserve-workloads — the paper's four benchmark workloads
//!
//! Implementations of the workloads evaluated in §5, each a
//! [`DriverProgram`](splitserve::DriverProgram) runnable under any of the
//! eight scenarios:
//!
//! | Workload | Character | Paper figure |
//! |---|---|---|
//! | [`TpcdsLoad`] (Q5/Q16/Q94/Q95) | ETL queries, heavy shuffle | Fig. 5 |
//! | [`PageRank`] | CPU-intensive + large shuffle | Figs. 4, 6, 7 |
//! | [`KMeans`] | compute-heavy, small shuffle | Fig. 8 |
//! | [`SparkPi`] | pure compute, negligible shuffle | Fig. 9 |
//!
//! All inputs are synthetic, generated deterministically per partition on
//! the executors; results are cross-checked against sequential reference
//! implementations in the test suites.

#![warn(missing_docs)]

mod gen;
mod kmeans;
mod pagerank;
mod pi;
mod sort;
mod tpcds;

pub use gen::{partition_range, partition_rng, power_law};
pub use kmeans::{closest, dist2, KMeans};
pub use pagerank::{reference_pagerank, PageRank, DAMPING};
pub use pi::{estimate_pi, SparkPi};
pub use sort::CloudSort;
pub use tpcds::{
    CatalogSale, QueryAnswer, Return, StoreSale, TpcdsLoad, TpcdsQuery, TpcdsTables, WebSale,
};
