//! Deterministic data-generation helpers shared by the workloads.
//!
//! Every generator is a pure function of `(seed, partition)` so executors
//! can materialize partitions independently and recomputation after a
//! failure reproduces identical data — the property Spark's lineage-based
//! recovery relies on.

use splitserve_rt::rng::SmallRng;

/// A deterministic RNG for partition `part` of a dataset seeded `seed`.
///
/// Delegates to the runtime's canonical per-task seeding rule
/// ([`splitserve_rt::rng::derive_seed`], the SplitMix64 finalizer over
/// `(seed, part)`), so the stream is identical wherever the task body
/// runs — inline, on a worker thread, or recomputed after a failure.
pub fn partition_rng(seed: u64, part: usize) -> SmallRng {
    SmallRng::for_stream(seed, part as u64)
}

/// Splits `total` items into `parts` near-equal ranges; returns the
/// half-open range of partition `part`.
pub fn partition_range(total: u64, parts: usize, part: usize) -> (u64, u64) {
    assert!(part < parts, "partition {part} out of {parts}");
    let parts = parts as u64;
    let part = part as u64;
    let base = total / parts;
    let extra = total % parts;
    let start = part * base + part.min(extra);
    let len = base + u64::from(part < extra);
    (start, start + len)
}

/// A bounded power-law sample in `[1, max]` with tail exponent `alpha` —
/// used for web-graph out-degrees.
pub fn power_law(rng: &mut SmallRng, alpha: f64, max: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF of a truncated Pareto starting at 1.
    let x = (1.0 - u * (1.0 - (max as f64).powf(1.0 - alpha))).powf(1.0 / (1.0 - alpha));
    (x as u64).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_rng_is_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4).map(|_| partition_rng(1, 0).gen()).collect();
        assert!(a.iter().all(|x| *x == a[0]), "same (seed, part) same stream");
        let x: u64 = partition_rng(1, 0).gen();
        let y: u64 = partition_rng(1, 1).gen();
        let z: u64 = partition_rng(2, 0).gen();
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn partition_range_covers_exactly() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1usize, 3, 8] {
                let mut covered = 0;
                let mut next = 0;
                for p in 0..parts {
                    let (s, e) = partition_range(total, parts, p);
                    assert_eq!(s, next, "ranges contiguous");
                    covered += e - s;
                    next = e;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn power_law_bounded_and_skewed() {
        let mut rng = partition_rng(3, 0);
        let samples: Vec<u64> = (0..10_000).map(|_| power_law(&mut rng, 2.2, 100)).collect();
        assert!(samples.iter().all(|d| (1..=100).contains(d)));
        let ones = samples.iter().filter(|d| **d == 1).count();
        let big = samples.iter().filter(|d| **d > 50).count();
        assert!(ones > big * 10, "distribution must be head-heavy");
    }
}
