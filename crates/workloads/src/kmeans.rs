//! HiBench-style distributed K-means: compute-intensive with a small
//! shuffle (one partial centroid sum per map task per cluster) — the
//! paper's machine-learning workload (Figure 8).

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::DriverProgram;
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset, Engine};

use crate::gen::{partition_range, partition_rng};

/// Lloyd's algorithm over synthetic Gaussian clusters.
///
/// The driver is genuinely iterative, exactly like Spark MLlib: each
/// iteration is one job (map: assign points to the nearest centroid;
/// reduce: per-cluster vector sums), then the driver updates centroids and
/// checks convergence.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of points.
    pub points: u64,
    /// Feature dimensions (the paper uses 20).
    pub dims: usize,
    /// Clusters `k` (the paper uses 10).
    pub k: usize,
    /// Maximum iterations (the paper uses 5).
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement (the paper: 0.5).
    pub convergence: f64,
    /// Degree of parallelism.
    pub parallelism: usize,
    /// Data seed.
    pub seed: u64,
    /// Cap on points actually materialized (the rest are represented
    /// statistically: centroids are distribution means, so a large sample
    /// gives the same trajectory while the *virtual* CPU charge covers
    /// the full point count).
    pub materialize_cap: u64,
}

impl KMeans {
    /// The paper's configuration: 3·10⁶ points × 20 dims, k = 10, ≤5
    /// iterations, convergence 0.5 — at the given parallelism.
    pub fn paper_config(parallelism: usize, seed: u64) -> Self {
        KMeans {
            points: 3_000_000,
            dims: 20,
            k: 10,
            max_iterations: 5,
            convergence: 0.5,
            parallelism,
            seed,
            materialize_cap: 200_000,
        }
    }

    /// A smaller configuration for tests.
    pub fn small(points: u64, parallelism: usize, seed: u64) -> Self {
        KMeans {
            points,
            dims: 4,
            k: 3,
            max_iterations: 5,
            convergence: 0.01,
            parallelism,
            seed,
            materialize_cap: u64::MAX,
        }
    }

    /// True cluster center `c` used by the generator.
    fn true_center(&self, c: usize) -> Vec<f64> {
        (0..self.dims)
            .map(|d| ((c * 7 + d * 3) % 23) as f64 * 2.0)
            .collect()
    }

    /// Points actually generated (≤ [`KMeans::materialize_cap`]).
    pub fn materialized_points(&self) -> u64 {
        self.points.min(self.materialize_cap)
    }

    /// How many real points each materialized point represents.
    pub fn represent_factor(&self) -> f64 {
        self.points as f64 / self.materialized_points() as f64
    }

    /// The points dataset: a mixture of `k` Gaussians around
    /// [`KMeans::true_center`]s, generated per partition.
    pub fn points_dataset(&self) -> Dataset<Vec<f64>> {
        let total = self.materialized_points();
        let parts = self.parallelism;
        let dims = self.dims;
        let k = self.k;
        let seed = self.seed;
        let this = self.clone();
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(total, parts, p);
            let mut rng = partition_rng(seed, p);
            (start..end)
                .map(|i| {
                    let c = (i % k as u64) as usize;
                    let center = this.true_center(c);
                    (0..dims)
                        .map(|d| center[d] + rng.gen_range(-1.0..1.0))
                        .collect()
                })
                .collect()
        })
    }

    /// Initial centroids: true centers perturbed, so the algorithm has
    /// real work to do but converges within the budget.
    pub fn initial_centroids(&self) -> Vec<Vec<f64>> {
        (0..self.k)
            .map(|c| {
                self.true_center(c)
                    .into_iter()
                    .map(|x| x + 3.0)
                    .collect()
            })
            .collect()
    }

    /// Per-record cost of the assignment map: `k` distance computations of
    /// `dims` dimensions, at JVM-Spark-MLlib-era per-element throughput
    /// (boxing, iterator overhead — ~0.5 µs per distance term), scaled by
    /// how many real points each materialized point represents.
    fn assign_cost_secs(&self) -> f64 {
        (self.k * self.dims) as f64 * 5.0e-7 * self.represent_factor()
    }
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the centroid closest to `p`.
pub fn closest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Shared mutable iteration state threaded through the callback chain.
struct IterState {
    centroids: Vec<Vec<f64>>,
    iterations_run: usize,
    converged: bool,
}

impl KMeans {
    fn run_iteration(
        self: Rc<Self>,
        sim: &mut Sim,
        engine: Engine,
        state: Rc<RefCell<IterState>>,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) {
        let centroids = state.borrow().centroids.clone();
        let k = self.k;
        let dims = self.dims;
        let convergence = self.convergence;
        let max_iterations = self.max_iterations;
        let cost = self.assign_cost_secs();
        let reduce_parts = self.parallelism.min(k).max(1);
        // assign: point → (cluster, (sum_vec, count))
        let cents = centroids.clone();
        let plan = self
            .points_dataset()
            .map_with_cost(
                move |p| {
                    let c = closest(p, &cents) as u64;
                    (c, (p.clone(), 1u64))
                },
                Some(cost),
            )
            .reduce_by_key(reduce_parts, move |(s1, n1), (s2, n2)| {
                let sum = s1.iter().zip(s2.iter()).map(|(a, b)| a + b).collect();
                (sum, n1 + n2)
            });
        let this = Rc::clone(&self);
        let engine2 = engine.clone();
        engine.submit_job(sim, plan.node(), move |sim, out| {
            let sums = collect_partitions::<(u64, (Vec<f64>, u64))>(out.partitions);
            let mut movement = 0.0;
            {
                let mut st = state.borrow_mut();
                let mut new_centroids = st.centroids.clone();
                for (c, (sum, n)) in sums {
                    let c = c as usize;
                    if n > 0 && c < k {
                        let mean: Vec<f64> = sum.iter().map(|x| x / n as f64).collect();
                        movement += dist2(&mean, &st.centroids[c]).sqrt();
                        new_centroids[c] = mean;
                    }
                }
                debug_assert!(new_centroids.iter().all(|c| c.len() == dims));
                st.centroids = new_centroids;
                st.iterations_run += 1;
                st.converged = movement < convergence;
            }
            let iterations_run = state.borrow().iterations_run;
            let converged = state.borrow().converged;
            if converged || iterations_run >= max_iterations {
                done(sim);
            } else {
                this.run_iteration(sim, engine2, state, done);
            }
        });
    }

    /// Runs the full iterative algorithm, calling `finish` with the final
    /// centroids and iteration count.
    pub fn run(
        &self,
        sim: &mut Sim,
        engine: &Engine,
        finish: impl FnOnce(&mut Sim, Vec<Vec<f64>>, usize) + 'static,
    ) {
        let state = Rc::new(RefCell::new(IterState {
            centroids: self.initial_centroids(),
            iterations_run: 0,
            converged: false,
        }));
        let st = Rc::clone(&state);
        Rc::new(self.clone()).run_iteration(
            sim,
            engine.clone(),
            Rc::clone(&state),
            Box::new(move |sim| {
                let st = st.borrow();
                finish(sim, st.centroids.clone(), st.iterations_run);
            }),
        );
    }
}

impl DriverProgram for KMeans {
    fn name(&self) -> String {
        format!("K-means({} pts, k={})", self.points, self.k)
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let dims = self.dims;
        self.run(sim, engine, move |sim, centroids, iters| {
            assert!(iters >= 1);
            assert!(centroids.iter().all(|c| c.len() == dims));
            done(sim);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_des::Fabric;
    use splitserve_engine::{EngineConfig, ExecutorDesc};
    use splitserve_storage::LocalDiskStore;

    fn rig(execs: usize) -> (Sim, Engine) {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(1);
        for i in 0..execs {
            let nic = fabric.add_link(1e9, format!("n{i}"));
            let disk = fabric.add_link(1e9, format!("d{i}"));
            engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
        }
        (sim, engine)
    }

    #[test]
    fn converges_to_true_centers() {
        let w = KMeans::small(3_000, 4, 9);
        let (mut sim, engine) = rig(4);
        let result = Rc::new(RefCell::new(None));
        let r = Rc::clone(&result);
        w.run(&mut sim, &engine, move |_, centroids, iters| {
            *r.borrow_mut() = Some((centroids, iters));
        });
        sim.run();
        let (centroids, iters) = result.borrow_mut().take().expect("finished");
        assert!((1..=5).contains(&iters));
        // Each found centroid is close to some true center (noise ±1 on
        // each of 4 dims → expected offset well under 1).
        for c in &centroids {
            let best = (0..w.k)
                .map(|i| dist2(c, &w.true_center(i)))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.0, "centroid {c:?} too far: {best}");
        }
    }

    #[test]
    fn distance_helpers() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let cents = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(closest(&[1.0, 1.0], &cents), 0);
        assert_eq!(closest(&[9.0, 9.0], &cents), 1);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut w = KMeans::small(1_000, 2, 3);
        w.convergence = 0.0; // never converges
        let (mut sim, engine) = rig(2);
        let result = Rc::new(RefCell::new(None));
        let r = Rc::clone(&result);
        w.run(&mut sim, &engine, move |_, _, iters| {
            *r.borrow_mut() = Some(iters);
        });
        sim.run();
        assert_eq!(result.borrow_mut().take(), Some(5));
    }

    #[test]
    fn shuffle_volume_is_small() {
        // K-means shuffles only k partial sums per map task.
        let w = KMeans::small(10_000, 4, 2);
        let (mut sim, engine) = rig(4);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        w.run(&mut sim, &engine, move |_, _, _| *d.borrow_mut() = true);
        sim.run();
        assert!(*done.borrow());
        let total_shuffled: u64 = engine
            .completed_job_metrics()
            .iter()
            .map(|m| m.shuffle_bytes_written)
            .sum();
        // 10k points × 4 dims × 8 B ≈ 320 kB of data, but shuffle carries
        // only per-cluster sums: a few kB per iteration.
        assert!(
            total_shuffled < 50_000,
            "k-means shuffle should be tiny: {total_shuffled}"
        );
    }
}
