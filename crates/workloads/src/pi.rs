//! SparkPi: the paper's pure-compute, negligible-shuffle workload
//! (Figure 9). Approximates π by Monte-Carlo dart throwing.
//!
//! The paper throws 10¹⁰ darts; simulating every dart for real would take
//! minutes of host CPU per run, so each task throws a *statistical sample*
//! of real darts (up to [`SparkPi::real_darts_cap_per_task`]) and charges
//! virtual CPU time for the full count — the same estimator variance per
//! sampled dart, the paper's compute footprint on the virtual clock.


use splitserve::DriverProgram;
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset, Engine};

use crate::gen::partition_rng;

/// Monte-Carlo π estimation.
#[derive(Debug, Clone)]
pub struct SparkPi {
    /// Total darts across all tasks (the paper: 10¹⁰).
    pub darts: u64,
    /// Number of tasks (the paper parallelizes over the executor count).
    pub tasks: usize,
    /// Degree of parallelism the workload was sized for.
    pub parallelism: usize,
    /// Virtual seconds of CPU per dart on a reference core (~60 ns: JVM
    /// RNG + bounds check).
    pub secs_per_dart: f64,
    /// Cap on *real* darts thrown per task; the remainder is extrapolated.
    pub real_darts_cap_per_task: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SparkPi {
    /// The paper's configuration: 10¹⁰ darts on `parallelism` executors
    /// (tasks = 2× executors, Spark's usual default for SparkPi).
    pub fn paper_config(parallelism: usize, seed: u64) -> Self {
        SparkPi {
            darts: 10_000_000_000,
            tasks: parallelism * 2,
            parallelism,
            secs_per_dart: 6.0e-8,
            real_darts_cap_per_task: 200_000,
            seed,
        }
    }

    /// A small configuration for tests.
    pub fn small(darts: u64, tasks: usize, seed: u64) -> Self {
        SparkPi {
            darts,
            tasks,
            parallelism: tasks,
            secs_per_dart: 6.0e-8,
            real_darts_cap_per_task: u64::MAX, // throw everything for real
            seed,
        }
    }

    /// Builds the plan: one generated unit per task, a `map_partitions`
    /// that throws darts, and a single-partition reduce for the count.
    pub fn plan(&self) -> Dataset<(u64, f64)> {
        let tasks = self.tasks as u64;
        let darts_per_task = self.darts / tasks;
        let cap = self.real_darts_cap_per_task;
        let secs_per_dart = self.secs_per_dart;
        let seed = self.seed;
        Dataset::<u64>::generate(self.tasks, |p| vec![p as u64])
            .map_partitions(move |ctx, parts| {
                let task = parts[0] as usize;
                let mut rng = partition_rng(seed, task);
                let real = darts_per_task.min(cap);
                let mut inside = 0u64;
                for _ in 0..real {
                    let x: f64 = rng.gen_range(-1.0..1.0);
                    let y: f64 = rng.gen_range(-1.0..1.0);
                    if x * x + y * y <= 1.0 {
                        inside += 1;
                    }
                }
                // Charge the *full* dart count to the virtual clock.
                ctx.charge_secs(darts_per_task as f64 * secs_per_dart);
                let inside_est = inside as f64 / real as f64 * darts_per_task as f64;
                vec![(0u64, inside_est)]
            })
            .reduce_by_key(1, |a, b| a + b)
    }

    /// Total darts actually simulated (after per-task capping).
    pub fn effective_darts(&self) -> u64 {
        (self.darts / self.tasks as u64) * self.tasks as u64
    }
}

impl DriverProgram for SparkPi {
    fn name(&self) -> String {
        format!("SparkPi({:.0e} darts)", self.darts as f64)
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let darts = self.effective_darts();
        engine.submit_job(sim, self.plan().node(), move |sim, out| {
            let rows = collect_partitions::<(u64, f64)>(out.partitions);
            let inside: f64 = rows.iter().map(|(_, v)| v).sum();
            let pi = 4.0 * inside / darts as f64;
            assert!(
                (pi - std::f64::consts::PI).abs() < 0.05,
                "π estimate off: {pi}"
            );
            done(sim);
        });
    }
}

/// Runs the estimation and returns the π estimate (test/example helper).
pub fn estimate_pi(
    sim: &mut Sim,
    engine: &Engine,
    workload: &SparkPi,
    finish: impl FnOnce(&mut Sim, f64) + 'static,
) {
    let darts = workload.effective_darts();
    engine.submit_job(sim, workload.plan().node(), move |sim, out| {
        let rows = collect_partitions::<(u64, f64)>(out.partitions);
        let inside: f64 = rows.iter().map(|(_, v)| v).sum();
        finish(sim, 4.0 * inside / darts as f64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use splitserve_des::Fabric;
    use splitserve_engine::{EngineConfig, ExecutorDesc};
    use splitserve_storage::LocalDiskStore;

    fn rig(execs: usize) -> (Sim, Engine) {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(1);
        for i in 0..execs {
            let nic = fabric.add_link(1e9, format!("n{i}"));
            let disk = fabric.add_link(1e9, format!("d{i}"));
            engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
        }
        (sim, engine)
    }

    #[test]
    fn estimates_pi_accurately_with_real_darts() {
        let w = SparkPi::small(4_000_000, 8, 2);
        let (mut sim, engine) = rig(4);
        let result = Rc::new(RefCell::new(None));
        let r = Rc::clone(&result);
        estimate_pi(&mut sim, &engine, &w, move |_, pi| {
            *r.borrow_mut() = Some(pi);
        });
        sim.run();
        let pi = result.borrow_mut().take().expect("finished");
        assert!((pi - std::f64::consts::PI).abs() < 0.01, "π = {pi}");
    }

    #[test]
    fn sampled_mode_charges_full_virtual_time() {
        // Two identical workloads; one throws all darts for real, one
        // samples. Virtual times must match (same charge).
        let run = |cap: u64| {
            let mut w = SparkPi::small(1_000_000, 4, 3);
            w.real_darts_cap_per_task = cap;
            let (mut sim, engine) = rig(4);
            let done = Rc::new(RefCell::new(None));
            let d = Rc::clone(&done);
            estimate_pi(&mut sim, &engine, &w, move |sim, pi| {
                *d.borrow_mut() = Some((sim.now().as_secs_f64(), pi));
            });
            sim.run();
            let out = done.borrow_mut().take().expect("finished");
            out
        };
        let (t_full, pi_full) = run(u64::MAX);
        let (t_sampled, pi_sampled) = run(10_000);
        assert!((t_full - t_sampled).abs() < 1e-6, "{t_full} vs {t_sampled}");
        assert!((pi_full - std::f64::consts::PI).abs() < 0.02);
        assert!((pi_sampled - std::f64::consts::PI).abs() < 0.1);
    }

    #[test]
    fn shuffle_is_negligible() {
        let w = SparkPi::small(100_000, 8, 1);
        let (mut sim, engine) = rig(4);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        estimate_pi(&mut sim, &engine, &w, move |_, _| *d.borrow_mut() = true);
        sim.run();
        assert!(*done.borrow());
        let written: u64 = engine
            .completed_job_metrics()
            .iter()
            .map(|m| m.shuffle_bytes_written)
            .sum();
        assert!(written < 1_000, "SparkPi shuffles almost nothing: {written}");
    }
}
