//! A miniature TPC-DS: a star-schema generator and shape-faithful
//! implementations of the paper's four decision-support queries
//! (Q5, Q16, Q94, Q95 from Spark-SQL-Perf at scale factor 8, Figure 5).
//!
//! Each generated row *represents a block of real TPC-DS rows*: the scan
//! cost per row and the payload padding are calibrated so per-query CPU
//! seconds and shuffle bytes land in the regime of Spark SQL on the
//! paper's 32-core cluster, while the simulation only materializes
//! hundreds of thousands of rows. The queries do real filtering, joining
//! and aggregation; results are asserted non-degenerate.

use splitserve::DriverProgram;
use splitserve_codec::{impl_record, Decode, Encode};
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset, Engine};

use crate::gen::{partition_range, partition_rng};

/// One store-channel sale.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSale {
    /// Day-of-year style date key.
    pub sold_date: u32,
    /// Store surrogate key.
    pub store: u32,
    /// Extended sales price.
    pub price: f64,
    /// Net profit.
    pub profit: f64,
    /// Block payload standing in for the remaining TPC-DS columns.
    pub pad: Vec<u8>,
}

/// One web-channel sale.
#[derive(Debug, Clone, PartialEq)]
pub struct WebSale {
    /// Sale date key.
    pub sold_date: u32,
    /// Ship date key.
    pub ship_date: u32,
    /// Web-site surrogate key.
    pub site: u32,
    /// Order number (join key for Q94/Q95).
    pub order: u64,
    /// Warehouse the line shipped from.
    pub warehouse: u32,
    /// Customer ship-to address state.
    pub ship_state: u32,
    /// Extended shipping cost.
    pub ship_cost: f64,
    /// Net profit.
    pub profit: f64,
    /// Extended sales price.
    pub price: f64,
    /// Column-block payload.
    pub pad: Vec<u8>,
}

/// One catalog-channel sale.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSale {
    /// Ship date key.
    pub ship_date: u32,
    /// Call-center surrogate key.
    pub call_center: u32,
    /// Catalog page (Q5's grouping key).
    pub page: u32,
    /// Order number (Q16's join key).
    pub order: u64,
    /// Warehouse the line shipped from.
    pub warehouse: u32,
    /// Ship-to address state.
    pub ship_state: u32,
    /// Extended shipping cost.
    pub ship_cost: f64,
    /// Net profit.
    pub profit: f64,
    /// Extended sales price.
    pub price: f64,
    /// Column-block payload.
    pub pad: Vec<u8>,
}

/// A return row (any channel): order key plus amounts.
#[derive(Debug, Clone, PartialEq)]
pub struct Return {
    /// Returned order number.
    pub order: u64,
    /// Date key of the return.
    pub returned_date: u32,
    /// Channel-specific grouping key (store/site/page).
    pub group_key: u32,
    /// Return amount.
    pub amount: f64,
    /// Net loss.
    pub loss: f64,
}

impl_record!(StoreSale { sold_date, store, price, profit, pad });
impl_record!(WebSale {
    sold_date,
    ship_date,
    site,
    order,
    warehouse,
    ship_state,
    ship_cost,
    profit,
    price,
    pad,
});
impl_record!(CatalogSale {
    ship_date,
    call_center,
    page,
    order,
    warehouse,
    ship_state,
    ship_cost,
    profit,
    price,
    pad,
});
impl_record!(Return { order, returned_date, group_key, amount, loss });

/// Generator parameters for the mini star schema.
#[derive(Debug, Clone)]
pub struct TpcdsTables {
    /// Scale factor (the paper evaluates SF 8).
    pub sf: u32,
    /// Map-side partitions per table.
    pub input_partitions: usize,
    /// Payload bytes per sales row (stands in for the unmodeled columns
    /// of the block of real rows this row represents).
    pub pad_bytes: usize,
    /// CPU seconds charged per generated sales row at scan time
    /// (represents Spark SQL's per-row work over the represented block).
    pub row_cost_secs: f64,
    /// Generator seed.
    pub seed: u64,
}

impl TpcdsTables {
    /// Scale-factor-8 tables partitioned for a 32-core cluster.
    pub fn sf8(seed: u64) -> Self {
        TpcdsTables {
            sf: 8,
            input_partitions: 64,
            pad_bytes: 2_048,
            row_cost_secs: 3.0e-3,
            seed,
        }
    }

    /// A tiny configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        TpcdsTables {
            sf: 1,
            input_partitions: 4,
            pad_bytes: 16,
            row_cost_secs: 1.0e-6,
            seed,
        }
    }

    /// Rows in `store_sales`.
    pub fn store_sales_rows(&self) -> u64 {
        16_000 * u64::from(self.sf)
    }
    /// Rows in `web_sales`.
    pub fn web_sales_rows(&self) -> u64 {
        12_000 * u64::from(self.sf)
    }
    /// Rows in `catalog_sales`.
    pub fn catalog_sales_rows(&self) -> u64 {
        10_000 * u64::from(self.sf)
    }

    /// The `store_sales` fact table.
    pub fn store_sales(&self) -> Dataset<StoreSale> {
        let rows = self.store_sales_rows();
        let parts = self.input_partitions;
        let seed = self.seed;
        let pad = self.pad_bytes;
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(rows, parts, p);
            let mut rng = partition_rng(seed ^ 0x55, p);
            (start..end)
                .map(|_| StoreSale {
                    sold_date: rng.gen_range(0..365),
                    store: rng.gen_range(0..120),
                    price: rng.gen_range(1.0..500.0),
                    profit: rng.gen_range(-50.0..120.0),
                    pad: vec![0xa5; pad],
                })
                .collect()
        })
    }

    /// The `web_sales` fact table.
    pub fn web_sales(&self) -> Dataset<WebSale> {
        let rows = self.web_sales_rows();
        let parts = self.input_partitions;
        let seed = self.seed;
        let pad = self.pad_bytes;
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(rows, parts, p);
            let mut rng = partition_rng(seed ^ 0x77, p);
            (start..end)
                .map(|i| {
                    let order = i / 3; // ~3 line items per order
                    WebSale {
                        sold_date: rng.gen_range(0..365),
                        ship_date: rng.gen_range(0..365),
                        site: rng.gen_range(0..30),
                        order,
                        warehouse: rng.gen_range(0..15),
                        ship_state: rng.gen_range(0..50),
                        ship_cost: rng.gen_range(0.5..40.0),
                        profit: rng.gen_range(-30.0..90.0),
                        price: rng.gen_range(1.0..400.0),
                        pad: vec![0xb6; pad],
                    }
                })
                .collect()
        })
    }

    /// The `catalog_sales` fact table.
    pub fn catalog_sales(&self) -> Dataset<CatalogSale> {
        let rows = self.catalog_sales_rows();
        let parts = self.input_partitions;
        let seed = self.seed;
        let pad = self.pad_bytes;
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(rows, parts, p);
            let mut rng = partition_rng(seed ^ 0x99, p);
            (start..end)
                .map(|i| {
                    let order = i / 2;
                    CatalogSale {
                        ship_date: rng.gen_range(0..365),
                        call_center: rng.gen_range(0..8),
                        page: rng.gen_range(0..300),
                        order,
                        warehouse: rng.gen_range(0..15),
                        ship_state: rng.gen_range(0..50),
                        ship_cost: rng.gen_range(0.5..60.0),
                        profit: rng.gen_range(-40.0..100.0),
                        price: rng.gen_range(1.0..600.0),
                        pad: vec![0xc7; pad],
                    }
                })
                .collect()
        })
    }

    fn returns(&self, sales_rows: u64, tag: u64, orders_div: u64) -> Dataset<Return> {
        let rows = sales_rows / 12; // ~8% return rate
        let parts = self.input_partitions;
        let seed = self.seed;
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(rows, parts, p);
            let mut rng = partition_rng(seed ^ tag, p);
            (start..end)
                .map(|_| Return {
                    order: rng.gen_range(0..sales_rows / orders_div.max(1)),
                    returned_date: rng.gen_range(0..365),
                    group_key: rng.gen_range(0..300),
                    amount: rng.gen_range(1.0..300.0),
                    loss: rng.gen_range(0.0..80.0),
                })
                .collect()
        })
    }

    /// `store_returns`.
    pub fn store_returns(&self) -> Dataset<Return> {
        self.returns(self.store_sales_rows(), 0x111, 1)
    }
    /// `web_returns` (order-keyed, matching `web_sales.order`).
    pub fn web_returns(&self) -> Dataset<Return> {
        self.returns(self.web_sales_rows(), 0x222, 3)
    }
    /// `catalog_returns` (order-keyed, matching `catalog_sales.order`).
    pub fn catalog_returns(&self) -> Dataset<Return> {
        self.returns(self.catalog_sales_rows(), 0x333, 2)
    }
}

/// The four queries of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpcdsQuery {
    /// Channel rollup: sales/returns/profit per channel across all three
    /// fact tables — the widest scan, big aggregation.
    Q5,
    /// Catalog shipping report: orders shipped from ≥2 warehouses with no
    /// returns (EXISTS + NOT EXISTS anti-join pattern).
    Q16,
    /// Web shipping report: Q16's pattern on `web_sales`/`web_returns`.
    Q94,
    /// Like Q94 but the order *must* have a return — forces grouping the
    /// full fact table twice; the heaviest shuffler.
    Q95,
}

impl std::fmt::Display for TpcdsQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TpcdsQuery::Q5 => f.write_str("Q5"),
            TpcdsQuery::Q16 => f.write_str("Q16"),
            TpcdsQuery::Q94 => f.write_str("Q94"),
            TpcdsQuery::Q95 => f.write_str("Q95"),
        }
    }
}

/// Per-order tagged record for the shipping-report queries.
#[derive(Debug, Clone, PartialEq)]
enum OrderItem {
    /// A qualifying sale line: (warehouse, ship_cost, profit, payload).
    Sale(u32, f64, f64, Vec<u8>),
    /// The order has a return.
    Returned,
}

impl Encode for OrderItem {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OrderItem::Sale(w, sc, pr, pad) => {
                0u32.encode(out);
                w.encode(out);
                sc.encode(out);
                pr.encode(out);
                pad.encode(out);
            }
            OrderItem::Returned => 1u32.encode(out),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            OrderItem::Sale(w, sc, pr, pad) => {
                0u32.encoded_len()
                    + w.encoded_len()
                    + sc.encoded_len()
                    + pr.encoded_len()
                    + pad.encoded_len()
            }
            OrderItem::Returned => 1u32.encoded_len(),
        }
    }
}

impl Decode for OrderItem {
    fn decode(input: &mut &[u8]) -> splitserve_codec::Result<Self> {
        Ok(match u32::decode(input)? {
            0 => OrderItem::Sale(
                Decode::decode(input)?,
                Decode::decode(input)?,
                Decode::decode(input)?,
                Decode::decode(input)?,
            ),
            1 => OrderItem::Returned,
            i => return Err(splitserve_codec::Error::InvalidVariant(i.into())),
        })
    }
}

/// The final answer row of any of the four queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// Orders (Q16/94/95) or groups (Q5) contributing.
    pub count: u64,
    /// Summed ship cost (Q16/94/95) or sales (Q5).
    pub total_a: f64,
    /// Summed net profit/loss.
    pub total_b: f64,
}

impl_record!(QueryAnswer { count, total_a, total_b });

/// A runnable TPC-DS query workload.
#[derive(Debug, Clone)]
pub struct TpcdsLoad {
    /// Which query.
    pub query: TpcdsQuery,
    /// Table generator.
    pub tables: TpcdsTables,
    /// Reduce-side width (Spark SQL's `spark.sql.shuffle.partitions`,
    /// default 200 — the paper runs the suite with defaults).
    pub shuffle_partitions: usize,
    /// Cluster cores this run is sized for (reporting only).
    pub parallelism: usize,
}

impl TpcdsLoad {
    /// The paper's setup: SF 8 on 32 cores, 200 shuffle partitions.
    pub fn paper_config(query: TpcdsQuery, seed: u64) -> Self {
        TpcdsLoad {
            query,
            tables: TpcdsTables::sf8(seed),
            shuffle_partitions: 200,
            parallelism: 32,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(query: TpcdsQuery, seed: u64) -> Self {
        TpcdsLoad {
            query,
            tables: TpcdsTables::tiny(seed),
            shuffle_partitions: 8,
            parallelism: 4,
        }
    }

    /// Builds the query plan ending in a single [`QueryAnswer`] partition.
    pub fn plan(&self) -> Dataset<(u64, QueryAnswer)> {
        match self.query {
            TpcdsQuery::Q5 => self.q5(),
            TpcdsQuery::Q16 => self.shipping_report(Channel::Catalog),
            TpcdsQuery::Q94 => self.shipping_report(Channel::WebNoReturns),
            TpcdsQuery::Q95 => self.shipping_report(Channel::WebWithReturns),
        }
    }

    /// Q5: per-channel, per-group sales/returns/profit rollup.
    fn q5(&self) -> Dataset<(u64, QueryAnswer)> {
        let cost = self.tables.row_cost_secs;
        let sp = self.shuffle_partitions;
        // channel id 1/2/3 = store/web/catalog; group key offsets keep the
        // channels' groups distinct.
        let store = self.tables.store_sales().map_with_cost(
            |s| {
                (
                    1_000_000 + s.store as u64,
                    (1u64, s.price, s.profit, s.pad.clone()),
                )
            },
            Some(cost),
        );
        let web = self.tables.web_sales().map_with_cost(
            |s| {
                (
                    2_000_000 + s.site as u64,
                    (1u64, s.price, s.profit, s.pad.clone()),
                )
            },
            Some(cost),
        );
        let catalog = self.tables.catalog_sales().map_with_cost(
            |s| {
                (
                    3_000_000 + s.page as u64,
                    (1u64, s.price, s.profit, s.pad.clone()),
                )
            },
            Some(cost),
        );
        let returns = self
            .tables
            .store_returns()
            .union(&self.tables.web_returns())
            .union(&self.tables.catalog_returns())
            .map(|r| {
                (
                    1_000_000 + r.group_key as u64,
                    (0u64, -r.amount, -r.loss, Vec::new()),
                )
            });
        let per_group = store
            .union(&web)
            .union(&catalog)
            .union(&returns)
            .reduce_by_key(sp, |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, Vec::new()));
        // Roll the per-group rows up to one channel-level answer.
        per_group
            .map(|(k, (n, sales, profit, _))| {
                let channel = k / 1_000_000;
                (
                    channel,
                    QueryAnswer {
                        count: *n,
                        total_a: *sales,
                        total_b: *profit,
                    },
                )
            })
            .reduce_by_key(1, |a, b| QueryAnswer {
                count: a.count + b.count,
                total_a: a.total_a + b.total_a,
                total_b: a.total_b + b.total_b,
            })
    }

    /// The Q16/Q94/Q95 template: group per order, apply the EXISTS /
    /// NOT-EXISTS predicates, aggregate.
    fn shipping_report(&self, channel: Channel) -> Dataset<(u64, QueryAnswer)> {
        let cost = self.tables.row_cost_secs;
        let sp = self.shuffle_partitions;
        // The scan cost covers *every* row (Spark SQL reads the whole
        // table); only survivors of the date/state predicates carry their
        // payload into the shuffle.
        let sales: Dataset<(u64, OrderItem)> = match channel {
            Channel::Catalog => self.tables.catalog_sales().map_partitions(move |ctx, rows| {
                ctx.charge_secs(rows.len() as f64 * cost);
                rows.iter()
                    .filter(|s| s.ship_date < 60 && s.ship_state < 10)
                    .map(|s| {
                        (
                            s.order,
                            OrderItem::Sale(s.warehouse, s.ship_cost, s.profit, s.pad.clone()),
                        )
                    })
                    .collect()
            }),
            Channel::WebNoReturns | Channel::WebWithReturns => {
                self.tables.web_sales().map_partitions(move |ctx, rows| {
                    ctx.charge_secs(rows.len() as f64 * cost);
                    rows.iter()
                        .filter(|s| s.ship_date < 60 && s.ship_state < 10)
                        .map(|s| {
                            (
                                s.order,
                                OrderItem::Sale(s.warehouse, s.ship_cost, s.profit, s.pad.clone()),
                            )
                        })
                        .collect()
                })
            }
        };
        let returns: Dataset<(u64, OrderItem)> = match channel {
            Channel::Catalog => self.tables.catalog_returns(),
            Channel::WebNoReturns | Channel::WebWithReturns => self.tables.web_returns(),
        }
        .map(|r| (r.order, OrderItem::Returned));
        let want_returned = matches!(channel, Channel::WebWithReturns);

        sales
            .union(&returns)
            .group_by_key(sp)
            .flat_map(move |(_, items)| {
                let returned = items.iter().any(|i| matches!(i, OrderItem::Returned));
                let mut warehouses = std::collections::BTreeSet::new();
                let mut ship = 0.0;
                let mut profit = 0.0;
                let mut lines = 0u64;
                for item in items {
                    if let OrderItem::Sale(w, sc, pr, _) = item {
                        warehouses.insert(*w);
                        ship += sc;
                        profit += pr;
                        lines += 1;
                    }
                }
                // EXISTS: shipped from more than one warehouse.
                // Q16/Q94: NOT EXISTS returns; Q95: EXISTS returns.
                if lines > 0 && warehouses.len() >= 2 && (returned == want_returned) {
                    vec![(
                        0u64,
                        QueryAnswer {
                            count: 1,
                            total_a: ship,
                            total_b: profit,
                        },
                    )]
                } else {
                    Vec::new()
                }
            })
            .reduce_by_key(1, |a, b| QueryAnswer {
                count: a.count + b.count,
                total_a: a.total_a + b.total_a,
                total_b: a.total_b + b.total_b,
            })
    }
}

#[derive(Debug, Clone, Copy)]
enum Channel {
    Catalog,
    WebNoReturns,
    WebWithReturns,
}

impl DriverProgram for TpcdsLoad {
    fn name(&self) -> String {
        format!("TPC-DS {} (SF {})", self.query, self.tables.sf)
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let query = self.query;
        engine.submit_job(sim, self.plan().node(), move |sim, out| {
            let rows = collect_partitions::<(u64, QueryAnswer)>(out.partitions);
            match query {
                TpcdsQuery::Q5 => {
                    assert_eq!(rows.len(), 3, "Q5 reports all three channels");
                    assert!(rows.iter().all(|(_, a)| a.count > 0));
                }
                _ => {
                    assert!(rows.len() <= 1, "shipping reports are one row");
                }
            }
            done(sim);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_des::Fabric;
    use splitserve_engine::{EngineConfig, ExecutorDesc};
    use splitserve_storage::LocalDiskStore;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_query(load: &TpcdsLoad) -> Vec<(u64, QueryAnswer)> {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(2);
        for i in 0..4 {
            let nic = fabric.add_link(1e9, format!("n{i}"));
            let disk = fabric.add_link(1e9, format!("d{i}"));
            engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
        }
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        engine.submit_job(&mut sim, load.plan().node(), move |_, r| {
            *o.borrow_mut() = Some(collect_partitions::<(u64, QueryAnswer)>(r.partitions));
        });
        sim.run();
        let rows = out.borrow_mut().take().expect("query completed");
        rows
    }

    #[test]
    fn q5_covers_three_channels() {
        let mut rows = run_query(&TpcdsLoad::tiny(TpcdsQuery::Q5, 3));
        rows.sort_by_key(|(c, _)| *c);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[2].0, 3);
        let t = TpcdsTables::tiny(3);
        let total: u64 = rows.iter().map(|(_, a)| a.count).sum();
        assert_eq!(
            total,
            t.store_sales_rows() + t.web_sales_rows() + t.catalog_sales_rows(),
            "every sales row lands in exactly one channel group"
        );
    }

    #[test]
    fn q16_counts_multi_warehouse_unreturned_orders() {
        let rows = run_query(&TpcdsLoad::tiny(TpcdsQuery::Q16, 5));
        assert_eq!(rows.len(), 1);
        let a = rows[0].1;
        assert!(a.count > 0, "some qualifying orders exist");
        assert!(a.total_a > 0.0, "ship cost accumulates");
        // Cross-check against a sequential evaluation of the predicate.
        let load = TpcdsLoad::tiny(TpcdsQuery::Q16, 5);
        let expected = sequential_shipping(&load, false, true);
        assert_eq!(a.count, expected);
    }

    #[test]
    fn q94_and_q95_partition_the_multi_warehouse_orders() {
        // Q94 (no returns) and Q95 (with returns) counts must sum to the
        // total multi-warehouse filtered web orders.
        let first_count = |rows: Vec<(u64, QueryAnswer)>| {
            rows.first().map(|(_, a)| a.count).unwrap_or(0)
        };
        let q94 = first_count(run_query(&TpcdsLoad::tiny(TpcdsQuery::Q94, 7)));
        let q95 = first_count(run_query(&TpcdsLoad::tiny(TpcdsQuery::Q95, 7)));
        assert!(q94 > 0);
        let load = TpcdsLoad::tiny(TpcdsQuery::Q94, 7);
        let no_ret = sequential_shipping(&load, false, false);
        let with_ret = sequential_shipping(&load, true, false);
        assert_eq!(q94, no_ret);
        assert_eq!(q95, with_ret);
    }

    /// Sequential reference for the shipping-report predicate, over the
    /// catalog tables (Q16) or the web tables (Q94/Q95).
    fn sequential_shipping(load: &TpcdsLoad, want_returned: bool, catalog: bool) -> u64 {
        use std::collections::{BTreeMap, BTreeSet};
        let mut orders: BTreeMap<u64, (BTreeSet<u32>, bool)> = BTreeMap::new();
        if catalog {
            let sales = load.tables.catalog_sales();
            let node = sales.node();
            for p in 0..node.num_partitions() {
                let mut ctx = splitserve_engine::TaskContext::empty(Default::default());
                let data = node.compute(&mut ctx, p);
                for s in data.downcast_ref::<Vec<CatalogSale>>().expect("catalog sales") {
                    if s.ship_date < 60 && s.ship_state < 10 {
                        orders.entry(s.order).or_default().0.insert(s.warehouse);
                    }
                }
            }
        } else {
            let web = load.tables.web_sales();
            let node = web.node();
            for p in 0..node.num_partitions() {
                let mut ctx = splitserve_engine::TaskContext::empty(Default::default());
                let data = node.compute(&mut ctx, p);
                for s in data.downcast_ref::<Vec<WebSale>>().expect("web sales") {
                    if s.ship_date < 60 && s.ship_state < 10 {
                        orders.entry(s.order).or_default().0.insert(s.warehouse);
                    }
                }
            }
        }
        let rets = if catalog {
            load.tables.catalog_returns()
        } else {
            load.tables.web_returns()
        };
        let rnode = rets.node();
        for p in 0..rnode.num_partitions() {
            let mut ctx = splitserve_engine::TaskContext::empty(Default::default());
            let data = rnode.compute(&mut ctx, p);
            for r in data.downcast_ref::<Vec<Return>>().expect("returns") {
                if let Some(o) = orders.get_mut(&r.order) {
                    o.1 = true;
                }
            }
        }
        orders
            .values()
            .filter(|(w, ret)| w.len() >= 2 && *ret == want_returned)
            .count() as u64
    }

    #[test]
    fn q95_shuffles_more_than_q16() {
        // Q95 groups the (larger) web_sales table and must move more
        // bytes than Q16 over catalog_sales at the same scale.
        let shuffle_bytes = |q| {
            let fabric = Fabric::new();
            let store = Rc::new(LocalDiskStore::new(fabric.clone()));
            let engine = Engine::new(EngineConfig::default(), store);
            let mut sim = Sim::new(2);
            for i in 0..4 {
                let nic = fabric.add_link(1e9, format!("n{i}"));
                let disk = fabric.add_link(1e9, format!("d{i}"));
                engine.register_executor(
                    &mut sim,
                    ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192),
                );
            }
            let load = TpcdsLoad::tiny(q, 11);
            let done = Rc::new(RefCell::new(false));
            let d = Rc::clone(&done);
            load.submit(&mut sim, &engine, Box::new(move |_| *d.borrow_mut() = true));
            sim.run();
            assert!(*done.borrow());
            engine
                .completed_job_metrics()
                .iter()
                .map(|m| m.shuffle_bytes_written)
                .sum::<u64>()
        };
        let q16 = shuffle_bytes(TpcdsQuery::Q16);
        let q95 = shuffle_bytes(TpcdsQuery::Q95);
        assert!(q95 > q16, "Q95 {q95} must out-shuffle Q16 {q16}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = run_query(&TpcdsLoad::tiny(TpcdsQuery::Q5, 9));
        let b = run_query(&TpcdsLoad::tiny(TpcdsQuery::Q5, 9));
        assert_eq!(a, b);
    }
}
