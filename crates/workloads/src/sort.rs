//! A CloudSort-style distributed sort: the workload class the paper (§2)
//! uses to illustrate why S3-based shuffles get expensive — "workloads
//! like CloudSort, which can trigger on the order of 10¹⁰ shuffle writes
//! in a single job execution, can incur enormous total S3 related costs".
//!
//! Built on the engine's range-partitioned [`sort_by_key`]; the result is
//! verified globally ordered.
//!
//! [`sort_by_key`]: splitserve_engine::Dataset::sort_by_key

use splitserve::DriverProgram;
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, sample_sort_bounds, Dataset, Engine};

use crate::gen::{partition_range, partition_rng};

/// Sort `records` random key/payload pairs.
#[derive(Debug, Clone)]
pub struct CloudSort {
    /// Records to sort.
    pub records: u64,
    /// Payload bytes per record (CloudSort uses 100-byte records: 10-byte
    /// key + 90-byte value).
    pub payload_bytes: usize,
    /// Map-side partitions; also the reduce-side width.
    pub parallelism: usize,
    /// Data seed.
    pub seed: u64,
}

impl CloudSort {
    /// A sort of `records` 100-byte-class records at the given width.
    pub fn new(records: u64, parallelism: usize, seed: u64) -> Self {
        CloudSort {
            records,
            payload_bytes: 90,
            parallelism,
            seed,
        }
    }

    fn key_for(seed: u64, part: usize, i: u64) -> u64 {
        // A cheap splitmix-style hash: uniform keys, reproducible without
        // regenerating payloads.
        let mut z = seed
            .wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add((part as u64) << 17);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^ (z >> 31)
    }

    /// The input dataset: uniformly random keys with fixed-size payloads.
    pub fn input(&self) -> Dataset<(u64, Vec<u8>)> {
        let total = self.records;
        let parts = self.parallelism;
        let payload = self.payload_bytes;
        let seed = self.seed;
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(total, parts, p);
            let mut rng = partition_rng(seed, p);
            (start..end)
                .map(|i| {
                    let key = Self::key_for(seed, p, i);
                    let mut v = vec![0u8; payload];
                    rng.fill(v.as_mut_slice());
                    (key, v)
                })
                .collect()
        })
    }

    /// Range bounds from a deterministic 1-in-64 key sample.
    pub fn bounds(&self) -> Vec<u64> {
        let parts = self.parallelism;
        let mut sample = Vec::new();
        for p in 0..parts {
            let (start, end) = partition_range(self.records, parts, p);
            for i in (start..end).step_by(64) {
                sample.push(Self::key_for(self.seed, p, i));
            }
        }
        sample_sort_bounds(sample, self.parallelism)
    }

    /// The full sort plan.
    pub fn plan(&self) -> Dataset<(u64, Vec<u8>)> {
        self.input().sort_by_key(self.bounds())
    }
}

impl DriverProgram for CloudSort {
    fn name(&self) -> String {
        format!("CloudSort({} x {}B)", self.records, self.payload_bytes + 10)
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let expected = self.records;
        engine.submit_job(sim, self.plan().node(), move |sim, out| {
            // The result stage's partitions arrive in partition order;
            // concatenated they must be globally sorted and complete.
            let rows = collect_partitions::<(u64, Vec<u8>)>(out.partitions);
            assert_eq!(rows.len() as u64, expected, "no records lost");
            assert!(
                rows.windows(2).all(|w| w[0].0 <= w[1].0),
                "output must be globally sorted"
            );
            done(sim);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_des::Fabric;
    use splitserve_engine::{EngineConfig, ExecutorDesc};
    use splitserve_storage::LocalDiskStore;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn rig(execs: usize) -> (Sim, Engine) {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(1);
        for i in 0..execs {
            let nic = fabric.add_link(1e9, format!("n{i}"));
            let disk = fabric.add_link(1e9, format!("d{i}"));
            engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
        }
        (sim, engine)
    }

    #[test]
    fn sorts_globally_and_loses_nothing() {
        let w = CloudSort::new(20_000, 8, 5);
        let (mut sim, engine) = rig(4);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        w.submit(&mut sim, &engine, Box::new(move |_| *d.borrow_mut() = true));
        sim.run();
        assert!(*done.borrow());
    }

    #[test]
    fn bounds_balance_partitions_roughly() {
        let w = CloudSort::new(50_000, 10, 9);
        let bounds = w.bounds();
        assert_eq!(bounds.len(), 9);
        // Uniform keys + equi-spaced sample bounds ⇒ partitions within 3x
        // of each other.
        let (mut sim, engine) = rig(4);
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        engine.submit_job(&mut sim, w.plan().node(), move |_, r| {
            let sizes: Vec<usize> = r
                .partitions
                .iter()
                .map(|p| {
                    p.downcast_ref::<Vec<(u64, Vec<u8>)>>()
                        .expect("sorted rows")
                        .len()
                })
                .collect();
            *o.borrow_mut() = Some(sizes);
        });
        sim.run();
        let sizes = out.borrow_mut().take().expect("completed");
        let max = *sizes.iter().max().expect("nonempty");
        let min = *sizes.iter().min().expect("nonempty");
        assert!(
            max < 3 * min.max(1),
            "partition skew too high: {sizes:?}"
        );
    }

    #[test]
    fn sort_is_shuffle_dominated() {
        let w = CloudSort::new(10_000, 4, 2);
        let (mut sim, engine) = rig(4);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        w.submit(&mut sim, &engine, Box::new(move |_| *d.borrow_mut() = true));
        sim.run();
        assert!(*done.borrow());
        let m = &engine.completed_job_metrics()[0];
        // Every record crosses the wire once: bytes ≈ records × ~100 B.
        assert!(
            m.shuffle_bytes_written > 10_000 * 90,
            "sort must shuffle its whole input: {}",
            m.shuffle_bytes_written
        );
    }
}
