//! HiBench-style WebSearch (PageRank): CPU-intensive iterations with heavy
//! shuffle I/O — the paper's large-shuffle workload (Figures 4, 6, 7).


use splitserve::DriverProgram;
use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Dataset, Engine};

use crate::gen::{partition_range, partition_rng, power_law};

/// PageRank over a synthetic power-law web graph.
///
/// One engine job runs all iterations (as Spark's example PageRank does:
/// the lineage grows across the loop and a single action at the end
/// triggers execution). Each iteration contributes a `links ⋈ ranks` join
/// (two shuffles) plus a `reduceByKey` (one shuffle), so `i` iterations
/// produce `3·i + 1` stages.
///
/// # Examples
///
/// ```
/// use splitserve_workloads::PageRank;
///
/// let pr = PageRank::new(25_000, 2, 8, 1);
/// assert_eq!(pr.expected_stages(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Number of pages.
    pub pages: u64,
    /// PageRank iterations.
    pub iterations: usize,
    /// Degree of parallelism (partitions per stage).
    pub parallelism: usize,
    /// Graph seed.
    pub seed: u64,
    /// Per-contribution CPU seconds charged in the contribution stage —
    /// calibrated to JVM Spark's per-record overhead so figure-scale runs
    /// land at the paper's job durations.
    pub contrib_cost_secs: f64,
    /// In-link skew exponent: destinations are drawn as
    /// `pages · u^dst_skew`, so larger values concentrate in-links on few
    /// hot pages — the straggler-inducing skew of real web graphs that
    /// caps scaling at high parallelism (the paper's Fig. 4 U-curve and
    /// its "straggler problems common to BSP workloads").
    pub dst_skew: f64,
}

/// The damping factor used by the classic formulation.
pub const DAMPING: f64 = 0.85;

impl PageRank {
    /// A PageRank workload over `pages` pages.
    pub fn new(pages: u64, iterations: usize, parallelism: usize, seed: u64) -> Self {
        PageRank {
            pages,
            iterations,
            parallelism,
            seed,
            contrib_cost_secs: 2.0e-5,
            dst_skew: 3.0,
        }
    }

    /// Overrides the per-contribution CPU cost.
    pub fn with_contrib_cost(mut self, secs: f64) -> Self {
        self.contrib_cost_secs = secs;
        self
    }

    /// Overrides the in-link skew exponent (1.0 = uniform destinations).
    pub fn with_dst_skew(mut self, skew: f64) -> Self {
        self.dst_skew = skew;
        self
    }

    /// Stage count of the single multi-iteration job.
    pub fn expected_stages(&self) -> usize {
        3 * self.iterations + 1
    }

    /// The adjacency dataset: `(page, out_links)` with power-law
    /// out-degrees and uniform destinations.
    pub fn links(&self) -> Dataset<(u64, Vec<u64>)> {
        let pages = self.pages;
        let seed = self.seed;
        let parts = self.parallelism;
        let skew = self.dst_skew;
        Dataset::generate(parts, move |p| {
            let (start, end) = partition_range(pages, parts, p);
            let mut rng = partition_rng(seed, p);
            (start..end)
                .map(|page| {
                    let degree = power_law(&mut rng, 2.1, 40);
                    let dsts = (0..degree)
                        .map(|_| {
                            let u: f64 = rng.gen_range(0.0..1.0);
                            ((pages as f64 * u.powf(skew)) as u64).min(pages - 1)
                        })
                        .collect();
                    (page, dsts)
                })
                .collect()
        })
    }

    /// Builds the full multi-iteration lineage ending in the final ranks.
    pub fn plan(&self) -> Dataset<(u64, f64)> {
        let p = self.parallelism;
        let links = self.links();
        let pages = self.pages;
        let mut ranks: Dataset<(u64, f64)> = {
            let parts = p;
            Dataset::generate(parts, move |part| {
                let (start, end) = partition_range(pages, parts, part);
                (start..end).map(|pg| (pg, 1.0f64)).collect()
            })
        };
        let contrib_cost = self.contrib_cost_secs;
        for _ in 0..self.iterations {
            let contribs = links
                .join(&ranks, p)
                .flat_map(|(_, (dsts, rank))| {
                    let share = rank / dsts.len() as f64;
                    dsts.iter().map(|d| (*d, share)).collect()
                })
                .map_with_cost(|kv| *kv, Some(contrib_cost));
            ranks = contribs
                .reduce_by_key(p, |a, b| a + b)
                .map_values(|sum| 1.0 - DAMPING + DAMPING * sum);
        }
        ranks
    }
}

impl DriverProgram for PageRank {
    fn name(&self) -> String {
        format!("PageRank({} pages, {} iters)", self.pages, self.iterations)
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let plan = self.plan();
        let pages = self.pages;
        engine.submit_job(sim, plan.node(), move |sim, out| {
            // Sanity-check the real computation before declaring success.
            let ranks = collect_partitions::<(u64, f64)>(out.partitions);
            assert!(!ranks.is_empty(), "PageRank produced no ranks");
            assert!(
                ranks.iter().all(|(pg, r)| *pg < pages && r.is_finite() && *r > 0.0),
                "invalid rank values"
            );
            done(sim);
        });
    }
}

/// Reference single-threaded PageRank for cross-checking the distributed
/// result in tests.
pub fn reference_pagerank(workload: &PageRank) -> Vec<(u64, f64)> {
    // Regenerate the same graph.
    let links_ds = workload.links();
    let node = links_ds.node();
    let mut adjacency: Vec<(u64, Vec<u64>)> = Vec::new();
    for part in 0..node.num_partitions() {
        let mut ctx = splitserve_engine::TaskContext::empty(Default::default());
        let data = node.compute(&mut ctx, part);
        adjacency.extend(
            data.downcast_ref::<Vec<(u64, Vec<u64>)>>()
                .expect("links type")
                .iter()
                .cloned(),
        );
    }
    let mut ranks: std::collections::BTreeMap<u64, f64> =
        (0..workload.pages).map(|p| (p, 1.0)).collect();
    for _ in 0..workload.iterations {
        let mut contrib: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for (src, dsts) in &adjacency {
            // Pages with no in-links drop out of `ranks` after the first
            // iteration, exactly as the distributed join drops them.
            let Some(rank) = ranks.get(src) else { continue };
            let share = rank / dsts.len() as f64;
            for d in dsts {
                *contrib.entry(*d).or_insert(0.0) += share;
            }
        }
        ranks = contrib
            .into_iter()
            .map(|(k, v)| (k, 1.0 - DAMPING + DAMPING * v))
            .collect();
    }
    ranks.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use splitserve_des::Fabric;
    use splitserve_engine::{EngineConfig, ExecutorDesc};
    use splitserve_storage::LocalDiskStore;

    fn run_distributed(w: &PageRank) -> Vec<(u64, f64)> {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(1);
        for i in 0..4 {
            let nic = fabric.add_link(1e9, format!("n{i}"));
            let disk = fabric.add_link(1e9, format!("d{i}"));
            engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
        }
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        engine.submit_job(&mut sim, w.plan().node(), move |_, r| {
            *o.borrow_mut() = Some(collect_partitions::<(u64, f64)>(r.partitions));
        });
        sim.run();
        let mut rows = out.borrow_mut().take().expect("job done");
        rows.sort_by_key(|a| a.0);
        rows
    }

    #[test]
    fn distributed_matches_reference() {
        let w = PageRank::new(500, 2, 4, 7);
        let dist = run_distributed(&w);
        let reference = reference_pagerank(&w);
        // The distributed result only contains pages that received links;
        // compare on the intersection, and every distributed entry must
        // match the reference exactly (same float operations, different
        // order — allow tiny tolerance).
        let ref_map: std::collections::BTreeMap<u64, f64> = reference.into_iter().collect();
        assert!(!dist.is_empty());
        for (page, rank) in &dist {
            let r = ref_map.get(page).expect("page exists in reference");
            assert!(
                (rank - r).abs() < 1e-9,
                "page {page}: distributed {rank} vs reference {r}"
            );
        }
    }

    #[test]
    fn rank_mass_is_plausible() {
        let w = PageRank::new(1_000, 3, 4, 3);
        let dist = run_distributed(&w);
        let total: f64 = dist.iter().map(|(_, r)| r).sum();
        // With damping 0.85 and no dangling-mass redistribution the total
        // stays within (1-d)*n .. slightly above n.
        assert!(total > 0.15 * 1_000.0 * 0.5, "mass too low: {total}");
        assert!(total < 1_500.0, "mass exploded: {total}");
    }

    #[test]
    fn stage_count_matches_formula() {
        let w = PageRank::new(100, 2, 2, 1);
        let g = splitserve_engine::build_stages(w.plan().node());
        assert_eq!(g.len(), w.expected_stages());
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let w = PageRank::new(200, 1, 3, 5);
        let a = reference_pagerank(&w);
        let b = reference_pagerank(&w);
        assert_eq!(a, b);
    }
}
