//! Flight-recorder integration with the chaos plane: a case that injects
//! kills into the executor-local store must leave a dump showing the
//! injected fault *and* the rollback it caused, and the repro line
//! embedded in that dump must replay — deterministically — to the very
//! same event stream.

use splitserve::ShuffleStoreKind;
use splitserve_chaos::workloads::ChaosPageRank;
use splitserve_chaos::{run_case, CaseResult, ChaosTopology, FaultPlan};

/// Scans the deterministic plan space for the first seed whose
/// executor-local run both killed an executor and rolled a stage back —
/// the shape of case a post-mortem exists for.
fn first_rollback_case() -> (u64, CaseResult) {
    let w = ChaosPageRank::small();
    let topo = ChaosTopology::default();
    for seed in 0..64u64 {
        let plan = FaultPlan::generate(seed);
        let r = run_case(&w, ShuffleStoreKind::Local, Some(&plan), &topo);
        if r.kills > 0 && r.rollbacks > 0 && r.fingerprint.is_some() {
            return (seed, r);
        }
    }
    panic!("no seed in 0..64 produced a kill-induced rollback");
}

#[test]
fn dump_contains_the_injected_fault_and_the_rollback() {
    let (seed, r) = first_rollback_case();
    let plan = FaultPlan::generate(seed);
    let repro = format!("CHAOS_SEED={} CHAOS_PLAN={}", plan.seed, plan.to_json());
    let dump = r.obs.flight.dump_json("kill-induced rollback", Some(&repro));

    // The injected fault is in the ring…
    assert!(
        dump.contains("\"kind\":\"fault-injected\""),
        "dump must contain the injected fault: {dump}"
    );
    assert!(dump.contains("\"kind\":\"kill\""), "fault kind must be kill");
    // …alongside the rollback transition it caused…
    assert!(
        dump.contains("\"kind\":\"stage-rollback\""),
        "dump must contain the rollback transition"
    );
    // …the task transitions around them…
    assert!(dump.contains("\"kind\":\"task-started\""));
    assert!(dump.contains("\"kind\":\"task-finished\""));
    // …and the replay line.
    assert!(dump.contains(&format!("\"repro\":\"CHAOS_SEED={seed} ")));
}

#[test]
fn embedded_repro_line_replays_to_the_same_event_stream() {
    let (seed, r) = first_rollback_case();
    let plan = FaultPlan::generate(seed);
    let repro = format!("CHAOS_SEED={} CHAOS_PLAN={}", plan.seed, plan.to_json());
    let dump = r.obs.flight.dump_json("kill-induced rollback", Some(&repro));

    // Parse the repro line back out of the dump the way a human would:
    // take the `repro` field, split off the plan JSON, rebuild the plan.
    let repro_field = dump
        .split("\"repro\":\"")
        .nth(1)
        .and_then(|s| s.split("\",\"overwritten\"").next())
        .expect("dump carries a repro field")
        .replace("\\\"", "\"");
    let plan_json = repro_field
        .split_once("CHAOS_PLAN=")
        .expect("repro line has a plan")
        .1;
    let replayed_plan = FaultPlan::from_json(plan_json).expect("plan JSON round-trips");
    assert_eq!(replayed_plan, plan);

    // Replaying the line reproduces the same run bit-for-bit: same output
    // fingerprint, same flight-recorder dump.
    let w = ChaosPageRank::small();
    let replay = run_case(
        &w,
        ShuffleStoreKind::Local,
        Some(&replayed_plan),
        &ChaosTopology::default(),
    );
    assert_eq!(replay.fingerprint, r.fingerprint);
    assert_eq!(replay.rollbacks, r.rollbacks);
    assert_eq!(
        replay
            .obs
            .flight
            .dump_json("kill-induced rollback", Some(&repro)),
        dump,
        "replay must reproduce the identical event stream"
    );
}
