//! The injector: arms a [`FaultPlan`]'s executor-side events against a
//! live [`Deployment`].
//!
//! Kills go through [`Engine::kill_executor`] (the same path a Lambda
//! lifetime expiry takes), drains through the deployment's segue path,
//! stragglers through the engine's per-executor speed factor, and capacity
//! events through the launching facility. Storage-side events (fetch/write
//! failures, latency windows) are armed separately on a
//! [`splitserve_storage::StoreFaults`] *before* the deployment is built —
//! see [`FaultPlan::arm_store_faults`].
//!
//! Every performed fault bumps `faults_injected_total{kind}` on the
//! engine's observability handle so a metrics dump distinguishes injected
//! trouble from organic trouble.
//!
//! [`Engine::kill_executor`]: splitserve_engine::Engine::kill_executor

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::Deployment;
use splitserve_cloud::M4_4XLARGE;
use splitserve_des::{Sim, SimDuration, SimTime};
use splitserve_engine::ExecutorId;

use crate::plan::{FaultEvent, FaultPlan};

#[derive(Debug, Default)]
struct ReportState {
    kills: u64,
    drains: u64,
    straggles: u64,
    capacity_adds: u64,
    expected_rollback: bool,
}

/// A live tally of what the injector actually performed (an event can be a
/// no-op when its target is already dead), shared with the scheduled
/// callbacks. Cloneable handle; clones share state.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    inner: Rc<RefCell<ReportState>>,
}

impl InjectionReport {
    /// Executors abruptly killed.
    pub fn kills(&self) -> u64 {
        self.inner.borrow().kills
    }

    /// Executors put into graceful drain.
    pub fn drains(&self) -> u64 {
        self.inner.borrow().drains
    }

    /// Straggle windows applied.
    pub fn straggles(&self) -> u64 {
        self.inner.borrow().straggles
    }

    /// Capacity events performed (Lambda waves, VM rescues).
    pub fn capacity_adds(&self) -> u64 {
        self.inner.borrow().capacity_adds
    }

    /// Whether any kill struck an executor that, at kill time, held live
    /// shuffle blocks of a completed stage in a store that does not
    /// survive executor loss — i.e. whether the differential oracle should
    /// expect a rollback cascade. Always `false` under shared stores.
    pub fn expected_rollback(&self) -> bool {
        self.inner.borrow().expected_rollback
    }
}

/// Resolves a plan's Lambda index against the executors actually launched
/// (sorted ids = launch order), wrapping modulo the list length so every
/// index is valid against any topology.
fn nth_lambda(d: &Deployment, n: u32) -> Option<ExecutorId> {
    let ids = d.lambda_executors();
    if ids.is_empty() {
        return None;
    }
    Some(ids[n as usize % ids.len()])
}

/// Schedules `f` at `at_us`, clamped forward to "now" when the plan is
/// armed after that instant has passed.
fn at(sim: &mut Sim, at_us: u64, f: impl FnOnce(&mut Sim) + 'static) {
    let t = SimTime::from_micros(at_us).max(sim.now());
    sim.schedule_at(t, f);
}

fn kill_one(sim: &mut Sim, d: &Deployment, report: &InjectionReport, id: &ExecutorId) {
    let Some(info) = d.engine().executor_info(id) else {
        return;
    };
    if !info.alive {
        return;
    }
    if d.engine().would_rollback_on_loss(id) {
        report.inner.borrow_mut().expected_rollback = true;
    }
    d.engine().obs().fault_event(sim.now(), "kill");
    report.inner.borrow_mut().kills += 1;
    d.engine().kill_executor(sim, id);
}

/// Arms every executor-side event of `plan` against `deployment`,
/// returning the shared report the callbacks will fill in as the
/// simulation runs. Call before `sim.run()`; storage-side events must
/// already be armed on the store (see [`FaultPlan::arm_store_faults`]).
pub fn arm(sim: &mut Sim, deployment: &Deployment, plan: &FaultPlan) -> InjectionReport {
    let report = InjectionReport::default();
    for ev in plan.events.clone() {
        let d = deployment.clone();
        let r = report.clone();
        match ev {
            FaultEvent::Kill { at_us, lambda } => at(sim, at_us, move |sim| {
                if let Some(id) = nth_lambda(&d, lambda) {
                    kill_one(sim, &d, &r, &id);
                }
            }),
            FaultEvent::BurstKill { at_us, min_age_us } => at(sim, at_us, move |sim| {
                let min_age = SimDuration::from_micros(min_age_us);
                for id in d.lambda_executors() {
                    let Some(info) = d.engine().executor_info(&id) else {
                        continue;
                    };
                    if info.alive && sim.now().saturating_since(info.registered_at) >= min_age {
                        kill_one(sim, &d, &r, &id);
                    }
                }
            }),
            FaultEvent::Drain { at_us, lambda } => at(sim, at_us, move |sim| {
                let Some(id) = nth_lambda(&d, lambda) else {
                    return;
                };
                // Mirror the drain path's own liveness check so the tally
                // only counts drains that actually started.
                match d.engine().executor_info(&id) {
                    Some(info) if info.alive && !info.draining => {}
                    _ => return,
                }
                d.engine().obs().fault_event(sim.now(), "drain");
                r.inner.borrow_mut().drains += 1;
                d.drain_lambda_executor(sim, &id);
            }),
            FaultEvent::Straggle {
                at_us,
                lambda,
                slowdown_pct,
                for_us,
            } => at(sim, at_us, move |sim| {
                let Some(id) = nth_lambda(&d, lambda) else {
                    return;
                };
                match d.engine().executor_info(&id) {
                    Some(info) if info.alive => {}
                    _ => return,
                }
                d.engine().obs().fault_event(sim.now(), "straggle");
                r.inner.borrow_mut().straggles += 1;
                // Tasks launched during the window run slower; the factor
                // is sampled at launch, so an in-flight task keeps its
                // original duration.
                let pct = slowdown_pct.max(1);
                d.engine()
                    .set_executor_speed_factor(&id, 100.0 / f64::from(pct));
                let d2 = d.clone();
                sim.schedule_at(sim.now() + SimDuration::from_micros(for_us), move |_| {
                    d2.engine().set_executor_speed_factor(&id, 1.0);
                });
            }),
            FaultEvent::AddLambdas { at_us, count } => at(sim, at_us, move |sim| {
                r.inner.borrow_mut().capacity_adds += 1;
                d.add_lambda_executors(sim, count);
            }),
            FaultEvent::AddVmCores { at_us, cores } => at(sim, at_us, move |sim| {
                r.inner.borrow_mut().capacity_adds += 1;
                let mut left = cores;
                while left > 0 {
                    let chunk = left.min(M4_4XLARGE.vcpus);
                    d.add_vm_workers(sim, M4_4XLARGE, chunk);
                    left -= chunk;
                }
            }),
            // Storage-side events live in the store decorator.
            FaultEvent::FetchFail { .. }
            | FaultEvent::WriteFail { .. }
            | FaultEvent::Latency { .. } => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve::ShuffleStoreKind;
    use splitserve_cloud::{CloudSpec, M4_XLARGE};
    use splitserve_des::Dist;

    fn quiet_cloud() -> CloudSpec {
        CloudSpec {
            vm_boot: Dist::constant(110.0),
            lambda_warm_start: Dist::constant(0.1),
            lambda_cold_start: Dist::constant(3.0),
            lambda_net_jitter: Dist::constant(1.0),
            ..CloudSpec::default()
        }
    }

    #[test]
    fn kill_event_kills_the_resolved_lambda() {
        let mut sim = Sim::new(1);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 3);
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Kill {
                at_us: 2_000_000,
                lambda: 4, // wraps to index 1 of 3
            }],
        };
        let report = arm(&mut sim, &d, &plan);
        sim.run();
        assert_eq!(report.kills(), 1);
        let victim = &d.lambda_executors()[1];
        assert!(!d.engine().executor_info(victim).unwrap().alive);
        // Nothing was running, so no rollback was predicted.
        assert!(!report.expected_rollback());
        assert_eq!(
            d.engine()
                .obs()
                .metrics
                .counter_value("faults_injected_total", &[("kind", "kill")]),
            0,
            "obs disabled by default: counter stays silent"
        );
    }

    #[test]
    fn events_against_an_empty_deployment_are_noops() {
        let mut sim = Sim::new(1);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent::Kill { at_us: 1_000_000, lambda: 0 },
                FaultEvent::Drain { at_us: 1_000_000, lambda: 0 },
                FaultEvent::Straggle {
                    at_us: 1_000_000,
                    lambda: 0,
                    slowdown_pct: 400,
                    for_us: 1_000_000,
                },
                FaultEvent::BurstKill { at_us: 1_000_000, min_age_us: 0 },
            ],
        };
        let report = arm(&mut sim, &d, &plan);
        sim.run();
        assert_eq!(report.kills() + report.drains() + report.straggles(), 0);
    }

    #[test]
    fn burst_kill_respects_min_age() {
        let mut sim = Sim::new(1);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 2);
        // Two more arrive at t=8s; the burst at 10s reaps only executors
        // older than 5s, i.e. the original pair.
        let d2 = d.clone();
        sim.schedule_at(SimTime::from_secs(8), move |sim| {
            d2.add_lambda_executors(sim, 2);
        });
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::BurstKill {
                at_us: 10_000_000,
                min_age_us: 5_000_000,
            }],
        };
        let report = arm(&mut sim, &d, &plan);
        // Stop before the platform's own lifetime kills reap the rest.
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(report.kills(), 2);
        let alive = d
            .lambda_executors()
            .iter()
            .filter(|id| d.engine().executor_info(id).is_some_and(|i| i.alive))
            .count();
        assert_eq!(alive, 2);
    }

    #[test]
    fn capacity_events_provision_executors() {
        let mut sim = Sim::new(1);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let plan = FaultPlan::replacement_waves(2, 1, 3).with_vm_rescue(3, 20);
        let report = arm(&mut sim, &d, &plan);
        // Stop before the platform's own lifetime kills reap the Lambdas.
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(report.capacity_adds(), 3);
        // 2 waves × 3 Lambdas + 20 VM cores (chunked 16 + 4 across VMs).
        assert_eq!(d.engine().active_executors(), 26);
    }
}
