//! Shrinking: reduce a failing plan to a minimal reproduction.
//!
//! Every case is deterministic, so shrinking is a pure search: greedily
//! drop one event at a time, keeping any candidate that still violates
//! the oracle, until a fixed point (ddmin-lite — the plans are ≤5 events,
//! so the quadratic greedy pass is minimal in practice).

use crate::harness::{ChaosFailure, Oracle, PlanOutcome};
use crate::plan::FaultPlan;

/// Greedily removes events from `plan` while `still_fails` keeps holding.
/// Runs to a fixed point; never returns an empty plan (a failure with no
/// events means the reference itself is broken, which the caller should
/// surface as-is).
pub fn shrink_events(
    plan: &FaultPlan,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
) -> FaultPlan {
    let mut current = plan.clone();
    let mut progress = true;
    while progress {
        progress = false;
        let mut i = 0;
        while i < current.events.len() && current.events.len() > 1 {
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                progress = true;
            } else {
                i += 1;
            }
        }
    }
    current
}

/// Checks `plan` against `oracle`; on violation, shrinks the plan and
/// returns the failure for the minimal reproduction, its repro line
/// already printed to stderr so a panicking caller still leaves the
/// `CHAOS_SEED=… CHAOS_PLAN=…` line in the test log.
pub fn check_or_shrink(
    oracle: &Oracle<'_>,
    plan: &FaultPlan,
) -> Result<PlanOutcome, Box<ChaosFailure>> {
    match oracle.check(plan) {
        Ok(outcome) => Ok(outcome),
        Err(original) => {
            let minimal = shrink_events(plan, |p| oracle.check(p).is_err());
            let failure = match oracle.check(&minimal) {
                Err(f) => f,
                // Determinism makes this unreachable, but prefer the
                // original over a bogus "minimal" plan if it ever isn't.
                Ok(_) => original,
            };
            eprintln!("{failure}");
            Err(failure)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEvent;

    fn plan_of(n: u64) -> FaultPlan {
        FaultPlan {
            seed: 9,
            events: (0..n)
                .map(|i| FaultEvent::FetchFail { nth: i + 1 })
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_event() {
        // Predicate: fails iff the plan still contains FetchFail{nth: 3}.
        let guilty = FaultEvent::FetchFail { nth: 3 };
        let shrunk = shrink_events(&plan_of(5), |p| p.events.contains(&guilty));
        assert_eq!(shrunk.events, vec![guilty]);
        assert_eq!(shrunk.seed, 9, "shrinking preserves the seed");
    }

    #[test]
    fn shrinks_conjunctions_to_their_minimal_pair() {
        // Fails only when events 2 AND 4 are both present.
        let a = FaultEvent::FetchFail { nth: 2 };
        let b = FaultEvent::FetchFail { nth: 4 };
        let shrunk = shrink_events(&plan_of(6), |p| {
            p.events.contains(&a) && p.events.contains(&b)
        });
        assert_eq!(shrunk.events, vec![a, b]);
    }

    #[test]
    fn never_shrinks_below_one_event() {
        let shrunk = shrink_events(&plan_of(4), |_| true);
        assert_eq!(shrunk.events.len(), 1);
    }
}
