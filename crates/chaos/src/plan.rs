//! Fault plans: seeded, serializable schedules of fault events.
//!
//! A [`FaultPlan`] is the unit of chaos: a list of [`FaultEvent`]s with
//! integer-microsecond timestamps, generated deterministically from a
//! single `u64` seed ([`FaultPlan::generate`]) or written by hand for a
//! named scenario. Plans serialize to a small JSON dialect so a failing
//! case prints as one `CHAOS_SEED=… CHAOS_PLAN=…` line that replays
//! bit-for-bit ([`FaultPlan::to_json`] / [`FaultPlan::from_json`]).

use splitserve_des::{SimDuration, SimTime};
use splitserve_rt::Rng;
use splitserve_storage::StoreFaults;

use crate::json::{parse, Json};

/// One scheduled fault. All times are absolute simulation microseconds so
/// plans round-trip through JSON without float drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Abruptly kill the `lambda`-th Lambda executor (modulo the number
    /// launched) at `at_us` — the platform reaping a container.
    Kill {
        /// Absolute firing time, microseconds.
        at_us: u64,
        /// Index into the sorted Lambda executor list.
        lambda: u32,
    },
    /// Kill every Lambda executor older than `min_age_us` at `at_us` — a
    /// correlated burst, the worst case for local shuffle.
    BurstKill {
        /// Absolute firing time, microseconds.
        at_us: u64,
        /// Minimum executor age to be reaped.
        min_age_us: u64,
    },
    /// Gracefully drain the `lambda`-th Lambda executor — the segue path.
    Drain {
        /// Absolute firing time, microseconds.
        at_us: u64,
        /// Index into the sorted Lambda executor list.
        lambda: u32,
    },
    /// Fail the `nth` shuffle-store `get` (1-based, store-wide order).
    FetchFail {
        /// 1-based ordinal of the struck get.
        nth: u64,
    },
    /// Fail the `nth` shuffle-store `put` (1-based, store-wide order).
    WriteFail {
        /// 1-based ordinal of the struck put.
        nth: u64,
    },
    /// Inflate every store op started inside `[from_us, until_us)` by
    /// `extra_us` — an HDFS brown-out window.
    Latency {
        /// Window start, microseconds.
        from_us: u64,
        /// Window end (exclusive), microseconds.
        until_us: u64,
        /// Added per-op latency, microseconds.
        extra_us: u64,
    },
    /// Slow the `lambda`-th Lambda executor to `100/slowdown_pct` of its
    /// speed for `for_us` — a straggler.
    Straggle {
        /// Absolute firing time, microseconds.
        at_us: u64,
        /// Index into the sorted Lambda executor list.
        lambda: u32,
        /// Slowdown in percent (300 = three times slower).
        slowdown_pct: u32,
        /// How long the straggle lasts, microseconds.
        for_us: u64,
    },
    /// Launch `count` replacement Lambda executors at `at_us` — the
    /// launching facility reacting to churn.
    AddLambdas {
        /// Absolute firing time, microseconds.
        at_us: u64,
        /// Lambdas to launch.
        count: u32,
    },
    /// Provision a VM and register `cores` executors on it at `at_us` —
    /// a VM-autoscaling rescue.
    AddVmCores {
        /// Absolute firing time, microseconds.
        at_us: u64,
        /// Executor cores to add (chunked across VMs if over one VM's
        /// vCPU count).
        cores: u32,
    },
}

impl FaultEvent {
    fn to_json(&self) -> String {
        match self {
            FaultEvent::Kill { at_us, lambda } => {
                format!("{{\"type\":\"kill\",\"at_us\":{at_us},\"lambda\":{lambda}}}")
            }
            FaultEvent::BurstKill { at_us, min_age_us } => {
                format!("{{\"type\":\"burst-kill\",\"at_us\":{at_us},\"min_age_us\":{min_age_us}}}")
            }
            FaultEvent::Drain { at_us, lambda } => {
                format!("{{\"type\":\"drain\",\"at_us\":{at_us},\"lambda\":{lambda}}}")
            }
            FaultEvent::FetchFail { nth } => {
                format!("{{\"type\":\"fetch-fail\",\"nth\":{nth}}}")
            }
            FaultEvent::WriteFail { nth } => {
                format!("{{\"type\":\"write-fail\",\"nth\":{nth}}}")
            }
            FaultEvent::Latency {
                from_us,
                until_us,
                extra_us,
            } => format!(
                "{{\"type\":\"latency\",\"from_us\":{from_us},\"until_us\":{until_us},\"extra_us\":{extra_us}}}"
            ),
            FaultEvent::Straggle {
                at_us,
                lambda,
                slowdown_pct,
                for_us,
            } => format!(
                "{{\"type\":\"straggle\",\"at_us\":{at_us},\"lambda\":{lambda},\"slowdown_pct\":{slowdown_pct},\"for_us\":{for_us}}}"
            ),
            FaultEvent::AddLambdas { at_us, count } => {
                format!("{{\"type\":\"add-lambdas\",\"at_us\":{at_us},\"count\":{count}}}")
            }
            FaultEvent::AddVmCores { at_us, cores } => {
                format!("{{\"type\":\"add-vm-cores\",\"at_us\":{at_us},\"cores\":{cores}}}")
            }
        }
    }

    fn from_json(v: &Json) -> Result<FaultEvent, String> {
        let kind = v.str_field("type")?;
        let u32_of = |key: &str| -> Result<u32, String> {
            u32::try_from(v.num(key)?).map_err(|_| format!("field {key:?} out of u32 range"))
        };
        Ok(match kind {
            "kill" => FaultEvent::Kill {
                at_us: v.num("at_us")?,
                lambda: u32_of("lambda")?,
            },
            "burst-kill" => FaultEvent::BurstKill {
                at_us: v.num("at_us")?,
                min_age_us: v.num("min_age_us")?,
            },
            "drain" => FaultEvent::Drain {
                at_us: v.num("at_us")?,
                lambda: u32_of("lambda")?,
            },
            "fetch-fail" => FaultEvent::FetchFail { nth: v.num("nth")? },
            "write-fail" => FaultEvent::WriteFail { nth: v.num("nth")? },
            "latency" => FaultEvent::Latency {
                from_us: v.num("from_us")?,
                until_us: v.num("until_us")?,
                extra_us: v.num("extra_us")?,
            },
            "straggle" => FaultEvent::Straggle {
                at_us: v.num("at_us")?,
                lambda: u32_of("lambda")?,
                slowdown_pct: u32_of("slowdown_pct")?,
                for_us: v.num("for_us")?,
            },
            "add-lambdas" => FaultEvent::AddLambdas {
                at_us: v.num("at_us")?,
                count: u32_of("count")?,
            },
            "add-vm-cores" => FaultEvent::AddVmCores {
                at_us: v.num("at_us")?,
                cores: u32_of("cores")?,
            },
            other => return Err(format!("unknown event type {other:?}")),
        })
    }
}

/// A seeded, serializable schedule of fault events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The events, in generation order. The injector schedules each at its
    /// own timestamp, so the list need not be sorted.
    pub events: Vec<FaultEvent>,
}

/// Domain separator so plan generation doesn't correlate with any other
/// consumer of the same seed (the sim clock, workload data, …).
const PLAN_STREAM: u64 = 0xC4A0_5F1A_7E57_0001;

impl FaultPlan {
    /// Generates a plan of 2–5 events from `seed`. The distribution leans
    /// toward kills (the paper's central hazard) but covers every event
    /// kind; timestamps land in the 2–45 s window where the harness
    /// topology has jobs in flight.
    pub fn generate(seed: u64) -> FaultPlan {
        Self::generate_in_window(seed, 2_000_000, 45_000_000)
    }

    /// [`FaultPlan::generate`] with an explicit `[from_us, until_us)`
    /// timestamp window, for harnesses whose jobs-in-flight phase differs
    /// from the default chaos topology (e.g. the multi-tenant fleet,
    /// where arrivals span minutes). `generate(seed)` is exactly
    /// `generate_in_window(seed, 2_000_000, 45_000_000)` — same RNG
    /// stream, same plans.
    pub fn generate_in_window(seed: u64, from_us: u64, until_us: u64) -> FaultPlan {
        assert!(until_us > from_us, "empty fault window");
        let mut rng = Rng::seed_from_u64(seed ^ PLAN_STREAM);
        let n = 2 + rng.bounded_u64(4);
        let mut events = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let at_us = from_us + rng.bounded_u64(until_us - from_us);
            events.push(match rng.bounded_u64(10) {
                0..=2 => FaultEvent::Kill {
                    at_us,
                    lambda: rng.bounded_u64(8) as u32,
                },
                3 => FaultEvent::BurstKill {
                    at_us,
                    min_age_us: (5 + rng.bounded_u64(20)) * 1_000_000,
                },
                4 => FaultEvent::Drain {
                    at_us,
                    lambda: rng.bounded_u64(8) as u32,
                },
                5 => FaultEvent::FetchFail {
                    nth: 1 + rng.bounded_u64(48),
                },
                6 => FaultEvent::WriteFail {
                    nth: 1 + rng.bounded_u64(48),
                },
                7 => FaultEvent::Latency {
                    from_us: at_us,
                    until_us: at_us + (2 + rng.bounded_u64(15)) * 1_000_000,
                    extra_us: (20 + rng.bounded_u64(280)) * 1_000,
                },
                8 => FaultEvent::Straggle {
                    at_us,
                    lambda: rng.bounded_u64(8) as u32,
                    slowdown_pct: (200 + rng.bounded_u64(600)) as u32,
                    for_us: (5 + rng.bounded_u64(15)) * 1_000_000,
                },
                _ => FaultEvent::AddLambdas {
                    at_us,
                    count: 1 + rng.bounded_u64(2) as u32,
                },
            });
        }
        FaultPlan { seed, events }
    }

    /// An empty plan (the fault-free reference).
    pub fn empty() -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// The churn half of the ported `fault_tolerance` scenarios: `waves`
    /// waves of `per_wave` replacement Lambdas, one wave every `every_s`
    /// seconds starting at `every_s`. Pair with a short Lambda lifetime in
    /// the topology so the platform does the killing.
    pub fn replacement_waves(waves: u32, every_s: u64, per_wave: u32) -> FaultPlan {
        let events = (1..=u64::from(waves))
            .map(|wave| FaultEvent::AddLambdas {
                at_us: wave * every_s * 1_000_000,
                count: per_wave,
            })
            .collect();
        FaultPlan { seed: 0, events }
    }

    /// Appends a VM rescue: `cores` VM executors arriving at `at_s`.
    pub fn with_vm_rescue(mut self, at_s: u64, cores: u32) -> FaultPlan {
        self.events.push(FaultEvent::AddVmCores {
            at_us: at_s * 1_000_000,
            cores,
        });
        self
    }

    /// Whether any event abruptly kills executors.
    pub fn has_kills(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Kill { .. } | FaultEvent::BurstKill { .. }))
    }

    /// Whether any event drains executors.
    pub fn has_drains(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Drain { .. }))
    }

    /// Whether any event fails shuffle fetches.
    pub fn has_fetch_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::FetchFail { .. }))
    }

    /// Whether any event fails shuffle writes.
    pub fn has_write_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::WriteFail { .. }))
    }

    /// Arms the storage-side events (fetch/write failures, latency
    /// windows) on `faults`. The executor-side events are armed by the
    /// injector against a live deployment.
    pub fn arm_store_faults(&self, faults: &StoreFaults) {
        for ev in &self.events {
            match ev {
                FaultEvent::FetchFail { nth } => faults.fail_nth_get(*nth),
                FaultEvent::WriteFail { nth } => faults.fail_nth_put(*nth),
                FaultEvent::Latency {
                    from_us,
                    until_us,
                    extra_us,
                } => faults.add_latency_window(
                    SimTime::from_micros(*from_us),
                    SimTime::from_micros(*until_us),
                    SimDuration::from_micros(*extra_us),
                ),
                _ => {}
            }
        }
    }

    /// Serializes the plan as one JSON line.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"seed\":{},\"events\":[", self.seed);
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&ev.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Parses a plan serialized by [`FaultPlan::to_json`].
    pub fn from_json(src: &str) -> Result<FaultPlan, String> {
        let v = parse(src)?;
        let seed = v.num("seed")?;
        let Some(Json::Arr(items)) = v.get("events") else {
            return Err("missing \"events\" array".into());
        };
        let events = items
            .iter()
            .map(FaultEvent::from_json)
            .collect::<Result<_, _>>()?;
        Ok(FaultPlan { seed, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::generate(seed), FaultPlan::generate(seed));
        }
        assert_ne!(FaultPlan::generate(1), FaultPlan::generate(2));
    }

    #[test]
    fn windowed_generation_respects_bounds_and_default_window_matches() {
        for seed in 0..32 {
            assert_eq!(
                FaultPlan::generate(seed),
                FaultPlan::generate_in_window(seed, 2_000_000, 45_000_000),
            );
            let plan = FaultPlan::generate_in_window(seed, 7_000_000, 90_000_000);
            for ev in &plan.events {
                let at = match ev {
                    FaultEvent::Kill { at_us, .. }
                    | FaultEvent::BurstKill { at_us, .. }
                    | FaultEvent::Drain { at_us, .. }
                    | FaultEvent::Straggle { at_us, .. }
                    | FaultEvent::AddLambdas { at_us, .. }
                    | FaultEvent::AddVmCores { at_us, .. } => Some(*at_us),
                    FaultEvent::Latency { from_us, .. } => Some(*from_us),
                    FaultEvent::FetchFail { .. } | FaultEvent::WriteFail { .. } => None,
                };
                if let Some(at) = at {
                    assert!((7_000_000..90_000_000).contains(&at), "{ev:?}");
                }
            }
        }
    }

    #[test]
    fn generated_plans_roundtrip_through_json() {
        for seed in 0..64 {
            let plan = FaultPlan::generate(seed);
            assert!(!plan.events.is_empty());
            let json = plan.to_json();
            let back = FaultPlan::from_json(&json).unwrap();
            assert_eq!(back, plan, "seed {seed} did not roundtrip: {json}");
        }
    }

    #[test]
    fn every_event_kind_roundtrips() {
        let plan = FaultPlan {
            seed: 42,
            events: vec![
                FaultEvent::Kill { at_us: 1, lambda: 2 },
                FaultEvent::BurstKill { at_us: 3, min_age_us: 4 },
                FaultEvent::Drain { at_us: 5, lambda: 6 },
                FaultEvent::FetchFail { nth: 7 },
                FaultEvent::WriteFail { nth: 8 },
                FaultEvent::Latency { from_us: 9, until_us: 10, extra_us: 11 },
                FaultEvent::Straggle { at_us: 12, lambda: 13, slowdown_pct: 300, for_us: 14 },
                FaultEvent::AddLambdas { at_us: 15, count: 16 },
                FaultEvent::AddVmCores { at_us: 17, cores: 18 },
            ],
        };
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("{\"seed\":1}").is_err());
        assert!(
            FaultPlan::from_json("{\"seed\":1,\"events\":[{\"type\":\"meteor\"}]}").is_err()
        );
        assert!(
            FaultPlan::from_json("{\"seed\":1,\"events\":[{\"type\":\"kill\",\"at_us\":1}]}")
                .is_err(),
            "kill without lambda index must not parse"
        );
    }

    #[test]
    fn classifiers_see_through_the_event_list() {
        let p = FaultPlan::generate(3);
        let has_kill = p
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Kill { .. } | FaultEvent::BurstKill { .. }));
        assert_eq!(p.has_kills(), has_kill);
        let waves = FaultPlan::replacement_waves(3, 5, 2).with_vm_rescue(60, 8);
        assert_eq!(waves.events.len(), 4);
        assert!(!waves.has_kills() && !waves.has_drains() && !waves.has_fetch_faults());
    }

    #[test]
    fn arm_store_faults_only_arms_storage_events() {
        let faults = StoreFaults::new();
        FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Kill { at_us: 1, lambda: 0 }],
        }
        .arm_store_faults(&faults);
        assert!(!faults.is_armed());
        FaultPlan {
            seed: 0,
            events: vec![FaultEvent::FetchFail { nth: 2 }],
        }
        .arm_store_faults(&faults);
        assert!(faults.is_armed());
    }
}
