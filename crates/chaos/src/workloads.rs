//! Fingerprinting adapters over the paper's workloads.
//!
//! The differential oracle compares *outputs*, not timings, so every
//! workload is wrapped to reduce its result to a single `u64` fingerprint:
//! an xxHash64 over the raw bits of the sorted output (`f64`s hashed via
//! [`f64::to_bits`], never through formatting). Identical results across a
//! faulty and a fault-free run therefore mean bit-identical data.

use std::hash::Hasher;

use splitserve_des::Sim;
use splitserve_engine::{collect_partitions, Engine};
use splitserve_rt::hash::XxHash64;
use splitserve_workloads::{CloudSort, KMeans, PageRank, SparkPi};

/// Receives the workload's fingerprint when its last job completes.
pub type FingerprintSink = Box<dyn FnOnce(&mut Sim, u64)>;

/// Hash-stream seed; arbitrary but fixed so fingerprints are comparable
/// across processes and runs.
const FP_SEED: u64 = 0x5917_5E12_FEED_F00D;

/// A workload the chaos harness can drive: submit against an engine, call
/// the sink with an output fingerprint when done. If the run wedges (a
/// fault plan the topology cannot absorb), the sink is simply never
/// called and the harness reports a non-completion.
pub trait ChaosWorkload {
    /// Short name for repro lines and test output.
    fn name(&self) -> &'static str;
    /// Submits the workload's job(s); `sink` fires on final completion.
    fn submit(&self, sim: &mut Sim, engine: &Engine, sink: FingerprintSink);
}

/// PageRank: CPU + large shuffle; ranks fingerprinted per page.
pub struct ChaosPageRank(pub PageRank);

impl ChaosPageRank {
    /// A debug-build-friendly instance (the sweep runs many of these).
    /// The contribution cost stretches the run across the plan
    /// generator's 2–45 s fault window — virtual seconds, not host CPU.
    pub fn small() -> Self {
        ChaosPageRank(PageRank::new(1_500, 3, 6, 11).with_contrib_cost(8.0e-3))
    }
}

impl ChaosWorkload for ChaosPageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, sink: FingerprintSink) {
        engine.submit_job(sim, self.0.plan().node(), move |sim, out| {
            let mut rows = collect_partitions::<(u64, f64)>(out.partitions);
            rows.sort_by_key(|(page, _)| *page);
            let mut h = XxHash64::with_seed(FP_SEED);
            for (page, rank) in &rows {
                h.write_u64(*page);
                h.write_u64(rank.to_bits());
            }
            sink(sim, h.finish());
        });
    }
}

/// CloudSort: shuffle-dominated; the *order* of the output is part of the
/// contract, so rows are fingerprinted exactly as collected and the
/// fingerprint additionally covers global sortedness.
pub struct ChaosCloudSort(pub CloudSort);

impl ChaosCloudSort {
    /// A debug-build-friendly instance.
    pub fn small() -> Self {
        ChaosCloudSort(CloudSort::new(4_000, 6, 11))
    }

    /// The sort plan with virtual CPU charged on both sides of the
    /// shuffle, stretching the run across the plan generator's 2–45 s
    /// fault window *and* keeping the sort stage's outputs live while a
    /// charged consumer stage drains them — the exposure a kill needs to
    /// destroy in-use shuffle blocks under executor-local storage.
    fn plan(&self) -> splitserve_engine::Dataset<(u64, Vec<u8>)> {
        self.0
            .input()
            .map_with_cost(|kv| kv.clone(), Some(8.0e-3))
            .sort_by_key(self.0.bounds())
            .map_with_cost(|kv| kv.clone(), Some(8.0e-3))
    }
}

impl ChaosWorkload for ChaosCloudSort {
    fn name(&self) -> &'static str {
        "cloudsort"
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, sink: FingerprintSink) {
        engine.submit_job(sim, self.plan().node(), move |sim, out| {
            let rows = collect_partitions::<(u64, Vec<u8>)>(out.partitions);
            assert!(
                rows.windows(2).all(|w| w[0].0 <= w[1].0),
                "CloudSort output must be globally sorted"
            );
            let mut h = XxHash64::with_seed(FP_SEED);
            for (key, payload) in &rows {
                h.write_u64(*key);
                h.write(payload);
            }
            sink(sim, h.finish());
        });
    }
}

/// SparkPi: pure compute, negligible shuffle — the control workload whose
/// single `f64` must survive any storage fault untouched.
pub struct ChaosSparkPi(pub SparkPi);

impl ChaosSparkPi {
    /// A debug-build-friendly instance. Virtual per-dart cost is raised
    /// so tasks span the fault window on the virtual clock (host CPU is
    /// unaffected: the darts thrown for real stay the same).
    pub fn small() -> Self {
        let mut w = SparkPi::small(400_000, 8, 11);
        w.secs_per_dart = 6.0e-4;
        ChaosSparkPi(w)
    }
}

impl ChaosWorkload for ChaosSparkPi {
    fn name(&self) -> &'static str {
        "sparkpi"
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, sink: FingerprintSink) {
        engine.submit_job(sim, self.0.plan().node(), move |sim, out| {
            let mut rows = collect_partitions::<(u64, f64)>(out.partitions);
            rows.sort_by_key(|(k, _)| *k);
            let mut h = XxHash64::with_seed(FP_SEED);
            for (k, v) in &rows {
                h.write_u64(*k);
                h.write_u64(v.to_bits());
            }
            sink(sim, h.finish());
        });
    }
}

/// K-means: a multi-job iterative driver — faults can land between jobs,
/// not just inside one. Fingerprints the final centroids plus the
/// iteration count (a fault must not change when convergence is declared).
pub struct ChaosKMeans(pub KMeans);

impl ChaosKMeans {
    /// A debug-build-friendly instance. Statistical point representation
    /// (`materialize_cap`) keeps host CPU at 3 000 real points while the
    /// virtual charge covers millions, so each iteration's job spans the
    /// fault window.
    pub fn small() -> Self {
        let mut w = KMeans::small(3_000, 6, 11);
        w.points = 6_000_000;
        w.materialize_cap = 3_000;
        ChaosKMeans(w)
    }
}

impl ChaosWorkload for ChaosKMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn submit(&self, sim: &mut Sim, engine: &Engine, sink: FingerprintSink) {
        self.0.run(sim, engine, move |sim, centroids, iterations| {
            let mut h = XxHash64::with_seed(FP_SEED);
            h.write_u64(iterations as u64);
            for c in &centroids {
                for x in c {
                    h.write_u64(x.to_bits());
                }
            }
            sink(sim, h.finish());
        });
    }
}
