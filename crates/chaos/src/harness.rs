//! The differential chaos harness.
//!
//! [`run_case`] executes one workload under one shuffle store with an
//! optional fault plan on a fixed churn-capable topology and reduces the
//! run to a [`CaseResult`]: output fingerprint, rollback/loss counts and
//! injected-fault tallies. [`Oracle`] turns pairs of such runs into the
//! paper's differential claim:
//!
//! - **Shared (HDFS) shuffle**: output is bit-identical to the fault-free
//!   reference, and stages roll back *only* when an injected fetch
//!   failure fired (executor loss alone never cascades — §4.3).
//! - **Executor-local shuffle**: output is still bit-identical (lineage
//!   recovers data), but a kill that destroyed live shuffle blocks *must*
//!   roll back completed stages, and rollbacks never appear without such
//!   a kill, an injected fetch failure, or a drain-decommission.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve::{Deployment, ShuffleStoreKind};
use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
use splitserve_des::{Dist, Sim, SimDuration, SimTime};
use splitserve_engine::{EngineConfig, EngineEventKind};
use splitserve_obs::Obs;
use splitserve_storage::{FaultStore, StoreFaults};

use crate::inject::{self, InjectionReport};
use crate::plan::FaultPlan;
use crate::workloads::ChaosWorkload;

/// The fixed cluster shape chaos cases run on: a couple of VM cores, an
/// initial Lambda fleet, periodic replacement waves, and a late VM rescue
/// so every plan the generator can produce still completes — shrinking
/// must never deadlock on a case that starved itself of executors.
#[derive(Debug, Clone)]
pub struct ChaosTopology {
    /// Simulation seed (independent of the plan seed).
    pub sim_seed: u64,
    /// VM executor cores registered up front.
    pub vm_cores: u32,
    /// Lambda executors launched at t=0.
    pub initial_lambdas: u32,
    /// Replacement waves: `wave_count` waves of `wave_size` Lambdas…
    pub wave_count: u32,
    /// …one wave every this many seconds (first at that instant)…
    pub wave_every_s: u64,
    /// …of this many Lambdas each.
    pub wave_size: u32,
    /// When the VM rescue arrives, seconds.
    pub rescue_at_s: u64,
    /// VM cores in the rescue (0 disables it).
    pub rescue_cores: u32,
    /// Lambda platform lifetime in seconds; 0 keeps the spec default
    /// (long enough to never fire in a chaos case).
    pub lambda_lifetime_s: u64,
    /// Worker threads for the engine's task data plane (1 = inline).
    /// Virtual-time results are byte-identical at any setting, which the
    /// differential harness exploits to cross-check the parallel path.
    pub workers: usize,
}

impl Default for ChaosTopology {
    fn default() -> Self {
        ChaosTopology {
            sim_seed: 11,
            vm_cores: 2,
            initial_lambdas: 4,
            wave_count: 10,
            wave_every_s: 5,
            wave_size: 2,
            rescue_at_s: 60,
            rescue_cores: 8,
            lambda_lifetime_s: 0,
            workers: 1,
        }
    }
}

impl ChaosTopology {
    /// The cloud spec: constant start/jitter distributions so a case's
    /// timeline depends only on (sim seed, plan, store kind).
    pub fn cloud_spec(&self) -> CloudSpec {
        let mut spec = CloudSpec {
            vm_boot: Dist::constant(110.0),
            lambda_warm_start: Dist::constant(0.1),
            lambda_cold_start: Dist::constant(3.0),
            lambda_net_jitter: Dist::constant(1.0),
            // The 64-case chaos digest is pinned against the legacy
            // infinite warm pool.
            coldstart: splitserve_cloud::ColdStartSpec::forever(),
            ..CloudSpec::default()
        };
        if self.lambda_lifetime_s > 0 {
            spec.lambda_lifetime = SimDuration::from_secs(self.lambda_lifetime_s);
        }
        spec
    }
}

/// Everything one chaos case produced.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The shuffle store the case ran under.
    pub store: ShuffleStoreKind,
    /// Output fingerprint; `None` when the run never completed.
    pub fingerprint: Option<u64>,
    /// Virtual completion instant of the last job, if it completed.
    pub completed_at: Option<SimTime>,
    /// `StageRolledBack` events observed.
    pub rollbacks: usize,
    /// `ExecutorLost` events observed (injected + organic).
    pub executor_losses: usize,
    /// Tasks re-run across all completed jobs.
    pub recomputed: u64,
    /// Injected shuffle-fetch failures that actually fired.
    pub fetch_faults: u64,
    /// Injected shuffle-write failures that actually fired.
    pub write_faults: u64,
    /// Store ops delayed by injected latency windows.
    pub delays: u64,
    /// Executors the injector killed.
    pub kills: u64,
    /// Executors the injector drained.
    pub drains: u64,
    /// Whether any injected kill destroyed live shuffle blocks (always
    /// `false` under stores that survive executor loss).
    pub expected_rollback: bool,
    /// The case's observability handle, for asserting on
    /// `faults_injected_total` and friends.
    pub obs: Obs,
}

/// Runs `workload` under `kind` with the given plan (None = fault-free)
/// on `topo`. Fully deterministic: same inputs, same [`CaseResult`].
pub fn run_case(
    workload: &dyn ChaosWorkload,
    kind: ShuffleStoreKind,
    plan: Option<&FaultPlan>,
    topo: &ChaosTopology,
) -> CaseResult {
    let mut sim = Sim::new(topo.sim_seed);
    let obs = Obs::enabled();
    let faults = StoreFaults::new().with_metrics(obs.metrics.clone());
    if let Some(p) = plan {
        p.arm_store_faults(&faults);
    }
    let cfg = EngineConfig {
        obs: obs.clone(),
        workers: topo.workers,
        ..EngineConfig::default()
    };
    let wrapped = faults.clone();
    let d = Deployment::with_wrapped_store(
        &mut sim,
        topo.cloud_spec(),
        kind,
        M4_XLARGE,
        cfg,
        move |store| FaultStore::wrap(store, wrapped),
    );
    if topo.vm_cores > 0 {
        d.add_vm_workers(&mut sim, M4_4XLARGE, topo.vm_cores.min(M4_4XLARGE.vcpus));
    }
    if topo.initial_lambdas > 0 {
        d.add_lambda_executors(&mut sim, topo.initial_lambdas);
    }
    for wave in 1..=u64::from(topo.wave_count) {
        let d2 = d.clone();
        let n = topo.wave_size;
        sim.schedule_at(SimTime::from_secs(wave * topo.wave_every_s), move |sim| {
            d2.add_lambda_executors(sim, n);
        });
    }
    if topo.rescue_cores > 0 {
        let d2 = d.clone();
        let mut left = topo.rescue_cores;
        sim.schedule_at(SimTime::from_secs(topo.rescue_at_s), move |sim| {
            while left > 0 {
                let chunk = left.min(M4_4XLARGE.vcpus);
                d2.add_vm_workers(sim, M4_4XLARGE, chunk);
                left -= chunk;
            }
        });
    }
    let report = match plan {
        Some(p) => inject::arm(&mut sim, &d, p),
        None => InjectionReport::default(),
    };
    let done: Rc<RefCell<Option<(u64, SimTime)>>> = Rc::new(RefCell::new(None));
    let sink = Rc::clone(&done);
    workload.submit(
        &mut sim,
        d.engine(),
        Box::new(move |sim, fp| {
            *sink.borrow_mut() = Some((fp, sim.now()));
        }),
    );
    sim.run();
    let events = d.engine().event_log().snapshot();
    let rollbacks = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. }))
        .count();
    let executor_losses = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::ExecutorLost { .. }))
        .count();
    let recomputed = d
        .engine()
        .completed_job_metrics()
        .iter()
        .map(|m| m.tasks_recomputed)
        .sum();
    let (fingerprint, completed_at) = match done.borrow_mut().take() {
        Some((fp, at)) => (Some(fp), Some(at)),
        None => (None, None),
    };
    CaseResult {
        store: kind,
        fingerprint,
        completed_at,
        rollbacks,
        executor_losses,
        recomputed,
        fetch_faults: faults.gets_failed(),
        write_faults: faults.puts_failed(),
        delays: faults.ops_delayed(),
        kills: report.kills(),
        drains: report.drains(),
        expected_rollback: report.expected_rollback(),
        obs,
    }
}

/// An oracle violation: which store broke which invariant under which
/// plan. [`ChaosFailure::repro_line`] prints the one-line deterministic
/// reproduction.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The workload that was running.
    pub workload: String,
    /// The store kind whose run violated the oracle.
    pub store: ShuffleStoreKind,
    /// What went wrong.
    pub reason: String,
    /// The plan that provoked it (possibly shrunk).
    pub plan: FaultPlan,
    /// The violating run's flight-recorder dump — a replayable JSON
    /// snapshot of its recent task transitions, rollbacks and injected
    /// faults, with [`ChaosFailure::repro_line`] embedded. `None` only
    /// for failures constructed without a run (e.g. in tests).
    pub flight_dump: Option<String>,
}

impl ChaosFailure {
    /// The copy-pasteable replay line.
    pub fn repro_line(&self) -> String {
        format!("CHAOS_SEED={} CHAOS_PLAN={}", self.plan.seed, self.plan.to_json())
    }
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chaos oracle violated [{} / {} shuffle]: {}\n  replay: {}",
            self.workload,
            self.store,
            self.reason,
            self.repro_line()
        )
    }
}

impl std::error::Error for ChaosFailure {}

/// Both halves of a differential run that passed the oracle.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The shared-store (HDFS) half.
    pub hdfs: CaseResult,
    /// The executor-local half.
    pub local: CaseResult,
}

/// The differential oracle for one workload on one topology. Construction
/// runs the fault-free references under both store kinds and pins their
/// (identical) fingerprint; [`Oracle::check`] then judges fault plans
/// against it.
pub struct Oracle<'a> {
    workload: &'a dyn ChaosWorkload,
    topo: ChaosTopology,
    reference: u64,
}

impl<'a> Oracle<'a> {
    /// Runs the two fault-free references and pins the fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if a fault-free run fails to complete, rolls back, or the
    /// two store kinds disagree — the harness itself is broken then, and
    /// no plan verdict would be meaningful.
    pub fn new(workload: &'a dyn ChaosWorkload, topo: ChaosTopology) -> Self {
        let hdfs = run_case(workload, ShuffleStoreKind::Hdfs, None, &topo);
        let local = run_case(workload, ShuffleStoreKind::Local, None, &topo);
        let name = workload.name();
        let fp_hdfs = hdfs
            .fingerprint
            .unwrap_or_else(|| panic!("{name}: fault-free HDFS reference did not complete"));
        let fp_local = local
            .fingerprint
            .unwrap_or_else(|| panic!("{name}: fault-free local reference did not complete"));
        assert_eq!(
            fp_hdfs, fp_local,
            "{name}: fault-free output differs across store kinds"
        );
        assert_eq!(hdfs.rollbacks, 0, "{name}: fault-free HDFS run rolled back");
        assert_eq!(local.rollbacks, 0, "{name}: fault-free local run rolled back");
        Oracle {
            workload,
            topo,
            reference: fp_hdfs,
        }
    }

    /// The pinned fault-free fingerprint.
    pub fn reference_fingerprint(&self) -> u64 {
        self.reference
    }

    /// The topology cases run on.
    pub fn topology(&self) -> &ChaosTopology {
        &self.topo
    }

    /// Runs `plan` under both store kinds and checks every invariant.
    pub fn check(&self, plan: &FaultPlan) -> Result<PlanOutcome, Box<ChaosFailure>> {
        let hdfs = run_case(self.workload, ShuffleStoreKind::Hdfs, Some(plan), &self.topo);
        self.check_store(&hdfs, plan)?;
        let local = run_case(self.workload, ShuffleStoreKind::Local, Some(plan), &self.topo);
        self.check_store(&local, plan)?;
        Ok(PlanOutcome { hdfs, local })
    }

    fn fail(&self, r: &CaseResult, reason: String, plan: &FaultPlan) -> Box<ChaosFailure> {
        let mut failure = ChaosFailure {
            workload: self.workload.name().to_string(),
            store: r.store,
            reason,
            plan: plan.clone(),
            flight_dump: None,
        };
        // Dump the violating run's flight ring with the repro line
        // embedded: the dump is both post-mortem evidence and, via the
        // line, a deterministic test vector.
        failure.flight_dump = Some(
            r.obs
                .flight
                .dump_json(&failure.reason, Some(&failure.repro_line())),
        );
        Box::new(failure)
    }

    fn check_store(&self, r: &CaseResult, plan: &FaultPlan) -> Result<(), Box<ChaosFailure>> {
        let Some(fp) = r.fingerprint else {
            return Err(self.fail(r, "run did not complete".into(), plan));
        };
        if fp != self.reference {
            return Err(self.fail(
                r,
                format!(
                    "output fingerprint {fp:#018x} diverged from fault-free reference {:#018x}",
                    self.reference
                ),
                plan,
            ));
        }
        // A kill can strike an executor mid-fetch and abort the attempt
        // before its failed fetch reaches the scheduler, so the forward
        // implication (fault fired → rollback) is only asserted on plans
        // with no executor churn at all.
        let churn_free = !plan.has_kills() && !plan.has_drains();
        match r.store {
            ShuffleStoreKind::Hdfs => {
                if r.rollbacks > 0 && r.fetch_faults == 0 {
                    return Err(self.fail(
                        r,
                        format!(
                            "{} stage(s) rolled back under shared shuffle with no injected \
                             fetch failure ({} executor losses) — executor loss must not \
                             cascade when blocks survive",
                            r.rollbacks, r.executor_losses
                        ),
                        plan,
                    ));
                }
                if churn_free && r.fetch_faults > 0 && r.rollbacks == 0 {
                    return Err(self.fail(
                        r,
                        format!(
                            "{} injected fetch failure(s) fired but no stage rolled back",
                            r.fetch_faults
                        ),
                        plan,
                    ));
                }
            }
            ShuffleStoreKind::Local => {
                let explained =
                    r.expected_rollback || r.fetch_faults > 0 || plan.has_drains();
                if r.rollbacks > 0 && !explained {
                    return Err(self.fail(
                        r,
                        format!(
                            "{} stage(s) rolled back though no kill destroyed live shuffle \
                             blocks and no fetch failure was injected",
                            r.rollbacks
                        ),
                        plan,
                    ));
                }
                if r.expected_rollback && r.rollbacks == 0 {
                    return Err(self.fail(
                        r,
                        "a kill destroyed live shuffle blocks of a completed stage but no \
                         rollback was recorded"
                            .into(),
                        plan,
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::ChaosSparkPi;

    #[test]
    fn oracle_accepts_the_empty_plan() {
        let w = ChaosSparkPi::small();
        let oracle = Oracle::new(&w, ChaosTopology::default());
        let outcome = oracle.check(&FaultPlan::empty()).expect("empty plan passes");
        assert_eq!(outcome.hdfs.fingerprint, outcome.local.fingerprint);
        assert_eq!(outcome.hdfs.rollbacks + outcome.local.rollbacks, 0);
        assert_eq!(outcome.hdfs.kills + outcome.local.kills, 0);
    }

    #[test]
    fn failure_prints_a_parseable_repro_line() {
        let f = ChaosFailure {
            workload: "pagerank".into(),
            store: ShuffleStoreKind::Local,
            reason: "test".into(),
            plan: FaultPlan::generate(7),
            flight_dump: None,
        };
        let line = f.repro_line();
        let json = line.split_once("CHAOS_PLAN=").unwrap().1;
        assert_eq!(FaultPlan::from_json(json).unwrap(), FaultPlan::generate(7));
        assert!(line.starts_with("CHAOS_SEED=7 "));
        assert!(f.to_string().contains("replay: CHAOS_SEED=7"));
    }
}
