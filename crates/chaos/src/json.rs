//! A tiny JSON reader for fault plans.
//!
//! The hermetic workspace has no serde, and fault plans only need a sliver
//! of JSON: objects, arrays, strings and unsigned integers. This module
//! parses exactly that sliver with a recursive-descent parser; the writer
//! side is plain string formatting in [`crate::FaultPlan::to_json`].

/// A parsed JSON value restricted to what fault plans use.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// An unsigned integer (all plan fields are non-negative).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required numeric field of an object.
    pub fn num(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            Some(_) => Err(format!("field {key:?} is not a number")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// A required string field of an object.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub(crate) fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Plan strings are bare identifiers; only the escapes a
                    // hand-edited plan could plausibly contain are accepted.
                    match self.bytes.get(self.pos + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_plan_shape() {
        let v = parse(r#"{"seed":7,"events":[{"type":"kill","at_us":5000000}]}"#).unwrap();
        assert_eq!(v.num("seed").unwrap(), 7);
        let Some(Json::Arr(events)) = v.get("events") else {
            panic!("events missing");
        };
        assert_eq!(events[0].str_field("type").unwrap(), "kill");
        assert_eq!(events[0].num("at_us").unwrap(), 5_000_000);
    }

    #[test]
    fn whitespace_is_ignored() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1), Json::Num(2)])));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }
}
