//! # splitserve-chaos — deterministic fault injection + differential oracle
//!
//! The paper's fault-tolerance story (§4.3) makes a sharp, checkable
//! claim: with a *shared* shuffle store, losing an executor loses no
//! shuffle data, so Spark's execution-rollback cascade never happens;
//! with *executor-local* shuffle, a lost executor that held live blocks
//! forces completed stages to re-run, yet lineage still recovers the
//! correct result. This crate turns that claim into a property the test
//! suite can sweep:
//!
//! 1. **[`FaultPlan`]** — a seeded, serializable schedule of fault events
//!    (kills, correlated burst kills, segue drains, nth-op fetch/write
//!    failures, store latency windows, stragglers, capacity churn). One
//!    `u64` seed deterministically expands to one plan
//!    ([`FaultPlan::generate`], or [`FaultPlan::generate_in_window`] to
//!    aim the same event mix at a caller-chosen time window — e.g. the
//!    tenant-fleet sweeps, whose traces run much longer than a single
//!    job), and every plan round-trips through a one-line JSON form
//!    ([`FaultPlan::to_json`]).
//! 2. **The injector** ([`inject::arm`]) — arms a plan against a live
//!    [`Deployment`](splitserve::Deployment): kills ride the engine's
//!    real `kill_executor` path, storage faults ride a store decorator
//!    ([`splitserve_storage::FaultStore`]) interposed *under* the metrics
//!    layer, stragglers ride the scheduler's per-executor speed factor.
//!    Every performed fault bumps `faults_injected_total{kind}`.
//! 3. **The differential oracle** ([`Oracle`]) — runs each plan under
//!    both store kinds on a fixed churn topology ([`ChaosTopology`]) and
//!    asserts output fingerprints stay bit-identical to the fault-free
//!    reference while rollbacks appear exactly when the store semantics
//!    say they must.
//! 4. **Shrinking** ([`check_or_shrink`]) — a failing plan is greedily
//!    reduced to a minimal reproduction and printed as a replayable
//!    `CHAOS_SEED=<seed> CHAOS_PLAN=<json>` line.
//!
//! ```
//! use splitserve_chaos::{check_or_shrink, ChaosTopology, FaultPlan, Oracle};
//! use splitserve_chaos::workloads::{ChaosSparkPi, ChaosWorkload};
//!
//! let w = ChaosSparkPi::small();
//! let oracle = Oracle::new(&w, ChaosTopology::default());
//! let plan = FaultPlan::generate(42);
//! check_or_shrink(&oracle, &plan).expect("oracle holds for seed 42");
//! ```

#![warn(missing_docs)]

mod harness;
mod json;
mod plan;
mod shrink;

pub mod inject;
pub mod workloads;

pub use harness::{run_case, CaseResult, ChaosFailure, ChaosTopology, Oracle, PlanOutcome};
pub use inject::InjectionReport;
pub use plan::{FaultEvent, FaultPlan};
pub use shrink::{check_or_shrink, shrink_events};
