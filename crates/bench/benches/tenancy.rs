//! Control-plane microbenchmarks: raw admission throughput (the pure
//! controller, no engine) and trace-generation throughput. These guard
//! the fleet example's scalability — at 10k+ jobs the controller and the
//! generators are on the per-job hot path.

use splitserve::tenancy::{
    generate_jobs, AdmissionController, AdmissionRequest, ArrivalProcess, ArrivalSpec,
    DurationModel, SloClass, TenantSpec,
};
use splitserve_bench::timing::{bench, black_box};
use splitserve_obs::TenantId;

const SAMPLES: usize = 5;

fn specs(n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| TenantSpec {
            id: TenantId::new(format!("t{i:03}")),
            class: SloClass::all()[i % 3],
            weight: 1 + (i % 3) as u32,
            max_concurrent: 4,
        })
        .collect()
}

/// Pushes `jobs` admissions through a 64-slot controller over `tenants`
/// tenants, completing the oldest running job whenever the pool is more
/// than half full — a steady-state mix of arrivals, dispatches, and
/// completions.
fn admission_churn(tenants: usize, jobs: u64) -> usize {
    let specs = specs(tenants);
    let mut ctrl = AdmissionController::new(64, &specs);
    let mut running: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut now = 0u64;
    for job in 0..jobs {
        now += 1_000;
        let ds = ctrl.on_arrival(
            now,
            AdmissionRequest {
                job,
                tenant: specs[(job as usize) % tenants].id.clone(),
                cores: 1 + (job % 4) as u32,
                service_estimate_us: 500_000,
            },
        );
        running.extend(ds.iter().map(|d| d.job));
        while ctrl.slots_free() < 32 {
            let done = running.pop_front().expect("slots held by someone");
            now += 100;
            let ds = ctrl.on_complete(now, done);
            running.extend(ds.iter().map(|d| d.job));
        }
    }
    while let Some(done) = running.pop_front() {
        now += 100;
        let ds = ctrl.on_complete(now, done);
        running.extend(ds.iter().map(|d| d.job));
    }
    assert!(ctrl.is_idle());
    ctrl.log().len()
}

fn main() {
    bench("tenancy/admission_50k_jobs_100_tenants", SAMPLES, || {
        black_box(admission_churn(100, 50_000));
    });
    bench("tenancy/admission_50k_jobs_8_tenants", SAMPLES, || {
        black_box(admission_churn(8, 50_000));
    });
    bench("tenancy/arrivals_100k_poisson", SAMPLES, || {
        let spec = ArrivalSpec {
            process: ArrivalProcess::Poisson {
                rate_per_sec: 100.0,
            },
            duration: DurationModel {
                mean_secs: 1.0,
                cv: 0.8,
            },
            cores_choices: vec![(1, 2), (2, 1), (4, 1)],
            slo_multiple: 4.0,
            slo_floor_secs: 2.0,
            horizon_secs: 1_000.0,
            max_jobs: 100_000,
        };
        black_box(generate_jobs(&spec, 7));
    });
}
