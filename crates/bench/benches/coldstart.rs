//! Cold-start policy-plane benchmarks. Run with `cargo bench --bench
//! coldstart`; one JSON line per benchmark, routed by `scripts/bench.sh`
//! into `BENCH_coldstart.json`.
//!
//! Two questions:
//!
//! 1. **What does one policy decision cost?** The `decision_*_1m`
//!    benchmarks time a million `keepalive_us` calls per policy — the
//!    call on every container park. `scripts/verify.sh` gates the
//!    worst policy at ≤100 ns/call: the decision sits on the release
//!    path of every Lambda the allocator drains, and the hybrid policy
//!    must answer from its cached windows, not recompute quantiles.
//! 2. **Does the warm pool hold up under churn?** The `churn_100k_*`
//!    benchmarks push 100k invoke/release pairs with recurrent idle
//!    gaps through a full [`WarmPool`] per policy — MRU serve, lazy
//!    expiry, cap enforcement and the decision/stat logs all included.
//!
//! [`WarmPool`]: splitserve_cloud::WarmPool

use splitserve_bench::timing::{bench, black_box};
use splitserve_cloud::{ColdStartSpec, HybridHistogramSpec, ParkOrigin, WarmPool};

const SAMPLES: usize = 5;
const DECISION_CALLS: u64 = 1_000_000;
const CHURN_PAIRS: u64 = 100_000;

fn arms() -> Vec<(&'static str, ColdStartSpec)> {
    vec![
        ("fixed", ColdStartSpec::fixed_secs(900)),
        ("pressure", ColdStartSpec::UnloadOnPressure { cap_mb: 6_144 }),
        (
            "hybrid",
            ColdStartSpec::HybridHistogram(HybridHistogramSpec::default()),
        ),
    ]
}

/// A million park decisions against live policy state. The hybrid arm
/// is pre-trained with enough samples that it answers from its learned
/// histogram (the cached-window fast path), with a periodic `record`
/// mixed in to exercise cache invalidation the way the pool does.
fn bench_decisions() {
    for (label, spec) in arms() {
        let mut policy = spec.build();
        for i in 0..64 {
            policy.record(0, Some(30_000_000 + (i % 7) * 1_000_000), i % 4 == 0);
        }
        let name = format!("coldstart/decision_{label}_1m");
        bench(&name, SAMPLES, || {
            let mut acc = 0u64;
            for i in 0..DECISION_CALLS {
                let now = i * 250_000;
                if i % 1_024 == 0 {
                    policy.record(0, Some(30_000_000), false);
                }
                acc = acc.wrapping_add(policy.keepalive_us(0, now, ParkOrigin::Release));
            }
            black_box(acc);
        });
    }
}

/// 100k invoke/release pairs through the full pool: bursts of 8
/// containers, a recurrent inter-burst gap that defeats nothing, defeats
/// the fixed window, or trains the histogram — the policies diverge but
/// every arm does the same pool bookkeeping.
fn bench_churn() {
    for (label, spec) in arms() {
        let name = format!("coldstart/churn_100k_{label}");
        bench(&name, SAMPLES, || {
            let mut pool = WarmPool::new(spec.build(), 0, 1_536);
            let mut t = 0u64;
            for i in 0..CHURN_PAIRS {
                pool.invoke(t, (i % 4) as u32, 1_536);
                t += 500_000;
                pool.release(t, (i % 4) as u32, 1_536);
                // Every 8th pair ends a burst: idle out past the short
                // windows before the next one.
                t += if i % 8 == 7 { 30_000_000 } else { 50_000 };
            }
            pool.finalize(t);
            black_box(pool.stats());
        });
    }
}

fn main() {
    bench_decisions();
    bench_churn();
}
