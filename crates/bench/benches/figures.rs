//! One benchmark per paper figure: times the quick-fidelity variant of
//! each experiment, so `cargo bench --bench figures` regenerates (and
//! regression-guards) every artifact of the evaluation. One JSON line
//! per figure.

use splitserve::ProfileMode;
use splitserve_bench::experiments as ex;
use splitserve_bench::experiments::Fidelity;
use splitserve_bench::timing::{bench, black_box};

const SAMPLES: usize = 5;

fn main() {
    bench("figures/fig1_cost_curve", SAMPLES, || {
        black_box(ex::fig1());
    });
    bench("figures/fig2_forecast", SAMPLES, || {
        black_box(ex::fig2(7));
    });
    bench("figures/fig4_lambda_only_quick", SAMPLES, || {
        black_box(ex::fig4(ProfileMode::LambdaOnly, Fidelity::Quick, 7));
    });
    bench("figures/fig4_vm_only_quick", SAMPLES, || {
        black_box(ex::fig4(ProfileMode::VmOnly, Fidelity::Quick, 7));
    });
    bench("figures/fig5_tpcds_quick", SAMPLES, || {
        black_box(ex::fig5(Fidelity::Quick, 7));
    });
    bench("figures/fig6_pagerank_quick", SAMPLES, || {
        black_box(ex::fig6(Fidelity::Quick, 7));
    });
    bench("figures/fig7_timeline_quick", SAMPLES, || {
        black_box(ex::fig7(Fidelity::Quick, 7));
    });
    bench("figures/fig8_kmeans_quick", SAMPLES, || {
        black_box(ex::fig8(Fidelity::Quick, 7));
    });
    bench("figures/fig9_sparkpi_quick", SAMPLES, || {
        black_box(ex::fig9(Fidelity::Quick, 7));
    });
    bench("figures/ablation_stores_quick", SAMPLES, || {
        black_box(ex::ablation_stores(Fidelity::Quick, 7));
    });
    bench("figures/ablation_segue_threshold_quick", SAMPLES, || {
        black_box(ex::ablation_segue_threshold(Fidelity::Quick, 7));
    });
}
