//! One criterion group per paper figure: times the quick-fidelity variant
//! of each experiment, so `cargo bench` regenerates (and regression-guards)
//! every artifact of the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use splitserve::ProfileMode;
use splitserve_bench::experiments as ex;
use splitserve_bench::experiments::Fidelity;

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn fig1(c: &mut Criterion) {
    cfg(c).bench_function("fig1_cost_curve", |b| b.iter(ex::fig1));
}

fn fig2(c: &mut Criterion) {
    cfg(c).bench_function("fig2_forecast", |b| b.iter(|| ex::fig2(7)));
}

fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_profiling");
    g.sample_size(10);
    g.bench_function("lambda_only_quick", |b| {
        b.iter(|| ex::fig4(ProfileMode::LambdaOnly, Fidelity::Quick, 7))
    });
    g.bench_function("vm_only_quick", |b| {
        b.iter(|| ex::fig4(ProfileMode::VmOnly, Fidelity::Quick, 7))
    });
    g.finish();
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_tpcds");
    g.sample_size(10);
    g.bench_function("four_queries_quick", |b| {
        b.iter(|| ex::fig5(Fidelity::Quick, 7))
    });
    g.finish();
}

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_pagerank");
    g.sample_size(10);
    g.bench_function("eight_scenarios_quick", |b| {
        b.iter(|| ex::fig6(Fidelity::Quick, 7))
    });
    g.finish();
}

fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_timeline");
    g.sample_size(10);
    g.bench_function("three_timelines_quick", |b| {
        b.iter(|| ex::fig7(Fidelity::Quick, 7))
    });
    g.finish();
}

fn fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_kmeans");
    g.sample_size(10);
    g.bench_function("trials_quick", |b| b.iter(|| ex::fig8(Fidelity::Quick, 7)));
    g.finish();
}

fn fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_sparkpi");
    g.sample_size(10);
    g.bench_function("six_scenarios_quick", |b| {
        b.iter(|| ex::fig9(Fidelity::Quick, 7))
    });
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("stores_quick", |b| {
        b.iter(|| ex::ablation_stores(Fidelity::Quick, 7))
    });
    g.bench_function("segue_threshold_quick", |b| {
        b.iter(|| ex::ablation_segue_threshold(Fidelity::Quick, 7))
    });
    g.finish();
}

criterion_group!(figures, fig1, fig2, fig4, fig5, fig6, fig7, fig8, fig9, ablations);
criterion_main!(figures);
