//! Shuffle data-plane hot-path benchmarks: the map-side combine+encode
//! and reduce-side decode+merge loops this repo's fast path targets, plus
//! end-to-end wall time of the four paper workloads whose stages are
//! dominated by those loops. Run with `cargo bench --bench shuffle_hot`;
//! one JSON line per benchmark (see `scripts/bench.sh`).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use splitserve_bench::timing::{bench, black_box};
use splitserve_des::{Fabric, Sim};
use splitserve_engine::{
    collect_partitions, input_shuffles, Dataset, Engine, EngineConfig, ExecutorDesc, TaskContext,
    WorkModel,
};
use splitserve_storage::LocalDiskStore;
use splitserve_workloads::{CloudSort, KMeans, PageRank, TpcdsLoad, TpcdsQuery};

const SAMPLES: usize = 5;

/// Map side of `reduceByKey`: hash-group 1M records down to 256 keys and
/// encode the survivors into 8 buckets — the single hottest loop of every
/// aggregating stage.
fn bench_map_combine() {
    let ds = Dataset::parallelize((0..1_000_000u64).map(|i| (i % 256, 1u64)).collect(), 1)
        .reduce_by_key(8, |a, b| a + b);
    let deps = input_shuffles(&ds.node());
    let dep = Arc::clone(&deps[0]);
    bench("shuffle/map_combine_encode_1m", SAMPLES, || {
        let mut ctx = TaskContext::empty(WorkModel::default());
        let data = dep.parent.compute(&mut ctx, 0);
        black_box((dep.partitioner)(&mut ctx, data));
    });
}

/// Map side of `groupByKey`: no combine, every record is encoded — the
/// exact-size pooled-buffer encode path carries the whole cost.
fn bench_map_encode_only() {
    let ds = Dataset::parallelize((0..500_000u64).map(|i| (i % 1024, i)).collect(), 1)
        .group_by_key(8);
    let deps = input_shuffles(&ds.node());
    let dep = Arc::clone(&deps[0]);
    bench("shuffle/map_encode_nocombine_500k", SAMPLES, || {
        let mut ctx = TaskContext::empty(WorkModel::default());
        let data = dep.parent.compute(&mut ctx, 0);
        black_box((dep.partitioner)(&mut ctx, data));
    });
}

/// Reduce side of `reduceByKey`: stream-decode the fetched blocks and
/// merge into the hash accumulator.
fn bench_reduce_merge() {
    let ds = Dataset::parallelize((0..1_000_000u64).map(|i| (i % 4096, 1u64)).collect(), 4)
        .reduce_by_key(1, |a, b| a + b);
    let node = ds.node();
    let deps = input_shuffles(&node);
    let dep = Arc::clone(&deps[0]);
    let mut blocks = Vec::new();
    for m in 0..dep.parent.num_partitions() {
        let mut ctx = TaskContext::empty(WorkModel::default());
        let data = dep.parent.compute(&mut ctx, m);
        for b in (dep.partitioner)(&mut ctx, data) {
            if !b.bytes.is_empty() {
                blocks.push(b.bytes);
            }
        }
    }
    bench("shuffle/reduce_decode_merge_1m", SAMPLES, || {
        let mut inputs = splitserve_rt::FastMap::default();
        inputs.insert(dep.id, blocks.clone());
        let mut ctx = TaskContext::new(WorkModel::default(), inputs);
        black_box(node.compute(&mut ctx, 0));
    });
}

fn rig(seed: u64, execs: usize) -> (Sim, Engine) {
    rig_workers(seed, execs, 1)
}

fn rig_workers(seed: u64, execs: usize, workers: usize) -> (Sim, Engine) {
    let fabric = Fabric::new();
    let store = Rc::new(LocalDiskStore::new(fabric.clone()));
    let engine = Engine::new(
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
        store,
    );
    let mut sim = Sim::new(seed);
    for i in 0..execs {
        let nic = fabric.add_link(1e9, format!("n{i}"));
        let disk = fabric.add_link(1e9, format!("d{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
    }
    (sim, engine)
}

/// Submits `plan` on a fresh 4-executor rig and runs the sim to
/// completion, returning the output row count (asserted non-zero so the
/// optimizer cannot elide the job).
fn run_plan<T: Clone + Send + Sync + 'static>(plan: &Dataset<T>) -> usize {
    run_plan_workers(plan, 4, 1)
}

/// `run_plan` with an explicit executor count and worker-pool size, for
/// the `parallel/*` benchmarks that scale the data plane.
fn run_plan_workers<T: Clone + Send + Sync + 'static>(
    plan: &Dataset<T>,
    execs: usize,
    workers: usize,
) -> usize {
    let (mut sim, engine) = rig_workers(7, execs, workers);
    let out = Rc::new(RefCell::new(0usize));
    let o = Rc::clone(&out);
    engine.submit_job(&mut sim, plan.node(), move |_, r| {
        *o.borrow_mut() = collect_partitions::<T>(r.partitions).len();
    });
    sim.run();
    let n = *out.borrow();
    assert!(n > 0, "workload must produce output");
    n
}

fn bench_workloads() {
    bench("e2e/cloudsort_20k", SAMPLES, || {
        let sort = CloudSort::new(20_000, 4, 3);
        black_box(run_plan(&sort.plan()));
    });
    bench("e2e/tpcds_q95_tiny", SAMPLES, || {
        let q = TpcdsLoad::tiny(TpcdsQuery::Q95, 7);
        black_box(run_plan(&q.plan()));
    });
    bench("e2e/pagerank_2k_2iter", SAMPLES, || {
        let pr = PageRank::new(2_000, 2, 4, 9);
        black_box(run_plan(&pr.plan()));
    });
    bench("e2e/kmeans_5k", SAMPLES, || {
        let (mut sim, engine) = rig(3, 4);
        let w = KMeans::small(5_000, 4, 11);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        w.run(&mut sim, &engine, move |_, centroids, _| {
            *d.borrow_mut() = !centroids.is_empty();
        });
        sim.run();
        assert!(*done.borrow(), "kmeans must converge");
    });
}

/// End-to-end PageRank wall time as the worker pool scales: same job,
/// same virtual-time answer, different real elapsed time. Sized so task
/// bodies (contribution flat_map, combine+encode, decode+merge) dominate
/// the run — the speedup `scripts/verify.sh` gates on lives here, and
/// `scripts/bench.sh` routes these records into `BENCH_parallel.json`.
fn bench_parallel_pagerank() {
    for workers in [1usize, 2, 4, 8] {
        bench(&format!("parallel/pagerank_e2e_w{workers}"), SAMPLES, || {
            let pr = PageRank::new(200_000, 2, 8, 9);
            black_box(run_plan_workers(&pr.plan(), 8, workers));
        });
    }
}

fn main() {
    bench_map_combine();
    bench_map_encode_only();
    bench_reduce_merge();
    bench_workloads();
    bench_parallel_pagerank();
}
