//! Fleet-scale hot-loop benchmarks guarding the allocation-free fast
//! path. Run with `cargo bench --bench fleet_hot`; one JSON line per
//! benchmark, routed by `scripts/bench.sh` into `BENCH_fleet_hot.json`.
//!
//! Three questions:
//!
//! 1. **Does the dense admission controller hold up under churn?** The
//!    `admission_*` benchmarks push 10k/50k arrivals through a 64-slot
//!    controller with steady completions — the pure control-plane loop,
//!    no engine — exercising the single-pass weighted-fair `pick()` over
//!    the dense tenant table.
//! 2. **What does an *enabled* pre-resolved metric handle cost?** The
//!    `handle_record_*_1m` benchmarks time a million record calls
//!    through `CounterHandle` / `HistogramHandle` / `QuantileHandle` on
//!    an enabled registry. `scripts/verify.sh` gates the counter path at
//!    ≤50 ns/call (the string-keyed slow path re-hashes the full label
//!    set every call; the handle is one `OnceLock` deref plus an atomic
//!    or a lock-free bucket bump).
//! 3. **Does the fleet end-to-end loop scale with workers?** The
//!    `fleet_e2e_w{1,4}` pair runs a reduced tenant fleet (one policy)
//!    at 1 and 4 engine worker threads; `scripts/verify.sh` gates the
//!    w1/w4 walltime ratio ≥1.5× on ≥4-core hosts. The data fingerprint
//!    is asserted identical across worker counts — the byte-identity
//!    invariant at bench scale.

use splitserve::tenancy::{
    combined_fingerprint, default_fleet_jobs, default_tenant_specs, fleet_workload,
    run_tenant_fleet, AdmissionController, AdmissionRequest, FleetPolicy, SloClass,
    TenantFleetConfig, TenantSpec,
};
use splitserve_bench::timing::{bench, black_box};
use splitserve_obs::{MetricsRegistry, TenantId};

const SAMPLES: usize = 5;
const HOT_CALLS: u64 = 1_000_000;

fn specs(n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| TenantSpec {
            id: TenantId::new(format!("t{i:03}")),
            class: SloClass::all()[i % 3],
            weight: 1 + (i % 3) as u32,
            max_concurrent: 4,
        })
        .collect()
}

/// Steady-state admission churn: arrivals every ms, completions drain
/// the pool back to half whenever it fills past half — the same mix the
/// fleet example produces, minus the engine.
fn admission_churn(tenants: usize, jobs: u64) -> usize {
    let specs = specs(tenants);
    let mut ctrl = AdmissionController::new(64, &specs);
    let mut running: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut now = 0u64;
    for job in 0..jobs {
        now += 1_000;
        let ds = ctrl.on_arrival(
            now,
            AdmissionRequest {
                job,
                tenant: specs[(job as usize) % tenants].id.clone(),
                cores: 1 + (job % 4) as u32,
                service_estimate_us: 500_000,
            },
        );
        running.extend(ds.iter().map(|d| d.job));
        while ctrl.slots_free() < 32 {
            let done = running.pop_front().expect("slots held by someone");
            now += 100;
            let ds = ctrl.on_complete(now, done);
            running.extend(ds.iter().map(|d| d.job));
        }
    }
    while let Some(done) = running.pop_front() {
        now += 100;
        let ds = ctrl.on_complete(now, done);
        running.extend(ds.iter().map(|d| d.job));
    }
    assert!(ctrl.is_idle());
    ctrl.log().len()
}

fn bench_handle_records() {
    let metrics = MetricsRegistry::enabled();
    let counter = metrics.counter_handle("tasks_completed_total", &[("kind", "vm")]);
    bench("fleet_hot/handle_record_counter_1m", SAMPLES, || {
        for i in 0..HOT_CALLS {
            counter.add(i & 1);
        }
        black_box(&counter);
    });
    let hist = metrics.histogram_handle("task_run_seconds", &[("kind", "vm")]);
    bench("fleet_hot/handle_record_histogram_1m", SAMPLES, || {
        for i in 0..HOT_CALLS {
            hist.observe(i as f64 * 1e-6);
        }
        black_box(&hist);
    });
    let quant = metrics.quantile_handle("task_run_seconds", &[("kind", "vm")]);
    bench("fleet_hot/handle_record_quantile_1m", SAMPLES, || {
        for i in 0..HOT_CALLS {
            quant.record(i as f64 * 1e-6);
        }
        black_box(&quant);
    });
}

/// One reduced fleet run (one policy, dense jobs, full engine plus
/// fabric, admission and billing) at the given worker-thread count.
/// Returns the data fingerprint so the caller can assert worker-count
/// invariance.
fn fleet_run(workers: usize, tenants: &[TenantSpec], jobs: &[splitserve::tenancy::FleetJob]) -> u64 {
    let mut cfg = TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.to_vec(), 40);
    cfg.engine.workers = workers;
    let (wl, sink) = fleet_workload(8);
    let r = run_tenant_fleet(&cfg, jobs, wl);
    black_box(r.cost_usd);
    let fp = combined_fingerprint(&sink.borrow());
    black_box(fp)
}

fn bench_fleet_e2e() {
    let tenants = default_tenant_specs(24);
    let jobs = default_fleet_jobs(&tenants, 11, 1_500, 240.0);
    let fp1 = fleet_run(1, &tenants, &jobs);
    let fp4 = fleet_run(4, &tenants, &jobs);
    assert_eq!(
        fp1, fp4,
        "fleet data fingerprint must not depend on worker count"
    );
    bench("fleet_hot/fleet_e2e_w1", 3, || {
        black_box(fleet_run(1, &tenants, &jobs));
    });
    bench("fleet_hot/fleet_e2e_w4", 3, || {
        black_box(fleet_run(4, &tenants, &jobs));
    });
}

fn main() {
    bench("fleet_hot/admission_10k_jobs_100_tenants", SAMPLES, || {
        black_box(admission_churn(100, 10_000));
    });
    bench("fleet_hot/admission_50k_jobs_100_tenants", SAMPLES, || {
        black_box(admission_churn(100, 50_000));
    });
    bench_handle_records();
    bench_fleet_e2e();
}
