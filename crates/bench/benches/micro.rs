//! Microbenchmarks of the substrates: codec throughput, DES event rate,
//! fabric rebalancing and token-bucket accounting. Run with
//! `cargo bench --bench micro`; one JSON line per benchmark.

use splitserve_bench::timing::{bench, bench_with_setup, black_box};
use splitserve_des::{Fabric, Sim, SimTime, TokenBucket};

const SAMPLES: usize = 9;

fn bench_codec() {
    let records: Vec<(u64, f64)> = (0..10_000).map(|i| (i, i as f64 * 0.5)).collect();
    bench("codec/encode_10k_kv", SAMPLES, || {
        black_box(splitserve_codec::to_bytes(&records).expect("encode"));
    });
    let bytes = splitserve_codec::to_bytes(&records).expect("encode");
    bench("codec/decode_10k_kv", SAMPLES, || {
        let v: Vec<(u64, f64)> = splitserve_codec::from_bytes(&bytes).expect("decode");
        black_box(v);
    });
}

fn bench_des() {
    bench_with_setup(
        "des/schedule_and_run_10k_events",
        SAMPLES,
        || {
            let mut sim = Sim::new(0);
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_micros(i * 7 % 5_000), |_| {});
            }
            sim
        },
        |mut sim| sim.run(),
    );
}

fn bench_fabric() {
    bench_with_setup(
        "fabric/200_flows_shared_link",
        SAMPLES,
        || {
            let sim = Sim::new(0);
            let fabric = Fabric::new();
            let link = fabric.add_link(1e9, "l");
            (sim, fabric, link)
        },
        |(mut sim, fabric, link)| {
            for i in 0..200u64 {
                fabric.start_flow(&mut sim, &[link], 1_000 + i * 10, |_| {});
            }
            sim.run();
        },
    );
}

fn bench_token_bucket() {
    bench_with_setup(
        "des/token_bucket_100k_reserves",
        SAMPLES,
        || TokenBucket::new(3_500.0, 500.0),
        |mut tb| {
            for i in 0..100_000u64 {
                let t = SimTime::from_micros(i * 3);
                let _ = tb.reserve(t, 1.0);
            }
            black_box(tb);
        },
    );
}

fn main() {
    bench_codec();
    bench_des();
    bench_fabric();
    bench_token_bucket();
}
