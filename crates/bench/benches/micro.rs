//! Microbenchmarks of the substrates: codec throughput, DES event rate,
//! fabric rebalancing and token-bucket accounting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use splitserve_des::{Fabric, Sim, SimTime, TokenBucket};

fn bench_codec(c: &mut Criterion) {
    let records: Vec<(u64, f64)> = (0..10_000).map(|i| (i, i as f64 * 0.5)).collect();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("encode_10k_kv", |b| {
        b.iter(|| splitserve_codec::to_bytes(&records).expect("encode"))
    });
    let bytes = splitserve_codec::to_bytes(&records).expect("encode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("decode_10k_kv", |b| {
        b.iter(|| {
            let v: Vec<(u64, f64)> = splitserve_codec::from_bytes(&bytes).expect("decode");
            v
        })
    });
    g.finish();
}

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_and_run_10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Sim::new(0);
                for i in 0..10_000u64 {
                    sim.schedule_at(SimTime::from_micros(i * 7 % 5_000), |_| {});
                }
                sim
            },
            |mut sim| sim.run(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.bench_function("200_flows_shared_link", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new(0);
                let fabric = Fabric::new();
                let link = fabric.add_link(1e9, "l");
                (sim, fabric, link)
            },
            |(mut sim, fabric, link)| {
                for i in 0..200u64 {
                    fabric.start_flow(&mut sim, &[link], 1_000 + i * 10, |_| {});
                }
                sim.run();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_token_bucket(c: &mut Criterion) {
    c.bench_function("token_bucket_100k_reserves", |b| {
        b.iter_batched(
            || TokenBucket::new(3_500.0, 500.0),
            |mut tb| {
                let mut t = SimTime::ZERO;
                for i in 0..100_000u64 {
                    t = SimTime::from_micros(i * 3);
                    let _ = tb.reserve(t, 1.0);
                }
                tb
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_codec, bench_des, bench_fabric, bench_token_bucket);
criterion_main!(benches);
