//! Cost of the observability layer. Run with
//! `cargo bench --bench obs_overhead`; one JSON line per benchmark.
//!
//! Two questions, answered separately:
//!
//! 1. **What does the *disabled* layer cost?** The instrumentation ships
//!    enabled-by-compilation but disabled-by-default at runtime, so every
//!    record call on the hot path costs one `Option` branch. The
//!    `hot_path_disabled` benchmarks time a million such calls to show
//!    the per-call cost is nanoseconds — amortized over a full scenario
//!    run it is far below the 2 % walltime budget. (The true no-obs
//!    baseline predates this code and cannot be rebuilt in-tree, so the
//!    walltime claim is grounded in the enabled-vs-disabled delta plus
//!    the measured per-call cost.)
//! 2. **What does *enabling* it cost?** The `scenario_obs_*` pair runs
//!    the same hybrid-segue PageRank with the layer off and on; the
//!    final line reports the enabled/disabled walltime ratio.

use splitserve::{run_scenario, DriverProgram, Scenario};
use splitserve_bench::experiments::{fig6_spec, fig6_workload, Fidelity};
use splitserve_bench::timing::{bench, black_box};
use splitserve_des::SimTime;
use splitserve_obs::{MetricsRegistry, Obs, SpanRecorder};

const SAMPLES: usize = 9;
const HOT_CALLS: u64 = 1_000_000;

fn bench_hot_path_disabled() {
    let metrics = MetricsRegistry::disabled();
    bench("obs/hot_path_disabled_1m_counter_adds", SAMPLES, || {
        for i in 0..HOT_CALLS {
            metrics.counter_add("tasks_completed_total", &[("kind", "vm")], i & 1);
        }
        black_box(&metrics);
    });
    bench("obs/hot_path_disabled_1m_observes", SAMPLES, || {
        for i in 0..HOT_CALLS {
            metrics.observe("task_run_seconds", &[("kind", "vm")], i as f64 * 1e-6);
        }
        black_box(&metrics);
    });
    let spans = SpanRecorder::disabled();
    bench("obs/hot_path_disabled_1m_span_pairs", SAMPLES, || {
        for i in 0..HOT_CALLS {
            let id = spans.open(SimTime::from_micros(i), "vm", "e-1", "task");
            spans.close(id, SimTime::from_micros(i + 1));
        }
        black_box(&spans);
    });
}

fn scenario_walltime(name: &str, enable: bool) -> u128 {
    bench(name, SAMPLES, || {
        let mut spec = fig6_spec(7);
        let obs = if enable {
            spec.enable_observability()
        } else {
            Obs::disabled()
        };
        let factory =
            move || -> Box<dyn DriverProgram> { Box::new(fig6_workload(Fidelity::Quick, 7)) };
        black_box(run_scenario(Scenario::SsHybridSegue, &spec, &factory));
        black_box(obs);
    })
}

fn main() {
    bench_hot_path_disabled();
    let disabled = scenario_walltime("obs/scenario_obs_disabled", false);
    let enabled = scenario_walltime("obs/scenario_obs_enabled", true);
    let ratio = enabled as f64 / disabled as f64;
    println!(
        "{{\"bench\":\"obs/enabled_over_disabled_ratio\",\"ratio\":{ratio:.4},\
         \"enabled_ns\":{enabled},\"disabled_ns\":{disabled}}}"
    );
}
