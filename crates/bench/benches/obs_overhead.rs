//! Cost of the observability layer. Run with
//! `cargo bench --bench obs_overhead`; one JSON line per benchmark.
//!
//! Two questions, answered separately:
//!
//! 1. **What does the *disabled* layer cost?** The instrumentation ships
//!    enabled-by-compilation but disabled-by-default at runtime, so every
//!    record call on the hot path costs one `Option` branch. The
//!    `hot_path_disabled` benchmarks time a million such calls to show
//!    the per-call cost is nanoseconds — amortized over a full scenario
//!    run it is far below the 2 % walltime budget. (The true no-obs
//!    baseline predates this code and cannot be rebuilt in-tree, so the
//!    walltime claim is grounded in the enabled-vs-disabled delta plus
//!    the measured per-call cost.)
//! 2. **What does *enabling* it cost?** The `scenario_obs_*` pair runs
//!    the same hybrid-segue PageRank with the layer off and on; the
//!    final line reports the enabled/disabled walltime ratio.

use splitserve::{run_scenario, DriverProgram, Scenario};
use splitserve_bench::experiments::{fig6_spec, fig6_workload, Fidelity};
use splitserve_bench::timing::{bench, black_box};
use splitserve_des::SimTime;
use splitserve_obs::{FlightRecorder, MetricsRegistry, Obs, Rollups, SpanRecorder};

const SAMPLES: usize = 9;
const HOT_CALLS: u64 = 1_000_000;

fn bench_hot_path_disabled() {
    let metrics = MetricsRegistry::disabled();
    bench("obs/hot_path_disabled_1m_counter_adds", SAMPLES, || {
        for i in 0..HOT_CALLS {
            metrics.counter_add("tasks_completed_total", &[("kind", "vm")], i & 1);
        }
        black_box(&metrics);
    });
    bench("obs/hot_path_disabled_1m_observes", SAMPLES, || {
        for i in 0..HOT_CALLS {
            metrics.observe("task_run_seconds", &[("kind", "vm")], i as f64 * 1e-6);
        }
        black_box(&metrics);
    });
    let spans = SpanRecorder::disabled();
    bench("obs/hot_path_disabled_1m_span_pairs", SAMPLES, || {
        for i in 0..HOT_CALLS {
            let id = spans.open(SimTime::from_micros(i), "vm", "e-1", "task");
            spans.close(id, SimTime::from_micros(i + 1));
        }
        black_box(&spans);
    });
    // The telemetry plane's three new record paths, all disabled: each
    // must stay one branch, inside the budget PR'd with the original
    // obs layer (single-digit nanoseconds per call).
    bench("obs/hot_path_disabled_1m_digest_records", SAMPLES, || {
        for i in 0..HOT_CALLS {
            metrics.record_quantile("task_run_seconds", &[("kind", "vm")], i as f64 * 1e-6);
        }
        black_box(&metrics);
    });
    let rollups = Rollups::disabled();
    bench("obs/hot_path_disabled_1m_rollup_records", SAMPLES, || {
        for i in 0..HOT_CALLS {
            rollups.record(
                "task_run_seconds",
                &[("kind", "vm")],
                SimTime::from_micros(i),
                i as f64 * 1e-6,
            );
        }
        black_box(&rollups);
    });
    let flight = FlightRecorder::disabled();
    bench("obs/hot_path_disabled_1m_flight_records", SAMPLES, || {
        for i in 0..HOT_CALLS {
            flight.record(SimTime::from_micros(i), "task-finished", &[("part", "0")]);
        }
        black_box(&flight);
    });
}

/// What the *enabled* digest costs per record: the log-bucket index is
/// one `ln` plus a BTreeMap upsert. Not on any disabled-path budget,
/// but recorded so regressions in the sketch itself are visible.
fn bench_digest_enabled() {
    let metrics = MetricsRegistry::enabled();
    bench("obs/digest_enabled_1m_records", SAMPLES, || {
        for i in 0..HOT_CALLS {
            metrics.record_quantile("task_run_seconds", &[("kind", "vm")], (i + 1) as f64 * 1e-6);
        }
        black_box(&metrics);
    });
}

fn scenario_walltime(name: &str, enable: bool) -> u128 {
    bench(name, SAMPLES, || {
        let mut spec = fig6_spec(7);
        let obs = if enable {
            spec.enable_observability()
        } else {
            Obs::disabled()
        };
        let factory =
            move || -> Box<dyn DriverProgram> { Box::new(fig6_workload(Fidelity::Quick, 7)) };
        black_box(run_scenario(Scenario::SsHybridSegue, &spec, &factory));
        black_box(obs);
    })
}

fn main() {
    bench_hot_path_disabled();
    bench_digest_enabled();
    let disabled = scenario_walltime("obs/scenario_obs_disabled", false);
    let enabled = scenario_walltime("obs/scenario_obs_enabled", true);
    let ratio = enabled as f64 / disabled as f64;
    println!(
        "{{\"bench\":\"obs/enabled_over_disabled_ratio\",\"ratio\":{ratio:.4},\
         \"enabled_ns\":{enabled},\"disabled_ns\":{disabled}}}"
    );
}
