//! # splitserve-bench — the experiment harness
//!
//! Regenerates every figure of the SplitServe paper's evaluation (§5):
//! each `fig*` function in [`experiments`] builds the workload, runs the
//! relevant [`Scenario`](splitserve::Scenario)s on the simulated cloud and
//! returns a results [`Table`](report::Table). The binaries in `src/bin`
//! print the tables (and CSV with `--csv`); the `benches/` binaries use
//! the in-tree [`timing`] harness to time reduced-fidelity variants of
//! the same experiments, one JSON line per benchmark.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_cost_curve` | Fig. 1 vCPU cost curves + crossover |
//! | `fig2_forecast` | Fig. 2 demand bands + policy comparison |
//! | `fig4_profiling` | Fig. 4(a,b) PageRank profiling sweeps |
//! | `fig5_tpcds` | Fig. 5 TPC-DS scenario comparison |
//! | `fig6_pagerank` | Fig. 6 PageRank scenario comparison |
//! | `fig7_timeline` | Fig. 7 execution timelines |
//! | `fig8_kmeans` | Fig. 8 K-means perf+cost with error bars |
//! | `fig9_sparkpi` | Fig. 9 SparkPi scenario comparison |
//! | `ablations` | store / segue-threshold / memory sweeps |
//! | `reproduce_all` | everything above, in order |

#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod report;
pub mod timing;
