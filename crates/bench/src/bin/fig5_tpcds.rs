//! Figure 5: TPC-DS queries Q5, Q16, Q94 and Q95 across the scenarios.

use splitserve_bench::experiments::{fig5, Fidelity};

fn main() {
    let table = fig5(Fidelity::from_args(), splitserve_bench::cli::seed_from_args());
    splitserve_bench::cli::emit(&table);
}
