//! Figure 1: cost of one vCPU on a m4.large vs a 1 536 MB Lambda.

use splitserve_bench::experiments::{fig1, fig1_crossover_secs};

fn main() {
    let table = fig1();
    splitserve_bench::cli::emit(&table);
    println!(
        "Lambda overtakes the m4.large vCPU after {:.1} s of continuous use.",
        fig1_crossover_secs()
    );
}
