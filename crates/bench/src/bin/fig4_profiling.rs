//! Figure 4: offline PageRank profiling — execution time and cost vs
//! degree of parallelism, (a) all-Lambda and (b) all-VM.

use splitserve::ProfileMode;
use splitserve_bench::experiments::{fig4, Fidelity};

fn main() {
    let f = Fidelity::from_args();
    let seed = splitserve_bench::cli::seed_from_args();
    for mode in [ProfileMode::LambdaOnly, ProfileMode::VmOnly] {
        let table = fig4(mode, f, seed);
        splitserve_bench::cli::emit(&table);
    }
}
