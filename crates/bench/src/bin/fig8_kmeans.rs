//! Figure 8: K-means performance and cost with error bars over
//! independent trials.

use splitserve_bench::experiments::{fig8, Fidelity};

fn main() {
    let table = fig8(Fidelity::from_args(), splitserve_bench::cli::seed_from_args());
    splitserve_bench::cli::emit(&table);
}
