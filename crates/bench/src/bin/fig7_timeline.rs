//! Figure 7: PageRank execution timelines for 16-VM, hybrid, and
//! hybrid-with-segue runs.

use splitserve_bench::experiments::{fig7, timeline_table, Fidelity};

fn main() {
    for tl in fig7(Fidelity::from_args(), splitserve_bench::cli::seed_from_args()) {
        splitserve_bench::cli::emit(&timeline_table(&tl));
    }
}
