//! Figure 6: PageRank (850k pages) across all eight scenarios.

use splitserve_bench::experiments::{fig6, Fidelity};

fn main() {
    let table = fig6(Fidelity::from_args(), splitserve_bench::cli::seed_from_args());
    splitserve_bench::cli::emit(&table);
}
