//! Ablations beyond the paper: shuffle-store sweep, segue-threshold
//! sweep, Lambda memory sweep.

use splitserve_bench::experiments::{
    ablation_cloudsort, ablation_controller, ablation_job_stream, ablation_lambda_memory,
    ablation_segue_threshold, ablation_stores, Fidelity,
};

fn main() {
    let f = Fidelity::from_args();
    let seed = splitserve_bench::cli::seed_from_args();
    splitserve_bench::cli::emit(&ablation_stores(f, seed));
    splitserve_bench::cli::emit(&ablation_segue_threshold(f, seed));
    splitserve_bench::cli::emit(&ablation_lambda_memory(f, seed));
    splitserve_bench::cli::emit(&ablation_cloudsort(f, seed));
    splitserve_bench::cli::emit(&ablation_controller(f, seed));
    splitserve_bench::cli::emit(&ablation_job_stream(f, seed));
}
