//! Runs every figure's experiment in order — the one-shot artifact
//! regeneration entry point. Pass `--quick` for a reduced-fidelity pass.

use splitserve::ProfileMode;
use splitserve_bench::experiments as ex;

fn main() {
    let f = ex::Fidelity::from_args();
    let seed = splitserve_bench::cli::seed_from_args();
    eprintln!("[fig1]");
    splitserve_bench::cli::emit(&ex::fig1());
    println!("crossover: {:.1}s", ex::fig1_crossover_secs());
    eprintln!("[fig2]");
    let (series, policies) = ex::fig2(seed);
    splitserve_bench::cli::emit(&series);
    splitserve_bench::cli::emit(&policies);
    eprintln!("[fig4]");
    splitserve_bench::cli::emit(&ex::fig4(ProfileMode::LambdaOnly, f, seed));
    splitserve_bench::cli::emit(&ex::fig4(ProfileMode::VmOnly, f, seed));
    eprintln!("[fig5]");
    splitserve_bench::cli::emit(&ex::fig5(f, seed));
    eprintln!("[fig6]");
    splitserve_bench::cli::emit(&ex::fig6(f, seed));
    eprintln!("[fig7]");
    for tl in ex::fig7(f, seed) {
        splitserve_bench::cli::emit(&ex::timeline_table(&tl));
    }
    eprintln!("[fig8]");
    splitserve_bench::cli::emit(&ex::fig8(f, seed));
    eprintln!("[fig9]");
    splitserve_bench::cli::emit(&ex::fig9(f, seed));
    eprintln!("[ablations]");
    splitserve_bench::cli::emit(&ex::ablation_stores(f, seed));
    splitserve_bench::cli::emit(&ex::ablation_segue_threshold(f, seed));
    splitserve_bench::cli::emit(&ex::ablation_lambda_memory(f, seed));
    splitserve_bench::cli::emit(&ex::ablation_cloudsort(f, seed));
    splitserve_bench::cli::emit(&ex::ablation_controller(f, seed));
    splitserve_bench::cli::emit(&ex::ablation_job_stream(f, seed));
}
