//! Figure 9: SparkPi (10¹⁰ darts) across the scenarios.

use splitserve_bench::experiments::{fig9, Fidelity};

fn main() {
    let table = fig9(Fidelity::from_args(), splitserve_bench::cli::seed_from_args());
    splitserve_bench::cli::emit(&table);
}
