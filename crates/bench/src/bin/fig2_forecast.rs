//! Figure 2: predicted executor demand over a workday with m ± 2σ bands,
//! plus the provisioning-policy comparison the figure motivates.

use splitserve_bench::experiments::fig2;

fn main() {
    let (series, policies) = fig2(splitserve_bench::cli::seed_from_args());
    splitserve_bench::cli::emit(&series);
    splitserve_bench::cli::emit(&policies);
}
