//! Plain-text/markdown/CSV reporting for the experiment binaries.

use std::fmt::Write as _;

/// A simple rectangular results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (figure id).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats seconds with sensible precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats dollars.
pub fn usd(v: f64) -> String {
    format!("{v:.4}")
}

/// Mean and sample standard deviation.
pub fn mean_sd(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "no samples");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = Table::new("Fig X", &["a", "b"]);
        t.push(vec!["1".into(), "two, quoted".into()]);
        let text = t.to_text();
        assert!(text.contains("Fig X") && text.contains("two, quoted"));
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"two, quoted\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        Table::new("t", &["a", "b"]).push(vec!["only one".into()]);
    }

    #[test]
    fn stats_helpers() {
        let (m, sd) = mean_sd(&[2.0, 4.0, 6.0]);
        assert_eq!(m, 4.0);
        assert!((sd - 2.0).abs() < 1e-12);
        let (m1, sd1) = mean_sd(&[5.0]);
        assert_eq!((m1, sd1), (5.0, 0.0));
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1.234), "1.23");
    }
}
