//! A minimal walltime benchmarking harness for the hermetic build.
//!
//! Each benchmark is timed as median-of-N end-to-end walltime after a
//! warmup run, and reported as one JSON line on stdout:
//!
//! ```text
//! {"bench":"codec/encode_10k_kv","median_ns":123456,"min_ns":...,"max_ns":...,"samples":9}
//! ```
//!
//! One line per benchmark keeps the output trivially machine-parseable
//! (`grep '^{' | jq`) without a JSON dependency on either end.

use std::time::Instant;

/// Runs `f` once as warmup, then `samples` timed times, and prints the
/// median/min/max walltime as a JSON line. Returns the median in
/// nanoseconds so callers can do coarse regression checks.
pub fn bench<F: FnMut()>(name: &str, samples: usize, mut f: F) -> u128 {
    assert!(samples > 0, "need at least one sample");
    f(); // warmup: fault in lazily-initialized state
    let mut times_ns: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times_ns.sort_unstable();
    let median = times_ns[times_ns.len() / 2];
    println!(
        "{{\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
        name,
        median,
        times_ns[0],
        times_ns[times_ns.len() - 1],
        samples
    );
    median
}

/// Like [`bench`] but rebuilds the input with `setup` outside the timed
/// region on every sample (for benchmarks that consume their input).
pub fn bench_with_setup<S, T, F>(name: &str, samples: usize, mut setup: S, mut f: F) -> u128
where
    S: FnMut() -> T,
    F: FnMut(T),
{
    assert!(samples > 0, "need at least one sample");
    f(setup());
    let mut times_ns: Vec<u128> = (0..samples)
        .map(|_| {
            let input = setup();
            let t0 = Instant::now();
            f(input);
            t0.elapsed().as_nanos()
        })
        .collect();
    times_ns.sort_unstable();
    let median = times_ns[times_ns.len() / 2];
    println!(
        "{{\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
        name,
        median,
        times_ns[0],
        times_ns[times_ns.len() - 1],
        samples
    );
    median
}

/// Defeats dead-code elimination of a benchmark's result without unsafe
/// code or volatile reads: the value is moved through an opaque sink.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_plausible_median() {
        let mut n = 0u64;
        let median = bench("test/noop", 5, || n += 1);
        assert!(n >= 6, "warmup + samples all ran");
        assert!(median < 1_000_000_000, "a no-op takes under a second");
    }

    #[test]
    fn bench_with_setup_runs_setup_per_sample() {
        let mut setups = 0u32;
        bench_with_setup(
            "test/setup",
            3,
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| {
                black_box(v.len());
            },
        );
        assert_eq!(setups, 4, "warmup + 3 samples");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        bench("test/zero", 0, || {});
    }
}
