//! One function per paper figure: each builds the workload, runs the
//! scenarios, and returns result tables. The binaries in `src/bin` are
//! thin wrappers; the integration tests run the `quick` variants.

use splitserve::{
    evaluate_policy, profile_sweep, run_scenario, DayModel, DriverProgram, ProfileMode,
    ProvisionPolicy, Scenario, ScenarioResult, ScenarioSpec,
};
use splitserve_cloud::{
    fig1_crossover, fig1_vcpu_cost_at, CloudSpec, InstanceType, M4_10XLARGE, M4_16XLARGE,
    M4_4XLARGE, M4_LARGE, M4_XLARGE,
};
use splitserve_des::SimDuration;
use splitserve_engine::{EngineEvent, EngineEventKind};
use splitserve_workloads::{KMeans, PageRank, SparkPi, TpcdsLoad, TpcdsQuery};

use crate::report::{mean_sd, secs, usd, Table};

/// Experiment fidelity: `paper` runs the full published configuration;
/// `quick` shrinks inputs and trial counts for CI and the timing benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full paper-scale configuration.
    Paper,
    /// Reduced configuration (~seconds of host time).
    Quick,
}

impl Fidelity {
    /// Parses `--quick` from argv.
    pub fn from_args() -> Fidelity {
        if std::env::args().any(|a| a == "--quick") {
            Fidelity::Quick
        } else {
            Fidelity::Paper
        }
    }
}

// ---------------------------------------------------------------- Fig 1

/// Figure 1: cost of one vCPU via a m4.large VM vs a 1 536 MB Lambda, as a
/// function of time-in-use.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "Figure 1: cost of one vCPU (m4.large vs 1536 MB Lambda)",
        &["time_s", "vm_usd", "lambda_usd"],
    );
    let mut ts: Vec<f64> = Vec::new();
    let mut x = 0.1;
    while x <= 300.0 {
        ts.push(x);
        x += if x < 5.0 { 0.1 } else { 5.0 };
    }
    for s in ts {
        let (vm, la) = fig1_vcpu_cost_at(&M4_LARGE, SimDuration::from_secs_f64(s));
        t.push(vec![format!("{s:.1}"), format!("{vm:.7}"), format!("{la:.7}")]);
    }
    t
}

/// The Figure 1 crossover point (seconds after which the Lambda costs
/// more than the VM vCPU).
pub fn fig1_crossover_secs() -> f64 {
    fig1_crossover(&M4_LARGE, SimDuration::from_secs(7_200))
        .expect("crossover exists")
        .as_secs_f64()
}

// ---------------------------------------------------------------- Fig 2

/// Figure 2: predicted demand bands and a realized path over a workday,
/// plus the provisioning-policy comparison the figure motivates.
pub fn fig2(seed: u64) -> (Table, Table) {
    let model = DayModel::default();
    let series = model.series(288, seed); // 5-minute samples
    let mut t = Table::new(
        "Figure 2: workday executor demand (m ± 2σ bands, realized w)",
        &["t_hours", "mean", "lo", "hi", "realized"],
    );
    for p in &series {
        t.push(vec![
            format!("{:.2}", p.t_hours),
            format!("{:.1}", p.mean),
            format!("{:.1}", p.lo),
            format!("{:.1}", p.hi),
            format!("{:.1}", p.realized),
        ]);
    }
    let mut pol = Table::new(
        "Figure 2 (policies): conservative m+2σ vs lean m",
        &[
            "policy",
            "shortfall_frac",
            "shortfall_core_h",
            "provisioned_core_h",
            "idle_core_h",
        ],
    );
    for (name, policy) in [
        ("m(t)+2σ(t)", ProvisionPolicy::MeanPlusSigma(2.0)),
        ("m(t)", ProvisionPolicy::Mean),
    ] {
        let o = evaluate_policy(&series, policy);
        pol.push(vec![
            name.into(),
            format!("{:.3}", o.shortfall_frac),
            format!("{:.1}", o.shortfall_core_hours),
            format!("{:.1}", o.provisioned_core_hours),
            format!("{:.1}", o.idle_core_hours),
        ]);
    }
    (t, pol)
}

// ---------------------------------------------------------------- Fig 4

/// Figure 4 input sizes: (label, pages).
pub fn fig4_sizes(f: Fidelity) -> Vec<(&'static str, u64)> {
    match f {
        Fidelity::Paper => vec![("small", 25_000), ("medium", 50_000), ("large", 100_000)],
        Fidelity::Quick => vec![("small", 4_000), ("large", 12_000)],
    }
}

/// Figure 4 parallelism ladder.
pub fn fig4_ladder(f: Fidelity) -> Vec<u32> {
    match f {
        Fidelity::Paper => vec![1, 2, 4, 8, 16, 32, 64, 128],
        Fidelity::Quick => vec![1, 2, 4, 8],
    }
}

/// Figure 4: PageRank profiling — execution time and cost vs degree of
/// parallelism, all-Lambda (a) or all-VM (b).
pub fn fig4(mode: ProfileMode, f: Fidelity, seed: u64) -> Table {
    let which = match mode {
        ProfileMode::LambdaOnly => "(a) Lambda-based executors",
        ProfileMode::VmOnly => "(b) VM-based executors",
    };
    let mut t = Table::new(
        format!("Figure 4{which}: PageRank profiling"),
        &["size", "pages", "parallelism", "exec_s", "cost_usd"],
    );
    let spec = ScenarioSpec {
        master_type: M4_XLARGE,
        seed,
        ..ScenarioSpec::default()
    };
    for (label, pages) in fig4_sizes(f) {
        let factory = move |p: u32| -> Box<dyn DriverProgram> {
            Box::new(PageRank::new(pages, 3, p as usize, seed).with_contrib_cost(1.0e-4))
        };
        let points = profile_sweep(mode, &fig4_ladder(f), &spec, &factory);
        for pt in points {
            t.push(vec![
                label.into(),
                pages.to_string(),
                pt.parallelism.to_string(),
                secs(pt.execution_secs),
                usd(pt.cost_usd),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------- Fig 5

/// Figure 5's seven scenarios (no segue: the queries finish in about a
/// minute, so "no tasks needed segueing").
pub fn fig5_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::SparkSmallVm,
        Scenario::SparkRVm,
        Scenario::SparkAutoscale,
        Scenario::QuboleLambda,
        Scenario::SsRVm,
        Scenario::SsRLambda,
        Scenario::SsHybrid,
    ]
}

/// The cluster spec of the TPC-DS experiment: R = 32, r = 8, workers and
/// master/HDFS on m4.10xlarge ("to get similar dedicated EBS bandwidth").
pub fn fig5_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        required_cores: 32,
        available_cores: 8,
        worker_type: M4_10XLARGE,
        master_type: M4_10XLARGE,
        seed,
        ..ScenarioSpec::default()
    }
}

/// Figure 5: the four TPC-DS queries across the scenarios. Each row also
/// reports the slowdown normalized to `Spark 32 VM`.
pub fn fig5(f: Fidelity, seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 5: TPC-DS Q5/Q16/Q94/Q95 (SF 8, R=32, r=8)",
        &["query", "scenario", "exec_s", "vs_Spark_R_VM", "cost_usd", "tasks_vm", "tasks_la"],
    );
    let spec = fig5_spec(seed);
    for query in [TpcdsQuery::Q5, TpcdsQuery::Q16, TpcdsQuery::Q94, TpcdsQuery::Q95] {
        let factory = move || -> Box<dyn DriverProgram> {
            Box::new(match f {
                Fidelity::Paper => TpcdsLoad::paper_config(query, seed),
                Fidelity::Quick => TpcdsLoad {
                    shuffle_partitions: 32,
                    ..TpcdsLoad::tiny(query, seed)
                },
            })
        };
        let mut baseline = None;
        for scenario in fig5_scenarios() {
            let r = run_scenario(scenario, &spec, &factory);
            if scenario == Scenario::SparkRVm {
                baseline = Some(r.execution_secs);
            }
            push_scenario_row(&mut t, &query.to_string(), &r, baseline);
        }
    }
    t
}

fn push_scenario_row(t: &mut Table, workload: &str, r: &ScenarioResult, baseline: Option<f64>) {
    let rel = baseline
        .map(|b| format!("{:.2}x", r.execution_secs / b))
        .unwrap_or_else(|| "-".into());
    t.push(vec![
        workload.to_string(),
        r.label.clone(),
        secs(r.execution_secs),
        rel,
        usd(r.cost_usd),
        r.tasks_on_vm.to_string(),
        r.tasks_on_lambda.to_string(),
    ]);
}

// ---------------------------------------------------------------- Fig 6

/// The PageRank cluster: R = 16, r = 3, workers on m4.4xlarge, master +
/// single HDFS node colocated on an m4.xlarge (750 Mbps EBS — the
/// bottleneck the paper discusses).
pub fn fig6_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        required_cores: 16,
        available_cores: 3,
        worker_type: M4_4XLARGE,
        master_type: M4_XLARGE,
        segue_existing_cores_at: Some(SimDuration::from_secs(45)),
        lambda_timeout: SimDuration::from_secs(30),
        seed,
        ..ScenarioSpec::default()
    }
}

/// The Figure 6 PageRank workload (850 000 pages; scaled down in quick
/// mode).
pub fn fig6_workload(f: Fidelity, seed: u64) -> PageRank {
    match f {
        // Contribution cost calibrated so the 16-core vanilla baseline
        // lands near the paper's ~100 s job duration.
        Fidelity::Paper => PageRank::new(850_000, 3, 16, seed).with_contrib_cost(2.0e-4),
        Fidelity::Quick => PageRank::new(40_000, 3, 16, seed).with_contrib_cost(2.0e-4),
    }
}

/// Figure 6: PageRank across all eight scenarios.
pub fn fig6(f: Fidelity, seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 6: PageRank (850k pages, R=16, r=3)",
        &["workload", "scenario", "exec_s", "vs_Spark_R_VM", "cost_usd", "tasks_vm", "tasks_la"],
    );
    let spec = fig6_spec(seed);
    let factory = move || -> Box<dyn DriverProgram> { Box::new(fig6_workload(f, seed)) };
    let mut baseline = None;
    for scenario in Scenario::all() {
        let r = run_scenario(scenario, &spec, &factory);
        if scenario == Scenario::SparkRVm {
            baseline = Some(r.execution_secs);
        }
        push_scenario_row(&mut t, "PageRank", &r, baseline);
    }
    t
}

// ---------------------------------------------------------------- Fig 7

/// One executor's lane in a timeline.
#[derive(Debug, Clone)]
pub struct TimelineLane {
    /// Executor id.
    pub executor: String,
    /// `vm` or `lambda`.
    pub kind: String,
    /// First task start (seconds).
    pub first_start: f64,
    /// Last task end (seconds).
    pub last_end: f64,
    /// Tasks completed on this executor.
    pub tasks: u64,
}

/// A rendered execution timeline for one scenario run.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The scenario label.
    pub label: String,
    /// Job completion time.
    pub finished_at: f64,
    /// When the segue marker fired, if it did.
    pub segue_at: Option<f64>,
    /// Stage completion instants.
    pub stage_completions: Vec<f64>,
    /// Per-executor lanes.
    pub lanes: Vec<TimelineLane>,
}

/// Extracts a [`Timeline`] from a scenario's event log.
pub fn timeline_of(r: &ScenarioResult) -> Timeline {
    use std::collections::BTreeMap;
    let mut lanes: BTreeMap<String, TimelineLane> = BTreeMap::new();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut segue_at = None;
    let mut stage_completions = Vec::new();
    let events: &[EngineEvent] = &r.events;
    for e in events {
        let at = e.at.as_secs_f64();
        match &e.kind {
            EngineEventKind::ExecutorRegistered { exec, kind } => {
                kinds.insert(exec.as_str().to_string(), kind.to_string());
            }
            EngineEventKind::TaskStarted { exec, .. } => {
                let lane = lanes.entry(exec.as_str().to_string()).or_insert_with(|| TimelineLane {
                    executor: exec.as_str().to_string(),
                    kind: kinds.get(exec.as_str()).cloned().unwrap_or_default(),
                    first_start: at,
                    last_end: at,
                    tasks: 0,
                });
                lane.first_start = lane.first_start.min(at);
            }
            EngineEventKind::TaskFinished { exec, .. } => {
                if let Some(lane) = lanes.get_mut(exec.as_str()) {
                    lane.last_end = lane.last_end.max(at);
                    lane.tasks += 1;
                }
            }
            EngineEventKind::StageCompleted { .. } => stage_completions.push(at),
            EngineEventKind::Marker(m) if m == "segue commences" => segue_at = Some(at),
            _ => {}
        }
    }
    Timeline {
        label: r.label.clone(),
        finished_at: r.execution_secs,
        segue_at,
        stage_completions,
        lanes: lanes.into_values().collect(),
    }
}

/// Figure 7: the three PageRank timelines — 16 VM cores, 3 VM + 13 La, and
/// 3 VM + 13 La with segue at 45 s.
pub fn fig7(f: Fidelity, seed: u64) -> Vec<Timeline> {
    let spec = fig6_spec(seed);
    let factory = move || -> Box<dyn DriverProgram> { Box::new(fig6_workload(f, seed)) };
    [
        Scenario::SparkRVm,
        Scenario::SsHybrid,
        Scenario::SsHybridSegue,
    ]
    .iter()
    .map(|s| timeline_of(&run_scenario(*s, &spec, &factory)))
    .collect()
}

/// Renders a timeline as a table.
pub fn timeline_table(tl: &Timeline) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 7 timeline: {} (finished {}s, segue {}, {} stages)",
            tl.label,
            secs(tl.finished_at),
            tl.segue_at.map(|s| format!("{}s", secs(s))).unwrap_or_else(|| "n/a".into()),
            tl.stage_completions.len(),
        ),
        &["executor", "kind", "first_task_s", "last_task_s", "tasks"],
    );
    for lane in &tl.lanes {
        t.push(vec![
            lane.executor.clone(),
            lane.kind.clone(),
            secs(lane.first_start),
            secs(lane.last_end),
            lane.tasks.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Fig 8

/// The K-means cluster spec: R = 16, r = 4.
pub fn fig8_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        required_cores: 16,
        available_cores: 4,
        worker_type: M4_4XLARGE,
        master_type: M4_XLARGE,
        seed,
        ..ScenarioSpec::default()
    }
}

/// Figure 8 scenario set (the paper presents the hybrid as the case where
/// all-Lambda beats it; segue is n/a at these durations).
pub fn fig8_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::SparkSmallVm,
        Scenario::SparkRVm,
        Scenario::SparkAutoscale,
        Scenario::QuboleLambda,
        Scenario::SsRVm,
        Scenario::SsRLambda,
        Scenario::SsHybrid,
    ]
}

/// Figure 8: K-means performance *and* cost with error bars from
/// independent trials (the paper: 15 trials, ±1 sample sd).
pub fn fig8(f: Fidelity, base_seed: u64) -> Table {
    let trials = match f {
        Fidelity::Paper => 15,
        Fidelity::Quick => 3,
    };
    let mut t = Table::new(
        "Figure 8: K-means (R=16, r=4), mean ± sd over trials",
        &["scenario", "exec_s_mean", "exec_s_sd", "cost_usd_mean", "cost_usd_sd"],
    );
    for scenario in fig8_scenarios() {
        let mut times = Vec::new();
        let mut costs = Vec::new();
        for trial in 0..trials {
            let seed = base_seed + trial as u64;
            let spec = fig8_spec(seed);
            let factory = move || -> Box<dyn DriverProgram> {
                Box::new(match f {
                    Fidelity::Paper => KMeans::paper_config(16, seed),
                    Fidelity::Quick => KMeans {
                        parallelism: 16,
                        ..KMeans::small(20_000, 16, seed)
                    },
                })
            };
            let r = run_scenario(scenario, &spec, &factory);
            times.push(r.execution_secs);
            costs.push(r.cost_usd);
        }
        let (tm, ts_) = mean_sd(&times);
        let (cm, cs) = mean_sd(&costs);
        t.push(vec![
            scenario.label(16, 4),
            secs(tm),
            format!("{ts_:.2}"),
            usd(cm),
            format!("{cs:.5}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Fig 9

/// The SparkPi cluster spec: R = 64 on an m4.16xlarge, r = 4.
pub fn fig9_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        required_cores: 64,
        available_cores: 4,
        worker_type: M4_16XLARGE,
        master_type: M4_XLARGE,
        seed,
        ..ScenarioSpec::default()
    }
}

/// Figure 9 scenario set ("we did not assess the Lambdas-segue-to-VMs
/// setup … because the job finished under 1 minute").
pub fn fig9_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::SparkSmallVm,
        Scenario::SparkRVm,
        Scenario::QuboleLambda,
        Scenario::SsRVm,
        Scenario::SsRLambda,
        Scenario::SsHybrid,
    ]
}

/// Figure 9: SparkPi (10¹⁰ darts, 64 executors) across scenarios.
pub fn fig9(f: Fidelity, seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 9: SparkPi (1e10 darts, R=64, r=4)",
        &["workload", "scenario", "exec_s", "vs_Spark_R_VM", "cost_usd", "tasks_vm", "tasks_la"],
    );
    let spec = fig9_spec(seed);
    let factory = move || -> Box<dyn DriverProgram> {
        Box::new(match f {
            Fidelity::Paper => SparkPi::paper_config(64, seed),
            Fidelity::Quick => SparkPi {
                parallelism: 64,
                tasks: 128,
                darts: 200_000_000,
                real_darts_cap_per_task: 50_000,
                ..SparkPi::paper_config(64, seed)
            },
        })
    };
    let mut baseline = None;
    for scenario in fig9_scenarios() {
        let r = run_scenario(scenario, &spec, &factory);
        if scenario == Scenario::SparkRVm {
            baseline = Some(r.execution_secs);
        }
        push_scenario_row(&mut t, "SparkPi", &r, baseline);
    }
    t
}

/// Ablation: the same hybrid PageRank run over each shuffle substrate —
/// the design-choice comparison behind the paper's §4.3 store discussion.
pub fn ablation_stores(f: Fidelity, seed: u64) -> Table {
    use splitserve::{Deployment, ShuffleStoreKind};
    use splitserve_des::Sim;
    let mut t = Table::new(
        "Ablation: shuffle substrate under the hybrid (r VM + Δ La)",
        &["store", "exec_s", "cost_usd", "throttle_wait_s"],
    );
    for store in [
        ShuffleStoreKind::Hdfs,
        ShuffleStoreKind::S3,
        ShuffleStoreKind::Sqs,
        ShuffleStoreKind::Redis,
    ] {
        let mut sim = Sim::new(seed);
        let spec = fig6_spec(seed);
        let d = Deployment::with_engine_config(
            &mut sim,
            spec.cloud.clone(),
            store,
            spec.master_type.clone(),
            spec.engine.clone(),
        );
        d.add_vm_workers(&mut sim, spec.worker_type.clone(), 3);
        d.add_lambda_executors(&mut sim, 13);
        let w = fig6_workload(f, seed);
        let finished = std::rc::Rc::new(std::cell::Cell::new(None));
        let fin = std::rc::Rc::clone(&finished);
        let d2 = d.clone();
        w.submit(
            &mut sim,
            d.engine(),
            Box::new(move |sim| {
                fin.set(Some(sim.now().as_secs_f64()));
                d2.shutdown(sim);
            }),
        );
        sim.run();
        let stats = d.engine().store().stats();
        t.push(vec![
            store.to_string(),
            secs(finished.get().expect("completed")),
            usd(d.cloud().total_cost()),
            format!("{:.1}", stats.throttle_wait_secs),
        ]);
    }
    t
}

/// Ablation: segue threshold (`spark.lambda.executor.timeout`) sweep.
pub fn ablation_segue_threshold(f: Fidelity, seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation: spark.lambda.executor.timeout sweep (hybrid + segue)",
        &["timeout_s", "exec_s", "cost_usd", "tasks_la"],
    );
    for timeout in [10u64, 30, 60, 120, 300] {
        let spec = ScenarioSpec {
            lambda_timeout: SimDuration::from_secs(timeout),
            ..fig6_spec(seed)
        };
        let factory = move || -> Box<dyn DriverProgram> { Box::new(fig6_workload(f, seed)) };
        let r = run_scenario(Scenario::SsHybridSegue, &spec, &factory);
        t.push(vec![
            timeout.to_string(),
            secs(r.execution_secs),
            usd(r.cost_usd),
            r.tasks_on_lambda.to_string(),
        ]);
    }
    t
}

/// Ablation: Lambda memory-size sweep on the all-Lambda scenario.
pub fn ablation_lambda_memory(f: Fidelity, seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation: Lambda memory size (all-Lambda K-means)",
        &["memory_mb", "exec_s", "cost_usd"],
    );
    for mem in [768u64, 1024, 1536, 2048, 3008] {
        let spec = ScenarioSpec {
            lambda_memory_mb: mem,
            ..fig8_spec(seed)
        };
        let factory = move || -> Box<dyn DriverProgram> {
            Box::new(match f {
                Fidelity::Paper => KMeans::paper_config(16, seed),
                Fidelity::Quick => KMeans {
                    parallelism: 16,
                    ..KMeans::small(20_000, 16, seed)
                },
            })
        };
        let r = run_scenario(Scenario::SsRLambda, &spec, &factory);
        t.push(vec![mem.to_string(), secs(r.execution_secs), usd(r.cost_usd)]);
    }
    t
}

/// Ablation: a CloudSort-style job over each shared shuffle substrate —
/// the paper's §2 point that per-request S3 pricing explodes for
/// shuffle-write-heavy jobs while HDFS (tenant-owned) adds none.
pub fn ablation_cloudsort(f: Fidelity, seed: u64) -> Table {
    use splitserve::{Deployment, ShuffleStoreKind};
    use splitserve_cloud::Category;
    use splitserve_des::Sim;
    use splitserve_workloads::CloudSort;
    let records = match f {
        Fidelity::Paper => 400_000u64,
        Fidelity::Quick => 40_000u64,
    };
    let mut t = Table::new(
        "Ablation: CloudSort shuffle-cost by substrate",
        &["store", "exec_s", "total_usd", "request_usd", "requests"],
    );
    for store in [ShuffleStoreKind::Hdfs, ShuffleStoreKind::S3, ShuffleStoreKind::Sqs] {
        let mut sim = Sim::new(seed);
        let d = Deployment::new(
            &mut sim,
            CloudSpec::default(),
            store,
            M4_XLARGE,
        );
        d.add_lambda_executors(&mut sim, 16);
        let w = CloudSort::new(records, 64, seed);
        let finished = std::rc::Rc::new(std::cell::Cell::new(None));
        let fin = std::rc::Rc::clone(&finished);
        let d2 = d.clone();
        w.submit(
            &mut sim,
            d.engine(),
            Box::new(move |sim| {
                fin.set(Some(sim.now().as_secs_f64()));
                d2.shutdown(sim);
            }),
        );
        sim.run();
        let stats = d.engine().store().stats();
        let request_usd = d.cloud().cost_for(Category::S3Put)
            + d.cloud().cost_for(Category::S3Get)
            + d.cloud().cost_for(Category::SqsRequest);
        t.push(vec![
            store.to_string(),
            secs(finished.get().expect("completed")),
            usd(d.cloud().total_cost()),
            format!("{request_usd:.5}"),
            (stats.puts + stats.gets).to_string(),
        ]);
    }
    t
}

/// Ablation: the scripted hybrid (launch Δ Lambdas up front) vs the
/// closed-loop dynamic-allocation controller that discovers the backlog
/// by itself — the autonomous version of the launching facility.
pub fn ablation_controller(f: Fidelity, seed: u64) -> Table {
    use splitserve::{start_allocator, AllocatorConfig, Deployment};
    use splitserve_des::Sim;
    let mut t = Table::new(
        "Ablation: scripted hybrid vs dynamic-allocation controller",
        &["mode", "exec_s", "cost_usd", "lambdas_used"],
    );
    let spec = fig6_spec(seed);

    // Scripted: the Fig. 6 hybrid scenario.
    let factory = move || -> Box<dyn DriverProgram> { Box::new(fig6_workload(f, seed)) };
    let scripted = run_scenario(Scenario::SsHybrid, &spec, &factory);
    t.push(vec![
        "scripted (r VM + Δ La)".into(),
        secs(scripted.execution_secs),
        usd(scripted.cost_usd),
        "13".into(),
    ]);

    // Controller: start with just the r VM cores; the allocator bridges.
    let mut sim = Sim::new(seed);
    let d = Deployment::with_engine_config(
        &mut sim,
        spec.cloud.clone(),
        splitserve::ShuffleStoreKind::Hdfs,
        spec.master_type.clone(),
        spec.engine.clone(),
    );
    d.add_vm_workers(&mut sim, spec.worker_type.clone(), spec.available_cores);
    let handle = start_allocator(
        &mut sim,
        &d,
        AllocatorConfig {
            max_lambdas: spec.required_cores - spec.available_cores,
            ..AllocatorConfig::default()
        },
    );
    let w = fig6_workload(f, seed);
    let finished = std::rc::Rc::new(std::cell::Cell::new(None));
    let fin = std::rc::Rc::clone(&finished);
    let d2 = d.clone();
    let h2 = handle.clone();
    w.submit(
        &mut sim,
        d.engine(),
        Box::new(move |sim| {
            fin.set(Some(sim.now().as_secs_f64()));
            h2.stop();
            d2.shutdown(sim);
        }),
    );
    sim.run();
    t.push(vec![
        "controller (auto La)".into(),
        secs(finished.get().expect("completed")),
        usd(d.cloud().total_cost()),
        handle.lambdas_launched().to_string(),
    ]);
    t
}

/// Ablation: a bursty job stream against a fixed VM pool, with and
/// without SplitServe's Lambda bridging — the inter-job composition of
/// paper §4.1 (Fig. 2's lean-provisioning story, measured end to end).
pub fn ablation_job_stream(f: Fidelity, seed: u64) -> Table {
    use splitserve::{run_job_stream, StreamJob, StreamPolicy};
    use splitserve_workloads::PageRank;
    let mut t = Table::new(
        "Ablation: bursty job stream — fixed VM pool vs SplitServe bridging",
        &["policy", "slo_attainment", "mean_latency_s", "cost_usd", "lambdas"],
    );
    let (pages, slo) = match f {
        Fidelity::Paper => (120_000u64, 60.0),
        Fidelity::Quick => (15_000u64, 12.0),
    };
    // Three bursts of three overlapping 8-core jobs.
    let jobs: Vec<StreamJob> = (0..9)
        .map(|i| StreamJob {
            arrive_at_secs: (i / 3) as f64 * 240.0 + (i % 3) as f64 * 3.0,
            cores: 8,
            slo_secs: slo,
        })
        .collect();
    let spec = ScenarioSpec {
        seed,
        ..ScenarioSpec::default()
    };
    let workload = move |cores: u32| -> Box<dyn DriverProgram> {
        Box::new(PageRank::new(pages, 3, cores as usize * 2, seed).with_contrib_cost(2.0e-4))
    };
    for policy in [StreamPolicy::VmPoolOnly, StreamPolicy::SplitServe] {
        let out = run_job_stream(policy, 8, M4_4XLARGE, &spec, &jobs, &workload);
        t.push(vec![
            policy.to_string(),
            format!("{:.2}", out.slo_attainment()),
            secs(out.mean_latency()),
            usd(out.cost_usd),
            out.lambdas_launched.to_string(),
        ]);
    }
    t
}

/// Resolves the worker instance for `cores` (documentation helper).
pub fn worker_for_cores(cores: u32) -> InstanceType {
    splitserve_cloud::fewest_instances_for_cores(cores)
        .into_iter()
        .next()
        .expect("non-empty fleet")
}
