//! Shared argv handling for the figure binaries.
//!
//! Usage: `<binary> [--quick] [--csv] [--seed N]`

use crate::report::Table;

/// Parses `--seed N` (default 42).
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Prints a table as text, or CSV when `--csv` was passed.
pub fn emit(table: &Table) {
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
    println!();
}
