//! End-to-end engine tests: real jobs over simulated clusters, exercising
//! scheduling, shuffles, executor churn and fault recovery.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_des::{Fabric, Sim, SimDuration, SimTime};
use splitserve_engine::{
    collect_partitions, Dataset, Engine, EngineConfig, EngineEventKind, ExecutorDesc, JobOutput,
};
use splitserve_storage::{HdfsSpec, HdfsStore, LocalDiskStore};

struct Rig {
    sim: Sim,
    // Kept so rigs can grow links mid-test even though no current test does.
    #[allow(dead_code)]
    fabric: Fabric,
    engine: Engine,
}

fn local_rig(executors: usize) -> Rig {
    let fabric = Fabric::new();
    let store = Rc::new(LocalDiskStore::new(fabric.clone()));
    let engine = Engine::new(EngineConfig::default(), store);
    let mut sim = Sim::new(7);
    for i in 0..executors {
        let nic = fabric.add_link(1e9, format!("nic-{i}"));
        let disk = fabric.add_link(1e9, format!("disk-{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
    }
    Rig { sim, fabric, engine }
}

fn hdfs_rig(executors: usize) -> Rig {
    let fabric = Fabric::new();
    let hdfs = HdfsStore::new(HdfsSpec::default(), fabric.clone());
    let nn_nic = fabric.add_link(1e9, "hdfs-nic");
    let nn_disk = fabric.add_link(1e9, "hdfs-disk");
    hdfs.add_datanode(nn_nic, nn_disk);
    let engine = Engine::new(EngineConfig::default(), Rc::new(hdfs));
    let mut sim = Sim::new(7);
    for i in 0..executors {
        let nic = fabric.add_link(1e9, format!("nic-{i}"));
        let disk = fabric.add_link(1e9, format!("disk-{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
    }
    Rig { sim, fabric, engine }
}

fn run_job<T: Clone + Send + Sync + 'static>(
    rig: &mut Rig,
    ds: &Dataset<T>,
) -> (Vec<T>, std::sync::Arc<splitserve_engine::JobMetrics>) {
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job must complete");
    (collect_partitions::<T>(out.partitions), out.metrics)
}

#[test]
fn word_count_style_job_is_correct() {
    let mut rig = local_rig(4);
    let words: Vec<(String, u64)> = (0..5_000)
        .map(|i| (format!("w{}", i % 50), 1u64))
        .collect();
    let counts = Dataset::parallelize(words, 8).reduce_by_key(4, |a, b| a + b);
    let (mut rows, metrics) = run_job(&mut rig, &counts);
    rows.sort();
    assert_eq!(rows.len(), 50);
    assert!(rows.iter().all(|(_, c)| *c == 100));
    assert_eq!(metrics.tasks_total(), 8 + 4);
    assert!(metrics.shuffle_bytes_written > 0);
    assert!(metrics.execution_time() > SimDuration::ZERO);
}

#[test]
fn three_stage_pipeline_chains_shuffles() {
    let mut rig = local_rig(2);
    let ds = Dataset::parallelize((0..1_000u64).map(|i| (i % 100, 1u64)).collect(), 4)
        .reduce_by_key(4, |a, b| a + b) // 100 keys → count 10 each
        .map(|(k, v)| (k % 10, *v))
        .reduce_by_key(2, |a, b| a + b); // 10 keys → 100 each
    let (mut rows, metrics) = run_job(&mut rig, &ds);
    rows.sort();
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().all(|(_, v)| *v == 100));
    assert_eq!(metrics.stages_run, 3);
}

#[test]
fn join_across_stores_is_correct() {
    let mut rig = hdfs_rig(3);
    let users = Dataset::parallelize(
        (0..100u64).map(|i| (i, format!("user-{i}"))).collect(),
        4,
    );
    let orders = Dataset::parallelize(
        (0..300u64).map(|i| (i % 100, i)).collect::<Vec<_>>(),
        6,
    );
    let joined = users.join(&orders, 4);
    let (rows, _) = run_job(&mut rig, &joined);
    assert_eq!(rows.len(), 300, "every order matches exactly one user");
    assert!(rows
        .iter()
        .all(|(k, (name, order))| *name == format!("user-{k}") && order % 100 == *k));
}

#[test]
fn more_executors_is_faster() {
    let time_with = |n: usize| {
        let mut rig = local_rig(n);
        let ds = Dataset::<u64>::generate(16, |p| {
            (0..200_000u64).map(|i| i + p as u64).collect()
        })
        .map(|x| x * 2)
        .map(|x| (x % 7, *x))
        .reduce_by_key(8, |a, b| a + b);
        let (_, metrics) = run_job(&mut rig, &ds);
        metrics.execution_time().as_secs_f64()
    };
    let t1 = time_with(1);
    let t4 = time_with(4);
    let t16 = time_with(16);
    assert!(t4 < t1 * 0.4, "4 executors ≥2.5x faster: {t1} → {t4}");
    assert!(t16 <= t4, "16 executors no slower than 4: {t4} → {t16}");
}

#[test]
fn executor_kill_with_local_store_rolls_back_and_recovers() {
    let mut rig = local_rig(3);
    let ds = Dataset::parallelize((0..3_000u64).map(|i| (i % 30, 1u64)).collect(), 6)
        .reduce_by_key(3, |a, b| a + b);
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    // Kill one executor shortly after the map stage begins.
    let engine = rig.engine.clone();
    rig.sim.schedule_at(SimTime::from_millis(15), move |sim| {
        engine.kill_executor(sim, &"e-vm-1".into());
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job survives the kill");
    let mut rows = collect_partitions::<(u64, u64)>(out.partitions);
    rows.sort();
    assert_eq!(rows.len(), 30);
    assert!(rows.iter().all(|(_, c)| *c == 100), "results still exact");
    // The rollback machinery must actually have fired.
    let events = rig.engine.event_log().snapshot();
    let lost = events
        .iter()
        .any(|e| matches!(e.kind, EngineEventKind::ExecutorLost { .. }));
    assert!(lost);
    assert!(out.metrics.tasks_recomputed > 0, "some work was redone");
}

#[test]
fn executor_kill_with_hdfs_store_causes_no_rollback() {
    // Same scenario as above, but shuffle data survives on HDFS: the dead
    // executor's finished map outputs stay valid.
    let mut rig = hdfs_rig(3);
    let ds = Dataset::parallelize((0..3_000u64).map(|i| (i % 30, 1u64)).collect(), 6)
        .reduce_by_key(3, |a, b| a + b);
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    let engine = rig.engine.clone();
    rig.sim.schedule_at(SimTime::from_millis(15), move |sim| {
        engine.kill_executor(sim, &"e-vm-1".into());
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job survives");
    let rows = collect_partitions::<(u64, u64)>(out.partitions);
    assert_eq!(rows.len(), 30);
    let events = rig.engine.event_log().snapshot();
    let rolled_back = events
        .iter()
        .any(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. }));
    assert!(!rolled_back, "HDFS shuffle must not roll back stages");
    // At most the one in-flight task is recomputed; completed map outputs
    // are reused.
    assert!(out.metrics.tasks_recomputed <= 1);
}

#[test]
fn graceful_drain_finishes_task_then_decommissions() {
    let mut rig = hdfs_rig(2);
    let ds = Dataset::parallelize((0..2_000u64).map(|i| (i % 20, 1u64)).collect(), 8)
        .reduce_by_key(2, |a, b| a + b);
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    let drained: Rc<RefCell<Option<f64>>> = Rc::new(RefCell::new(None));
    let d = Rc::clone(&drained);
    let engine = rig.engine.clone();
    rig.sim.schedule_at(SimTime::from_millis(30), move |sim| {
        engine.drain_executor(sim, &"e-vm-0".into(), move |sim, _| {
            *d.borrow_mut() = Some(sim.now().as_secs_f64());
        });
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job completes on survivor");
    let rows = collect_partitions::<(u64, u64)>(out.partitions);
    assert_eq!(rows.len(), 20);
    assert!(drained.borrow().is_some(), "drain callback fired");
    assert_eq!(
        out.metrics.tasks_recomputed, 0,
        "graceful drain must not redo work"
    );
    let events = rig.engine.event_log().snapshot();
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EngineEventKind::ExecutorDraining { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EngineEventKind::ExecutorDecommissioned { .. })));
}

#[test]
fn lambda_memory_pressure_slows_tasks() {
    // Same work on a 1.5 GB Lambda vs an 8 GB VM executor: the big scan
    // working set pushes the Lambda into the GC regime.
    let run_on = |desc_for: &dyn Fn(&Fabric) -> ExecutorDesc| {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(3);
        engine.register_executor(&mut sim, desc_for(&fabric));
        // ~1.6 GB working set in one partition (100M records ≈ 8B each... use generate with large bytes).
        let ds = Dataset::<u64>::generate(1, |_| (0..1_000_000u64).collect())
            .map_with_cost(|x| x + 1, Some(1e-6));
        let mut rig = Rig { sim, fabric, engine };
        let (_, m) = run_job(&mut rig, &ds);
        m.execution_time().as_secs_f64()
    };
    let vm_time = run_on(&|f| {
        let nic = f.add_link(1e9, "n");
        let disk = f.add_link(1e9, "d");
        ExecutorDesc::vm("e-vm-0", nic, disk, 64 * 1024)
    });
    let lambda_time = run_on(&|f| {
        let nic = f.add_link(1e9, "n");
        // Tiny lambda: 256 MB → deep GC territory for an 8 MB+ working set?
        // Memory pressure is working-set/memory; make memory small enough.
        ExecutorDesc::lambda("lambda-0", nic, 100)
    });
    assert!(
        lambda_time > vm_time * 1.2,
        "lambda {lambda_time} vs vm {vm_time}: memory pressure + slower core must show"
    );
}

#[test]
fn event_log_tells_a_consistent_story() {
    let mut rig = local_rig(2);
    let ds = Dataset::parallelize((0..100u64).map(|i| (i % 4, i)).collect(), 4)
        .reduce_by_key(2, |a, b| a + b);
    let (_, _) = run_job(&mut rig, &ds);
    let events = rig.engine.event_log().snapshot();
    let starts = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::TaskStarted { .. }))
        .count();
    let finishes = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::TaskFinished { .. }))
        .count();
    assert_eq!(starts, finishes, "every started task finishes");
    assert_eq!(starts, 6, "4 map + 2 reduce tasks");
    // Timestamps are monotone.
    for w in events.windows(2) {
        assert!(w[0].at <= w[1].at);
    }
    // Job completion is the last lifecycle event.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EngineEventKind::JobCompleted { .. })));
}

#[test]
fn sequential_jobs_reuse_engine_and_executors() {
    let mut rig = local_rig(2);
    for round in 1..4u64 {
        let ds = Dataset::parallelize((0..100u64).map(|i| (i % 5, round)).collect(), 4)
            .reduce_by_key(2, |a, b| a + b);
        let (mut rows, _) = run_job(&mut rig, &ds);
        rows.sort();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(_, v)| *v == 20 * round));
    }
}

#[test]
fn determinism_same_seed_same_timeline() {
    let run = || {
        let mut rig = local_rig(3);
        let ds = Dataset::parallelize((0..2_000u64).map(|i| (i % 16, i)).collect(), 8)
            .reduce_by_key(4, |a, b| a + b);
        let (_, m) = run_job(&mut rig, &ds);
        (m.execution_time().as_secs_f64(), rig.engine.event_log().len())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn late_registered_executor_picks_up_work() {
    let fabric = Fabric::new();
    let store = Rc::new(LocalDiskStore::new(fabric.clone()));
    let engine = Engine::new(EngineConfig::default(), store);
    let mut sim = Sim::new(9);
    // Start with one executor; add a second mid-job.
    let nic0 = fabric.add_link(1e9, "n0");
    let disk0 = fabric.add_link(1e9, "d0");
    engine.register_executor(&mut sim, ExecutorDesc::vm("e-vm-0", nic0, disk0, 8192));
    let ds = Dataset::<u64>::generate(8, |p| (0..100_000).map(|i| i + p as u64).collect())
        .map(|x| (x % 3, *x))
        .reduce_by_key(2, |a, b| a + b);
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    engine.submit_job(&mut sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    let engine2 = engine.clone();
    let fabric2 = fabric.clone();
    sim.schedule_at(SimTime::from_millis(50), move |sim| {
        let nic = fabric2.add_link(1e9, "n1");
        let disk = fabric2.add_link(1e9, "d1");
        engine2.register_executor(sim, ExecutorDesc::vm("e-vm-1", nic, disk, 8192));
    });
    sim.run();
    let out = slot.borrow_mut().take().expect("completes");
    let by_exec: Vec<_> = engine.executors();
    assert_eq!(by_exec.len(), 2);
    assert!(
        by_exec.iter().all(|e| e.tasks_done > 0),
        "late executor contributed: {by_exec:?}"
    );
    assert_eq!(out.metrics.tasks_total(), 10);
}
