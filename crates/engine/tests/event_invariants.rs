//! Ordering and pairing invariants of the engine's observability output:
//! the event log must tell a time-ordered story, every started task must
//! end exactly once, and the span recorder's open/close pairs must nest.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use splitserve_des::{Fabric, Sim, SimTime};
use splitserve_engine::{
    collect_partitions, Dataset, Engine, EngineConfig, EngineEvent, EngineEventKind, ExecutorDesc,
    JobOutput,
};
use splitserve_obs::Obs;
use splitserve_storage::LocalDiskStore;

struct Rig {
    sim: Sim,
    engine: Engine,
}

fn observed_rig(executors: usize) -> Rig {
    let fabric = Fabric::new();
    let store = Rc::new(LocalDiskStore::new(fabric.clone()));
    let cfg = EngineConfig {
        obs: Obs::enabled(),
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg, store);
    let mut sim = Sim::new(11);
    for i in 0..executors {
        let nic = fabric.add_link(1e9, format!("nic-{i}"));
        let disk = fabric.add_link(1e9, format!("disk-{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
    }
    Rig { sim, engine }
}

fn run_shuffle_job(rig: &mut Rig) -> JobOutput {
    let ds = Dataset::parallelize((0..2_000u64).map(|i| (i % 20, 1u64)).collect(), 6)
        .reduce_by_key(3, |a, b| a + b);
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job completes");
    let rows = collect_partitions::<(u64, u64)>(out.partitions.clone());
    assert_eq!(rows.len(), 20, "invariant tests must still compute truth");
    out
}

/// Timestamps never go backwards in the snapshot (push order).
fn assert_monotone(events: &[EngineEvent]) {
    for w in events.windows(2) {
        assert!(
            w[0].at <= w[1].at,
            "event log went back in time: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

/// Every TaskStarted is closed by exactly one TaskFinished or TaskFailed
/// with the same (stage, part, exec).
fn assert_tasks_paired(events: &[EngineEvent]) {
    let mut open: HashMap<(u64, usize, splitserve_engine::ExecutorId), u64> = HashMap::new();
    for e in events {
        match &e.kind {
            EngineEventKind::TaskStarted { stage, part, exec } => {
                let slot = open.entry((stage.0, *part, *exec)).or_insert(0);
                assert_eq!(
                    *slot, 0,
                    "task s{}.{} started twice on {} without ending",
                    stage.0, part, exec
                );
                *slot = 1;
            }
            EngineEventKind::TaskFinished { stage, part, exec, .. }
            | EngineEventKind::TaskFailed { stage, part, exec, .. } => {
                let slot = open.entry((stage.0, *part, *exec)).or_insert(0);
                assert_eq!(
                    *slot, 1,
                    "task s{}.{} ended on {} without a matching start",
                    stage.0, part, exec
                );
                *slot = 0;
            }
            _ => {}
        }
    }
    assert!(
        open.values().all(|v| *v == 0),
        "tasks left open at end of run: {open:?}"
    );
}

#[test]
fn happy_path_run_upholds_all_invariants() {
    let mut rig = observed_rig(3);
    let out = run_shuffle_job(&mut rig);

    let events = rig.engine.event_log().snapshot();
    assert!(!events.is_empty());
    assert_monotone(&events);
    assert_tasks_paired(&events);

    // Span accounting agrees with the event log: one closed task span per
    // TaskFinished, and no span is malformed or badly nested.
    let obs = rig.engine.obs().clone();
    assert_eq!(
        obs.spans.nesting_violation(),
        None,
        "spans on one executor track must be disjoint or contained"
    );
    let finished = obs.spans.finished_spans();
    assert!(finished.iter().all(|s| s.end.unwrap() >= s.start));
    let task_spans = finished.iter().filter(|s| s.name.starts_with("task ")).count();
    let finishes = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::TaskFinished { .. }))
        .count();
    assert_eq!(task_spans, finishes);
    assert_eq!(task_spans, out.metrics.tasks_total() as usize);
    assert_eq!(
        obs.spans.open_spans(),
        0,
        "a clean run leaves no dangling spans"
    );

    // The registry saw the same completions the per-job metrics did.
    assert_eq!(
        obs.metrics.counter_total("tasks_completed_total"),
        out.metrics.tasks_total()
    );
    assert_eq!(obs.metrics.counter_total("jobs_completed_total"), 1);
}

#[test]
fn invariants_survive_executor_kill_and_rollback() {
    let mut rig = observed_rig(3);
    let ds = Dataset::parallelize((0..3_000u64).map(|i| (i % 30, 1u64)).collect(), 6)
        .reduce_by_key(3, |a, b| a + b);
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    let engine = rig.engine.clone();
    rig.sim.schedule_at(SimTime::from_millis(15), move |sim| {
        engine.kill_executor(sim, &"e-vm-1".into());
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job survives the kill");
    assert!(out.metrics.tasks_recomputed > 0, "the kill must bite");

    let events = rig.engine.event_log().snapshot();
    assert_monotone(&events);
    assert_tasks_paired(&events);

    let obs = rig.engine.obs().clone();
    assert_eq!(obs.spans.nesting_violation(), None);
    // Failed attempts close their spans too: closed task spans = finishes
    // + failures, and the registry's failure counter matches the metrics'
    // recompute count.
    let finished = obs.spans.finished_spans();
    let task_spans = finished.iter().filter(|s| s.name.starts_with("task ")).count();
    let ends = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EngineEventKind::TaskFinished { .. } | EngineEventKind::TaskFailed { .. }
            )
        })
        .count();
    assert_eq!(task_spans, ends);
    assert_eq!(
        obs.metrics.counter_total("tasks_failed_total"),
        out.metrics.tasks_recomputed
    );
    // Rollbacks may or may not fire depending on where the kill lands in
    // the timeline; whatever happened, registry and event log must agree.
    let rollbacks = events
        .iter()
        .filter(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. }))
        .count() as u64;
    assert_eq!(obs.metrics.counter_total("stage_rollbacks_total"), rollbacks);
}

#[test]
fn event_log_overflow_is_surfaced_as_a_drop_counter() {
    // A capacity far below what one shuffle job emits: the log must hold
    // exactly `cap` events and surface every dropped push as
    // `event_log_dropped_total`, so a truncated timeline is detectable
    // from a metrics dump alone.
    let cap = 8;
    let mut rig = {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let cfg = EngineConfig {
            obs: Obs::enabled(),
            event_log_capacity: Some(cap),
            ..EngineConfig::default()
        };
        let engine = Engine::new(cfg, store);
        let mut sim = Sim::new(11);
        for i in 0..2 {
            let nic = fabric.add_link(1e9, format!("nic-{i}"));
            let disk = fabric.add_link(1e9, format!("disk-{i}"));
            engine
                .register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
        }
        Rig { sim, engine }
    };
    run_shuffle_job(&mut rig);
    let events = rig.engine.event_log().snapshot();
    assert_eq!(events.len(), cap, "log must stop at its capacity");
    let dropped = rig
        .engine
        .obs()
        .metrics
        .counter_total("event_log_dropped_total");
    assert!(dropped > 0, "overflow must be counted, not silent");
    // Retained + dropped = everything an uncapped run would have logged.
    let mut uncapped = observed_rig(2);
    run_shuffle_job(&mut uncapped);
    let full = uncapped.engine.event_log().snapshot().len() as u64;
    assert_eq!(cap as u64 + dropped, full, "drop count must be exact");
}

#[test]
fn disabled_obs_records_nothing() {
    let mut rig = {
        let fabric = Fabric::new();
        let store = Rc::new(LocalDiskStore::new(fabric.clone()));
        let engine = Engine::new(EngineConfig::default(), store);
        let mut sim = Sim::new(11);
        for i in 0..2 {
            let nic = fabric.add_link(1e9, format!("nic-{i}"));
            let disk = fabric.add_link(1e9, format!("disk-{i}"));
            engine
                .register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
        }
        Rig { sim, engine }
    };
    let out = run_shuffle_job(&mut rig);
    assert!(out.metrics.tasks_total() > 0, "JobMetrics still aggregates");
    let obs = rig.engine.obs();
    assert!(!obs.is_enabled());
    assert!(obs.spans.finished_spans().is_empty());
    assert_eq!(obs.metrics.counter_total("tasks_completed_total"), 0);
    assert_eq!(obs.metrics.render_prometheus(), "");
}
