//! Direct exercises of the engine's failure paths, driven by the
//! deterministic fault-injecting store decorator: an injected fetch
//! failure must travel the `FetchFailed` route (unregister the map
//! output, roll the producing stage back, requeue), an injected write
//! failure must requeue the task *without* any rollback, and each path
//! must label its `tasks_failed_total` telemetry with the right reason.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_des::{Fabric, Sim, SimTime};
use splitserve_engine::{
    collect_partitions, Dataset, Engine, EngineConfig, EngineEventKind, ExecutorDesc, JobOutput,
};
use splitserve_obs::Obs;
use splitserve_storage::{FaultStore, HdfsSpec, HdfsStore, SharedStore, StoreFaults};

struct Rig {
    sim: Sim,
    engine: Engine,
    obs: Obs,
}

/// An HDFS-backed engine with observability on and the fault decorator
/// interposed; shared shuffle keeps the focus on *injected* failures
/// (nothing is lost organically when an executor dies).
fn faulty_hdfs_rig(executors: usize, faults: StoreFaults) -> Rig {
    let fabric = Fabric::new();
    let hdfs = HdfsStore::new(HdfsSpec::default(), fabric.clone());
    let nn_nic = fabric.add_link(1e9, "hdfs-nic");
    let nn_disk = fabric.add_link(1e9, "hdfs-disk");
    hdfs.add_datanode(nn_nic, nn_disk);
    let store: SharedStore = Rc::new(hdfs);
    let obs = Obs::enabled();
    let cfg = EngineConfig {
        obs: obs.clone(),
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg, FaultStore::wrap(store, faults));
    let mut sim = Sim::new(7);
    for i in 0..executors {
        let nic = fabric.add_link(1e9, format!("nic-{i}"));
        let disk = fabric.add_link(1e9, format!("disk-{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
    }
    Rig { sim, engine, obs }
}

fn two_stage_job() -> Dataset<(u64, u64)> {
    Dataset::parallelize((0..3_000u64).map(|i| (i % 30, 1u64)).collect(), 6)
        .reduce_by_key(3, |a, b| a + b)
}

fn run_to_completion(rig: &mut Rig, ds: &Dataset<(u64, u64)>) -> JobOutput {
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine.submit_job(&mut rig.sim, ds.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    rig.sim.run();
    let out = slot.borrow_mut().take().expect("job must survive the fault");
    let mut rows = collect_partitions::<(u64, u64)>(out.partitions.clone());
    rows.sort();
    assert_eq!(rows.len(), 30);
    assert!(rows.iter().all(|(_, c)| *c == 100), "results stay exact");
    out
}

#[test]
fn injected_fetch_failure_drives_the_fetch_failed_path() {
    let faults = StoreFaults::new();
    // The first 6 puts are the map outputs; the first get belongs to a
    // reduce task and is the one struck.
    faults.fail_nth_get(1);
    let mut rig = faulty_hdfs_rig(3, faults.clone());
    let out = run_to_completion(&mut rig, &two_stage_job());

    assert_eq!(faults.gets_failed(), 1, "exactly one fetch was struck");
    let events = rig.engine.event_log().snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EngineEventKind::FetchFailed { .. })),
        "the scheduler must see the fetch failure"
    );
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EngineEventKind::TaskFailed { reason, .. } if reason.contains("injected")
        )),
        "the failed task carries the injected-fault reason"
    );
    // A fetch failure pinpoints a lost map output, so even shared-store
    // shuffle must re-run that producer: rollback machinery fires.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. })),
        "the producing stage rolls back to regenerate the block"
    );
    assert!(out.metrics.tasks_recomputed >= 1);
    assert_eq!(
        rig.obs
            .metrics
            .counter_value("tasks_failed_total", &[("reason", "fetch-failed")]),
        1
    );
    assert_eq!(
        rig.obs
            .metrics
            .counter_value("tasks_failed_total", &[("reason", "write-failed")]),
        0
    );
}

#[test]
fn injected_write_failure_requeues_without_rollback() {
    let faults = StoreFaults::new();
    faults.fail_nth_put(2);
    let mut rig = faulty_hdfs_rig(3, faults.clone());
    let out = run_to_completion(&mut rig, &two_stage_job());

    assert_eq!(faults.puts_failed(), 1);
    let events = rig.engine.event_log().snapshot();
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EngineEventKind::TaskFailed { reason, .. } if reason.contains("injected")
        )),
        "the failed writer is logged"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EngineEventKind::StageRolledBack { .. })),
        "a write failure never invalidates completed outputs"
    );
    assert!(out.metrics.tasks_recomputed >= 1, "the writer re-ran");
    assert_eq!(
        rig.obs
            .metrics
            .counter_value("tasks_failed_total", &[("reason", "write-failed")]),
        1
    );
    assert_eq!(
        rig.obs
            .metrics
            .counter_value("tasks_failed_total", &[("reason", "fetch-failed")]),
        0
    );
}

#[test]
fn executor_loss_failure_is_labelled_executor_lost() {
    let mut rig = faulty_hdfs_rig(3, StoreFaults::new());
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    rig.engine
        .submit_job(&mut rig.sim, two_stage_job().node(), move |_, out| {
            *s.borrow_mut() = Some(out);
        });
    let engine = rig.engine.clone();
    rig.sim.schedule_at(SimTime::from_millis(15), move |sim| {
        engine.kill_executor(sim, &"e-vm-1".into());
    });
    rig.sim.run();
    slot.borrow_mut().take().expect("job survives the kill");
    assert!(
        rig.obs
            .metrics
            .counter_value("tasks_failed_total", &[("reason", "executor-lost")])
            >= 1,
        "the in-flight task's failure is labelled executor-lost"
    );
    assert_eq!(
        rig.obs
            .metrics
            .counter_value("tasks_failed_total", &[("reason", "fetch-failed")])
            + rig
                .obs
                .metrics
                .counter_value("tasks_failed_total", &[("reason", "write-failed")]),
        0,
        "no storage fault was injected, so no storage-failure labels"
    );
}

#[test]
fn repeated_injected_fetch_failures_still_converge() {
    let faults = StoreFaults::new();
    faults.fail_nth_get(1);
    faults.fail_nth_get(3);
    let mut rig = faulty_hdfs_rig(3, faults.clone());
    run_to_completion(&mut rig, &two_stage_job());
    assert_eq!(faults.gets_failed(), 2, "both scheduled faults fired");
    // Both faults fired, but a fault can strike an attempt that a prior
    // fault already aborted — then it never reaches the scheduler. At
    // least one must, and recovery still converges to the exact result.
    let seen = rig
        .obs
        .metrics
        .counter_value("tasks_failed_total", &[("reason", "fetch-failed")]);
    assert!((1..=2).contains(&seen), "got {seen} fetch-failed tasks");
}
