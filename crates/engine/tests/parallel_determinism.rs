//! The parallel data plane's contract: virtual-time results are
//! **byte-identical at any worker count**. The scheduler keeps its
//! deterministic event order; only wall-clock changes when task bodies
//! move to the worker-thread pool (see DESIGN.md "Parallel task data
//! plane"). These tests pin that contract three ways:
//!
//! 1. Same seed at `workers` = 1, 2 and 8 → identical job outputs,
//!    identical engine event logs, and byte-identical serialized shuffle
//!    blocks (captured at the store boundary).
//! 2. A 16-seed fault-plan sweep at `workers` = 4 passes the differential
//!    chaos oracle — parallel execution changes nothing the fault plane
//!    can observe.
//! 3. A kill-time sweep across the driver-dispatch window: an executor
//!    dying between task selection and launch must requeue the task (the
//!    dispatch path once held an `.expect("dispatch picked a live
//!    executor")`), never panic, and still produce exact results.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use splitserve_chaos::workloads::ChaosPageRank;
use splitserve_chaos::{run_case, ChaosTopology, FaultPlan, Oracle};
use splitserve_des::{Fabric, Sim, SimTime};
use splitserve_engine::{
    collect_partitions, Dataset, Engine, EngineConfig, EngineEvent, ExecutorDesc, JobOutput,
};
use splitserve_rt::Bytes;
use splitserve_storage::{
    BlockId, BlockStore, ClientLoc, GetCallback, LocalDiskStore, PutCallback, StoreStats,
};

/// Wraps a [`LocalDiskStore`] and snapshots every written block, so a
/// run's serialized shuffle output can be compared byte-for-byte.
struct RecordingStore {
    inner: LocalDiskStore,
    puts: Rc<RefCell<BTreeMap<String, Vec<u8>>>>,
}

impl BlockStore for RecordingStore {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
    fn survives_executor_loss(&self) -> bool {
        self.inner.survives_executor_loss()
    }
    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        self.puts
            .borrow_mut()
            .insert(block.to_string(), data.to_vec());
        self.inner.put(sim, client, block, data, cb);
    }
    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        self.inner.get(sim, client, block, cb);
    }
    fn on_executor_lost(&self, sim: &mut Sim, executor: &str) {
        self.inner.on_executor_lost(sim, executor);
    }
    fn register_executor(&self, executor: &str, loc: ClientLoc) {
        BlockStore::register_executor(&self.inner, executor, loc);
    }
    fn contains(&self, block: &BlockId) -> bool {
        self.inner.contains(block)
    }
    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

/// One run's complete observable footprint.
struct Footprint {
    rows: Vec<(u64, u64)>,
    events: Vec<EngineEvent>,
    blocks: BTreeMap<String, Vec<u8>>,
    exec_secs: f64,
    /// Canonical bytes of the run's quantile digests — including
    /// `shuffle_combine_seconds`, which worker-pool threads record into
    /// the sharded digest store. Merged snapshots must not depend on how
    /// records landed on shards.
    digest_bytes: Vec<u8>,
}

/// Runs `plan` (shared across calls so shuffle ids coincide) on a fresh
/// 4-executor rig with the given worker count and captures everything.
fn run_with_workers(plan: &Dataset<(u64, u64)>, workers: usize) -> Footprint {
    let fabric = Fabric::new();
    let puts = Rc::new(RefCell::new(BTreeMap::new()));
    let store = Rc::new(RecordingStore {
        inner: LocalDiskStore::new(fabric.clone()),
        puts: Rc::clone(&puts),
    });
    let obs = splitserve_obs::Obs::enabled();
    let cfg = EngineConfig {
        workers,
        obs: obs.clone(),
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg, store);
    let mut sim = Sim::new(7);
    for i in 0..4 {
        let nic = fabric.add_link(1e9, format!("nic-{i}"));
        let disk = fabric.add_link(1e9, format!("disk-{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192));
    }
    let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
    let s = Rc::clone(&slot);
    engine.submit_job(&mut sim, plan.node(), move |_, out| {
        *s.borrow_mut() = Some(out);
    });
    sim.run();
    let out = slot.borrow_mut().take().expect("job completes");
    let blocks = puts.borrow().clone();
    let mut digest_bytes = Vec::new();
    for (name, labels) in [
        ("shuffle_combine_seconds", &[][..]),
        ("task_run_seconds", &[("kind", "vm")][..]),
        ("job_execution_seconds", &[][..]),
    ] {
        let d = obs
            .metrics
            .quantile_digest(name, labels)
            .unwrap_or_else(|| panic!("digest {name} must be populated"));
        digest_bytes.extend_from_slice(name.as_bytes());
        digest_bytes.extend_from_slice(&d.canonical_bytes());
    }
    Footprint {
        rows: collect_partitions::<(u64, u64)>(out.partitions),
        events: engine.event_log().snapshot(),
        blocks,
        exec_secs: out.metrics.execution_time().as_secs_f64(),
        digest_bytes,
    }
}

/// A three-stage aggregation whose map, combine+encode and decode+merge
/// bodies all cross the worker pool.
fn three_stage_plan() -> Dataset<(u64, u64)> {
    Dataset::parallelize((0..20_000u64).map(|i| (i % 64, 1u64)).collect(), 8)
        .reduce_by_key(4, |a, b| a + b)
        .map(|(k, v)| (k % 8, *v))
        .reduce_by_key(4, |a, b| a + b)
}

#[test]
fn worker_count_never_changes_bytes_events_or_rows() {
    // One shared plan instance: shuffle/block ids coincide across runs,
    // so the block maps are comparable key-by-key.
    let plan = three_stage_plan();
    let base = run_with_workers(&plan, 1);
    assert_eq!(base.rows.len(), 8);
    assert!(!base.blocks.is_empty(), "plan must write shuffle blocks");
    for workers in [2, 8] {
        let got = run_with_workers(&plan, workers);
        assert_eq!(got.rows, base.rows, "rows differ at workers={workers}");
        assert_eq!(
            got.events, base.events,
            "event log differs at workers={workers}"
        );
        assert_eq!(
            got.exec_secs.to_bits(),
            base.exec_secs.to_bits(),
            "virtual duration differs at workers={workers}"
        );
        assert_eq!(
            got.digest_bytes, base.digest_bytes,
            "quantile-digest snapshot differs at workers={workers}"
        );
        assert_eq!(
            got.blocks.len(),
            base.blocks.len(),
            "block count differs at workers={workers}"
        );
        for (name, bytes) in &base.blocks {
            assert_eq!(
                got.blocks.get(name).map(|b| &b[..]),
                Some(&bytes[..]),
                "block {name} differs at workers={workers}"
            );
        }
    }
}

#[test]
fn chaos_sweep_at_four_workers_passes_the_differential_oracle() {
    let topo = ChaosTopology {
        workers: 4,
        ..ChaosTopology::default()
    };
    let w = ChaosPageRank::small();
    let oracle = Oracle::new(&w, topo);
    for seed in 0..16 {
        let plan = FaultPlan::generate(seed);
        if let Err(f) = oracle.check(&plan) {
            panic!("workers=4 chaos sweep failed at seed {seed}: {f}");
        }
    }
}

#[test]
fn chaos_case_results_match_across_worker_counts() {
    // The same fault plan at workers=1 and workers=4 must tell exactly
    // the same story: fingerprint, rollbacks, fault tallies, timeline.
    let w = ChaosPageRank::small();
    for seed in [0u64, 5, 11] {
        let plan = FaultPlan::generate(seed);
        let run = |workers: usize| {
            let topo = ChaosTopology {
                workers,
                ..ChaosTopology::default()
            };
            run_case(&w, splitserve::ShuffleStoreKind::Local, Some(&plan), &topo)
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}");
        assert_eq!(a.completed_at, b.completed_at, "seed {seed}");
        assert_eq!(a.rollbacks, b.rollbacks, "seed {seed}");
        assert_eq!(a.recomputed, b.recomputed, "seed {seed}");
        assert_eq!(a.kills, b.kills, "seed {seed}");
        assert_eq!(a.fetch_faults, b.fetch_faults, "seed {seed}");
    }
}

#[test]
fn kill_inside_the_dispatch_window_requeues_instead_of_panicking() {
    // Sweep the kill across every millisecond of the early dispatch
    // window (driver_dispatch serializes launches 4 ms apart, so this
    // covers selection-to-launch gaps at every alignment), at both
    // worker settings. The job must always complete with exact results.
    for workers in [1usize, 4] {
        for kill_ms in 0..30u64 {
            let fabric = Fabric::new();
            let store = Rc::new(LocalDiskStore::new(fabric.clone()));
            let cfg = EngineConfig {
                workers,
                ..EngineConfig::default()
            };
            let engine = Engine::new(cfg, store);
            let mut sim = Sim::new(7);
            for i in 0..2 {
                let nic = fabric.add_link(1e9, format!("nic-{i}"));
                let disk = fabric.add_link(1e9, format!("disk-{i}"));
                engine.register_executor(
                    &mut sim,
                    ExecutorDesc::vm(format!("e-vm-{i}"), nic, disk, 8192),
                );
            }
            let ds = Dataset::parallelize((0..2_000u64).map(|i| (i % 20, 1u64)).collect(), 6)
                .reduce_by_key(2, |a, b| a + b);
            let slot: Rc<RefCell<Option<JobOutput>>> = Rc::new(RefCell::new(None));
            let s = Rc::clone(&slot);
            engine.submit_job(&mut sim, ds.node(), move |_, out| {
                *s.borrow_mut() = Some(out);
            });
            let e = engine.clone();
            sim.schedule_at(SimTime::from_millis(kill_ms), move |sim| {
                e.kill_executor(sim, &"e-vm-1".into());
            });
            sim.run();
            let out = slot
                .borrow_mut()
                .take()
                .unwrap_or_else(|| panic!("job died: kill at {kill_ms} ms, workers={workers}"));
            let mut rows = collect_partitions::<(u64, u64)>(out.partitions);
            rows.sort();
            assert_eq!(rows.len(), 20, "kill at {kill_ms} ms, workers={workers}");
            assert!(
                rows.iter().all(|(_, c)| *c == 100),
                "wrong counts: kill at {kill_ms} ms, workers={workers}"
            );
        }
    }
}
