//! Property tests for the shuffle data plane's two contracts:
//!
//! 1. **Hash grouping ≡ ordered-map reference.** The `HashGroup`-based
//!    map/reduce combine must produce the same per-key results a
//!    `BTreeMap` reference implementation does, for arbitrary inputs.
//! 2. **Byte-determinism.** Two same-seed runs — even through different
//!    plan instances — must serialize byte-identical shuffle blocks, so
//!    replays and cross-substrate reruns stay reproducible.

use std::collections::BTreeMap;

use splitserve_rt::FastMap;
use std::sync::Arc;

use splitserve_engine::{
    collect_partitions, input_shuffles, Dataset, PartitionData, ShuffleDep, TaskContext, WorkModel,
};
use splitserve_obs::Obs;
use splitserve_rt::check::{self, Gen};
use splitserve_rt::Bytes;

fn ctx() -> TaskContext {
    TaskContext::empty(WorkModel::default())
}

/// The combine/encode instrumentation records only through an enabled
/// `Obs` handle; the default (disabled) handle must stay silent.
#[test]
fn shuffle_metrics_record_only_when_enabled() {
    let run = |obs: Obs| {
        let ds = Dataset::parallelize((0..1_000u64).map(|i| (i % 16, 1u64)).collect(), 1)
            .reduce_by_key(4, |a, b| a + b);
        let deps = input_shuffles(&ds.node());
        let dep = &deps[0];
        let mut c = ctx().with_obs(obs.clone());
        let data = dep.parent.compute(&mut c, 0);
        (dep.partitioner)(&mut c, data);
        obs
    };

    let enabled = run(Obs::enabled());
    assert!(
        enabled.metrics.counter_total("shuffle_encode_bytes_total") > 0,
        "enabled obs must count encoded shuffle bytes"
    );
    let hist = enabled
        .metrics
        .histogram("shuffle_combine_seconds", &[])
        .expect("enabled obs must record the combine histogram");
    assert_eq!(hist.count, 1, "one map task => one combine observation");

    let disabled = run(Obs::disabled());
    assert_eq!(
        disabled.metrics.counter_total("shuffle_encode_bytes_total"),
        0,
        "disabled obs must record nothing"
    );
    assert!(disabled
        .metrics
        .histogram("shuffle_combine_seconds", &[])
        .is_none());
}

/// Runs the map and reduce sides of a single-shuffle plan by hand and
/// returns the reduce output, plus every serialized block (in map-task,
/// then reduce-partition order) for byte-level comparison.
fn run_shuffle<K, C>(shuffled: &Dataset<(K, C)>) -> (Vec<(K, C)>, Vec<Bytes>)
where
    K: Clone + Send + Sync + 'static,
    C: Clone + Send + Sync + 'static,
{
    let node = shuffled.node();
    let deps = input_shuffles(&node);
    assert_eq!(deps.len(), 1);
    let dep: &Arc<ShuffleDep> = &deps[0];
    let reduces = dep.num_partitions;
    let mut blocks_flat = Vec::new();
    let mut buckets: Vec<Vec<Bytes>> = vec![Vec::new(); reduces];
    for m in 0..dep.parent.num_partitions() {
        let mut c = ctx();
        let data = dep.parent.compute(&mut c, m);
        for (r, b) in (dep.partitioner)(&mut c, data).into_iter().enumerate() {
            blocks_flat.push(b.bytes.clone());
            if !b.bytes.is_empty() {
                buckets[r].push(b.bytes);
            }
        }
    }
    let mut parts: Vec<PartitionData> = Vec::new();
    for (r, blocks) in buckets.into_iter().enumerate() {
        let mut inputs = FastMap::default();
        inputs.insert(dep.id, blocks);
        let mut c = TaskContext::new(WorkModel::default(), inputs);
        parts.push(node.compute(&mut c, r));
    }
    (collect_partitions::<(K, C)>(parts), blocks_flat)
}

fn random_records(g: &mut Gen) -> Vec<(u64, u64)> {
    let key_space = g.u64_in(1, 50);
    g.vec(0, 400, |g| (g.u64_in(0, key_space), g.u64_in(0, 1_000)))
}

#[test]
fn reduce_by_key_matches_btreemap_reference() {
    check::run("reduce_by_key_matches_reference", 60, |g| {
        let records = random_records(g);
        let partitions = g.usize_in(1, 6);
        let maps = g.usize_in(1, 4);

        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in &records {
            *reference.entry(*k).or_insert(0) = reference.get(k).copied().unwrap_or(0) + v;
        }

        let ds = Dataset::parallelize(records, maps).reduce_by_key(partitions, |a, b| a + b);
        let (mut got, _) = run_shuffle(&ds);
        got.sort_unstable();
        let expect: Vec<(u64, u64)> = reference.into_iter().collect();
        assert_eq!(got, expect, "hash combine must equal ordered reference");
    });
}

#[test]
fn group_by_key_matches_btreemap_reference() {
    check::run("group_by_key_matches_reference", 40, |g| {
        let records = random_records(g);
        let partitions = g.usize_in(1, 5);
        let maps = g.usize_in(1, 4);

        let mut reference: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (k, v) in &records {
            reference.entry(*k).or_default().push(*v);
        }
        // Grouping order across map tasks is not part of the contract;
        // compare sorted value multisets.
        let expect: Vec<(u64, Vec<u64>)> = reference
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort_unstable();
                (k, vs)
            })
            .collect();

        let ds = Dataset::parallelize(records, maps).group_by_key(partitions);
        let node = ds.node();
        let deps = input_shuffles(&node);
        let dep = &deps[0];
        let mut buckets: Vec<Vec<Bytes>> = vec![Vec::new(); dep.num_partitions];
        for m in 0..dep.parent.num_partitions() {
            let mut c = ctx();
            let data = dep.parent.compute(&mut c, m);
            for (r, b) in (dep.partitioner)(&mut c, data).into_iter().enumerate() {
                if !b.bytes.is_empty() {
                    buckets[r].push(b.bytes);
                }
            }
        }
        let mut got: Vec<(u64, Vec<u64>)> = Vec::new();
        for (r, blocks) in buckets.into_iter().enumerate() {
            let mut inputs = FastMap::default();
            inputs.insert(dep.id, blocks);
            let mut c = TaskContext::new(WorkModel::default(), inputs);
            got.extend(collect_partitions::<(u64, Vec<u64>)>(vec![
                node.compute(&mut c, r),
            ]));
        }
        got.sort_unstable_by_key(|(k, _)| *k);
        for (_, vs) in &mut got {
            vs.sort_unstable();
        }
        assert_eq!(got, expect, "hash grouping must equal ordered reference");
    });
}

#[test]
fn same_seed_runs_produce_byte_identical_shuffle_blocks() {
    check::run("shuffle_blocks_are_deterministic", 30, |g| {
        let seed = g.u64();
        let partitions = g.usize_in(1, 5);
        let maps = g.usize_in(1, 4);
        let n = g.usize_in(0, 300);

        // Two *independent* plan instances from the same seed: determinism
        // must come from the data and the fixed-seed hash, not from shared
        // state.
        let build = || {
            let mut rng = splitserve_rt::Rng::seed_from_u64(seed);
            let records: Vec<(u64, u64)> = (0..n)
                .map(|_| (rng.next_u64() % 64, rng.next_u64() % 1_000))
                .collect();
            Dataset::parallelize(records, maps).reduce_by_key(partitions, |a, b| a.wrapping_add(*b))
        };
        let (rows_a, blocks_a) = run_shuffle(&build());
        let (rows_b, blocks_b) = run_shuffle(&build());

        assert_eq!(rows_a, rows_b, "reduce output must be identical");
        assert_eq!(blocks_a.len(), blocks_b.len());
        for (i, (a, b)) in blocks_a.iter().zip(&blocks_b).enumerate() {
            assert_eq!(&a[..], &b[..], "block {i} must be byte-identical");
        }
    });
}
