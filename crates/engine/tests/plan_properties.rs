//! Property tests over randomized query plans: the engine must compute
//! exactly what a sequential evaluation computes, for arbitrary chains of
//! narrow and wide operators over arbitrary data, on arbitrary clusters.

use splitserve_rt::check::{self, Gen};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use splitserve_des::{Fabric, Sim};
use splitserve_engine::{
    collect_partitions, Dataset, Engine, EngineConfig, ExecutorDesc,
};
use splitserve_storage::{HdfsSpec, HdfsStore, LocalDiskStore};

/// A randomly generated pipeline step.
#[derive(Debug, Clone)]
enum Step {
    MapAdd(u64),
    FilterMod(u64),
    RekeyMod(u64),
    ReduceSum { partitions: usize },
    GroupCount { partitions: usize },
}

fn arb_step(g: &mut Gen) -> Step {
    match g.usize_in(0, 5) {
        0 => Step::MapAdd(g.u64_in(1, 99)),
        1 => Step::FilterMod(g.u64_in(2, 4)),
        2 => Step::RekeyMod(g.u64_in(1, 39)),
        3 => Step::ReduceSum { partitions: g.usize_in(1, 5) },
        _ => Step::GroupCount { partitions: g.usize_in(1, 5) },
    }
}

fn arb_data(g: &mut Gen, max_rows: usize, key_range: u64, val_range: Option<u64>) -> Vec<(u64, u64)> {
    g.vec(0, max_rows, |g| {
        let k = g.u64_in(0, key_range - 1);
        let v = match val_range {
            Some(r) => g.u64_in(0, r - 1),
            None => g.u64(),
        };
        (k, v)
    })
}

/// Applies the pipeline on the engine.
fn build_plan(data: Vec<(u64, u64)>, parts: usize, steps: &[Step]) -> Dataset<(u64, u64)> {
    let mut ds = Dataset::parallelize(data, parts);
    for step in steps {
        ds = match step.clone() {
            Step::MapAdd(n) => ds.map(move |(k, v)| (*k, v.wrapping_add(n))),
            Step::FilterMod(m) => ds.filter(move |(k, _)| k % m != 0),
            Step::RekeyMod(m) => ds.map(move |(k, v)| (k % m, *v)),
            Step::ReduceSum { partitions } => {
                ds.reduce_by_key(partitions, |a, b| a.wrapping_add(*b))
            }
            Step::GroupCount { partitions } => ds
                .group_by_key(partitions)
                .map(|(k, vs)| (*k, vs.len() as u64)),
        };
    }
    ds
}

/// Applies the same pipeline sequentially.
fn reference(data: &[(u64, u64)], steps: &[Step]) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = data.to_vec();
    for step in steps {
        rows = match step.clone() {
            Step::MapAdd(n) => rows
                .into_iter()
                .map(|(k, v)| (k, v.wrapping_add(n)))
                .collect(),
            Step::FilterMod(m) => rows.into_iter().filter(|(k, _)| k % m != 0).collect(),
            Step::RekeyMod(m) => rows.into_iter().map(|(k, v)| (k % m, v)).collect(),
            Step::ReduceSum { .. } => {
                let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
                for (k, v) in rows {
                    let e = acc.entry(k).or_insert(0);
                    *e = e.wrapping_add(v);
                }
                acc.into_iter().collect()
            }
            Step::GroupCount { .. } => {
                let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
                for (k, _) in rows {
                    *acc.entry(k).or_insert(0) += 1;
                }
                acc.into_iter().collect()
            }
        };
    }
    rows
}

fn run_on_engine(
    data: Vec<(u64, u64)>,
    parts: usize,
    steps: &[Step],
    executors: usize,
    use_hdfs: bool,
) -> Vec<(u64, u64)> {
    let fabric = Fabric::new();
    let store: Rc<dyn splitserve_storage::BlockStore> = if use_hdfs {
        let hdfs = HdfsStore::new(HdfsSpec::default(), fabric.clone());
        let nic = fabric.add_link(1e9, "hdfs-nic");
        let disk = fabric.add_link(1e9, "hdfs-disk");
        hdfs.add_datanode(nic, disk);
        Rc::new(hdfs)
    } else {
        Rc::new(LocalDiskStore::new(fabric.clone()))
    };
    let engine = Engine::new(EngineConfig::default(), store);
    let mut sim = Sim::new(11);
    for i in 0..executors {
        let nic = fabric.add_link(1e9, format!("n{i}"));
        let disk = fabric.add_link(1e9, format!("d{i}"));
        engine.register_executor(&mut sim, ExecutorDesc::vm(format!("e-{i}"), nic, disk, 8192));
    }
    let plan = build_plan(data, parts, steps);
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    engine.submit_job(&mut sim, plan.node(), move |_, r| {
        *o.borrow_mut() = Some(collect_partitions::<(u64, u64)>(r.partitions));
    });
    sim.run();
    let mut rows = out.borrow_mut().take().expect("plan completes");
    rows.sort();
    rows
}

/// Distributed == sequential, for any random pipeline.
#[test]
fn random_pipelines_match_reference() {
    check::run("random_pipelines_match_reference", 24, |g| {
        let data = arb_data(g, 400, 50, None);
        let parts = g.usize_in(1, 7);
        let steps = g.vec(0, 5, arb_step);
        let executors = g.usize_in(1, 4);
        let use_hdfs = g.bool();
        let got = run_on_engine(data.clone(), parts, &steps, executors, use_hdfs);
        let mut expect = reference(&data, &steps);
        expect.sort();
        assert_eq!(got, expect);
    });
}

/// Executor count never changes results.
#[test]
fn executor_count_is_invisible_in_results() {
    check::run("executor_count_is_invisible_in_results", 24, |g| {
        let data = arb_data(g, 200, 20, Some(1000));
        let mut steps = g.vec(1, 4, arb_step);
        if steps.is_empty() {
            steps.push(arb_step(g));
        }
        let one = run_on_engine(data.clone(), 4, &steps, 1, false);
        let many = run_on_engine(data, 4, &steps, 4, true);
        assert_eq!(one, many);
    });
}
