//! Stage construction: splitting a plan DAG at its shuffle boundaries, the
//! job of Spark's `DAGScheduler::getOrCreateShuffleMapStage`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::node::{input_shuffles, PlanNode, ShuffleDep, ShuffleId};

/// Identifies a stage within one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u64);

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage-{}", self.0)
    }
}

/// What a stage produces.
#[derive(Clone)]
pub enum StageKind {
    /// Writes one shuffle's map outputs.
    ShuffleMap(Arc<ShuffleDep>),
    /// Computes the job's final partitions.
    Result,
}

impl std::fmt::Debug for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageKind::ShuffleMap(d) => write!(f, "ShuffleMap({})", d.id),
            StageKind::Result => f.write_str("Result"),
        }
    }
}

/// One stage: a set of identical tasks running `terminal`'s narrow
/// pipeline over its partitions.
#[derive(Clone)]
pub struct Stage {
    /// Stage id (topologically ordered: parents have smaller ids).
    pub id: StageId,
    /// Map stage or result stage.
    pub kind: StageKind,
    /// The node each task computes.
    pub terminal: Arc<dyn PlanNode>,
    /// Number of tasks (the terminal's partitions).
    pub num_tasks: usize,
    /// Stages whose shuffle output this stage reads.
    pub parents: Vec<StageId>,
    /// The shuffles this stage's tasks fetch.
    pub input_shuffles: Vec<Arc<ShuffleDep>>,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("terminal", &self.terminal.label())
            .field("num_tasks", &self.num_tasks)
            .field("parents", &self.parents)
            .finish()
    }
}

/// A job's stage DAG.
#[derive(Debug)]
pub struct StageGraph {
    /// All stages, indexed by `StageId.0` (topological order).
    pub stages: Vec<Stage>,
    /// The result stage's id (always the last).
    pub result: StageId,
}

impl StageGraph {
    /// The stage with the given id.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.0 as usize]
    }

    /// Stage count.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the graph is empty (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage that *produces* shuffle `id`, if any.
    pub fn producer_of(&self, id: ShuffleId) -> Option<StageId> {
        self.stages.iter().find_map(|s| match &s.kind {
            StageKind::ShuffleMap(dep) if dep.id == id => Some(s.id),
            _ => None,
        })
    }
}

/// Builds the stage DAG for a job ending at `final_node`.
pub fn build_stages(final_node: Arc<dyn PlanNode>) -> StageGraph {
    let mut stages: Vec<Stage> = Vec::new();
    let mut by_shuffle: HashMap<ShuffleId, StageId> = HashMap::new();

    fn stage_for_shuffle(
        dep: &Arc<ShuffleDep>,
        stages: &mut Vec<Stage>,
        by_shuffle: &mut HashMap<ShuffleId, StageId>,
    ) -> StageId {
        if let Some(id) = by_shuffle.get(&dep.id) {
            return *id;
        }
        let inputs = input_shuffles(&dep.parent);
        let parents: Vec<StageId> = inputs
            .iter()
            .map(|d| stage_for_shuffle(d, stages, by_shuffle))
            .collect();
        let id = StageId(stages.len() as u64);
        stages.push(Stage {
            id,
            kind: StageKind::ShuffleMap(Arc::clone(dep)),
            terminal: Arc::clone(&dep.parent),
            num_tasks: dep.parent.num_partitions(),
            parents,
            input_shuffles: inputs,
        });
        by_shuffle.insert(dep.id, id);
        id
    }

    let inputs = input_shuffles(&final_node);
    let parents: Vec<StageId> = inputs
        .iter()
        .map(|d| stage_for_shuffle(d, &mut stages, &mut by_shuffle))
        .collect();
    let result = StageId(stages.len() as u64);
    stages.push(Stage {
        id: result,
        kind: StageKind::Result,
        terminal: Arc::clone(&final_node),
        num_tasks: final_node.num_partitions(),
        parents,
        input_shuffles: inputs,
    });
    StageGraph { stages, result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Dataset;

    #[test]
    fn narrow_only_job_is_one_stage() {
        let ds = Dataset::parallelize((0..10u32).collect(), 2)
            .map(|x| x + 1)
            .filter(|x| x % 2 == 0);
        let g = build_stages(ds.node());
        assert_eq!(g.len(), 1);
        assert!(matches!(g.stage(g.result).kind, StageKind::Result));
        assert_eq!(g.stage(g.result).num_tasks, 2);
    }

    #[test]
    fn one_shuffle_makes_two_stages() {
        let ds = Dataset::parallelize((0..10u64).map(|i| (i % 3, i)).collect(), 4)
            .reduce_by_key(2, |a, b| a + b);
        let g = build_stages(ds.node());
        assert_eq!(g.len(), 2);
        let map = g.stage(StageId(0));
        assert!(matches!(map.kind, StageKind::ShuffleMap(_)));
        assert_eq!(map.num_tasks, 4, "map side width = parent partitions");
        let result = g.stage(g.result);
        assert_eq!(result.num_tasks, 2, "result width = reduce partitions");
        assert_eq!(result.parents, vec![StageId(0)]);
        assert_eq!(result.input_shuffles.len(), 1);
    }

    #[test]
    fn join_makes_three_stages() {
        let a = Dataset::parallelize((0..10u64).map(|i| (i, i)).collect(), 3);
        let b = Dataset::parallelize((0..10u64).map(|i| (i, i * 2)).collect(), 2);
        let j = a.join(&b, 4);
        let g = build_stages(j.node());
        assert_eq!(g.len(), 3);
        let result = g.stage(g.result);
        assert_eq!(result.parents.len(), 2);
        assert_eq!(result.num_tasks, 4);
        // Both parents are map stages of widths 3 and 2.
        let mut widths: Vec<usize> = result
            .parents
            .iter()
            .map(|p| g.stage(*p).num_tasks)
            .collect();
        widths.sort();
        assert_eq!(widths, vec![2, 3]);
    }

    #[test]
    fn chained_shuffles_are_topologically_ordered() {
        let ds = Dataset::parallelize((0..100u64).map(|i| (i % 10, i)).collect(), 4)
            .reduce_by_key(4, |a, b| a + b)
            .map(|(k, v)| (k % 2, *v))
            .reduce_by_key(2, |a, b| a + b);
        let g = build_stages(ds.node());
        assert_eq!(g.len(), 3);
        for s in &g.stages {
            for p in &s.parents {
                assert!(*p < s.id, "parent after child");
            }
        }
        // Producer lookup works.
        let first_dep = match &g.stage(StageId(1)).kind {
            StageKind::ShuffleMap(d) => &d.id,
            _ => panic!("stage 1 should be a map stage"),
        };
        assert_eq!(g.producer_of(*first_dep), Some(StageId(1)));
    }

    #[test]
    fn shared_lineage_stage_is_reused() {
        // A dataset consumed by two shuffles downstream of the same
        // upstream shuffle must not duplicate the upstream stage.
        let base = Dataset::parallelize((0..20u64).map(|i| (i % 4, i)).collect(), 2)
            .reduce_by_key(2, |a, b| a + b);
        let left = base.map(|(k, v)| (*k, *v + 1));
        let right = base.map(|(k, v)| (*k, *v * 2));
        let j = left.join(&right, 2);
        let g = build_stages(j.node());
        // stages: base map, left map, right map, result = 4 (base reused).
        assert_eq!(g.len(), 4);
    }
}
