//! # splitserve-engine — a Spark-like distributed dataflow engine
//!
//! A reproduction of the Apache Spark execution model at the fidelity the
//! SplitServe paper needs: typed lazily-evaluated datasets with lineage
//! ([`Dataset`]), stages split at shuffle boundaries ([`build_stages`]), a
//! driver-side map-output tracker, a task scheduler over registered
//! executors ([`Engine`]), dynamic executor churn (register / drain /
//! kill), and lineage-based fault recovery with rollback cascades when
//! shuffle data dies with its executor.
//!
//! Tasks perform **real computation on real data**; the discrete-event
//! simulation only decides how long that computation and its shuffle I/O
//! take (see [`WorkModel`]). Results are therefore checkable while timing
//! remains faithful to the simulated cloud.
//!
//! The two SplitServe-critical mechanisms live here:
//!
//! - **Pluggable shuffle store** — the engine writes map outputs through a
//!   [`splitserve_storage::BlockStore`], so vanilla local-disk shuffle,
//!   Qubole-style S3 shuffle and SplitServe's HDFS shuffle are one
//!   constructor argument apart.
//! - **Graceful draining** ([`Engine::drain_executor`]) vs. abrupt kills
//!   ([`Engine::kill_executor`]) — the difference between SplitServe's
//!   segue and the execution rollback it avoids.

#![warn(missing_docs)]

mod combine;
mod config;
mod context;
mod events;
mod executor;
mod metrics;
mod node;
mod ops;
mod ops_ext;
mod scheduler;
mod stage;
mod telemetry;
mod tracker;

pub use config::{EngineConfig, StragglerConfig, WorkModel};
pub use context::TaskContext;
pub use events::{EngineEvent, EngineEventKind, EventLog, JobId};
pub use executor::{ExecutorDesc, ExecutorId, ExecutorKind};
pub use metrics::{JobMetrics, JobOutput};
pub use node::{
    input_shuffles, next_node_id, next_shuffle_id, Dep, NodeId, PartitionData, PlanNode,
    ShuffleBucket, ShuffleDep, ShuffleId,
};
pub use ops::{bucket_of, collect_partitions, Dataset, ShuffleKey, ShuffleValue};
pub use ops_ext::{sample_sort_bounds, Cogrouped, SortKey};
pub use scheduler::{Engine, ExecutorInfo};
pub use stage::{build_stages, Stage, StageGraph, StageId, StageKind};
pub use tracker::{MapOutputTracker, MapStatus};
