//! The engine: DAG scheduling, task execution, shuffle I/O and fault
//! recovery, driven entirely by simulation events.
//!
//! This is the component SplitServe modifies in Spark — the
//! `DAGScheduler`/`CoarseGrainedSchedulerBackend` pair. It:
//!
//! - splits a job into stages and submits them as parents complete;
//! - assigns tasks to registered executors (VM- or Lambda-backed alike);
//! - runs each task's *real* computation, charging virtual time for CPU
//!   (scaled by core speed and GC pressure) and for shuffle I/O through
//!   the block store;
//! - recovers from executor loss: failed tasks are re-queued, and when the
//!   shuffle store does not survive executor death (local disk), lost map
//!   outputs trigger the rollback cascade of parent-stage resubmission;
//! - supports *graceful draining* — the mechanism SplitServe's segueing
//!   facility relies on: a draining executor takes no new tasks, finishes
//!   its current one, and decommissions when idle.

use std::collections::{HashSet, VecDeque};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use splitserve_rt::{Bytes, FastMap, FastSet, TaskHandle, WorkerPool};
use splitserve_des::{Sim, SimDuration, SimTime};
use splitserve_obs::SpanId;
use splitserve_storage::{BlockId, BlockStore, StoreError};

use crate::config::EngineConfig;
use crate::context::TaskContext;
use crate::events::{EngineEventKind, EventLog, JobId};
use crate::executor::{ExecutorDesc, ExecutorId, ExecutorKind};
use crate::metrics::{JobMetrics, JobOutput};
use crate::node::{PartitionData, PlanNode, ShuffleBucket, ShuffleId};
use crate::stage::{build_stages, StageGraph, StageId, StageKind};
use crate::telemetry::{FailureKind, Telemetry};
use crate::tracker::{MapOutputTracker, MapStatus};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AttemptId(u64);

/// Callback invoked when a draining executor finally leaves the cluster.
type DrainCallback = Box<dyn FnOnce(&mut Sim, ExecutorId)>;

struct ExecMeta {
    desc: ExecutorDesc,
    alive: bool,
    draining: bool,
    running: Option<AttemptId>,
    registered_at: SimTime,
    idle_since: SimTime,
    tasks_done: u64,
    on_drained: Option<DrainCallback>,
    /// Multiplier on the executor's core speed (1.0 = nominal). The chaos
    /// plane lowers it to turn an executor into a straggler.
    speed_factor: f64,
}

#[derive(Debug, Clone, Copy)]
struct AttemptInfo {
    job: JobId,
    stage: StageId,
    part: usize,
    exec: ExecutorId,
    /// The task's executor-lane span (no-op id when obs is disabled).
    span: SpanId,
    /// When the attempt was dispatched (the span's open instant) — the
    /// anchor for wall-clock run time and the straggler watch.
    started_at: SimTime,
    /// Already flagged by the straggler watch; flag-once per attempt.
    straggler_flagged: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageState {
    Waiting,
    Running,
    Done,
}

#[derive(Default)]
struct StageStatus {
    state: Option<StageState>, // None until initialized
    queued: HashSet<usize>,
    running: HashSet<usize>,
}

/// Driver-side completion callback of a job.
type JobDoneCallback = Box<dyn FnOnce(&mut Sim, JobOutput)>;

struct JobState {
    graph: StageGraph,
    status: Vec<StageStatus>,
    result_parts: Vec<Option<PartitionData>>,
    on_done: Option<JobDoneCallback>,
    /// Uniquely owned (`Arc::get_mut`) while the job runs; once the job
    /// completes, accessors hand out cheap `Arc` clones instead of deep-
    /// copying the whole metrics block.
    metrics: Arc<JobMetrics>,
    done: bool,
}

impl JobState {
    /// Mutable metrics access for the in-flight paths. The `Arc` is only
    /// ever shared *after* `done` is set, so this never fails while the
    /// job is live.
    #[inline]
    fn metrics_mut(&mut self) -> &mut JobMetrics {
        Arc::get_mut(&mut self.metrics).expect("in-flight job metrics are uniquely owned")
    }
}

/// Sentinel in the symbol→slot side table for "no executor with this
/// symbol registered here".
const NO_SLOT: u32 = u32::MAX;

struct Inner {
    cfg: EngineConfig,
    /// Dense executor table; slots are assigned at registration and never
    /// reused (dead executors stay, `alive = false`, exactly like the old
    /// map entries did).
    execs: Vec<ExecMeta>,
    /// Slot indices sorted by executor *name*. The dispatch scan and the
    /// `executors()` snapshot iterate this, preserving the old
    /// `BTreeMap<ExecutorId, _>` lexicographic order — VM executors can
    /// register after lambdas but sort before them, and dispatch order is
    /// output-visible (core speeds differ by kind).
    execs_by_name: Vec<u32>,
    /// Interner-symbol → slot side table (`NO_SLOT` = absent). Symbols
    /// are dense process-wide, so this stays small and O(1) to index.
    exec_slots: Vec<u32>,
    /// Dense job table indexed by `JobId.0` (ids are sequential from 0).
    jobs: Vec<JobState>,
    attempts: FastMap<AttemptId, AttemptInfo>,
    pending: VecDeque<(JobId, StageId, usize)>,
    next_attempt: u64,
    tracker: MapOutputTracker,
    driver_free_at: SimTime,
    /// Live completion-time digests per (job, stage), feeding the
    /// straggler watch. Only populated while observability is enabled;
    /// entries live as long as their `JobState`.
    stage_runtimes: FastMap<(JobId, StageId), splitserve_obs::QuantileDigest>,
}

impl Inner {
    /// Slot of a registered executor, dead or alive.
    #[inline]
    fn exec_slot(&self, id: ExecutorId) -> Option<usize> {
        match self.exec_slots.get(id.sym() as usize) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    #[inline]
    fn exec(&self, id: ExecutorId) -> Option<&ExecMeta> {
        self.exec_slot(id).map(|s| &self.execs[s])
    }

    #[inline]
    fn exec_mut(&mut self, id: ExecutorId) -> Option<&mut ExecMeta> {
        self.exec_slot(id).map(|s| &mut self.execs[s])
    }

    /// Registers a new executor slot, keeping `execs_by_name` sorted.
    /// Returns `false` if the id is already present.
    fn add_exec(&mut self, meta: ExecMeta) -> bool {
        let id = meta.desc.id;
        let sym = id.sym() as usize;
        if sym >= self.exec_slots.len() {
            self.exec_slots.resize(sym + 1, NO_SLOT);
        }
        if self.exec_slots[sym] != NO_SLOT {
            return false;
        }
        let slot = u32::try_from(self.execs.len()).expect("executor slot overflow");
        self.execs.push(meta);
        self.exec_slots[sym] = slot;
        let pos = self
            .execs_by_name
            .partition_point(|&s| self.execs[s as usize].desc.id < id);
        self.execs_by_name.insert(pos, slot);
        true
    }

}

/// A snapshot of one executor's state, for policy layers (SplitServe's
/// launching and segueing facilities live above this API).
#[derive(Debug, Clone)]
pub struct ExecutorInfo {
    /// The executor.
    pub id: ExecutorId,
    /// VM- or Lambda-backed.
    pub kind: ExecutorKind,
    /// When it registered.
    pub registered_at: SimTime,
    /// Still accepting/running work.
    pub alive: bool,
    /// In graceful-drain mode.
    pub draining: bool,
    /// Currently executing a task.
    pub busy: bool,
    /// When the executor last became idle (its registration time if it
    /// has never run a task). Meaningful only when `busy` is false.
    pub idle_since: SimTime,
    /// Tasks completed so far.
    pub tasks_done: u64,
}

/// The Spark-like engine. Cloneable handle; all state is shared.
///
/// # Examples
///
/// ```
/// use splitserve_des::{Fabric, Sim};
/// use splitserve_engine::{collect_partitions, Dataset, Engine, EngineConfig, ExecutorDesc};
/// use splitserve_storage::LocalDiskStore;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(0);
/// let fabric = Fabric::new();
/// let store = Rc::new(LocalDiskStore::new(fabric.clone()));
/// let engine = Engine::new(EngineConfig::default(), store);
///
/// let nic = fabric.add_link(1e9, "nic");
/// let disk = fabric.add_link(1e9, "disk");
/// engine.register_executor(&mut sim, ExecutorDesc::vm("exec-0", nic, disk, 8192));
///
/// let sums = Dataset::parallelize((0..1000u64).map(|i| (i % 4, i)).collect(), 4)
///     .reduce_by_key(2, |a, b| a + b);
/// let out = std::rc::Rc::new(std::cell::RefCell::new(None));
/// let o = Rc::clone(&out);
/// engine.submit_job(&mut sim, sums.node(), move |_sim, output| {
///     *o.borrow_mut() = Some(collect_partitions::<(u64, u64)>(output.partitions));
/// });
/// sim.run();
/// let mut rows = out.borrow_mut().take().expect("job finished");
/// rows.sort();
/// assert_eq!(rows.len(), 4);
/// ```
#[derive(Clone)]
pub struct Engine {
    inner: Rc<RefCell<Inner>>,
    store: Rc<dyn BlockStore>,
    log: EventLog,
    tele: Telemetry,
    /// Worker threads for task bodies; `None` runs bodies inline on the
    /// simulation thread (`workers <= 1`). Shared `Rc`: the pool joins
    /// its threads when the last engine handle drops.
    pool: Option<Rc<WorkerPool>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Engine")
            .field("executors", &inner.execs.len())
            .field("jobs", &inner.jobs.len())
            .field("pending_tasks", &inner.pending.len())
            .field("store", &self.store.kind())
            .finish()
    }
}

enum ComputePayload {
    MapOut(Vec<ShuffleBucket>),
    ResultOut(PartitionData),
}

/// What a task body hands back to the simulation: its output, total CPU
/// charge and working-set size (the inputs of the duration model).
type BodyResult = (ComputePayload, f64, u64);

/// A task body between launch and its join event. Pooled bodies are
/// already running on a worker thread; inline bodies (workers <= 1) run
/// on the simulation thread when the join event fires. Both variants
/// resolve at the same virtual instant, so event order is identical at
/// any worker count.
enum PendingBody {
    Inline(Box<dyn FnOnce() -> BodyResult>),
    Pooled(TaskHandle<BodyResult>),
}

impl PendingBody {
    fn resolve(self) -> BodyResult {
        match self {
            PendingBody::Inline(f) => f(),
            PendingBody::Pooled(h) => h.join(),
        }
    }
}

impl Engine {
    /// Creates an engine over the given shuffle store.
    pub fn new(cfg: EngineConfig, store: Rc<dyn BlockStore>) -> Self {
        let log = EventLog::bounded(
            cfg.event_log,
            cfg.event_log_capacity,
            cfg.obs.metrics.clone(),
        );
        let tele = Telemetry::new(cfg.obs.clone());
        let pool = (cfg.workers >= 2).then(|| Rc::new(WorkerPool::new(cfg.workers)));
        Engine {
            pool,
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                execs: Vec::new(),
                execs_by_name: Vec::new(),
                exec_slots: Vec::new(),
                jobs: Vec::new(),
                attempts: FastMap::default(),
                pending: VecDeque::new(),
                next_attempt: 0,
                tracker: MapOutputTracker::new(),
                driver_free_at: SimTime::ZERO,
                stage_runtimes: FastMap::default(),
            })),
            store,
            log,
            tele,
        }
    }

    /// The engine's event log.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// The observability handle the engine records into (the one passed
    /// via [`EngineConfig::obs`]; disabled by default).
    pub fn obs(&self) -> &splitserve_obs::Obs {
        self.tele.obs()
    }

    /// The shuffle store in use.
    pub fn store(&self) -> &Rc<dyn BlockStore> {
        &self.store
    }

    // ----- executors ---------------------------------------------------

    /// Registers an executor and immediately offers it pending work.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register_executor(&self, sim: &mut Sim, desc: ExecutorDesc) {
        self.store.register_executor(desc.id.as_str(), desc.client_loc());
        {
            let mut inner = self.inner.borrow_mut();
            let id = desc.id;
            let kind = desc.kind;
            let fresh = inner.add_exec(ExecMeta {
                desc,
                alive: true,
                draining: false,
                running: None,
                registered_at: sim.now(),
                idle_since: sim.now(),
                tasks_done: 0,
                on_drained: None,
                speed_factor: 1.0,
            });
            assert!(fresh, "duplicate executor {id}");
            self.tele.executor_registered(sim.now(), id, kind);
            self.log
                .push(sim.now(), EngineEventKind::ExecutorRegistered { exec: id, kind });
        }
        self.dispatch(sim);
    }

    /// Snapshot of all executors (in id order).
    pub fn executors(&self) -> Vec<ExecutorInfo> {
        let inner = self.inner.borrow();
        inner
            .execs_by_name
            .iter()
            .map(|&slot| {
                let m = &inner.execs[slot as usize];
                ExecutorInfo {
                    id: m.desc.id,
                    kind: m.desc.kind,
                    registered_at: m.registered_at,
                    alive: m.alive,
                    draining: m.draining,
                    busy: m.running.is_some(),
                    idle_since: m.idle_since,
                    tasks_done: m.tasks_done,
                }
            })
            .collect()
    }

    /// Snapshot of one executor.
    pub fn executor_info(&self, id: &ExecutorId) -> Option<ExecutorInfo> {
        self.executors().into_iter().find(|e| &e.id == id)
    }

    /// Number of tasks waiting in the dispatch queue (the backlog a
    /// dynamic-allocation controller reacts to).
    pub fn pending_tasks(&self) -> usize {
        self.inner.borrow().pending.len()
    }

    /// Whether any submitted job has not completed yet.
    pub fn has_active_jobs(&self) -> bool {
        self.inner.borrow().jobs.iter().any(|j| !j.done)
    }

    /// Number of live, non-draining executors.
    pub fn active_executors(&self) -> usize {
        let inner = self.inner.borrow();
        inner
            .execs
            .iter()
            .filter(|m| m.alive && !m.draining)
            .count()
    }

    /// Puts an executor into graceful-drain mode: it takes no new tasks,
    /// finishes any current one, and `on_drained` fires when it leaves the
    /// cluster. This is the decommission path that does **not** roll back
    /// execution — provided the shuffle store survives executor loss.
    pub fn drain_executor(
        &self,
        sim: &mut Sim,
        id: &ExecutorId,
        on_drained: impl FnOnce(&mut Sim, ExecutorId) + 'static,
    ) {
        let finish_now = {
            let mut inner = self.inner.borrow_mut();
            let Some(meta) = inner.exec_mut(*id) else {
                return;
            };
            if !meta.alive || meta.draining {
                return;
            }
            meta.draining = true;
            meta.on_drained = Some(Box::new(on_drained));
            let idle = meta.running.is_none();
            self.log
                .push(sim.now(), EngineEventKind::ExecutorDraining { exec: *id });
            idle
        };
        if finish_now {
            self.decommission(sim, *id);
        }
    }

    /// Abruptly kills an executor (Lambda lifetime expiry, VM crash). Its
    /// running task fails and is re-queued; if the shuffle store is
    /// executor-local, its map outputs are invalidated and the affected
    /// stages roll back.
    pub fn kill_executor(&self, sim: &mut Sim, id: &ExecutorId) {
        let killed = {
            let mut inner = self.inner.borrow_mut();
            let Some(meta) = inner.exec_mut(*id) else {
                return;
            };
            if !meta.alive {
                return;
            }
            meta.alive = false;
            let running = meta.running.take();
            self.log
                .push(sim.now(), EngineEventKind::ExecutorLost { exec: *id });
            if let Some(attempt) = running {
                if let Some(info) = inner.attempts.remove(&attempt) {
                    self.log.push(
                        sim.now(),
                        EngineEventKind::TaskFailed {
                            stage: info.stage,
                            part: info.part,
                            exec: *id,
                            reason: "executor lost".into(),
                        },
                    );
                    if let Some(job) = inner.jobs.get_mut(info.job.0 as usize) {
                        self.tele.task_failed(
                            sim.now(),
                            job.metrics_mut(),
                            info.span,
                            info.stage,
                            info.part,
                            FailureKind::ExecutorLost,
                        );
                        let st = &mut job.status[info.stage.0 as usize];
                        st.running.remove(&info.part);
                        st.queued.insert(info.part);
                        inner.pending.push_front((info.job, info.stage, info.part));
                    }
                }
            }
            true
        };
        if !killed {
            return;
        }
        self.store.on_executor_lost(sim, id.as_str());
        if !self.store.survives_executor_loss() {
            let affected = self.inner.borrow_mut().tracker.unregister_executor(id);
            if !affected.is_empty() {
                self.rollback_incomplete_stages(sim);
            }
        }
        self.progress_all_jobs(sim);
    }

    /// Whether killing `id` *right now* would roll a stage back: true iff
    /// the shuffle store dies with its executors and `id` holds registered
    /// map outputs of a `Done` shuffle-map stage in a live job. This is
    /// the query the chaos plane's differential oracle uses to predict
    /// `StageRolledBack` events before performing a kill.
    pub fn would_rollback_on_loss(&self, id: &ExecutorId) -> bool {
        if self.store.survives_executor_loss() {
            return false;
        }
        let inner = self.inner.borrow();
        inner.jobs.iter().filter(|j| !j.done).any(|job| {
            job.graph.stages.iter().any(|stage| {
                let StageKind::ShuffleMap(dep) = &stage.kind else {
                    return false;
                };
                job.status[stage.id.0 as usize].state == Some(StageState::Done)
                    && inner.tracker.has_outputs_from(dep.id, id)
            })
        })
    }

    /// Scales an executor's effective core speed by `factor` (1.0 =
    /// nominal; 0.25 runs tasks four times slower). The chaos plane uses
    /// this to inject stragglers; the change applies to computations
    /// started after the call.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn set_executor_speed_factor(&self, id: &ExecutorId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid speed factor {factor}"
        );
        if let Some(meta) = self.inner.borrow_mut().exec_mut(*id) {
            meta.speed_factor = factor;
        }
    }

    fn decommission(&self, sim: &mut Sim, id: ExecutorId) {
        let cb = {
            let mut inner = self.inner.borrow_mut();
            let Some(meta) = inner.exec_mut(id) else {
                return;
            };
            if !meta.alive {
                return;
            }
            meta.alive = false;
            let cb = meta.on_drained.take();
            self.log.push(
                sim.now(),
                EngineEventKind::ExecutorDecommissioned { exec: id },
            );
            cb
        };
        // A decommissioned executor's node is gone; local blocks with it.
        self.store.on_executor_lost(sim, id.as_str());
        if !self.store.survives_executor_loss() {
            let affected = self.inner.borrow_mut().tracker.unregister_executor(&id);
            if !affected.is_empty() {
                self.rollback_incomplete_stages(sim);
            }
        }
        if let Some(cb) = cb {
            cb(sim, id);
        }
        self.progress_all_jobs(sim);
    }

    /// Marks stages whose map outputs vanished as needing resubmission and
    /// pulls now-unrunnable queued tasks back out of the dispatch queue.
    fn rollback_incomplete_stages(&self, sim: &mut Sim) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let mut dequeue: FastSet<(JobId, StageId)> = FastSet::default();
        for (job_idx, job) in inner.jobs.iter_mut().enumerate() {
            if job.done {
                continue;
            }
            let job_id = JobId(job_idx as u64);
            for stage in &job.graph.stages {
                let st = &mut job.status[stage.id.0 as usize];
                if let StageKind::ShuffleMap(dep) = &stage.kind {
                    if st.state == Some(StageState::Done) && !inner.tracker.is_complete(dep.id) {
                        let missing = inner.tracker.missing(dep.id).len();
                        st.state = Some(StageState::Waiting);
                        self.tele.stage_rolled_back(sim.now(), stage.id, missing);
                        self.log.push(
                            sim.now(),
                            EngineEventKind::StageRolledBack {
                                stage: stage.id,
                                missing,
                            },
                        );
                    }
                }
                // Any stage whose inputs are no longer complete must not
                // keep tasks in the dispatch queue.
                let inputs_ok = stage
                    .input_shuffles
                    .iter()
                    .all(|d| inner.tracker.is_complete(d.id));
                if !inputs_ok && !st.queued.is_empty() {
                    st.queued.clear();
                    if st.running.is_empty() {
                        st.state = Some(StageState::Waiting);
                    }
                    dequeue.insert((job_id, stage.id));
                }
            }
        }
        if !dequeue.is_empty() {
            // Set lookup per entry: the old `Vec::contains` scan was
            // O(pending × rolled-back stages).
            inner
                .pending
                .retain(|(j, s, _)| !dequeue.contains(&(*j, *s)));
        }
    }

    // ----- jobs ---------------------------------------------------------

    /// Submits a job computing `final_node`'s partitions; `on_done` fires
    /// with the results and metrics when the result stage completes.
    pub fn submit_job(
        &self,
        sim: &mut Sim,
        final_node: Arc<dyn PlanNode>,
        on_done: impl FnOnce(&mut Sim, JobOutput) + 'static,
    ) -> JobId {
        let job_id = {
            let mut inner = self.inner.borrow_mut();
            let id = JobId(inner.jobs.len() as u64);
            let graph = build_stages(final_node);
            // Register every shuffle in the tracker.
            for stage in &graph.stages {
                if let StageKind::ShuffleMap(dep) = &stage.kind {
                    inner
                        .tracker
                        .register_shuffle(dep.id, dep.parent.num_partitions());
                }
            }
            self.log.push(
                sim.now(),
                EngineEventKind::JobSubmitted {
                    job: id,
                    stages: graph.len(),
                },
            );
            let n_stages = graph.len();
            let result_width = graph.stage(graph.result).num_tasks;
            inner.jobs.push(JobState {
                graph,
                status: (0..n_stages).map(|_| StageStatus::default()).collect(),
                result_parts: vec![None; result_width],
                on_done: Some(Box::new(on_done)),
                metrics: Arc::new(JobMetrics::start(id, sim.now())),
                done: false,
            });
            id
        };
        self.progress_job(sim, job_id);
        job_id
    }

    /// Advances stage states for one job: marks completed stages, queues
    /// newly-runnable tasks, finishes the job when the result stage is
    /// done. Then dispatches.
    fn progress_job(&self, sim: &mut Sim, job_id: JobId) {
        let mut finished: Option<(JobDoneCallback, JobOutput)> = None;
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(job) = inner.jobs.get_mut(job_id.0 as usize) else {
                return;
            };
            if job.done {
                return;
            }
            // Split the metrics borrow off up front: the stage walk holds
            // `job.graph` borrowed, and field-disjoint access is the only
            // way to mutate metrics inside it.
            let metrics =
                Arc::get_mut(&mut job.metrics).expect("in-flight job metrics are uniquely owned");
            // Iterate stages in topological (id) order.
            for stage in &job.graph.stages {
                let sidx = stage.id.0 as usize;
                let parents_done = stage
                    .input_shuffles
                    .iter()
                    .all(|d| inner.tracker.is_complete(d.id));

                // Completion checks.
                let complete = match &stage.kind {
                    StageKind::ShuffleMap(dep) => inner.tracker.is_complete(dep.id),
                    StageKind::Result => job.result_parts.iter().all(Option::is_some),
                };
                let st = &mut job.status[sidx];
                if complete {
                    if st.state != Some(StageState::Done) {
                        st.state = Some(StageState::Done);
                        self.tele.stage_completed(metrics);
                        self.log
                            .push(sim.now(), EngineEventKind::StageCompleted { stage: stage.id });
                    }
                    continue;
                }
                if !parents_done {
                    continue;
                }
                // Runnable: queue whatever is missing and not in flight.
                let missing: Vec<usize> = match &stage.kind {
                    StageKind::ShuffleMap(dep) => inner.tracker.missing(dep.id),
                    StageKind::Result => job
                        .result_parts
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.is_none())
                        .map(|(i, _)| i)
                        .collect(),
                };
                let mut queued_now = 0;
                for part in missing {
                    if !st.queued.contains(&part) && !st.running.contains(&part) {
                        st.queued.insert(part);
                        inner.pending.push_back((job_id, stage.id, part));
                        queued_now += 1;
                    }
                }
                if queued_now > 0 {
                    self.log.push(
                        sim.now(),
                        EngineEventKind::StageSubmitted {
                            stage: stage.id,
                            tasks: queued_now,
                        },
                    );
                }
                st.state = Some(StageState::Running);
            }

            // Job completion.
            if job.result_parts.iter().all(Option::is_some) && !job.done {
                job.done = true;
                metrics.completed_at = sim.now();
                self.tele.job_completed(sim.now(), job_id, &job.metrics);
                self.log
                    .push(sim.now(), EngineEventKind::JobCompleted { job: job_id });
                // Hand the job's only references over: `collect_partitions`
                // can then move the rows out instead of cloning them (the
                // done flag above keeps this arm from running twice).
                let partitions: Vec<PartitionData> = job
                    .result_parts
                    .iter_mut()
                    .map(|p| p.take().expect("checked above"))
                    .collect();
                let output = JobOutput {
                    partitions,
                    // From here on the metrics block is frozen; share it.
                    metrics: Arc::clone(&job.metrics),
                };
                if let Some(cb) = job.on_done.take() {
                    finished = Some((cb, output));
                }
            }
        }
        if let Some((cb, output)) = finished {
            cb(sim, output);
        }
        self.dispatch(sim);
    }

    fn progress_all_jobs(&self, sim: &mut Sim) {
        let ids: Vec<JobId> = self
            .inner
            .borrow()
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.done)
            .map(|(id, _)| JobId(id as u64))
            .collect();
        for id in ids {
            self.progress_job(sim, id);
        }
    }

    /// Metrics of every job that has completed so far, in submission
    /// order. The returned `Arc`s share the scheduler's own metrics
    /// blocks — no per-job deep copy.
    pub fn completed_job_metrics(&self) -> Vec<Arc<JobMetrics>> {
        self.inner
            .borrow()
            .jobs
            .iter()
            .filter(|j| j.done)
            .map(|j| Arc::clone(&j.metrics))
            .collect()
    }

    /// A completed job's metrics (available after `on_done` fired),
    /// shared rather than cloned.
    pub fn job_metrics(&self, job: JobId) -> Option<Arc<JobMetrics>> {
        self.inner
            .borrow()
            .jobs
            .get(job.0 as usize)
            .map(|j| Arc::clone(&j.metrics))
    }

    // ----- dispatch and the task state machine ---------------------------

    /// Pairs pending tasks with idle executors.
    fn dispatch(&self, sim: &mut Sim) {
        loop {
            let launch = {
                let mut inner = self.inner.borrow_mut();
                let inner = &mut *inner;
                // Find an idle, live, non-draining executor (name order —
                // see `execs_by_name`).
                let slot = inner
                    .execs_by_name
                    .iter()
                    .map(|&s| s as usize)
                    .find(|&s| {
                        let m = &inner.execs[s];
                        m.alive && !m.draining && m.running.is_none()
                    });
                let Some(slot) = slot else { break };
                let exec_id = inner.execs[slot].desc.id;
                // Pop the next dispatchable task.
                let Some((job_id, stage_id, part)) = inner.pending.pop_front() else {
                    break;
                };
                let Some(job) = inner.jobs.get_mut(job_id.0 as usize) else {
                    continue;
                };
                let st = &mut job.status[stage_id.0 as usize];
                if !st.queued.remove(&part) {
                    continue; // stale entry (rolled back or duplicate)
                }
                let stage = job.graph.stage(stage_id);
                // Inputs must still be complete (rollback may have struck
                // between queueing and dispatch).
                if !stage
                    .input_shuffles
                    .iter()
                    .all(|d| inner.tracker.is_complete(d.id))
                {
                    continue;
                }
                // Re-validate the executor chosen at the top of this
                // iteration before binding the task to it. Nothing can
                // intervene today (selection and binding share one borrow
                // of the scheduler state), but a kill arriving in between
                // must requeue the task, not panic the driver — this was
                // an `.expect("dispatch picked a live executor")`.
                let meta = match &mut inner.execs[slot] {
                    m if m.alive && !m.draining && m.running.is_none() => m,
                    _ => {
                        st.queued.insert(part);
                        inner.pending.push_front((job_id, stage_id, part));
                        continue;
                    }
                };
                st.running.insert(part);
                let attempt = AttemptId(inner.next_attempt);
                inner.next_attempt += 1;
                meta.running = Some(attempt);
                let span =
                    self.tele
                        .task_started(sim.now(), exec_id, meta.desc.kind, stage_id, part);
                inner.attempts.insert(
                    attempt,
                    AttemptInfo {
                        job: job_id,
                        stage: stage_id,
                        part,
                        exec: exec_id,
                        span,
                        started_at: sim.now(),
                        straggler_flagged: false,
                    },
                );
                self.log.push(
                    sim.now(),
                    EngineEventKind::TaskStarted {
                        stage: stage_id,
                        part,
                        exec: exec_id,
                    },
                );
                // Build the fetch plan: (shuffle, map index, writer, size).
                // Blocks are identified lazily at fetch time — the plan
                // carries only `Copy` handles, no per-block strings.
                let shuffle_ids: Vec<ShuffleId> =
                    stage.input_shuffles.iter().map(|d| d.id).collect();
                let mut plan: Vec<(ShuffleId, usize, ExecutorId, u64)> = Vec::new();
                for dep in &stage.input_shuffles {
                    inner
                        .tracker
                        .inputs_for_reduce_into(dep.id, part, &mut plan);
                }
                // The driver is a single-threaded dispatcher: task
                // launches serialize through it.
                let start_at = {
                    let t = inner.driver_free_at.max(sim.now()) + inner.cfg.driver_dispatch;
                    inner.driver_free_at = t;
                    t
                };
                Some((attempt, shuffle_ids, plan, start_at))
            };
            match launch {
                Some((attempt, shuffle_ids, plan, start_at)) => {
                    let engine = self.clone();
                    sim.schedule_at(start_at, move |sim| {
                        engine.begin_fetch(sim, attempt, shuffle_ids, plan);
                    });
                }
                None => continue,
            }
        }
    }

    fn attempt_live(&self, attempt: AttemptId) -> bool {
        self.inner.borrow().attempts.contains_key(&attempt)
    }

    /// Starts the (window-bounded) shuffle fetch for a task, then runs its
    /// computation.
    fn begin_fetch(
        &self,
        sim: &mut Sim,
        attempt: AttemptId,
        shuffle_ids: Vec<ShuffleId>,
        plan: Vec<(ShuffleId, usize, ExecutorId, u64)>,
    ) {
        // Every input shuffle gets an entry even when this reduce partition
        // receives no bytes from it (all buckets empty).
        let mut base: FastMap<ShuffleId, Vec<(usize, Bytes)>> = FastMap::default();
        for id in &shuffle_ids {
            base.insert(*id, Vec::new());
        }
        // Sorting by map index gives every reduce task a canonical input
        // order regardless of fetch-completion timing.
        fn in_map_order(
            results: FastMap<ShuffleId, Vec<(usize, Bytes)>>,
        ) -> FastMap<ShuffleId, Vec<Bytes>> {
            results
                .into_iter()
                .map(|(id, mut blocks)| {
                    blocks.sort_by_key(|(m, _)| *m);
                    (id, blocks.into_iter().map(|(_, b)| b).collect())
                })
                .collect()
        }
        if plan.is_empty() {
            self.run_compute(sim, attempt, in_map_order(base), 0);
            return;
        }
        let (client, fetch_span, part) = {
            let inner = self.inner.borrow();
            let Some(info) = inner.attempts.get(&attempt) else {
                return;
            };
            let meta = inner.exec(info.exec).expect("executor of live attempt");
            let span = self.tele.shuffle_phase_started(
                sim.now(),
                info.exec,
                meta.desc.kind,
                "shuffle fetch",
            );
            (meta.desc.client_loc(), span, info.part)
        };
        let fetched_bytes: u64 = plan.iter().map(|(_, _, _, s)| s).sum();
        struct FetchState {
            queue: VecDeque<(ShuffleId, usize, ExecutorId)>,
            /// Fetched blocks with their map index: completions arrive in
            /// whatever order the store finishes them (fault injection and
            /// latency windows reshuffle that order), so blocks are sorted
            /// by map index before compute — task inputs, and therefore
            /// outputs, stay bit-identical across fault schedules.
            results: FastMap<ShuffleId, Vec<(usize, Bytes)>>,
            outstanding: usize,
            aborted: bool,
            span: SpanId,
            started: SimTime,
        }
        let state = Rc::new(RefCell::new(FetchState {
            queue: plan.iter().map(|&(s, m, w, _)| (s, m, w)).collect(),
            results: base,
            outstanding: 0,
            aborted: false,
            span: fetch_span,
            started: sim.now(),
        }));
        let window = self.inner.borrow().cfg.max_fetch_concurrency.max(1);

        fn spawn_next(
            engine: &Engine,
            sim: &mut Sim,
            attempt: AttemptId,
            part: usize,
            state: &Rc<RefCell<FetchState>>,
            client: splitserve_storage::ClientLoc,
            fetched_bytes: u64,
        ) {
            let next = {
                let mut st = state.borrow_mut();
                if st.aborted {
                    return;
                }
                match st.queue.pop_front() {
                    Some(item) => {
                        st.outstanding += 1;
                        Some(item)
                    }
                    None => None,
                }
            };
            let Some((shuffle, map, writer)) = next else {
                return;
            };
            let engine2 = engine.clone();
            let state2 = Rc::clone(state);
            engine.store.get(
                sim,
                client,
                BlockId::shuffle(writer, shuffle.0, map as u64, part as u64),
                Box::new(move |sim, result| {
                    if !engine2.attempt_live(attempt) {
                        let span = {
                            let mut st = state2.borrow_mut();
                            st.aborted = true;
                            st.span
                        };
                        engine2.tele.shuffle_phase_aborted(sim.now(), span);
                        return;
                    }
                    match result {
                        Ok(bytes) => {
                            let done = {
                                let mut st = state2.borrow_mut();
                                st.outstanding -= 1;
                                st.results.entry(shuffle).or_default().push((map, bytes));
                                st.queue.is_empty() && st.outstanding == 0
                            };
                            if done {
                                let (results, span, started) = {
                                    let mut st = state2.borrow_mut();
                                    (std::mem::take(&mut st.results), st.span, st.started)
                                };
                                engine2
                                    .tele
                                    .shuffle_phase_finished(sim.now(), span, "fetch", started);
                                engine2.run_compute(sim, attempt, in_map_order(results), fetched_bytes);
                            } else {
                                spawn_next(
                                    &engine2,
                                    sim,
                                    attempt,
                                    part,
                                    &state2,
                                    client,
                                    fetched_bytes,
                                );
                            }
                        }
                        Err(err) => {
                            let span = {
                                let mut st = state2.borrow_mut();
                                st.aborted = true;
                                st.span
                            };
                            engine2.tele.shuffle_phase_aborted(sim.now(), span);
                            engine2.fetch_failed(sim, attempt, shuffle, map, err);
                        }
                    }
                }),
            );
        }

        for _ in 0..window.min(plan.len()) {
            spawn_next(self, sim, attempt, part, &state, client, fetched_bytes);
        }
    }

    /// Launches the task's real computation and schedules the *join*
    /// event where the simulation picks the result back up.
    ///
    /// With `workers >= 2` the body (map compute, shuffle combine+encode,
    /// reduce decode+merge) is submitted to the worker pool here and the
    /// join blocks (wall-clock only) until it finishes; with `workers <= 1`
    /// the body runs inline on the simulation thread when the join event
    /// fires. Both modes schedule the join at the same virtual instant —
    /// `now + task_overhead + deser_bound/speed` — so the simulation
    /// allocates identical event sequence numbers, and therefore an
    /// identical event order, at every worker count.
    ///
    /// `deser_bound` is the deserialization charge [`TaskContext::new`]
    /// levies for the fetched blocks: a lower bound on the body's total
    /// CPU charge, which guarantees the completion instant derived at the
    /// join (`launch + task_overhead + cpu/speed*gc`) never precedes the
    /// join itself.
    fn run_compute(
        &self,
        sim: &mut Sim,
        attempt: AttemptId,
        inputs: FastMap<ShuffleId, Vec<Bytes>>,
        fetched_bytes: u64,
    ) {
        let (terminal, kind, part, work, speed, mem_bytes) = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(&info) = inner.attempts.get(&attempt) else {
                return;
            };
            let (speed, mem_bytes) = {
                let meta = inner.exec(info.exec).expect("executor of live attempt");
                (
                    meta.desc.core_speed * meta.speed_factor,
                    meta.desc.memory_bytes(),
                )
            };
            let job = inner
                .jobs
                .get_mut(info.job.0 as usize)
                .expect("job of live attempt");
            self.tele.shuffle_read(job.metrics_mut(), fetched_bytes);
            let stage = job.graph.stage(info.stage);
            (
                Arc::clone(&stage.terminal),
                stage.kind.clone(),
                info.part,
                inner.cfg.work.clone(),
                speed,
                mem_bytes,
            )
        };
        let deser_secs = inputs
            .values()
            .flat_map(|v| v.iter())
            .map(|b| b.len() as u64)
            .sum::<u64>() as f64
            * work.deser_secs_per_byte;
        let obs = self.tele.obs().clone();
        let body_work = work.clone();
        let body = move || {
            let mut ctx = TaskContext::new(body_work, inputs).with_obs(obs);
            let data = terminal.compute(&mut ctx, part);
            let payload = match &kind {
                StageKind::ShuffleMap(dep) => {
                    ComputePayload::MapOut((dep.partitioner)(&mut ctx, data))
                }
                StageKind::Result => ComputePayload::ResultOut(data),
            };
            (payload, ctx.cpu_secs(), ctx.working_set_bytes())
        };
        let pending = match &self.pool {
            Some(pool) => PendingBody::Pooled(pool.submit(body)),
            None => PendingBody::Inline(Box::new(body)),
        };
        let launched_at = sim.now();
        let join_at = launched_at
            + work.task_overhead
            + SimDuration::from_secs_f64(deser_secs / speed);
        let engine = self.clone();
        sim.schedule_at(join_at, move |sim| {
            engine.join_compute(sim, attempt, pending, launched_at, work, speed, mem_bytes);
        });
    }

    /// The join event: collects the task body's result and schedules the
    /// completion at the instant the duration model dictates. Runs even
    /// when the attempt died mid-flight (`after_compute` discards dead
    /// attempts) so the event structure never depends on fault timing.
    #[allow(clippy::too_many_arguments)]
    fn join_compute(
        &self,
        sim: &mut Sim,
        attempt: AttemptId,
        pending: PendingBody,
        launched_at: SimTime,
        work: crate::config::WorkModel,
        speed: f64,
        mem_bytes: u64,
    ) {
        let (payload, cpu, working_set) = pending.resolve();
        let pressure = working_set as f64 / mem_bytes as f64;
        let gc = work.gc_factor(pressure);
        let dur = work.task_overhead + SimDuration::from_secs_f64(cpu / speed * gc);
        let engine = self.clone();
        // `cpu >= deser_bound` (charged at context construction) and
        // `gc >= 1`, so `launched_at + dur >= now`: never in the past.
        sim.schedule_at(launched_at + dur, move |sim| {
            engine.after_compute(sim, attempt, payload, cpu);
        });
    }

    /// The task's modeled CPU time has elapsed; persist outputs.
    fn after_compute(&self, sim: &mut Sim, attempt: AttemptId, payload: ComputePayload, cpu: f64) {
        let (info, shuffle_id, client) = {
            let inner = self.inner.borrow();
            let Some(&info) = inner.attempts.get(&attempt) else {
                return; // executor died while "computing"
            };
            let job = &inner.jobs[info.job.0 as usize];
            let sid = match &job.graph.stage(info.stage).kind {
                StageKind::ShuffleMap(dep) => Some(dep.id),
                StageKind::Result => None,
            };
            let client = inner
                .exec(info.exec)
                .expect("executor of live attempt")
                .desc
                .client_loc();
            (info, sid, client)
        };
        match payload {
            ComputePayload::ResultOut(data) => {
                {
                    let mut inner = self.inner.borrow_mut();
                    if let Some(job) = inner.jobs.get_mut(info.job.0 as usize) {
                        job.result_parts[info.part] = Some(data);
                        self.tele.task_cpu(job.metrics_mut(), cpu);
                    }
                }
                self.task_done(sim, attempt, cpu);
            }
            ComputePayload::MapOut(buckets) => {
                let sid = shuffle_id.expect("map payload implies map stage");
                let sizes: Vec<u64> = buckets.iter().map(|b| b.bytes.len() as u64).collect();
                let writes: Vec<(BlockId, Bytes)> = buckets
                    .into_iter()
                    .enumerate()
                    .filter(|(_, b)| !b.bytes.is_empty())
                    .map(|(r, b)| {
                        (
                            BlockId::shuffle(info.exec, sid.0, info.part as u64, r as u64),
                            b.bytes,
                        )
                    })
                    .collect();
                {
                    let mut inner = self.inner.borrow_mut();
                    if let Some(job) = inner.jobs.get_mut(info.job.0 as usize) {
                        self.tele.task_cpu(job.metrics_mut(), cpu);
                        self.tele
                            .shuffle_written(job.metrics_mut(), sizes.iter().sum::<u64>());
                    }
                }
                self.write_map_outputs(sim, attempt, sid, sizes, writes, client, cpu);
            }
        }
    }

    /// Window-bounded writes of map-output buckets, then registration.
    #[allow(clippy::too_many_arguments)]
    fn write_map_outputs(
        &self,
        sim: &mut Sim,
        attempt: AttemptId,
        sid: ShuffleId,
        sizes: Vec<u64>,
        writes: Vec<(BlockId, Bytes)>,
        client: splitserve_storage::ClientLoc,
        cpu: f64,
    ) {
        if writes.is_empty() {
            self.map_outputs_done(sim, attempt, sid, sizes, cpu);
            return;
        }
        let write_span = {
            let inner = self.inner.borrow();
            let Some(info) = inner.attempts.get(&attempt) else {
                return;
            };
            let kind = inner
                .exec(info.exec)
                .expect("executor of live attempt")
                .desc
                .kind;
            self.tele
                .shuffle_phase_started(sim.now(), info.exec, kind, "shuffle write")
        };
        struct WriteState {
            queue: VecDeque<(BlockId, Bytes)>,
            outstanding: usize,
            aborted: bool,
            span: SpanId,
            started: SimTime,
        }
        let state = Rc::new(RefCell::new(WriteState {
            queue: writes.into_iter().collect(),
            outstanding: 0,
            aborted: false,
            span: write_span,
            started: sim.now(),
        }));
        let window = self.inner.borrow().cfg.max_fetch_concurrency.max(1);
        let total = state.borrow().queue.len();

        #[allow(clippy::too_many_arguments)]
        fn spawn_next(
            engine: &Engine,
            sim: &mut Sim,
            attempt: AttemptId,
            sid: ShuffleId,
            sizes: &Rc<Vec<u64>>,
            state: &Rc<RefCell<WriteState>>,
            client: splitserve_storage::ClientLoc,
            cpu: f64,
        ) {
            let next = {
                let mut st = state.borrow_mut();
                if st.aborted {
                    return;
                }
                match st.queue.pop_front() {
                    Some(item) => {
                        st.outstanding += 1;
                        Some(item)
                    }
                    None => None,
                }
            };
            let Some((block, bytes)) = next else { return };
            let engine2 = engine.clone();
            let state2 = Rc::clone(state);
            let sizes2 = Rc::clone(sizes);
            engine.store.put(
                sim,
                client,
                block,
                bytes,
                Box::new(move |sim, result| {
                    if !engine2.attempt_live(attempt) {
                        let span = {
                            let mut st = state2.borrow_mut();
                            st.aborted = true;
                            st.span
                        };
                        engine2.tele.shuffle_phase_aborted(sim.now(), span);
                        return;
                    }
                    match result {
                        Ok(()) => {
                            let done = {
                                let mut st = state2.borrow_mut();
                                st.outstanding -= 1;
                                st.queue.is_empty() && st.outstanding == 0
                            };
                            if done {
                                let (span, started) = {
                                    let st = state2.borrow();
                                    (st.span, st.started)
                                };
                                engine2
                                    .tele
                                    .shuffle_phase_finished(sim.now(), span, "write", started);
                                engine2.map_outputs_done(
                                    sim,
                                    attempt,
                                    sid,
                                    sizes2.as_ref().clone(),
                                    cpu,
                                );
                            } else {
                                spawn_next(
                                    &engine2, sim, attempt, sid, &sizes2, &state2, client, cpu,
                                );
                            }
                        }
                        Err(err) => {
                            let span = {
                                let mut st = state2.borrow_mut();
                                st.aborted = true;
                                st.span
                            };
                            engine2.tele.shuffle_phase_aborted(sim.now(), span);
                            engine2.task_write_failed(sim, attempt, err);
                        }
                    }
                }),
            );
        }

        let sizes = Rc::new(sizes);
        for _ in 0..window.min(total) {
            spawn_next(self, sim, attempt, sid, &sizes, &state, client, cpu);
        }
    }

    fn map_outputs_done(
        &self,
        sim: &mut Sim,
        attempt: AttemptId,
        sid: ShuffleId,
        sizes: Vec<u64>,
        cpu: f64,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let Some(&info) = inner.attempts.get(&attempt) else {
                return;
            };
            inner.tracker.register_output(
                sid,
                info.part,
                MapStatus {
                    executor: info.exec,
                    sizes,
                },
            );
        }
        self.task_done(sim, attempt, cpu);
    }

    /// Common completion path: free the executor, update metrics, progress.
    fn task_done(&self, sim: &mut Sim, attempt: AttemptId, cpu: f64) {
        let (job_id, decommission_target) = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(info) = inner.attempts.remove(&attempt) else {
                return;
            };
            let meta = inner
                .exec_mut(info.exec)
                .expect("executor of live attempt");
            meta.running = None;
            meta.idle_since = sim.now();
            meta.tasks_done += 1;
            let kind = meta.desc.kind;
            let drain = meta.draining && meta.alive;
            let run_secs = sim.now().saturating_since(info.started_at).as_secs_f64();
            if let Some(job) = inner.jobs.get_mut(info.job.0 as usize) {
                self.tele.task_finished(
                    sim.now(),
                    job.metrics_mut(),
                    kind,
                    info.span,
                    info.stage,
                    info.part,
                    cpu,
                    run_secs,
                );
                job.status[info.stage.0 as usize].running.remove(&info.part);
            }
            if self.tele.obs().is_enabled() {
                self.straggler_watch(sim.now(), inner, &info, run_secs);
            }
            self.log.push(
                sim.now(),
                EngineEventKind::TaskFinished {
                    stage: info.stage,
                    part: info.part,
                    exec: info.exec,
                    cpu_secs: cpu,
                },
            );
            (info.job, drain.then_some(info.exec))
        };
        if let Some(exec) = decommission_target {
            self.decommission(sim, exec);
        }
        self.progress_job(sim, job_id);
    }

    /// The straggler watch: fold the just-completed attempt's run time
    /// into its stage's live completion digest, then compare every
    /// still-running attempt of the same stage against a configurable
    /// multiple of the digest's quantile. Detection only — suspects get a
    /// counter, a span annotation and a flight-recorder breadcrumb, never
    /// a speculative re-launch. Runs only while observability is enabled,
    /// so the disabled path stays one branch.
    fn straggler_watch(&self, now: SimTime, inner: &mut Inner, done: &AttemptInfo, run_secs: f64) {
        let threshold = {
            let digest = inner
                .stage_runtimes
                .entry((done.job, done.stage))
                .or_default();
            digest.record(run_secs);
            let sc = &inner.cfg.straggler;
            if digest.count() < sc.min_samples {
                return;
            }
            match digest.quantile(sc.quantile) {
                Some(q) if q * sc.multiple > 0.0 => q * sc.multiple,
                _ => return,
            }
        };
        for info in inner.attempts.values_mut() {
            if info.job != done.job || info.stage != done.stage || info.straggler_flagged {
                continue;
            }
            let elapsed = now.saturating_since(info.started_at).as_secs_f64();
            if elapsed > threshold {
                info.straggler_flagged = true;
                self.tele
                    .straggler_suspected(now, info.span, info.stage, info.part, elapsed, threshold);
            }
        }
    }

    /// A shuffle fetch failed: requeue the task, invalidate the lost map
    /// output so its stage is resubmitted.
    fn fetch_failed(
        &self,
        sim: &mut Sim,
        attempt: AttemptId,
        shuffle: ShuffleId,
        map: usize,
        err: StoreError,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(info) = inner.attempts.remove(&attempt) else {
                return;
            };
            self.log.push(
                sim.now(),
                EngineEventKind::FetchFailed {
                    stage: info.stage,
                    part: info.part,
                    shuffle,
                },
            );
            self.log.push(
                sim.now(),
                EngineEventKind::TaskFailed {
                    stage: info.stage,
                    part: info.part,
                    exec: info.exec,
                    reason: err.to_string(),
                },
            );
            inner.tracker.unregister_output(shuffle, map);
            if let Some(meta) = inner.exec_mut(info.exec) {
                meta.running = None;
            }
            if let Some(job) = inner.jobs.get_mut(info.job.0 as usize) {
                self.tele.task_failed(
                    sim.now(),
                    job.metrics_mut(),
                    info.span,
                    info.stage,
                    info.part,
                    FailureKind::FetchFailed,
                );
                let st = &mut job.status[info.stage.0 as usize];
                st.running.remove(&info.part);
                st.queued.insert(info.part);
                inner.pending.push_front((info.job, info.stage, info.part));
            }
        }
        self.rollback_incomplete_stages(sim);
        self.progress_all_jobs(sim);
    }

    /// A map-output write failed (e.g. store capacity): requeue the task.
    fn task_write_failed(&self, sim: &mut Sim, attempt: AttemptId, err: StoreError) {
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let Some(info) = inner.attempts.remove(&attempt) else {
                return;
            };
            self.log.push(
                sim.now(),
                EngineEventKind::TaskFailed {
                    stage: info.stage,
                    part: info.part,
                    exec: info.exec,
                    reason: err.to_string(),
                },
            );
            if let Some(meta) = inner.exec_mut(info.exec) {
                meta.running = None;
            }
            if let Some(job) = inner.jobs.get_mut(info.job.0 as usize) {
                self.tele.task_failed(
                    sim.now(),
                    job.metrics_mut(),
                    info.span,
                    info.stage,
                    info.part,
                    FailureKind::WriteFailed,
                );
                let st = &mut job.status[info.stage.0 as usize];
                st.running.remove(&info.part);
                st.queued.insert(info.part);
                inner.pending.push_front((info.job, info.stage, info.part));
            }
        }
        self.dispatch(sim);
    }
}
