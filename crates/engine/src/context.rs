//! Per-task execution context: shuffle inputs and CPU-work accounting.

use splitserve_obs::Obs;
use splitserve_rt::{Bytes, FastMap};

use crate::config::WorkModel;
use crate::node::ShuffleId;

/// Handed to [`PlanNode::compute`](crate::PlanNode::compute): provides the
/// fetched shuffle inputs and accumulates the task's CPU work and memory
/// footprint, from which the scheduler derives the task's virtual duration.
#[derive(Debug)]
pub struct TaskContext {
    shuffle_in: FastMap<ShuffleId, Vec<Bytes>>,
    work: WorkModel,
    cpu_secs: f64,
    bytes_in: u64,
    bytes_out: u64,
    obs: Obs,
}

impl TaskContext {
    /// Creates a context with the given fetched shuffle inputs.
    ///
    /// Deserialization of every fetched block is charged here, up front:
    /// all fetched bytes get decoded exactly once by the consuming
    /// operator, and charging at construction lets the scheduler bound a
    /// task's virtual duration from below *before* the body runs — the
    /// anchor the parallel data plane's join events are scheduled on
    /// (see DESIGN.md "Parallel task data plane").
    pub fn new(work: WorkModel, shuffle_in: FastMap<ShuffleId, Vec<Bytes>>) -> Self {
        let bytes_in: u64 = shuffle_in
            .values()
            .flat_map(|v| v.iter())
            .map(|b| b.len() as u64)
            .sum();
        let mut ctx = TaskContext {
            shuffle_in,
            work,
            cpu_secs: 0.0,
            bytes_in,
            bytes_out: 0,
            obs: Obs::disabled(),
        };
        ctx.charge_deser(bytes_in);
        ctx
    }

    /// Attaches an observability handle so shuffle operators can record
    /// their metrics (the scheduler passes the engine's; stand-alone
    /// contexts keep the disabled default, which records nothing).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle in force.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// An empty context (source stages with no shuffle inputs).
    pub fn empty(work: WorkModel) -> Self {
        TaskContext::new(work, FastMap::default())
    }

    /// The fetched blocks for shuffle `id` (one per upstream map task that
    /// produced a non-empty bucket for this partition).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler did not fetch that shuffle for this task —
    /// an engine invariant violation, not a user error.
    pub fn shuffle_input(&mut self, id: ShuffleId) -> Vec<Bytes> {
        self.shuffle_in
            .remove(&id)
            .unwrap_or_else(|| panic!("shuffle {id} not fetched for this task"))
    }

    /// The work model in force (operators read its rates).
    pub fn work_model(&self) -> &WorkModel {
        &self.work
    }

    /// Charges raw CPU seconds (reference-core).
    pub fn charge_secs(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0 && secs.is_finite());
        self.cpu_secs += secs;
    }

    /// Charges `n` records of narrow-operator work.
    pub fn charge_records(&mut self, n: u64) {
        self.cpu_secs += n as f64 * self.work.record_secs;
    }

    /// Charges `n` records of combine/merge work.
    pub fn charge_combine(&mut self, n: u64) {
        self.cpu_secs += n as f64 * self.work.combine_secs_per_record;
    }

    /// Charges a source scan of `n` bytes and counts them as task input.
    pub fn charge_scan(&mut self, n: u64) {
        self.cpu_secs += n as f64 * self.work.scan_secs_per_byte;
        self.bytes_in += n;
    }

    /// Charges serialization of `n` bytes and counts them as task output.
    pub fn charge_ser(&mut self, n: u64) {
        self.cpu_secs += n as f64 * self.work.ser_secs_per_byte;
        self.bytes_out += n;
    }

    /// Charges deserialization of `n` bytes.
    pub fn charge_deser(&mut self, n: u64) {
        self.cpu_secs += n as f64 * self.work.deser_secs_per_byte;
    }

    /// Total CPU seconds charged so far.
    pub fn cpu_secs(&self) -> f64 {
        self.cpu_secs
    }

    /// The task's working-set estimate in bytes (inputs + outputs), used
    /// for the GC-pressure model.
    pub fn working_set_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Bytes read by this task (shuffle fetches + source scans).
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Bytes produced by this task (shuffle writes).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Applies charge deltas recorded by an earlier task verbatim — used
    /// by `cache()` to bill every reader of a memoized partition the
    /// exact cost its fill incurred, so accounted durations never depend
    /// on which task won the (real-time) race to fill the cache.
    pub(crate) fn replay_charges(&mut self, cpu_secs: f64, bytes_in: u64, bytes_out: u64) {
        self.cpu_secs += cpu_secs;
        self.bytes_in += bytes_in;
        self.bytes_out += bytes_out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut ctx = TaskContext::empty(WorkModel::default());
        ctx.charge_records(1_000_000);
        let after_records = ctx.cpu_secs();
        assert!((after_records - 0.2).abs() < 1e-9, "1M records ≈ 0.2 s");
        ctx.charge_secs(1.0);
        assert!((ctx.cpu_secs() - after_records - 1.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_tracks_in_and_out() {
        let mut ctx = TaskContext::empty(WorkModel::default());
        ctx.charge_scan(1_000);
        ctx.charge_ser(500);
        assert_eq!(ctx.bytes_in(), 1_000);
        assert_eq!(ctx.bytes_out(), 500);
        assert_eq!(ctx.working_set_bytes(), 1_500);
    }

    #[test]
    fn shuffle_input_counts_toward_bytes_in() {
        let mut m = FastMap::default();
        m.insert(
            ShuffleId(0),
            vec![Bytes::from_static(b"abcd"), Bytes::from_static(b"ef")],
        );
        let mut ctx = TaskContext::new(WorkModel::default(), m);
        assert_eq!(ctx.bytes_in(), 6);
        let deser = 6.0 * ctx.work_model().deser_secs_per_byte;
        assert!(
            (ctx.cpu_secs() - deser).abs() < 1e-15,
            "deser for fetched blocks is charged at construction"
        );
        let blocks = ctx.shuffle_input(ShuffleId(0));
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not fetched")]
    fn missing_shuffle_input_panics() {
        let mut ctx = TaskContext::empty(WorkModel::default());
        ctx.shuffle_input(ShuffleId(9));
    }
}
