//! The engine event log — the raw material for the paper's execution
//! timelines (Figure 7) and per-executor work-distribution analyses.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use splitserve_des::SimTime;

use crate::executor::{ExecutorId, ExecutorKind};
use crate::node::ShuffleId;
use crate::stage::StageId;

/// Identifies a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEventKind {
    /// An executor joined the cluster.
    ExecutorRegistered {
        /// The executor.
        exec: ExecutorId,
        /// VM- or Lambda-backed.
        kind: ExecutorKind,
    },
    /// An executor was put in draining mode (no new tasks).
    ExecutorDraining {
        /// The executor.
        exec: ExecutorId,
    },
    /// A draining executor went idle and left the cluster gracefully.
    ExecutorDecommissioned {
        /// The executor.
        exec: ExecutorId,
    },
    /// An executor died abruptly (Lambda lifetime kill, VM crash).
    ExecutorLost {
        /// The executor.
        exec: ExecutorId,
    },
    /// A job was submitted.
    JobSubmitted {
        /// The job.
        job: JobId,
        /// Number of stages in its DAG.
        stages: usize,
    },
    /// A job's result stage finished.
    JobCompleted {
        /// The job.
        job: JobId,
    },
    /// A stage's tasks entered the pending queue.
    StageSubmitted {
        /// The stage.
        stage: StageId,
        /// Tasks queued (may be fewer than the stage's width when map
        /// outputs are being recomputed selectively).
        tasks: usize,
    },
    /// All of a stage's outputs are available.
    StageCompleted {
        /// The stage.
        stage: StageId,
    },
    /// A completed stage lost map outputs and was resubmitted — the
    /// "execution rollback" SplitServe's graceful segue avoids.
    StageRolledBack {
        /// The stage.
        stage: StageId,
        /// Map partitions that must be recomputed.
        missing: usize,
    },
    /// A task began on an executor.
    TaskStarted {
        /// Stage the task belongs to.
        stage: StageId,
        /// Partition index.
        part: usize,
        /// Where it runs.
        exec: ExecutorId,
    },
    /// A task finished.
    TaskFinished {
        /// Stage the task belongs to.
        stage: StageId,
        /// Partition index.
        part: usize,
        /// Where it ran.
        exec: ExecutorId,
        /// Reference-core CPU seconds it charged.
        cpu_secs: f64,
    },
    /// A task failed (executor death mid-flight).
    TaskFailed {
        /// Stage the task belongs to.
        stage: StageId,
        /// Partition index.
        part: usize,
        /// Where it ran.
        exec: ExecutorId,
        /// Why.
        reason: String,
    },
    /// A reduce task could not fetch a map output block.
    FetchFailed {
        /// The consuming stage.
        stage: StageId,
        /// The consuming partition.
        part: usize,
        /// The shuffle whose block was missing.
        shuffle: ShuffleId,
    },
    /// Free-form marker pushed by higher layers (e.g. "segue commences").
    Marker(String),
}

/// A timestamped engine event.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: EngineEventKind,
}

/// Shared, cloneable event log.
///
/// Optionally bounded: a log created with [`EventLog::bounded`] stops
/// recording at its capacity and counts the overflow instead, so long
/// streaming scenarios cannot grow the log without bound.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: Rc<RefCell<Vec<EngineEvent>>>,
    enabled: bool,
    capacity: Option<usize>,
    dropped: Rc<Cell<u64>>,
    registry: splitserve_obs::MetricsRegistry,
}

/// The default log is **disabled** — it drops every push. This mirrors
/// observability being opt-in everywhere in the workspace; construct via
/// [`EventLog::new`]/[`EventLog::bounded`] to actually record.
impl Default for EventLog {
    fn default() -> Self {
        EventLog::disabled()
    }
}

impl EventLog {
    /// Creates an unbounded log; when `enabled` is false, pushes are
    /// dropped.
    pub fn new(enabled: bool) -> Self {
        EventLog::bounded(enabled, None, splitserve_obs::MetricsRegistry::disabled())
    }

    /// A log that explicitly records nothing (also the [`Default`]).
    pub fn disabled() -> Self {
        EventLog::new(false)
    }

    /// Creates a log holding at most `capacity` events (unbounded when
    /// `None`). Events past the cap are dropped and counted — locally
    /// (see [`EventLog::dropped`]) and on `registry` as the
    /// `event_log_dropped_total` counter.
    pub fn bounded(
        enabled: bool,
        capacity: Option<usize>,
        registry: splitserve_obs::MetricsRegistry,
    ) -> Self {
        EventLog {
            events: Rc::new(RefCell::new(Vec::new())),
            enabled,
            capacity,
            dropped: Rc::new(Cell::new(0)),
            registry,
        }
    }

    /// Appends an event.
    pub fn push(&self, at: SimTime, kind: EngineEventKind) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.borrow().len() >= cap {
                self.dropped.set(self.dropped.get() + 1);
                self.registry
                    .counter_add("event_log_dropped_total", &[], 1);
                return;
            }
        }
        self.events.borrow_mut().push(EngineEvent { at, kind });
    }

    /// Events dropped because the log was at capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Snapshot of all events so far.
    pub fn snapshot(&self) -> Vec<EngineEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Clears the log (between scenario runs sharing an engine).
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot() {
        let log = EventLog::new(true);
        log.push(SimTime::ZERO, EngineEventKind::Marker("hi".into()));
        log.push(
            SimTime::from_secs(1),
            EngineEventKind::JobCompleted { job: JobId(0) },
        );
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, EngineEventKind::Marker("hi".into()));
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_log_drops_events() {
        let log = EventLog::new(false);
        log.push(SimTime::ZERO, EngineEventKind::Marker("dropped".into()));
        assert!(log.is_empty());
    }

    #[test]
    fn default_is_the_disabled_log() {
        let log = EventLog::default();
        log.push(SimTime::ZERO, EngineEventKind::Marker("dropped".into()));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0, "disabled pushes are not capacity drops");
    }

    #[test]
    fn bounded_log_drops_overflow_and_counts_it() {
        let registry = splitserve_obs::MetricsRegistry::enabled();
        let log = EventLog::bounded(true, Some(2), registry.clone());
        assert_eq!(log.capacity(), Some(2));
        for i in 0..5 {
            log.push(
                SimTime::from_secs(i),
                EngineEventKind::Marker(format!("m{i}")),
            );
        }
        assert_eq!(log.len(), 2, "capacity respected");
        assert_eq!(log.dropped(), 3);
        assert_eq!(
            registry.counter_value("event_log_dropped_total", &[]),
            3
        );
        // The retained events are the earliest ones, in order.
        let snap = log.snapshot();
        assert_eq!(snap[0].kind, EngineEventKind::Marker("m0".into()));
        assert_eq!(snap[1].kind, EngineEventKind::Marker("m1".into()));
    }
}
