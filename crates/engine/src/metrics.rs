//! Per-job metrics, aggregated by the scheduler as the job runs.

use splitserve_des::{SimDuration, SimTime};

use crate::events::JobId;
use crate::executor::ExecutorKind;
use crate::node::PartitionData;

/// Everything measured about one completed job.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// The job.
    pub job: JobId,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Completion instant.
    pub completed_at: SimTime,
    /// Total stages executed (including rollback resubmissions).
    pub stages_run: usize,
    /// Task completions on VM executors.
    pub tasks_on_vm: u64,
    /// Task completions on Lambda executors.
    pub tasks_on_lambda: u64,
    /// Tasks that had to be re-run (failures + rollback recomputation).
    pub tasks_recomputed: u64,
    /// Serialized shuffle bytes written by this job's map tasks.
    pub shuffle_bytes_written: u64,
    /// Serialized shuffle bytes fetched by this job's reduce tasks.
    pub shuffle_bytes_read: u64,
    /// Reference-core CPU seconds across all tasks.
    pub cpu_secs_total: f64,
}

impl JobMetrics {
    pub(crate) fn start(job: JobId, at: SimTime) -> Self {
        JobMetrics {
            job,
            submitted_at: at,
            completed_at: at,
            stages_run: 0,
            tasks_on_vm: 0,
            tasks_on_lambda: 0,
            tasks_recomputed: 0,
            shuffle_bytes_written: 0,
            shuffle_bytes_read: 0,
            cpu_secs_total: 0.0,
        }
    }

    pub(crate) fn count_task(&mut self, kind: ExecutorKind) {
        match kind {
            ExecutorKind::Vm => self.tasks_on_vm += 1,
            ExecutorKind::Lambda => self.tasks_on_lambda += 1,
        }
    }

    /// Wall-clock (virtual) execution time of the job.
    pub fn execution_time(&self) -> SimDuration {
        self.completed_at.saturating_since(self.submitted_at)
    }

    /// Total completed tasks.
    pub fn tasks_total(&self) -> u64 {
        self.tasks_on_vm + self.tasks_on_lambda
    }
}

/// A completed job: its result partitions and its metrics.
pub struct JobOutput {
    /// The result stage's computed partitions, in partition order. Use
    /// [`collect_partitions`](crate::collect_partitions) to extract typed
    /// records.
    pub partitions: Vec<PartitionData>,
    /// Measurements, shared with the scheduler's job table (the same
    /// allocation [`Engine::job_metrics`](crate::Engine::job_metrics)
    /// hands out) — completion no longer deep-copies the block.
    pub metrics: std::sync::Arc<JobMetrics>,
}

impl std::fmt::Debug for JobOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobOutput")
            .field("partitions", &self.partitions.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_and_task_counts() {
        let mut m = JobMetrics::start(JobId(0), SimTime::from_secs(10));
        m.completed_at = SimTime::from_secs(25);
        m.count_task(ExecutorKind::Vm);
        m.count_task(ExecutorKind::Lambda);
        m.count_task(ExecutorKind::Lambda);
        assert_eq!(m.execution_time(), SimDuration::from_secs(15));
        assert_eq!(m.tasks_total(), 3);
        assert_eq!(m.tasks_on_lambda, 2);
    }
}
