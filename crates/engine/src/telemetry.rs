//! The engine's single telemetry path.
//!
//! Every measurement the scheduler takes — task completions, failures,
//! recomputations, shuffle bytes, stage transitions — flows through one
//! [`Telemetry`] method, which updates the per-job [`JobMetrics`] *and*
//! the cluster-wide [`MetricsRegistry`](splitserve_obs::MetricsRegistry)
//! in lock-step, and opens/closes the executor-lane spans the Chrome
//! trace export turns into Figure-7-style timelines. The scheduler itself
//! never touches a metrics field directly, so the two views cannot drift.

use splitserve_des::SimTime;
use splitserve_obs::{Obs, SpanId};

use crate::events::JobId;
use crate::executor::{ExecutorId, ExecutorKind};
use crate::metrics::JobMetrics;
use crate::stage::StageId;

/// Why a task attempt ended without producing its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailureKind {
    /// The executor died mid-flight.
    ExecutorLost,
    /// A shuffle-input block could not be fetched.
    FetchFailed,
    /// A map-output write was rejected by the store.
    WriteFailed,
}

impl FailureKind {
    fn label(self) -> &'static str {
        match self {
            FailureKind::ExecutorLost => "executor-lost",
            FailureKind::FetchFailed => "fetch-failed",
            FailureKind::WriteFailed => "write-failed",
        }
    }
}

fn kind_label(kind: ExecutorKind) -> &'static str {
    match kind {
        ExecutorKind::Vm => "vm",
        ExecutorKind::Lambda => "lambda",
    }
}

/// Shared recorder for everything the engine measures.
#[derive(Debug, Clone, Default)]
pub(crate) struct Telemetry {
    obs: Obs,
}

impl Telemetry {
    pub fn new(obs: Obs) -> Self {
        Telemetry { obs }
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn executor_registered(&self, at: SimTime, exec: &ExecutorId, kind: ExecutorKind) {
        let lane = kind_label(kind);
        self.obs
            .metrics
            .counter_add("executors_registered_total", &[("kind", lane)], 1);
        self.obs.spans.instant(at, lane, &exec.0, "registered");
    }

    /// Opens the task's executor-lane span; the returned id rides in the
    /// attempt table until the task ends one way or another.
    pub fn task_started(
        &self,
        at: SimTime,
        exec: &ExecutorId,
        kind: ExecutorKind,
        stage: StageId,
        part: usize,
    ) -> SpanId {
        let span = self.obs.spans.open(
            at,
            kind_label(kind),
            &exec.0,
            &format!("task s{}.{}", stage.0, part),
        );
        self.obs.spans.annotate(span, "stage", &stage.0.to_string());
        self.obs.flight.record(
            at,
            "task-started",
            &[
                ("exec", &exec.0),
                ("stage", &stage.0.to_string()),
                ("part", &part.to_string()),
            ],
        );
        span
    }

    #[allow(clippy::too_many_arguments)]
    pub fn task_finished(
        &self,
        at: SimTime,
        metrics: &mut JobMetrics,
        kind: ExecutorKind,
        span: SpanId,
        stage: StageId,
        part: usize,
        cpu_secs: f64,
        run_secs: f64,
    ) {
        metrics.count_task(kind);
        let labels = [("kind", kind_label(kind))];
        self.obs
            .metrics
            .counter_add("tasks_completed_total", &labels, 1);
        self.obs.metrics.observe("task_cpu_seconds", &labels, cpu_secs);
        self.obs
            .metrics
            .record_quantile("task_run_seconds", &labels, run_secs);
        self.obs
            .rollups
            .record("task_run_seconds", &labels, at, run_secs);
        self.obs
            .spans
            .annotate(span, "cpu_secs", &format!("{cpu_secs:.6}"));
        self.obs.spans.close(span, at);
        self.obs.flight.record(
            at,
            "task-finished",
            &[
                ("kind", kind_label(kind)),
                ("stage", &stage.0.to_string()),
                ("part", &part.to_string()),
                ("run_secs", &format!("{run_secs:.6}")),
            ],
        );
    }

    /// A task attempt failed and will be re-queued: count the recompute
    /// and close its span as failed.
    pub fn task_failed(
        &self,
        at: SimTime,
        metrics: &mut JobMetrics,
        span: SpanId,
        stage: StageId,
        part: usize,
        why: FailureKind,
    ) {
        metrics.tasks_recomputed += 1;
        self.obs
            .metrics
            .counter_add("tasks_failed_total", &[("reason", why.label())], 1);
        self.obs.spans.annotate(span, "failed", why.label());
        self.obs.spans.close(span, at);
        self.obs.flight.record(
            at,
            "task-failed",
            &[
                ("stage", &stage.0.to_string()),
                ("part", &part.to_string()),
                ("reason", why.label()),
            ],
        );
    }

    /// A running task has outlived the configured multiple of its stage's
    /// live completion-time quantile: count it, annotate its span and
    /// leave a flight-recorder breadcrumb. Detection only — the scheduler
    /// takes no action.
    pub fn straggler_suspected(
        &self,
        at: SimTime,
        span: SpanId,
        stage: StageId,
        part: usize,
        elapsed_secs: f64,
        threshold_secs: f64,
    ) {
        self.obs
            .metrics
            .counter_add("stragglers_suspected_total", &[], 1);
        self.obs.spans.annotate(
            span,
            "straggler",
            &format!("elapsed {elapsed_secs:.6}s > threshold {threshold_secs:.6}s"),
        );
        self.obs.flight.record(
            at,
            "straggler-suspected",
            &[
                ("stage", &stage.0.to_string()),
                ("part", &part.to_string()),
                ("elapsed_secs", &format!("{elapsed_secs:.6}")),
                ("threshold_secs", &format!("{threshold_secs:.6}")),
            ],
        );
    }

    pub fn task_cpu(&self, metrics: &mut JobMetrics, cpu_secs: f64) {
        metrics.cpu_secs_total += cpu_secs;
    }

    pub fn shuffle_read(&self, metrics: &mut JobMetrics, bytes: u64) {
        metrics.shuffle_bytes_read += bytes;
        self.obs
            .metrics
            .counter_add("shuffle_bytes_read_total", &[], bytes);
    }

    pub fn shuffle_written(&self, metrics: &mut JobMetrics, bytes: u64) {
        metrics.shuffle_bytes_written += bytes;
        self.obs
            .metrics
            .counter_add("shuffle_bytes_written_total", &[], bytes);
    }

    /// Opens a nested span for a task's shuffle fetch or write phase.
    pub fn shuffle_phase_started(
        &self,
        at: SimTime,
        exec: &ExecutorId,
        kind: ExecutorKind,
        phase: &str,
    ) -> SpanId {
        self.obs.spans.open(at, kind_label(kind), &exec.0, phase)
    }

    pub fn shuffle_phase_finished(&self, at: SimTime, span: SpanId, phase: &str, started: SimTime) {
        self.obs.spans.close(span, at);
        let secs = at.saturating_since(started).as_secs_f64();
        let labels = [("phase", phase)];
        self.obs
            .metrics
            .observe("shuffle_phase_seconds", &labels, secs);
        self.obs
            .metrics
            .record_quantile("shuffle_phase_seconds", &labels, secs);
    }

    /// A shuffle phase ended without completing (store error, executor
    /// death). The span closes marked aborted; no latency is observed, so
    /// the `shuffle_phase_seconds` histogram stays successful-ops-only.
    pub fn shuffle_phase_aborted(&self, at: SimTime, span: SpanId) {
        self.obs.spans.annotate(span, "aborted", "true");
        self.obs.spans.close(span, at);
    }

    pub fn stage_completed(&self, metrics: &mut JobMetrics) {
        metrics.stages_run += 1;
        self.obs.metrics.counter_add("stages_completed_total", &[], 1);
    }

    pub fn stage_rolled_back(&self, at: SimTime, stage: StageId, missing: usize) {
        self.obs
            .metrics
            .counter_add("stage_rollbacks_total", &[], 1);
        self.obs.metrics.counter_add(
            "stage_rollback_missing_partitions_total",
            &[],
            missing as u64,
        );
        self.obs.spans.instant(
            at,
            "driver",
            "driver",
            &format!("rollback s{}", stage.0),
        );
        self.obs.flight.record(
            at,
            "stage-rollback",
            &[
                ("stage", &stage.0.to_string()),
                ("missing", &missing.to_string()),
            ],
        );
    }

    pub fn job_completed(&self, at: SimTime, job: JobId, metrics: &JobMetrics) {
        self.obs.metrics.counter_add("jobs_completed_total", &[], 1);
        let secs = metrics.execution_time().as_secs_f64();
        self.obs.metrics.observe_with(
            "job_execution_seconds",
            &[],
            &[1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0],
            secs,
        );
        self.obs
            .metrics
            .record_quantile("job_execution_seconds", &[], secs);
        self.obs
            .rollups
            .record("job_execution_seconds", &[], at, secs);
        self.obs
            .spans
            .instant(at, "driver", "driver", &format!("{job} completed"));
        self.obs.flight.record(
            at,
            "job-completed",
            &[
                ("job", &job.to_string()),
                ("execution_secs", &format!("{secs:.6}")),
            ],
        );
    }
}
