//! The engine's single telemetry path.
//!
//! Every measurement the scheduler takes — task completions, failures,
//! recomputations, shuffle bytes, stage transitions — flows through one
//! [`Telemetry`] method, which updates the per-job [`JobMetrics`] *and*
//! the cluster-wide [`MetricsRegistry`](splitserve_obs::MetricsRegistry)
//! in lock-step, and opens/closes the executor-lane spans the Chrome
//! trace export turns into Figure-7-style timelines. The scheduler itself
//! never touches a metrics field directly, so the two views cannot drift.
//!
//! Registry series the hot loop hits are resolved once at construction
//! into [`CounterHandle`]/[`HistogramHandle`]/[`QuantileHandle`] cells —
//! the per-task cost with observability on is atomic bumps, not key
//! builds. Span and flight recording (and the `format!` arguments they
//! consume) are gated on their recorders being enabled, so a run without
//! observability pays one branch per event, not a pile of `String`s.

use std::sync::Arc;

use splitserve_des::SimTime;
use splitserve_obs::{CounterHandle, HistogramHandle, Obs, QuantileHandle, SpanId};

use crate::events::JobId;
use crate::executor::{ExecutorId, ExecutorKind};
use crate::metrics::JobMetrics;
use crate::stage::StageId;

/// Why a task attempt ended without producing its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailureKind {
    /// The executor died mid-flight.
    ExecutorLost,
    /// A shuffle-input block could not be fetched.
    FetchFailed,
    /// A map-output write was rejected by the store.
    WriteFailed,
}

impl FailureKind {
    fn label(self) -> &'static str {
        match self {
            FailureKind::ExecutorLost => "executor-lost",
            FailureKind::FetchFailed => "fetch-failed",
            FailureKind::WriteFailed => "write-failed",
        }
    }

    fn idx(self) -> usize {
        match self {
            FailureKind::ExecutorLost => 0,
            FailureKind::FetchFailed => 1,
            FailureKind::WriteFailed => 2,
        }
    }
}

fn kind_label(kind: ExecutorKind) -> &'static str {
    match kind {
        ExecutorKind::Vm => "vm",
        ExecutorKind::Lambda => "lambda",
    }
}

fn kind_idx(kind: ExecutorKind) -> usize {
    match kind {
        ExecutorKind::Vm => 0,
        ExecutorKind::Lambda => 1,
    }
}

/// Buckets for whole-job execution times (seconds).
const JOB_EXECUTION_BUCKETS: &[f64] = &[1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0];

/// Every registry series the scheduler records on its steady-state path,
/// resolved once. Indexed arrays follow [`kind_idx`] (vm, lambda),
/// [`FailureKind::idx`], or fetch/write phase order.
#[derive(Debug, Default)]
struct Handles {
    executors_registered: [CounterHandle; 2],
    tasks_completed: [CounterHandle; 2],
    task_cpu_seconds: [HistogramHandle; 2],
    task_run_seconds: [QuantileHandle; 2],
    tasks_failed: [CounterHandle; 3],
    stragglers_suspected: CounterHandle,
    shuffle_bytes_read: CounterHandle,
    shuffle_bytes_written: CounterHandle,
    shuffle_phase_seconds_hist: [HistogramHandle; 2],
    shuffle_phase_seconds_quant: [QuantileHandle; 2],
    stages_completed: CounterHandle,
    stage_rollbacks: CounterHandle,
    stage_rollback_missing: CounterHandle,
    jobs_completed: CounterHandle,
    job_execution_seconds_hist: HistogramHandle,
    job_execution_seconds_quant: QuantileHandle,
}

impl Handles {
    fn resolve(obs: &Obs) -> Self {
        let m = &obs.metrics;
        let per_kind_counter =
            |name: &str| [0, 1].map(|i| m.counter_handle(name, &[("kind", ["vm", "lambda"][i])]));
        Handles {
            executors_registered: per_kind_counter("executors_registered_total"),
            tasks_completed: per_kind_counter("tasks_completed_total"),
            task_cpu_seconds: [0, 1].map(|i| {
                m.histogram_handle("task_cpu_seconds", &[("kind", ["vm", "lambda"][i])])
            }),
            task_run_seconds: [0, 1].map(|i| {
                m.quantile_handle("task_run_seconds", &[("kind", ["vm", "lambda"][i])])
            }),
            tasks_failed: [
                FailureKind::ExecutorLost,
                FailureKind::FetchFailed,
                FailureKind::WriteFailed,
            ]
            .map(|why| m.counter_handle("tasks_failed_total", &[("reason", why.label())])),
            stragglers_suspected: m.counter_handle("stragglers_suspected_total", &[]),
            shuffle_bytes_read: m.counter_handle("shuffle_bytes_read_total", &[]),
            shuffle_bytes_written: m.counter_handle("shuffle_bytes_written_total", &[]),
            shuffle_phase_seconds_hist: [0, 1].map(|i| {
                m.histogram_handle("shuffle_phase_seconds", &[("phase", ["fetch", "write"][i])])
            }),
            shuffle_phase_seconds_quant: [0, 1].map(|i| {
                m.quantile_handle("shuffle_phase_seconds", &[("phase", ["fetch", "write"][i])])
            }),
            stages_completed: m.counter_handle("stages_completed_total", &[]),
            stage_rollbacks: m.counter_handle("stage_rollbacks_total", &[]),
            stage_rollback_missing: m.counter_handle("stage_rollback_missing_partitions_total", &[]),
            jobs_completed: m.counter_handle("jobs_completed_total", &[]),
            job_execution_seconds_hist: m.histogram_handle_with(
                "job_execution_seconds",
                &[],
                JOB_EXECUTION_BUCKETS,
            ),
            job_execution_seconds_quant: m.quantile_handle("job_execution_seconds", &[]),
        }
    }
}

/// Shared recorder for everything the engine measures.
#[derive(Debug, Clone, Default)]
pub(crate) struct Telemetry {
    obs: Obs,
    h: Arc<Handles>,
}

impl Telemetry {
    pub fn new(obs: Obs) -> Self {
        let h = Arc::new(Handles::resolve(&obs));
        Telemetry { obs, h }
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn executor_registered(&self, at: SimTime, exec: ExecutorId, kind: ExecutorKind) {
        self.h.executors_registered[kind_idx(kind)].inc();
        self.obs
            .spans
            .instant(at, kind_label(kind), exec.as_str(), "registered");
    }

    /// Opens the task's executor-lane span; the returned id rides in the
    /// attempt table until the task ends one way or another.
    pub fn task_started(
        &self,
        at: SimTime,
        exec: ExecutorId,
        kind: ExecutorKind,
        stage: StageId,
        part: usize,
    ) -> SpanId {
        let span = if self.obs.spans.is_enabled() {
            let span = self.obs.spans.open(
                at,
                kind_label(kind),
                exec.as_str(),
                &format!("task s{}.{}", stage.0, part),
            );
            self.obs.spans.annotate(span, "stage", &stage.0.to_string());
            span
        } else {
            SpanId::NONE
        };
        if self.obs.flight.is_enabled() {
            self.obs.flight.record(
                at,
                "task-started",
                &[
                    ("exec", exec.as_str()),
                    ("stage", &stage.0.to_string()),
                    ("part", &part.to_string()),
                ],
            );
        }
        span
    }

    #[allow(clippy::too_many_arguments)]
    pub fn task_finished(
        &self,
        at: SimTime,
        metrics: &mut JobMetrics,
        kind: ExecutorKind,
        span: SpanId,
        stage: StageId,
        part: usize,
        cpu_secs: f64,
        run_secs: f64,
    ) {
        metrics.count_task(kind);
        let k = kind_idx(kind);
        self.h.tasks_completed[k].inc();
        self.h.task_cpu_seconds[k].observe(cpu_secs);
        self.h.task_run_seconds[k].record(run_secs);
        self.obs.rollups.record(
            "task_run_seconds",
            &[("kind", kind_label(kind))],
            at,
            run_secs,
        );
        if self.obs.spans.is_enabled() {
            self.obs
                .spans
                .annotate(span, "cpu_secs", &format!("{cpu_secs:.6}"));
            self.obs.spans.close(span, at);
        }
        if self.obs.flight.is_enabled() {
            self.obs.flight.record(
                at,
                "task-finished",
                &[
                    ("kind", kind_label(kind)),
                    ("stage", &stage.0.to_string()),
                    ("part", &part.to_string()),
                    ("run_secs", &format!("{run_secs:.6}")),
                ],
            );
        }
    }

    /// A task attempt failed and will be re-queued: count the recompute
    /// and close its span as failed.
    pub fn task_failed(
        &self,
        at: SimTime,
        metrics: &mut JobMetrics,
        span: SpanId,
        stage: StageId,
        part: usize,
        why: FailureKind,
    ) {
        metrics.tasks_recomputed += 1;
        self.h.tasks_failed[why.idx()].inc();
        if self.obs.spans.is_enabled() {
            self.obs.spans.annotate(span, "failed", why.label());
            self.obs.spans.close(span, at);
        }
        if self.obs.flight.is_enabled() {
            self.obs.flight.record(
                at,
                "task-failed",
                &[
                    ("stage", &stage.0.to_string()),
                    ("part", &part.to_string()),
                    ("reason", why.label()),
                ],
            );
        }
    }

    /// A running task has outlived the configured multiple of its stage's
    /// live completion-time quantile: count it, annotate its span and
    /// leave a flight-recorder breadcrumb. Detection only — the scheduler
    /// takes no action.
    pub fn straggler_suspected(
        &self,
        at: SimTime,
        span: SpanId,
        stage: StageId,
        part: usize,
        elapsed_secs: f64,
        threshold_secs: f64,
    ) {
        self.h.stragglers_suspected.inc();
        if self.obs.spans.is_enabled() {
            self.obs.spans.annotate(
                span,
                "straggler",
                &format!("elapsed {elapsed_secs:.6}s > threshold {threshold_secs:.6}s"),
            );
        }
        if self.obs.flight.is_enabled() {
            self.obs.flight.record(
                at,
                "straggler-suspected",
                &[
                    ("stage", &stage.0.to_string()),
                    ("part", &part.to_string()),
                    ("elapsed_secs", &format!("{elapsed_secs:.6}")),
                    ("threshold_secs", &format!("{threshold_secs:.6}")),
                ],
            );
        }
    }

    pub fn task_cpu(&self, metrics: &mut JobMetrics, cpu_secs: f64) {
        metrics.cpu_secs_total += cpu_secs;
    }

    pub fn shuffle_read(&self, metrics: &mut JobMetrics, bytes: u64) {
        metrics.shuffle_bytes_read += bytes;
        self.h.shuffle_bytes_read.add(bytes);
    }

    pub fn shuffle_written(&self, metrics: &mut JobMetrics, bytes: u64) {
        metrics.shuffle_bytes_written += bytes;
        self.h.shuffle_bytes_written.add(bytes);
    }

    /// Opens a nested span for a task's shuffle fetch or write phase.
    pub fn shuffle_phase_started(
        &self,
        at: SimTime,
        exec: ExecutorId,
        kind: ExecutorKind,
        phase: &str,
    ) -> SpanId {
        self.obs
            .spans
            .open(at, kind_label(kind), exec.as_str(), phase)
    }

    /// `phase` must be `"fetch"` or `"write"` — the two shuffle phases.
    pub fn shuffle_phase_finished(&self, at: SimTime, span: SpanId, phase: &str, started: SimTime) {
        self.obs.spans.close(span, at);
        let secs = at.saturating_since(started).as_secs_f64();
        let p = match phase {
            "fetch" => 0,
            "write" => 1,
            other => panic!("unknown shuffle phase {other:?}"),
        };
        self.h.shuffle_phase_seconds_hist[p].observe(secs);
        self.h.shuffle_phase_seconds_quant[p].record(secs);
    }

    /// A shuffle phase ended without completing (store error, executor
    /// death). The span closes marked aborted; no latency is observed, so
    /// the `shuffle_phase_seconds` histogram stays successful-ops-only.
    pub fn shuffle_phase_aborted(&self, at: SimTime, span: SpanId) {
        self.obs.spans.annotate(span, "aborted", "true");
        self.obs.spans.close(span, at);
    }

    pub fn stage_completed(&self, metrics: &mut JobMetrics) {
        metrics.stages_run += 1;
        self.h.stages_completed.inc();
    }

    pub fn stage_rolled_back(&self, at: SimTime, stage: StageId, missing: usize) {
        self.h.stage_rollbacks.inc();
        self.h.stage_rollback_missing.add(missing as u64);
        if self.obs.spans.is_enabled() {
            self.obs.spans.instant(
                at,
                "driver",
                "driver",
                &format!("rollback s{}", stage.0),
            );
        }
        if self.obs.flight.is_enabled() {
            self.obs.flight.record(
                at,
                "stage-rollback",
                &[
                    ("stage", &stage.0.to_string()),
                    ("missing", &missing.to_string()),
                ],
            );
        }
    }

    pub fn job_completed(&self, at: SimTime, job: JobId, metrics: &JobMetrics) {
        self.h.jobs_completed.inc();
        let secs = metrics.execution_time().as_secs_f64();
        self.h.job_execution_seconds_hist.observe(secs);
        self.h.job_execution_seconds_quant.record(secs);
        self.obs.rollups.record("job_execution_seconds", &[], at, secs);
        if self.obs.spans.is_enabled() {
            self.obs
                .spans
                .instant(at, "driver", "driver", &format!("{job} completed"));
        }
        if self.obs.flight.is_enabled() {
            self.obs.flight.record(
                at,
                "job-completed",
                &[
                    ("job", &job.to_string()),
                    ("execution_secs", &format!("{secs:.6}")),
                ],
            );
        }
    }
}
