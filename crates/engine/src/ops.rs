//! The typed operator library: [`Dataset<T>`] and its plan-node
//! implementations.
//!
//! Narrow operators (`map`, `filter`, `flat_map`, …) pipeline inside one
//! task by recursively computing their parent. Wide operators
//! (`reduce_by_key`, `group_by_key`, `join`) introduce [`ShuffleDep`]s:
//! their map side partitions records by key hash, optionally applies
//! map-side combine, and serializes buckets with `splitserve-codec`; their
//! reduce side deserializes and merges. All transformations do *real* work
//! on real data — the context only accounts the CPU seconds.
//!
//! The shuffle data plane is built for throughput without giving up
//! byte-determinism (see DESIGN.md "Shuffle data plane"): keys are hashed
//! once with the fixed-seed XXH64 [`shuffle_hash`], grouping goes through
//! the insertion-ordered [`HashGroup`] instead of `BTreeMap`s, encode
//! buffers are sized exactly via [`Encode::encoded_len`] and recycled
//! through [`splitserve_rt::pool`], and the reduce side consumes blocks
//! through a streaming decoder instead of materializing them.
//!
//! Everything here is `Send + Sync` — plan nodes, partition payloads and
//! the user closures inside them — because task bodies execute on the
//! engine's worker-thread pool (see DESIGN.md "Parallel task data
//! plane").

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use splitserve_codec::{Decode, Encode};
use splitserve_rt::hash::shuffle_hash;
use splitserve_rt::{pool, Bytes};

use crate::combine::HashGroup;

use crate::context::TaskContext;
use crate::node::{
    next_node_id, next_shuffle_id, Dep, NodeId, Partitioner, PartitionData, PlanNode,
    ShuffleBucket, ShuffleDep,
};

/// A typed, lazily-evaluated distributed dataset — the engine's RDD.
///
/// Cloning a `Dataset` clones the handle, not the data.
///
/// # Examples
///
/// ```
/// use splitserve_engine::Dataset;
///
/// let nums = Dataset::parallelize((0..100u64).collect::<Vec<_>>(), 4);
/// let evens = nums.filter(|n| n % 2 == 0).map(|n| n * 10);
/// assert_eq!(evens.num_partitions(), 4);
/// ```
pub struct Dataset<T> {
    node: Arc<dyn PlanNode>,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            node: Arc::clone(&self.node),
            _t: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Dataset<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset<{}>({} x{})",
            std::any::type_name::<T>(),
            self.node.label(),
            self.node.num_partitions()
        )
    }
}

/// Deterministic key→partition hashing: fixed-seed XXH64 (see
/// [`splitserve_rt::hash`]), so every run — on any toolchain — partitions
/// identically, and at a fraction of SipHash's cost.
pub fn bucket_of<K: Hash>(key: &K, num_partitions: usize) -> usize {
    bucket_of_hash(shuffle_hash(key), num_partitions)
}

/// The bucket for an already-computed [`shuffle_hash`] — the map side
/// hashes each key once and reuses it for grouping and bucketing.
pub(crate) fn bucket_of_hash(hash: u64, num_partitions: usize) -> usize {
    (hash % num_partitions as u64) as usize
}

fn rows<T: 'static>(data: &PartitionData) -> &Vec<T> {
    data.downcast_ref::<Vec<T>>()
        .expect("partition type mismatch: engine invariant violated")
}

fn wrap<T: Send + Sync + 'static>(v: Vec<T>) -> PartitionData {
    Arc::new(v)
}

impl<T: Send + Sync + 'static> Dataset<T> {
    pub(crate) fn from_node(node: Arc<dyn PlanNode>) -> Self {
        Dataset {
            node,
            _t: PhantomData,
        }
    }

    /// The underlying plan node (for job submission).
    pub fn node(&self) -> Arc<dyn PlanNode> {
        Arc::clone(&self.node)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.node.num_partitions()
    }

    /// Distributes driver-resident data over `partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn parallelize(data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let total = data.len();
        let mut parts: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        let chunk = total.div_ceil(partitions).max(1);
        for (i, x) in data.into_iter().enumerate() {
            parts[(i / chunk).min(partitions - 1)].push(x);
        }
        let parts: Vec<Arc<Vec<T>>> = parts.into_iter().map(Arc::new).collect();
        Dataset::from_node(Arc::new(ParallelizeNode {
            id: next_node_id(),
            parts,
            bytes_per_record: std::mem::size_of::<T>().max(8) as u64,
        }))
    }

    /// Creates a dataset whose partitions are generated on the executors by
    /// `gen(partition_index)` — the way workload inputs are materialized
    /// without the driver holding them. `gen` must be deterministic in its
    /// argument.
    pub fn generate(
        partitions: usize,
        gen: impl Fn(usize) -> Vec<T> + Send + Sync + 'static,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        Dataset::from_node(Arc::new(GenerateNode {
            id: next_node_id(),
            partitions,
            gen: Arc::new(gen),
            bytes_per_record: std::mem::size_of::<T>().max(8) as u64,
        }))
    }

    /// Element-wise transformation.
    pub fn map<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> Dataset<U> {
        self.map_with_cost(f, None)
    }

    /// Like [`Dataset::map`] but charging `cost_secs_per_record` instead of
    /// the default narrow-operator rate — for compute-heavy user functions
    /// (distance computations, parsing, …).
    pub fn map_with_cost<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
        cost_secs_per_record: Option<f64>,
    ) -> Dataset<U> {
        Dataset::from_node(Arc::new(MapNode {
            id: next_node_id(),
            parent: self.node(),
            f: Arc::new(f),
            cost: cost_secs_per_record,
        }))
    }

    /// Keeps the records for which `f` is true.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T>
    where
        T: Clone,
    {
        Dataset::from_node(Arc::new(FilterNode {
            id: next_node_id(),
            parent: self.node(),
            f: Arc::new(f),
        }))
    }

    /// Maps each record to zero or more outputs.
    pub fn flat_map<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        Dataset::from_node(Arc::new(FlatMapNode {
            id: next_node_id(),
            parent: self.node(),
            f: Arc::new(f),
        }))
    }

    /// Whole-partition transformation with direct access to the context
    /// for custom cost accounting.
    pub fn map_partitions<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(&mut TaskContext, &[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        Dataset::from_node(Arc::new(MapPartitionsNode {
            id: next_node_id(),
            parent: self.node(),
            f: Arc::new(f),
        }))
    }

    /// Pairs each record with a key.
    pub fn key_by<K: Send + Sync + 'static>(
        &self,
        f: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Dataset<(K, T)>
    where
        T: Clone,
    {
        self.map(move |t| (f(t), t.clone()))
    }

    /// Concatenates two datasets (partitions are appended, no shuffle).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        Dataset::from_node(Arc::new(UnionNode::<T> {
            id: next_node_id(),
            parents: vec![self.node(), other.node()],
            _t: PhantomData,
        }))
    }

    /// Memoizes computed partitions so repeated jobs over the same lineage
    /// skip recomputation (an idealized `.cache()`: the cache is not
    /// invalidated by executor loss — documented simplification).
    pub fn cache(&self) -> Dataset<T> {
        let n = self.num_partitions();
        Dataset::from_node(Arc::new(CacheNode::<T> {
            id: next_node_id(),
            parent: self.node(),
            slots: Mutex::new((0..n).map(|_| None).collect()),
            _t: PhantomData,
        }))
    }
}

/// Bound bundle for keys crossing a shuffle.
pub trait ShuffleKey: Ord + Hash + Clone + Encode + Decode + Send + Sync + 'static {}
impl<K: Ord + Hash + Clone + Encode + Decode + Send + Sync + 'static> ShuffleKey for K {}

/// Bound bundle for values crossing a shuffle.
pub trait ShuffleValue: Clone + Encode + Decode + Send + Sync + 'static {}
impl<V: Clone + Encode + Decode + Send + Sync + 'static> ShuffleValue for V {}

impl<K: ShuffleKey, V: ShuffleValue> Dataset<(K, V)> {
    /// Merges values per key with `f`, shuffling into `partitions`
    /// partitions. Applies map-side combine (Spark's `reduceByKey`).
    pub fn reduce_by_key(
        &self,
        partitions: usize,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)> {
        let f: CombineFn<V> = Arc::new(f);
        let dep = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: self.node(),
            num_partitions: partitions,
            partitioner: make_partitioner::<K, V>(partitions, Some(Arc::clone(&f))),
        });
        let merge: MergeFn<(K, V)> = Arc::new(move |ctx: &mut TaskContext, blocks: Vec<Bytes>| {
            let mut acc: HashGroup<K, V> = HashGroup::with_capacity(64);
            for (k, v) in decode_stream::<K, V>(blocks) {
                let h = shuffle_hash(&k);
                let merged = acc.upsert_owned(h, k, v, |v| v, |a, v| {
                    let m = f(a, &v);
                    *a = m;
                });
                if merged {
                    ctx.charge_combine(1);
                }
            }
            acc.into_pairs().collect::<Vec<(K, V)>>()
        });
        Dataset::from_node(Arc::new(ShuffledNode {
            id: next_node_id(),
            label: "reduceByKey",
            dep,
            merge,
        }))
    }

    /// Groups all values per key (Spark's `groupByKey`; no map-side
    /// combine, so it shuffles every record).
    pub fn group_by_key(&self, partitions: usize) -> Dataset<(K, Vec<V>)> {
        let dep = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: self.node(),
            num_partitions: partitions,
            partitioner: make_partitioner::<K, V>(partitions, None),
        });
        let merge: MergeFn<(K, Vec<V>)> = Arc::new(move |ctx: &mut TaskContext, blocks: Vec<Bytes>| {
            let mut acc: HashGroup<K, Vec<V>> = HashGroup::with_capacity(64);
            for (k, v) in decode_stream::<K, V>(blocks) {
                ctx.charge_combine(1);
                acc.upsert_owned(shuffle_hash(&k), k, v, |v| vec![v], |a, v| a.push(v));
            }
            acc.into_pairs().collect::<Vec<(K, Vec<V>)>>()
        });
        Dataset::from_node(Arc::new(ShuffledNode {
            id: next_node_id(),
            label: "groupByKey",
            dep,
            merge,
        }))
    }

    /// Inner hash join on the key, shuffling both sides into `partitions`
    /// co-partitioned buckets.
    pub fn join<W: ShuffleValue>(
        &self,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Dataset<(K, (V, W))> {
        let left = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: self.node(),
            num_partitions: partitions,
            partitioner: make_partitioner::<K, V>(partitions, None),
        });
        let right = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: other.node(),
            num_partitions: partitions,
            partitioner: make_partitioner::<K, W>(partitions, None),
        });
        Dataset::from_node(Arc::new(JoinNode::<K, V, W> {
            id: next_node_id(),
            left,
            right,
            _t: PhantomData,
        }))
    }

    /// Transforms values, keeping keys (no shuffle).
    pub fn map_values<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(&V) -> U + Send + Sync + 'static,
    ) -> Dataset<(K, U)> {
        self.map(move |(k, v)| (k.clone(), f(v)))
    }
}

/// Extracts and concatenates the typed records of a job's output
/// partitions (the driver-side half of `collect()`).
///
/// Takes the partitions by value: whenever a partition's `Arc` is the
/// last handle (the common case — the scheduler hands its only reference
/// over), the rows are moved out instead of cloned, and the first
/// non-empty partition's vector is taken over wholesale. Shared
/// partitions (e.g. behind a `cache()`) fall back to cloning.
///
/// # Panics
///
/// Panics if the partitions hold a different record type.
pub fn collect_partitions<T: Clone + Send + Sync + 'static>(parts: Vec<PartitionData>) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for p in parts {
        let rc = p
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("partition type mismatch: engine invariant violated"));
        match Arc::try_unwrap(rc) {
            Ok(v) => {
                if out.is_empty() {
                    out = v;
                } else {
                    out.extend(v);
                }
            }
            Err(shared) => out.extend(shared.iter().cloned()),
        }
    }
    out
}

// ----- map-side shuffle machinery -------------------------------------

/// Streaming decoder over fetched shuffle blocks: yields records one at
/// a time with no intermediate `Vec`, so reduce-side merges fold each
/// record straight into their accumulator. Deserialization cost for
/// every fetched block is charged once when the task's context is built
/// (see [`TaskContext::new`]) — the bytes will all be decoded — so the
/// stream itself never touches the context and can run on any thread.
pub(crate) struct DecodeStream<K, V> {
    blocks: Vec<Bytes>,
    block: usize,
    offset: usize,
    _t: PhantomData<fn() -> (K, V)>,
}

impl<K: Decode, V: Decode> Iterator for DecodeStream<K, V> {
    type Item = (K, V);
    fn next(&mut self) -> Option<(K, V)> {
        loop {
            let block = self.blocks.get(self.block)?;
            let mut slice: &[u8] = &block[self.offset..];
            if slice.is_empty() {
                self.block += 1;
                self.offset = 0;
                continue;
            }
            let before = slice.len();
            let rec = splitserve_codec::from_bytes_seq(&mut slice)
                .expect("corrupt shuffle block: engine invariant violated");
            self.offset += before - slice.len();
            return Some(rec);
        }
    }
}

pub(crate) fn decode_stream<K: Decode, V: Decode>(blocks: Vec<Bytes>) -> DecodeStream<K, V> {
    DecodeStream {
        blocks,
        block: 0,
        offset: 0,
        _t: PhantomData,
    }
}

/// Commutative/associative combiner used by map-side and reduce-side
/// aggregation.
type CombineFn<V> = Arc<dyn Fn(&V, &V) -> V + Send + Sync>;

/// Histogram bounds for `shuffle_combine_seconds` (virtual CPU seconds
/// of one map task's combine phase — much finer than request latencies).
const COMBINE_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Freezes filled per-bucket scratch buffers into exact-sized [`Bytes`]
/// blocks, charges the serialization work, returns the scratch to the
/// pool and records the encoded volume (when observability is enabled).
fn finish_buckets(ctx: &mut TaskContext, bufs: Vec<Vec<u8>>, counts: Vec<u64>) -> Vec<ShuffleBucket> {
    let mut encoded_total = 0u64;
    let buckets = bufs
        .into_iter()
        .zip(counts)
        .map(|(buf, records)| {
            ctx.charge_ser(buf.len() as u64);
            encoded_total += buf.len() as u64;
            let bytes = Bytes::copy_from_slice(&buf);
            pool::give(buf);
            ShuffleBucket { bytes, records }
        })
        .collect();
    if encoded_total > 0 {
        ctx.obs()
            .metrics
            .counter_add("shuffle_encode_bytes_total", &[], encoded_total);
    }
    buckets
}

/// Encodes a combined [`HashGroup`] into one bucket per reduce partition,
/// reserving each buffer exactly via [`Encode::encoded_len`]: after
/// map-side combine the surviving entries are few relative to the input,
/// so the sizing pass is cheap and the encode pass never reallocates.
fn encode_grouped<K, V>(
    ctx: &mut TaskContext,
    num: usize,
    groups: &HashGroup<K, V>,
) -> Vec<ShuffleBucket>
where
    K: Encode + Eq,
    V: Encode,
{
    let mut totals = vec![0usize; num];
    let mut counts = vec![0u64; num];
    for (h, k, v) in groups.entries() {
        let b = bucket_of_hash(*h, num);
        totals[b] += k.encoded_len() + v.encoded_len();
        counts[b] += 1;
    }
    let mut bufs: Vec<Vec<u8>> = totals.iter().map(|t| pool::take(*t)).collect();
    for (h, k, v) in groups.entries() {
        let b = bucket_of_hash(*h, num);
        // Field-by-field writes produce the same bytes as encoding the
        // `(K, V)` tuple: the wire format has no framing between fields.
        k.encode(&mut bufs[b]);
        v.encode(&mut bufs[b]);
    }
    debug_assert!(
        bufs.iter().zip(&totals).all(|(buf, t)| buf.len() == *t),
        "encoded_len must match encode exactly"
    );
    finish_buckets(ctx, bufs, counts)
}

/// Partitions `records` into `num` serialized buckets by `bucket_fn`
/// (hash buckets here; range buckets in `sort_by_key`). Shared by every
/// non-combining map side.
///
/// Deliberately a single pass: pre-sizing each bucket with `encoded_len`
/// was measured to cost as much as the encoding itself on byte-array
/// payloads (CloudSort), so non-combining shuffles stream straight into
/// recycled pool buffers, which arrive pre-grown after the first task of
/// a stage.
pub(crate) fn encode_buckets_by<K, V>(
    ctx: &mut TaskContext,
    records: &[(K, V)],
    num: usize,
    bucket_fn: impl Fn(&K) -> usize,
) -> Vec<ShuffleBucket>
where
    K: Encode + 'static,
    V: Encode + 'static,
{
    let mut counts = vec![0u64; num];
    let mut bufs: Vec<Vec<u8>> = (0..num).map(|_| pool::take(0)).collect();
    for (k, v) in records {
        let b = bucket_fn(k);
        counts[b] += 1;
        k.encode(&mut bufs[b]);
        v.encode(&mut bufs[b]);
    }
    finish_buckets(ctx, bufs, counts)
}

pub(crate) fn make_partitioner<K: ShuffleKey, V: ShuffleValue>(
    num: usize,
    combine: Option<CombineFn<V>>,
) -> Partitioner {
    Arc::new(move |ctx: &mut TaskContext, data: PartitionData| {
        let records = rows::<(K, V)>(&data);
        ctx.charge_records(records.len() as u64);
        match &combine {
            Some(f) => {
                // Map-side combine: one hash of each key serves both the
                // grouping table and (via the stored hash) bucket choice,
                // since equal keys share a hash and therefore a bucket.
                let combine_started = ctx.cpu_secs();
                let mut groups: HashGroup<K, V> =
                    HashGroup::with_capacity(records.len().min(1024));
                for (k, v) in records {
                    let h = shuffle_hash(k);
                    let merged = groups.upsert(h, k, v, V::clone, |a, v| {
                        let m = f(a, v);
                        *a = m;
                    });
                    if merged {
                        ctx.charge_combine(1);
                    }
                }
                let combine_secs = ctx.cpu_secs() - combine_started;
                ctx.obs().metrics.observe_with(
                    "shuffle_combine_seconds",
                    &[],
                    COMBINE_BUCKETS,
                    combine_secs,
                );
                // Worker-thread path: exercises the sharded digest store
                // (per-thread shard, merged at snapshot), so recording
                // here never contends with the simulation thread.
                ctx.obs()
                    .metrics
                    .record_quantile("shuffle_combine_seconds", &[], combine_secs);
                encode_grouped(ctx, num, &groups)
            }
            None => encode_buckets_by(ctx, records, num, |k| bucket_of(k, num)),
        }
    })
}

// ----- node implementations --------------------------------------------

struct ParallelizeNode<T> {
    id: NodeId,
    parts: Vec<Arc<Vec<T>>>,
    bytes_per_record: u64,
}

impl<T: Send + Sync + 'static> PlanNode for ParallelizeNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "parallelize"
    }
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }
    fn deps(&self) -> Vec<Dep> {
        Vec::new()
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let p = &self.parts[part];
        ctx.charge_scan(p.len() as u64 * self.bytes_per_record);
        Arc::clone(p) as PartitionData
    }
}

struct GenerateNode<T> {
    id: NodeId,
    partitions: usize,
    gen: Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
    bytes_per_record: u64,
}

impl<T: Send + Sync + 'static> PlanNode for GenerateNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "generate"
    }
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn deps(&self) -> Vec<Dep> {
        Vec::new()
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let v = (self.gen)(part);
        ctx.charge_scan(v.len() as u64 * self.bytes_per_record);
        wrap(v)
    }
}

struct MapNode<T, U> {
    id: NodeId,
    parent: Arc<dyn PlanNode>,
    f: Arc<dyn Fn(&T) -> U + Send + Sync>,
    cost: Option<f64>,
}

impl<T: Send + Sync + 'static, U: Send + Sync + 'static> PlanNode for MapNode<T, U> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "map"
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let input = self.parent.compute(ctx, part);
        let rows = rows::<T>(&input);
        match self.cost {
            Some(c) => ctx.charge_secs(rows.len() as f64 * c),
            None => ctx.charge_records(rows.len() as u64),
        }
        wrap(rows.iter().map(|t| (self.f)(t)).collect::<Vec<U>>())
    }
}

struct FilterNode<T> {
    id: NodeId,
    parent: Arc<dyn PlanNode>,
    f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Clone + Send + Sync + 'static> PlanNode for FilterNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "filter"
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let input = self.parent.compute(ctx, part);
        let rows = rows::<T>(&input);
        ctx.charge_records(rows.len() as u64);
        wrap(
            rows.iter()
                .filter(|t| (self.f)(t))
                .cloned()
                .collect::<Vec<T>>(),
        )
    }
}

/// Per-record expansion function of `flat_map`.
type FlatMapFn<T, U> = Arc<dyn Fn(&T) -> Vec<U> + Send + Sync>;

struct FlatMapNode<T, U> {
    id: NodeId,
    parent: Arc<dyn PlanNode>,
    f: FlatMapFn<T, U>,
}

impl<T: Send + Sync + 'static, U: Send + Sync + 'static> PlanNode for FlatMapNode<T, U> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "flatMap"
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let input = self.parent.compute(ctx, part);
        let rows = rows::<T>(&input);
        let mut out = Vec::new();
        for t in rows {
            out.extend((self.f)(t));
        }
        ctx.charge_records(rows.len() as u64 + out.len() as u64);
        wrap(out)
    }
}

/// Whole-partition transformation of `map_partitions`.
type MapPartitionsFn<T, U> = Arc<dyn Fn(&mut TaskContext, &[T]) -> Vec<U> + Send + Sync>;

struct MapPartitionsNode<T, U> {
    id: NodeId,
    parent: Arc<dyn PlanNode>,
    f: MapPartitionsFn<T, U>,
}

impl<T: Send + Sync + 'static, U: Send + Sync + 'static> PlanNode for MapPartitionsNode<T, U> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "mapPartitions"
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let input = self.parent.compute(ctx, part);
        let rows = rows::<T>(&input);
        wrap((self.f)(ctx, rows))
    }
}

struct UnionNode<T> {
    id: NodeId,
    parents: Vec<Arc<dyn PlanNode>>,
    _t: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> PlanNode for UnionNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "union"
    }
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn deps(&self) -> Vec<Dep> {
        self.parents
            .iter()
            .map(|p| Dep::Narrow(Arc::clone(p)))
            .collect()
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        let mut idx = part;
        for p in &self.parents {
            if idx < p.num_partitions() {
                return p.compute(ctx, idx);
            }
            idx -= p.num_partitions();
        }
        panic!("union partition {part} out of range");
    }
}

/// One memoized partition: the rows plus the work-model deltas the fill
/// charged, replayed verbatim to every later reader. Without the replay,
/// whichever task happened to fill the cache first would be the only one
/// charged for the parent's work — a real-time race once tasks run on
/// worker threads, and a determinism hole in accounted durations.
struct CacheSlot {
    data: PartitionData,
    cpu_secs: f64,
    bytes_in: u64,
    bytes_out: u64,
}

struct CacheNode<T> {
    id: NodeId,
    parent: Arc<dyn PlanNode>,
    slots: Mutex<Vec<Option<CacheSlot>>>,
    _t: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> PlanNode for CacheNode<T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "cache"
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData {
        // Hold the lock across the fill so concurrent readers of one
        // partition compute it exactly once; losers replay the stored
        // charges and see identical accounted cost.
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = &slots[part] {
            ctx.replay_charges(slot.cpu_secs, slot.bytes_in, slot.bytes_out);
            return Arc::clone(&slot.data);
        }
        let (cpu0, in0, out0) = (ctx.cpu_secs(), ctx.bytes_in(), ctx.bytes_out());
        let data = self.parent.compute(ctx, part);
        slots[part] = Some(CacheSlot {
            data: Arc::clone(&data),
            cpu_secs: ctx.cpu_secs() - cpu0,
            bytes_in: ctx.bytes_in() - in0,
            bytes_out: ctx.bytes_out() - out0,
        });
        data
    }
}

/// Reduce-side merge: decodes this partition's blocks and merges records.
type MergeFn<C> = Arc<dyn Fn(&mut TaskContext, Vec<Bytes>) -> Vec<C> + Send + Sync>;

struct ShuffledNode<C> {
    id: NodeId,
    label: &'static str,
    dep: Arc<ShuffleDep>,
    merge: MergeFn<C>,
}

impl<C: Send + Sync + 'static> PlanNode for ShuffledNode<C> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        self.label
    }
    fn num_partitions(&self) -> usize {
        self.dep.num_partitions
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Shuffle(Arc::clone(&self.dep))]
    }
    fn compute(&self, ctx: &mut TaskContext, _part: usize) -> PartitionData {
        let blocks = ctx.shuffle_input(self.dep.id);
        wrap((self.merge)(ctx, blocks))
    }
}

type JoinMarker<K, V, W> = PhantomData<fn() -> (K, V, W)>;

struct JoinNode<K, V, W> {
    id: NodeId,
    left: Arc<ShuffleDep>,
    right: Arc<ShuffleDep>,
    _t: JoinMarker<K, V, W>,
}

impl<K: ShuffleKey, V: ShuffleValue, W: ShuffleValue> PlanNode for JoinNode<K, V, W> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "join"
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Shuffle(Arc::clone(&self.left)), Dep::Shuffle(Arc::clone(&self.right))]
    }
    fn compute(&self, ctx: &mut TaskContext, _part: usize) -> PartitionData {
        let left_blocks = ctx.shuffle_input(self.left.id);
        let right_blocks = ctx.shuffle_input(self.right.id);
        // Hash join: build a table from the left stream, probe with the
        // right stream — records never sit in an intermediate Vec.
        let mut table: HashGroup<K, Vec<V>> = HashGroup::with_capacity(64);
        for (k, v) in decode_stream::<K, V>(left_blocks) {
            ctx.charge_combine(1);
            table.upsert_owned(shuffle_hash(&k), k, v, |v| vec![v], |a, v| a.push(v));
        }
        let mut out: Vec<(K, (V, W))> = Vec::new();
        for (k, w) in decode_stream::<K, W>(right_blocks) {
            ctx.charge_combine(1);
            if let Some(vs) = table.get(shuffle_hash(&k), &k) {
                for v in vs {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
        }
        wrap(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkModel;
    use crate::node::input_shuffles;

    fn ctx() -> TaskContext {
        TaskContext::empty(WorkModel::default())
    }

    fn compute_all<T: Clone + Send + Sync + 'static>(ds: &Dataset<T>) -> Vec<T> {
        let node = ds.node();
        let parts: Vec<PartitionData> = (0..node.num_partitions())
            .map(|p| node.compute(&mut ctx(), p))
            .collect();
        collect_partitions(parts)
    }

    #[test]
    fn parallelize_splits_evenly() {
        let ds = Dataset::parallelize((0..10u32).collect(), 3);
        let node = ds.node();
        let sizes: Vec<usize> = (0..3)
            .map(|p| rows::<u32>(&node.compute(&mut ctx(), p)).len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|s| *s >= 2), "balanced-ish: {sizes:?}");
        assert_eq!(compute_all(&ds), (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn narrow_ops_pipeline() {
        let ds = Dataset::parallelize((0..100i64).collect(), 4)
            .filter(|x| x % 2 == 0)
            .map(|x| x * 3)
            .flat_map(|x| vec![*x, -*x]);
        let got = compute_all(&ds);
        assert_eq!(got.len(), 100);
        assert!(got.contains(&294) && got.contains(&-294));
    }

    #[test]
    fn generate_is_lazy_and_deterministic() {
        let ds = Dataset::<u64>::generate(4, |p| vec![p as u64; p + 1]);
        let got = compute_all(&ds);
        assert_eq!(got, vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn union_concatenates_partitions() {
        let a = Dataset::parallelize(vec![1u8, 2], 1);
        let b = Dataset::parallelize(vec![3u8, 4], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(compute_all(&u), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cache_memoizes_partitions() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let ds = Dataset::<u32>::generate(2, move |p| {
            c.fetch_add(1, Ordering::Relaxed);
            vec![p as u32]
        })
        .cache();
        let node = ds.node();
        node.compute(&mut ctx(), 0);
        node.compute(&mut ctx(), 0);
        node.compute(&mut ctx(), 1);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "partition 0 computed once");
    }

    #[test]
    fn cache_replays_identical_charges_to_every_reader() {
        let ds = Dataset::parallelize((0..100u64).collect(), 1)
            .map(|x| x * 2)
            .cache();
        let node = ds.node();
        let mut first = ctx();
        node.compute(&mut first, 0);
        let mut second = ctx();
        node.compute(&mut second, 0);
        assert!(first.cpu_secs() > 0.0, "fill must charge work");
        assert_eq!(
            first.cpu_secs().to_bits(),
            second.cpu_secs().to_bits(),
            "cache hit must replay the fill's exact charge"
        );
    }

    #[test]
    fn bucket_of_is_deterministic_and_in_range() {
        for k in 0u64..1000 {
            let b = bucket_of(&k, 7);
            assert!(b < 7);
            assert_eq!(b, bucket_of(&k, 7));
        }
    }

    /// Drives the map side and reduce side of a shuffle by hand (the
    /// scheduler normally does this through the block store).
    fn run_shuffle<K: ShuffleKey, C>(
        ds: &Dataset<(K, C)>,
        shuffled: &Dataset<(K, C)>,
    ) -> Vec<(K, C)>
    where
        C: ShuffleValue + Clone + 'static,
    {
        let _ = ds;
        let node = shuffled.node();
        let deps = input_shuffles(&node);
        assert_eq!(deps.len(), 1);
        let dep = &deps[0];
        let maps = dep.parent.num_partitions();
        let reduces = dep.num_partitions;
        // map side
        let mut buckets: Vec<Vec<Bytes>> = vec![Vec::new(); reduces];
        for m in 0..maps {
            let mut c = ctx();
            let data = dep.parent.compute(&mut c, m);
            let bs = (dep.partitioner)(&mut c, data);
            for (r, b) in bs.into_iter().enumerate() {
                if !b.bytes.is_empty() {
                    buckets[r].push(b.bytes);
                }
            }
        }
        // reduce side
        let mut out = Vec::new();
        for (r, blocks) in buckets.into_iter().enumerate() {
            let mut inputs = splitserve_rt::FastMap::default();
            inputs.insert(dep.id, blocks);
            let mut c = TaskContext::new(WorkModel::default(), inputs);
            let part = node.compute(&mut c, r);
            out.extend(rows::<(K, C)>(&part).iter().cloned());
        }
        out
    }

    #[test]
    fn reduce_by_key_sums_correctly() {
        let data: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, 1u64)).collect();
        let ds = Dataset::parallelize(data, 8);
        let red = ds.reduce_by_key(4, |a, b| a + b);
        let mut got = run_shuffle(&ds, &red);
        got.sort();
        assert_eq!(got.len(), 10);
        for (_k, v) in got {
            assert_eq!(v, 100);
        }
    }

    #[test]
    fn map_side_combine_shrinks_buckets() {
        // With combine, each bucket carries at most #distinct-keys records.
        let data: Vec<(u64, u64)> = (0..1000).map(|i| (i % 4, 1u64)).collect();
        let ds = Dataset::parallelize(data, 1);
        let red = ds.reduce_by_key(2, |a, b| a + b);
        let deps = input_shuffles(&red.node());
        let mut c = ctx();
        let data = deps[0].parent.compute(&mut c, 0);
        let buckets = (deps[0].partitioner)(&mut c, data);
        let total_records: u64 = buckets.iter().map(|b| b.records).sum();
        assert_eq!(total_records, 4, "combined down to one record per key");
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let data: Vec<(String, u32)> = vec![
            ("a".into(), 1),
            ("b".into(), 2),
            ("a".into(), 3),
            ("b".into(), 4),
            ("a".into(), 5),
        ];
        let ds = Dataset::parallelize(data, 2);
        let grouped = ds.group_by_key(3);
        let node = grouped.node();
        let deps = input_shuffles(&node);
        let dep = &deps[0];
        let mut buckets: Vec<Vec<Bytes>> = vec![Vec::new(); 3];
        for m in 0..dep.parent.num_partitions() {
            let mut c = ctx();
            let d = dep.parent.compute(&mut c, m);
            for (r, b) in (dep.partitioner)(&mut c, d).into_iter().enumerate() {
                if !b.bytes.is_empty() {
                    buckets[r].push(b.bytes);
                }
            }
        }
        let mut all: Vec<(String, Vec<u32>)> = Vec::new();
        for (r, blocks) in buckets.into_iter().enumerate() {
            let mut inputs = splitserve_rt::FastMap::default();
            inputs.insert(dep.id, blocks);
            let mut c = TaskContext::new(WorkModel::default(), inputs);
            let part = node.compute(&mut c, r);
            all.extend(rows::<(String, Vec<u32>)>(&part).iter().cloned());
        }
        all.sort();
        assert_eq!(all.len(), 2);
        let a = &all[0];
        assert_eq!(a.0, "a");
        let mut vals = a.1.clone();
        vals.sort();
        assert_eq!(vals, vec![1, 3, 5]);
    }

    #[test]
    fn join_produces_matching_pairs() {
        let left: Vec<(u32, String)> = vec![(1, "x".into()), (2, "y".into()), (3, "z".into())];
        let right: Vec<(u32, u64)> = vec![(1, 10), (1, 11), (3, 30), (4, 40)];
        let l = Dataset::parallelize(left, 2);
        let r = Dataset::parallelize(right, 2);
        let joined = l.join(&r, 2);
        let node = joined.node();
        let deps = input_shuffles(&node);
        assert_eq!(deps.len(), 2);
        // run both map sides
        let mut per_dep_buckets: Vec<Vec<Vec<Bytes>>> = Vec::new();
        for dep in &deps {
            let mut buckets: Vec<Vec<Bytes>> = vec![Vec::new(); dep.num_partitions];
            for m in 0..dep.parent.num_partitions() {
                let mut c = ctx();
                let d = dep.parent.compute(&mut c, m);
                for (rr, b) in (dep.partitioner)(&mut c, d).into_iter().enumerate() {
                    if !b.bytes.is_empty() {
                        buckets[rr].push(b.bytes);
                    }
                }
            }
            per_dep_buckets.push(buckets);
        }
        let mut all: Vec<(u32, (String, u64))> = Vec::new();
        #[allow(clippy::needless_range_loop)] // `part` also names the computed partition
        for part in 0..2 {
            let mut inputs = splitserve_rt::FastMap::default();
            for (di, dep) in deps.iter().enumerate() {
                inputs.insert(dep.id, per_dep_buckets[di][part].clone());
            }
            let mut c = TaskContext::new(WorkModel::default(), inputs);
            let p = node.compute(&mut c, part);
            all.extend(rows::<(u32, (String, u64))>(&p).iter().cloned());
        }
        all.sort();
        assert_eq!(
            all,
            vec![
                (1, ("x".into(), 10)),
                (1, ("x".into(), 11)),
                (3, ("z".into(), 30)),
            ]
        );
    }

    #[test]
    fn shuffle_work_is_charged() {
        let data: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
        let ds = Dataset::parallelize(data, 1);
        let red = ds.reduce_by_key(2, |a, b| a + b);
        let deps = input_shuffles(&red.node());
        let mut c = ctx();
        let d = deps[0].parent.compute(&mut c, 0);
        let before = c.cpu_secs();
        (deps[0].partitioner)(&mut c, d);
        assert!(c.cpu_secs() > before, "partitioner must charge CPU");
        assert!(c.bytes_out() > 0, "serialized bytes counted as output");
    }
}
