//! The untyped plan layer: lineage nodes, dependencies and shuffle edges.
//!
//! A job is a DAG of [`PlanNode`]s mirroring Spark's RDD graph. Narrow
//! dependencies are computed by recursive calls within one task
//! (pipelining); [`ShuffleDep`] edges are the stage boundaries where data
//! is partitioned by key, serialized and moved through the block store.
//!
//! The whole layer is `Send + Sync`: task bodies execute on the engine's
//! worker-thread pool, so plan nodes, partition payloads and the closures
//! inside them must be shareable across threads.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use splitserve_rt::Bytes;

use crate::context::TaskContext;

/// A computed partition: `Arc<Vec<T>>` behind `Any`. Cheap to clone,
/// shared between pipelined operators, and movable to worker threads.
pub type PartitionData = Arc<dyn Any + Send + Sync>;

/// Identifies a plan node within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// Identifies a shuffle (stage boundary) within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShuffleId(pub u64);

impl std::fmt::Display for ShuffleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shuffle-{}", self.0)
    }
}

static NEXT_NODE: AtomicU64 = AtomicU64::new(0);
static NEXT_SHUFFLE: AtomicU64 = AtomicU64::new(0);

/// Allocates a fresh node id (process-unique).
pub fn next_node_id() -> NodeId {
    NodeId(NEXT_NODE.fetch_add(1, Ordering::Relaxed))
}

/// Allocates a fresh shuffle id (process-unique).
pub fn next_shuffle_id() -> ShuffleId {
    ShuffleId(NEXT_SHUFFLE.fetch_add(1, Ordering::Relaxed))
}

/// One serialized shuffle bucket produced by a map task: the bytes bound
/// for one reduce partition, plus how many records they contain.
///
/// The payload is an immutable [`Bytes`] snapshot sized exactly to its
/// contents: the partitioner encodes into pooled scratch and freezes the
/// result here, so the scheduler can hand the same allocation to the
/// block store without copying.
#[derive(Debug, Clone)]
pub struct ShuffleBucket {
    /// Serialized records.
    pub bytes: Bytes,
    /// Record count (for metrics and cost accounting).
    pub records: u64,
}

/// The map side of a shuffle, type-erased: takes the parent's computed
/// partition, applies any map-side combine, partitions by key and
/// serializes — returning one bucket per reduce partition. Charges its
/// CPU work to the context.
pub type Partitioner = Arc<dyn Fn(&mut TaskContext, PartitionData) -> Vec<ShuffleBucket> + Send + Sync>;

/// A wide (shuffle) dependency: the child reads `parent`'s output
/// re-partitioned into `num_partitions` buckets by `partitioner`.
pub struct ShuffleDep {
    /// The shuffle's id (names its blocks in the store).
    pub id: ShuffleId,
    /// The map-side plan.
    pub parent: Arc<dyn PlanNode>,
    /// Number of reduce partitions.
    pub num_partitions: usize,
    /// Type-erased map-side work (see [`Partitioner`]).
    pub partitioner: Partitioner,
}

impl std::fmt::Debug for ShuffleDep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShuffleDep")
            .field("id", &self.id)
            .field("parent", &self.parent.id())
            .field("num_partitions", &self.num_partitions)
            .finish()
    }
}

/// A dependency edge in the plan DAG.
#[derive(Clone)]
pub enum Dep {
    /// Same-stage dependency: child's `compute` calls parent's `compute`.
    Narrow(Arc<dyn PlanNode>),
    /// Stage boundary: child reads the shuffle's blocks.
    Shuffle(Arc<ShuffleDep>),
}

impl std::fmt::Debug for Dep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dep::Narrow(p) => write!(f, "Narrow({:?})", p.id()),
            Dep::Shuffle(d) => write!(f, "Shuffle({:?})", d.id),
        }
    }
}

/// A lineage node. Implementations are the operator library in
/// [`crate::ops`]; workloads interact through the typed
/// [`Dataset`](crate::Dataset) wrapper instead.
///
/// `Send + Sync` because `compute` runs on worker threads.
pub trait PlanNode: Send + Sync {
    /// This node's id.
    fn id(&self) -> NodeId;
    /// Human-readable operator name for logs ("map", "reduceByKey", …).
    fn label(&self) -> &str;
    /// Number of partitions this node produces.
    fn num_partitions(&self) -> usize;
    /// Dependency edges.
    fn deps(&self) -> Vec<Dep>;
    /// Computes partition `part`, performing the *real* data
    /// transformation and charging its CPU work to `ctx`.
    fn compute(&self, ctx: &mut TaskContext, part: usize) -> PartitionData;
}

/// Walks the narrow-dependency closure of `node` (the nodes that execute
/// within its stage) and returns every [`ShuffleDep`] feeding that stage.
pub fn input_shuffles(node: &Arc<dyn PlanNode>) -> Vec<Arc<ShuffleDep>> {
    let mut out = Vec::new();
    let mut stack = vec![Arc::clone(node)];
    let mut seen = std::collections::HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n.id()) {
            continue;
        }
        for d in n.deps() {
            match d {
                Dep::Narrow(p) => stack.push(p),
                Dep::Shuffle(s) => out.push(s),
            }
        }
    }
    // Deterministic order.
    out.sort_by_key(|s| s.id);
    out.dedup_by_key(|s| s.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = next_node_id();
        let b = next_node_id();
        assert!(b > a);
        let s1 = next_shuffle_id();
        let s2 = next_shuffle_id();
        assert!(s2 > s1);
    }
}
