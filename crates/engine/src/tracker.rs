//! The map-output tracker: which executor wrote each shuffle block and how
//! big the per-reduce buckets are — the driver-side metadata Spark keeps in
//! `MapOutputTracker`.

use splitserve_rt::FastMap;

use crate::executor::ExecutorId;
use crate::node::ShuffleId;

/// The record a completed map task registers: who holds its output and the
/// serialized size of each reduce bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct MapStatus {
    /// Executor that wrote the blocks (block-store directory prefix).
    pub executor: ExecutorId,
    /// Serialized bytes per reduce partition; zero-sized buckets were not
    /// written and must not be fetched.
    pub sizes: Vec<u64>,
}

/// Driver-side shuffle metadata.
#[derive(Debug, Default)]
pub struct MapOutputTracker {
    shuffles: FastMap<ShuffleId, Vec<Option<MapStatus>>>,
}

impl MapOutputTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        MapOutputTracker::default()
    }

    /// Registers a shuffle with `maps` map partitions (idempotent).
    pub fn register_shuffle(&mut self, id: ShuffleId, maps: usize) {
        self.shuffles.entry(id).or_insert_with(|| vec![None; maps]);
    }

    /// `true` if the shuffle is known.
    pub fn has_shuffle(&self, id: ShuffleId) -> bool {
        self.shuffles.contains_key(&id)
    }

    /// Records a completed map task's output.
    ///
    /// # Panics
    ///
    /// Panics if the shuffle or map index is unknown.
    pub fn register_output(&mut self, id: ShuffleId, map: usize, status: MapStatus) {
        let maps = self
            .shuffles
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown shuffle {id}"));
        maps[map] = Some(status);
    }

    /// Whether every map partition of `id` has registered output.
    pub fn is_complete(&self, id: ShuffleId) -> bool {
        self.shuffles
            .get(&id)
            .is_some_and(|m| m.iter().all(Option::is_some))
    }

    /// Map partitions of `id` with no (surviving) output.
    pub fn missing(&self, id: ShuffleId) -> Vec<usize> {
        self.shuffles
            .get(&id)
            .map(|m| {
                m.iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_none())
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The non-empty blocks a reduce task for partition `reduce` must
    /// fetch: `(map_index, writer, size)` triples.
    ///
    /// # Panics
    ///
    /// Panics if the shuffle is incomplete — stages are only launched once
    /// their parents finished, so this is an engine invariant.
    pub fn inputs_for_reduce(&self, id: ShuffleId, reduce: usize) -> Vec<(usize, ExecutorId, u64)> {
        let maps = self
            .shuffles
            .get(&id)
            .unwrap_or_else(|| panic!("unknown shuffle {id}"));
        maps.iter()
            .enumerate()
            .map(|(m, s)| {
                let s = s
                    .as_ref()
                    .unwrap_or_else(|| panic!("shuffle {id} map {m} incomplete"));
                (m, s.executor, s.sizes[reduce])
            })
            .filter(|(_, _, size)| *size > 0)
            .collect()
    }

    /// Appends the non-empty blocks a reduce task for partition `reduce`
    /// must fetch onto `plan` as `(shuffle, map_index, writer, size)` —
    /// the allocation-free form of [`inputs_for_reduce`] the dispatch hot
    /// path uses (`plan` is the caller's task-scoped fetch plan).
    ///
    /// # Panics
    ///
    /// Panics if the shuffle is incomplete, like [`inputs_for_reduce`].
    ///
    /// [`inputs_for_reduce`]: MapOutputTracker::inputs_for_reduce
    pub fn inputs_for_reduce_into(
        &self,
        id: ShuffleId,
        reduce: usize,
        plan: &mut Vec<(ShuffleId, usize, ExecutorId, u64)>,
    ) {
        let maps = self
            .shuffles
            .get(&id)
            .unwrap_or_else(|| panic!("unknown shuffle {id}"));
        for (m, s) in maps.iter().enumerate() {
            let s = s
                .as_ref()
                .unwrap_or_else(|| panic!("shuffle {id} map {m} incomplete"));
            let size = s.sizes[reduce];
            if size > 0 {
                plan.push((id, m, s.executor, size));
            }
        }
    }

    /// Whether `executor` currently holds any registered output of shuffle
    /// `id` — i.e. whether losing it would leave the shuffle incomplete.
    pub fn has_outputs_from(&self, id: ShuffleId, executor: &ExecutorId) -> bool {
        self.shuffles.get(&id).is_some_and(|maps| {
            maps.iter()
                .flatten()
                .any(|s| &s.executor == executor)
        })
    }

    /// Forgets every output written by `executor` (its local blocks died
    /// with it). Returns the shuffles that lost outputs, with how many.
    pub fn unregister_executor(&mut self, executor: &ExecutorId) -> Vec<(ShuffleId, usize)> {
        let mut affected = Vec::new();
        for (id, maps) in &mut self.shuffles {
            let mut lost = 0;
            for slot in maps.iter_mut() {
                if slot.as_ref().is_some_and(|s| &s.executor == executor) {
                    *slot = None;
                    lost += 1;
                }
            }
            if lost > 0 {
                affected.push((*id, lost));
            }
        }
        affected.sort_by_key(|(id, _)| *id);
        affected
    }

    /// Forgets one map output (after a fetch failure pinpointed it).
    pub fn unregister_output(&mut self, id: ShuffleId, map: usize) {
        if let Some(maps) = self.shuffles.get_mut(&id) {
            maps[map] = None;
        }
    }

    /// Total bytes registered for shuffle `id` (for metrics).
    pub fn shuffle_bytes(&self, id: ShuffleId) -> u64 {
        self.shuffles
            .get(&id)
            .map(|maps| {
                maps.iter()
                    .flatten()
                    .flat_map(|s| s.sizes.iter())
                    .sum::<u64>()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(exec: &str, sizes: Vec<u64>) -> MapStatus {
        MapStatus {
            executor: ExecutorId::new(exec),
            sizes,
        }
    }

    #[test]
    fn completeness_tracking() {
        let mut t = MapOutputTracker::new();
        let s = ShuffleId(1);
        t.register_shuffle(s, 3);
        assert!(!t.is_complete(s));
        assert_eq!(t.missing(s), vec![0, 1, 2]);
        t.register_output(s, 0, status("e1", vec![10, 0]));
        t.register_output(s, 2, status("e2", vec![5, 5]));
        assert_eq!(t.missing(s), vec![1]);
        t.register_output(s, 1, status("e1", vec![0, 7]));
        assert!(t.is_complete(s));
    }

    #[test]
    fn register_shuffle_is_idempotent() {
        let mut t = MapOutputTracker::new();
        let s = ShuffleId(1);
        t.register_shuffle(s, 2);
        t.register_output(s, 0, status("e1", vec![1]));
        t.register_shuffle(s, 2); // must not wipe
        assert_eq!(t.missing(s), vec![1]);
    }

    #[test]
    fn reduce_inputs_skip_empty_buckets() {
        let mut t = MapOutputTracker::new();
        let s = ShuffleId(0);
        t.register_shuffle(s, 2);
        t.register_output(s, 0, status("e1", vec![10, 0]));
        t.register_output(s, 1, status("e2", vec![0, 20]));
        let r0 = t.inputs_for_reduce(s, 0);
        assert_eq!(r0, vec![(0, ExecutorId::new("e1"), 10)]);
        let r1 = t.inputs_for_reduce(s, 1);
        assert_eq!(r1, vec![(1, ExecutorId::new("e2"), 20)]);
        let mut plan = Vec::new();
        t.inputs_for_reduce_into(s, 1, &mut plan);
        assert_eq!(plan, vec![(s, 1, ExecutorId::new("e2"), 20)]);
        assert_eq!(t.shuffle_bytes(s), 30);
    }

    #[test]
    fn executor_loss_invalidates_only_its_outputs() {
        let mut t = MapOutputTracker::new();
        let s1 = ShuffleId(1);
        let s2 = ShuffleId(2);
        t.register_shuffle(s1, 2);
        t.register_shuffle(s2, 1);
        t.register_output(s1, 0, status("dead", vec![1]));
        t.register_output(s1, 1, status("alive", vec![1]));
        t.register_output(s2, 0, status("dead", vec![1]));
        let affected = t.unregister_executor(&ExecutorId::new("dead"));
        assert_eq!(affected, vec![(s1, 1), (s2, 1)]);
        assert_eq!(t.missing(s1), vec![0]);
        assert!(!t.is_complete(s2));
        assert!(!t.is_complete(s1));
        // Survivor intact.
        assert_eq!(t.missing(s1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn reduce_inputs_on_incomplete_shuffle_panics() {
        let mut t = MapOutputTracker::new();
        let s = ShuffleId(3);
        t.register_shuffle(s, 1);
        t.inputs_for_reduce(s, 0);
    }
}
