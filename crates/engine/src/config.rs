//! Engine configuration: the CPU/GC work model and scheduler knobs.

use splitserve_des::SimDuration;

/// Converts the *real* work a task performs (records touched, bytes
/// scanned/serialized) into *simulated* CPU seconds on a reference core.
///
/// Tasks in this engine genuinely transform data; the work model only
/// decides how long that transformation takes on the virtual clock. The
/// defaults are calibrated to JVM-Spark-era throughputs (~GB/s
/// serialization, ~5 M records/s per core for simple operators).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkModel {
    /// Seconds per record for narrow operators (map/filter/flatMap).
    pub record_secs: f64,
    /// Seconds per byte scanned from a source dataset.
    pub scan_secs_per_byte: f64,
    /// Seconds per byte serialized into shuffle blocks.
    pub ser_secs_per_byte: f64,
    /// Seconds per byte deserialized from shuffle blocks.
    pub deser_secs_per_byte: f64,
    /// Seconds per record for combine/merge operators (reduceByKey, join).
    pub combine_secs_per_record: f64,
    /// Fixed per-task overhead (scheduler hand-off, JVM dispatch).
    pub task_overhead: SimDuration,
    /// Memory-pressure fraction (working set / executor memory) above
    /// which GC starts to hurt.
    pub gc_threshold: f64,
    /// Strength of the GC slowdown beyond the threshold. The paper (§3)
    /// observes that Lambdas' small memory makes "garbage collection …
    /// pose significant overheads … even for moderately memory-intensive
    /// workloads".
    pub gc_penalty: f64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            record_secs: 2.0e-7,
            scan_secs_per_byte: 0.4e-9,
            ser_secs_per_byte: 1.0e-9,
            deser_secs_per_byte: 0.8e-9,
            combine_secs_per_record: 2.5e-7,
            task_overhead: SimDuration::from_millis(12),
            gc_threshold: 0.35,
            gc_penalty: 6.0,
        }
    }
}

impl WorkModel {
    /// The GC slowdown multiplier for a task whose working set occupies
    /// `pressure` (0..) of its executor's memory.
    ///
    /// Returns 1.0 below [`WorkModel::gc_threshold`], then grows
    /// super-linearly — matching the observed cliff when a JVM heap
    /// approaches full.
    ///
    /// # Examples
    ///
    /// ```
    /// use splitserve_engine::WorkModel;
    ///
    /// let wm = WorkModel::default();
    /// assert_eq!(wm.gc_factor(0.1), 1.0);
    /// assert!(wm.gc_factor(0.9) > wm.gc_factor(0.5));
    /// ```
    pub fn gc_factor(&self, pressure: f64) -> f64 {
        let over = (pressure - self.gc_threshold).max(0.0);
        1.0 + self.gc_penalty * over * over.sqrt()
    }
}

/// Knobs of the straggler watch (detection only, no speculative
/// re-launch): on every task completion the scheduler folds the run time
/// into a per-stage streaming quantile digest and flags still-running
/// attempts of the same stage whose elapsed virtual time exceeds
/// `quantile`'s value times `multiple`. Active only while observability
/// is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerConfig {
    /// Which quantile of completed-task run time anchors the threshold.
    pub quantile: f64,
    /// Threshold = quantile value × this multiple.
    pub multiple: f64,
    /// Minimum completed tasks in a stage before the watch arms — too few
    /// samples make the quantile meaningless.
    pub min_samples: u64,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            quantile: 0.95,
            multiple: 2.0,
            min_samples: 4,
        }
    }
}

/// Scheduler-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The work model converting real work to virtual time.
    pub work: WorkModel,
    /// Record every engine event (task start/finish, executor churn) for
    /// timeline figures. Cheap; on by default.
    pub event_log: bool,
    /// Optional cap on the event log: past this many events, pushes are
    /// dropped and counted (`event_log_dropped_total`) instead of
    /// growing the log — the safety valve for long streaming scenarios.
    pub event_log_capacity: Option<usize>,
    /// The straggler watch's quantile/multiple/arming knobs.
    pub straggler: StragglerConfig,
    /// The observability handle ([`splitserve_obs::Obs`]): metrics
    /// registry plus span recorder, shared with the policy and storage
    /// layers. Disabled by default — every record call is one branch.
    pub obs: splitserve_obs::Obs,
    /// Maximum concurrent block fetches per task during shuffle reads
    /// (Spark's `spark.reducer.maxReqsInFlight` spiritual cousin).
    pub max_fetch_concurrency: usize,
    /// Serialized driver work per task launch (closure serialization +
    /// RPC on the single-threaded scheduler loop). This is what bends the
    /// profiling curve back up at high degrees of parallelism (Fig. 4).
    pub driver_dispatch: SimDuration,
    /// Worker threads executing task bodies (map compute, shuffle
    /// combine+encode, reduce decode+merge). `1` (the default) runs task
    /// bodies inline on the simulation thread; `>= 2` offloads them to a
    /// real thread pool. Virtual-time results are byte-identical at any
    /// setting — only wall-clock changes (see DESIGN.md "Parallel task
    /// data plane").
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            work: WorkModel::default(),
            event_log: true,
            event_log_capacity: None,
            straggler: StragglerConfig::default(),
            obs: splitserve_obs::Obs::disabled(),
            max_fetch_concurrency: 8,
            driver_dispatch: SimDuration::from_millis(4),
            workers: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_factor_is_one_below_threshold() {
        let wm = WorkModel::default();
        assert_eq!(wm.gc_factor(0.0), 1.0);
        assert_eq!(wm.gc_factor(0.35), 1.0);
    }

    #[test]
    fn gc_factor_monotonic_above_threshold() {
        let wm = WorkModel::default();
        let mut last = 1.0;
        for i in 0..20 {
            let p = 0.35 + i as f64 * 0.05;
            let f = wm.gc_factor(p);
            assert!(f >= last, "gc factor decreased at {p}");
            last = f;
        }
        assert!(last > 2.0, "penalty too weak: {last}");
    }

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.work.record_secs > 0.0);
        assert!(c.max_fetch_concurrency > 0);
    }
}
