//! Insertion-ordered hash grouping for the shuffle data plane.
//!
//! Every wide operator used to group keys through `BTreeMap`s — one
//! ordered tree walk (and one rebalance) per record, on the hottest loop
//! of every CloudSort/TPC-DS/PageRank stage. [`HashGroup`] replaces them
//! with a flat open-addressing table: entries live contiguously in a
//! `Vec` in **first-insertion order**, and a power-of-two index of `u32`
//! slots maps precomputed hashes onto them with linear probing.
//!
//! Determinism is the design constraint, not an accident: iteration
//! yields entries in the order keys first arrived, which is itself a
//! pure function of the input order — so replacing the BTreeMaps changes
//! *output ordering* (callers sort where ordering is asserted) but never
//! the multiset of results, and two same-seed runs still produce
//! byte-identical shuffle blocks.
//!
//! Callers pass the hash in (from [`splitserve_rt::hash::shuffle_hash`])
//! rather than a `Hasher` living here, because the map side needs the
//! same hash twice — once to group, once to pick the shuffle bucket —
//! and should compute it once.

/// Sentinel for an unoccupied index slot.
const EMPTY: u32 = u32::MAX;

/// An insertion-ordered hash table from keys (with caller-supplied
/// hashes) to accumulators.
#[derive(Debug)]
pub(crate) struct HashGroup<K, A> {
    /// `(hash, key, accumulator)` in first-insertion order.
    entries: Vec<(u64, K, A)>,
    /// Power-of-two open-addressing index into `entries`.
    table: Vec<u32>,
}

impl<K: Eq, A> HashGroup<K, A> {
    /// An empty group sized for roughly `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(8) * 8 / 7).next_power_of_two();
        HashGroup {
            entries: Vec::with_capacity(cap),
            table: vec![EMPTY; slots],
        }
    }

    /// Distinct keys inserted so far.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Index of the slot holding `key`, or the empty slot where it would
    /// be inserted.
    fn probe(&self, hash: u64, key: &K) -> usize {
        let mask = self.table.len() - 1;
        let mut slot = hash as usize & mask;
        loop {
            let e = self.table[slot];
            if e == EMPTY {
                return slot;
            }
            let (h, k, _) = &self.entries[e as usize];
            if *h == hash && k == key {
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the index and re-threads every entry through its stored
    /// hash (entry order — and therefore iteration order — is untouched).
    fn grow(&mut self) {
        let mut table = vec![EMPTY; self.table.len() * 2];
        let mask = table.len() - 1;
        for (i, (h, _, _)) in self.entries.iter().enumerate() {
            let mut slot = *h as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = i as u32;
        }
        self.table = table;
    }

    fn insert_at(&mut self, slot: usize, hash: u64, key: K, acc: A) {
        self.table[slot] = self.entries.len() as u32;
        self.entries.push((hash, key, acc));
        // Load factor 7/8: grow before probes degrade.
        if self.entries.len() * 8 >= self.table.len() * 7 {
            self.grow();
        }
    }

    /// Merges `arg` into `key`'s accumulator, creating it with `insert`
    /// on first sight (the key is cloned only then). Returns `true` when
    /// an existing accumulator was merged into.
    pub fn upsert<Q>(
        &mut self,
        hash: u64,
        key: &K,
        arg: Q,
        insert: impl FnOnce(Q) -> A,
        merge: impl FnOnce(&mut A, Q),
    ) -> bool
    where
        K: Clone,
    {
        let slot = self.probe(hash, key);
        match self.table[slot] {
            EMPTY => {
                self.insert_at(slot, hash, key.clone(), insert(arg));
                false
            }
            e => {
                merge(&mut self.entries[e as usize].2, arg);
                true
            }
        }
    }

    /// Like [`upsert`](Self::upsert) for an owned key: consumed on
    /// insertion, dropped on merge — the reduce side never clones keys.
    pub fn upsert_owned<Q>(
        &mut self,
        hash: u64,
        key: K,
        arg: Q,
        insert: impl FnOnce(Q) -> A,
        merge: impl FnOnce(&mut A, Q),
    ) -> bool {
        let slot = self.probe(hash, &key);
        match self.table[slot] {
            EMPTY => {
                self.insert_at(slot, hash, key, insert(arg));
                false
            }
            e => {
                merge(&mut self.entries[e as usize].2, arg);
                true
            }
        }
    }

    /// The accumulator for `key`, if present (the join probe side).
    pub fn get(&self, hash: u64, key: &K) -> Option<&A> {
        match self.table[self.probe(hash, key)] {
            EMPTY => None,
            e => Some(&self.entries[e as usize].2),
        }
    }

    /// Entries as `(hash, key, accumulator)` in first-insertion order —
    /// the map side re-derives each entry's shuffle bucket from the
    /// stored hash without rehashing.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, K, A)> {
        self.entries.iter()
    }

    /// Consumes the group, yielding `(key, accumulator)` pairs in
    /// first-insertion order.
    pub fn into_pairs(self) -> impl Iterator<Item = (K, A)> {
        self.entries.into_iter().map(|(_, k, a)| (k, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_rt::hash::shuffle_hash;

    fn count_all(keys: &[u64]) -> HashGroup<u64, u64> {
        let mut g = HashGroup::with_capacity(4);
        for k in keys {
            g.upsert(shuffle_hash(k), k, 1u64, |n| n, |a, n| *a += n);
        }
        g
    }

    #[test]
    fn groups_and_counts() {
        let g = count_all(&[3, 1, 3, 2, 1, 3]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(shuffle_hash(&3u64), &3), Some(&3));
        assert_eq!(g.get(shuffle_hash(&1u64), &1), Some(&2));
        assert_eq!(g.get(shuffle_hash(&9u64), &9), None);
    }

    #[test]
    fn iteration_is_first_insertion_order() {
        let g = count_all(&[5, 2, 9, 2, 5, 7]);
        let keys: Vec<u64> = g.into_pairs().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![5, 2, 9, 7]);
    }

    #[test]
    fn growth_preserves_entries_and_order() {
        let keys: Vec<u64> = (0..10_000).map(|i| i % 997).collect();
        let g = count_all(&keys);
        assert_eq!(g.len(), 997);
        let drained: Vec<(u64, u64)> = g.into_pairs().collect();
        // First-insertion order of i % 997 is 0, 1, 2, …
        for (i, (k, n)) in drained.iter().enumerate() {
            assert_eq!(*k, i as u64);
            let expect = 10_000 / 997 + u64::from((i as u64) < 10_000 % 997);
            assert_eq!(*n, expect, "key {k}");
        }
    }

    #[test]
    fn colliding_hashes_stay_distinct_keys() {
        // Force every key onto one slot chain: correctness must come from
        // key equality, not the hash.
        let mut g: HashGroup<u64, u64> = HashGroup::with_capacity(8);
        for k in 0..64u64 {
            g.upsert(7, &k, 1, |n| n, |a, n| *a += n);
            g.upsert(7, &k, 1, |n| n, |a, n| *a += n);
        }
        assert_eq!(g.len(), 64);
        for k in 0..64u64 {
            assert_eq!(g.get(7, &k), Some(&2));
        }
    }

    #[test]
    fn upsert_owned_consumes_keys_without_clone() {
        // String is Clone, but upsert_owned must work without invoking it:
        // verified indirectly by moving the keys in.
        let mut g: HashGroup<String, Vec<u32>> = HashGroup::with_capacity(2);
        for (k, v) in [("a", 1u32), ("b", 2), ("a", 3)] {
            g.upsert_owned(
                shuffle_hash(k),
                k.to_string(),
                v,
                |v| vec![v],
                |acc, v| acc.push(v),
            );
        }
        assert_eq!(g.len(), 2);
        let pairs: Vec<(String, Vec<u32>)> = g.into_pairs().collect();
        assert_eq!(pairs[0], ("a".to_string(), vec![1, 3]));
        assert_eq!(pairs[1], ("b".to_string(), vec![2]));
    }
}
