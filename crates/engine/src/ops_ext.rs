//! Extended operator library: aggregations, distinct, co-group and a
//! range-partitioned sort — the rest of the RDD API surface a Spark user
//! would expect, built on the same shuffle machinery as `ops`.

use std::sync::Arc;

use splitserve_rt::hash::shuffle_hash;

use crate::combine::HashGroup;
use crate::context::TaskContext;
use crate::node::{
    next_node_id, next_shuffle_id, Dep, NodeId, PartitionData, PlanNode, ShuffleDep,
};
use crate::ops::{
    decode_stream, encode_buckets_by, make_partitioner, Dataset, ShuffleKey, ShuffleValue,
};

fn rows<T: 'static>(data: &PartitionData) -> &Vec<T> {
    data.downcast_ref::<Vec<T>>()
        .expect("partition type mismatch: engine invariant violated")
}

/// A serializable record usable as a sort key with a total order.
pub trait SortKey: ShuffleKey {}
impl<K: ShuffleKey> SortKey for K {}

/// The output of [`Dataset::cogroup`]: per key, the full value lists from
/// both sides.
pub type Cogrouped<K, V, W> = Dataset<(K, (Vec<V>, Vec<W>))>;

impl<T: Clone + Send + Sync + 'static> Dataset<T> {
    /// Counts all records (runs when the job executes; the count arrives
    /// as the single record of the single result partition).
    pub fn count(&self) -> Dataset<u64> {
        self.map(|_| (0u8, 1u64))
            .collect_into_single(|acc, n| acc + n, 0)
    }
}

impl<T: Send + Sync + 'static> Dataset<(u8, T)> {
    /// Internal helper: single-partition fold via one shuffle. Exposed
    /// through `count`/`sum_values`.
    fn collect_into_single<A>(
        &self,
        fold: impl Fn(A, T) -> A + Send + Sync + 'static,
        init: A,
    ) -> Dataset<A>
    where
        T: ShuffleValue,
        A: Clone + Send + Sync + 'static,
    {
        let dep = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: self.node(),
            num_partitions: 1,
            partitioner: make_partitioner::<u8, T>(1, None),
        });
        let fold = Arc::new(fold);
        Dataset::from_node(Arc::new(FoldNode {
            id: next_node_id(),
            dep,
            init,
            fold,
        }))
    }
}

struct FoldNode<T, A> {
    id: NodeId,
    dep: Arc<ShuffleDep>,
    init: A,
    fold: Arc<dyn Fn(A, T) -> A + Send + Sync>,
}

impl<T: ShuffleValue, A: Clone + Send + Sync + 'static> PlanNode for FoldNode<T, A> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "fold"
    }
    fn num_partitions(&self) -> usize {
        1
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Shuffle(Arc::clone(&self.dep))]
    }
    fn compute(&self, ctx: &mut TaskContext, _part: usize) -> PartitionData {
        let blocks = ctx.shuffle_input(self.dep.id);
        let mut acc = self.init.clone();
        for (_, v) in decode_stream::<u8, T>(blocks) {
            ctx.charge_combine(1);
            acc = (self.fold)(acc, v);
        }
        Arc::new(vec![acc])
    }
}

impl<K: ShuffleKey, V: ShuffleValue> Dataset<(K, V)> {
    /// Spark's `aggregateByKey`: per-key fold into an accumulator type
    /// `A`, with map-side partial aggregation (`seq`) and reduce-side
    /// accumulator merging (`comb`).
    pub fn aggregate_by_key<A>(
        &self,
        partitions: usize,
        init: A,
        seq: impl Fn(&A, &V) -> A + Send + Sync + 'static,
        comb: impl Fn(&A, &A) -> A + Send + Sync + 'static,
    ) -> Dataset<(K, A)>
    where
        A: ShuffleValue,
    {
        // Map side: fold raw values into accumulators, then shuffle the
        // (K, A) pairs with combiner `comb`.
        let init2 = init.clone();
        let seq = Arc::new(seq);
        let pre: Dataset<(K, A)> = self.map_partitions(move |ctx, records: &[(K, V)]| {
            ctx.charge_combine(records.len() as u64);
            // Group by reference: keys are cloned once per distinct key at
            // the very end, not on every record.
            let mut acc: HashGroup<&K, A> = HashGroup::with_capacity(records.len().min(1024));
            for (k, v) in records {
                acc.upsert_owned(
                    shuffle_hash(k),
                    k,
                    v,
                    |v| seq(&init2, v),
                    |a, v| {
                        let m = seq(a, v);
                        *a = m;
                    },
                );
            }
            acc.into_pairs().map(|(k, a)| (k.clone(), a)).collect()
        });
        pre.reduce_by_key(partitions, comb)
    }

    /// Distinct keys (drops values), one record per key.
    pub fn distinct_keys(&self, partitions: usize) -> Dataset<K> {
        self.map(|(k, _)| (k.clone(), ()))
            .reduce_by_key(partitions, |_, _| ())
            .map(|(k, _)| k.clone())
    }

    /// Spark's `cogroup`: for every key present on either side, the full
    /// value lists from both datasets.
    pub fn cogroup<W: ShuffleValue>(
        &self,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Cogrouped<K, V, W> {
        let left = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: self.node(),
            num_partitions: partitions,
            partitioner: make_partitioner::<K, V>(partitions, None),
        });
        let right = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: other.node(),
            num_partitions: partitions,
            partitioner: make_partitioner::<K, W>(partitions, None),
        });
        Dataset::from_node(Arc::new(CogroupNode::<K, V, W> {
            id: next_node_id(),
            left,
            right,
            _t: std::marker::PhantomData,
        }))
    }

    /// Globally sorts by key via range partitioning: partition `i` holds
    /// keys ≤ partition `i+1`'s, each partition internally sorted —
    /// Spark's `sortByKey`, the heart of CloudSort-style workloads.
    ///
    /// Range bounds are derived from a deterministic sample of the keys
    /// (provided by the caller via `bounds`, typically from
    /// [`sample_sort_bounds`]).
    pub fn sort_by_key(&self, bounds: Vec<K>) -> Dataset<(K, V)> {
        let partitions = bounds.len() + 1;
        let bounds = Arc::new(bounds);
        let b2 = Arc::clone(&bounds);
        let dep = Arc::new(ShuffleDep {
            id: next_shuffle_id(),
            parent: self.node(),
            num_partitions: partitions,
            partitioner: Arc::new(move |ctx: &mut TaskContext, data: PartitionData| {
                let records = rows::<(K, V)>(&data);
                ctx.charge_records(records.len() as u64);
                // Range buckets instead of hash buckets; the pooled
                // exact-size encode path is shared with the hash shuffles.
                encode_buckets_by(ctx, records, partitions, |k| match b2.binary_search(k) {
                    Ok(i) | Err(i) => i,
                })
            }),
        });
        Dataset::from_node(Arc::new(SortedNode {
            id: next_node_id(),
            dep,
            _t: std::marker::PhantomData::<fn() -> (K, V)>,
        }))
    }
}

type CogroupMarker<K, V, W> = std::marker::PhantomData<fn() -> (K, V, W)>;

struct CogroupNode<K, V, W> {
    id: NodeId,
    left: Arc<ShuffleDep>,
    right: Arc<ShuffleDep>,
    _t: CogroupMarker<K, V, W>,
}

impl<K: ShuffleKey, V: ShuffleValue, W: ShuffleValue> PlanNode for CogroupNode<K, V, W> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "cogroup"
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions
    }
    fn deps(&self) -> Vec<Dep> {
        vec![
            Dep::Shuffle(Arc::clone(&self.left)),
            Dep::Shuffle(Arc::clone(&self.right)),
        ]
    }
    fn compute(&self, ctx: &mut TaskContext, _part: usize) -> PartitionData {
        let lb = ctx.shuffle_input(self.left.id);
        let rb = ctx.shuffle_input(self.right.id);
        let mut groups: HashGroup<K, (Vec<V>, Vec<W>)> = HashGroup::with_capacity(64);
        for (k, v) in decode_stream::<K, V>(lb) {
            ctx.charge_combine(1);
            groups.upsert_owned(
                shuffle_hash(&k),
                k,
                v,
                |v| (vec![v], Vec::new()),
                |a, v| a.0.push(v),
            );
        }
        for (k, w) in decode_stream::<K, W>(rb) {
            ctx.charge_combine(1);
            groups.upsert_owned(
                shuffle_hash(&k),
                k,
                w,
                |w| (Vec::new(), vec![w]),
                |a, w| a.1.push(w),
            );
        }
        Arc::new(groups.into_pairs().collect::<Vec<(K, (Vec<V>, Vec<W>))>>())
    }
}

struct SortedNode<K, V> {
    id: NodeId,
    dep: Arc<ShuffleDep>,
    _t: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: ShuffleKey, V: ShuffleValue> PlanNode for SortedNode<K, V> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn label(&self) -> &str {
        "sortByKey"
    }
    fn num_partitions(&self) -> usize {
        self.dep.num_partitions
    }
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Shuffle(Arc::clone(&self.dep))]
    }
    fn compute(&self, ctx: &mut TaskContext, _part: usize) -> PartitionData {
        let blocks = ctx.shuffle_input(self.dep.id);
        let mut records: Vec<(K, V)> = decode_stream::<K, V>(blocks).collect();
        let n = records.len() as u64;
        // n log n comparison charge.
        ctx.charge_combine(n.max(1).ilog2() as u64 * n);
        records.sort_by(|a, b| a.0.cmp(&b.0));
        Arc::new(records)
    }
}

/// Derives `partitions - 1` range bounds for [`Dataset::sort_by_key`] from
/// a caller-provided key sample (deterministic: sort + equi-spaced picks).
pub fn sample_sort_bounds<K: Ord + Clone>(mut sample: Vec<K>, partitions: usize) -> Vec<K> {
    assert!(partitions > 0, "need at least one partition");
    if partitions == 1 || sample.is_empty() {
        return Vec::new();
    }
    sample.sort();
    let n = sample.len();
    (1..partitions)
        .map(|i| sample[(i * n / partitions).min(n - 1)].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkModel;
    use splitserve_rt::Bytes;

    /// Runs an arbitrary one-or-two-shuffle plan to completion by hand.
    fn run_plan<T: Clone + Send + Sync + 'static>(ds: &Dataset<T>) -> Vec<T> {
        // Breadth-first over stages using the engine's own builder.
        let graph = crate::stage::build_stages(ds.node());
        let mut tracker = crate::tracker::MapOutputTracker::new();
        let mut store: std::collections::HashMap<(u64, usize, usize), Bytes> =
            std::collections::HashMap::new();
        for stage in &graph.stages {
            // Stage order is topological.
            match &stage.kind {
                crate::stage::StageKind::ShuffleMap(dep) => {
                    tracker.register_shuffle(dep.id, stage.num_tasks);
                    for part in 0..stage.num_tasks {
                        let mut c = task_ctx(&stage.input_shuffles, part, &tracker, &store);
                        let data = stage.terminal.compute(&mut c, part);
                        let buckets = (dep.partitioner)(&mut c, data);
                        let sizes: Vec<u64> =
                            buckets.iter().map(|b| b.bytes.len() as u64).collect();
                        for (r, b) in buckets.into_iter().enumerate() {
                            if !b.bytes.is_empty() {
                                store.insert((dep.id.0, part, r), b.bytes);
                            }
                        }
                        tracker.register_output(
                            dep.id,
                            part,
                            crate::tracker::MapStatus {
                                executor: crate::executor::ExecutorId::new("t"),
                                sizes,
                            },
                        );
                    }
                }
                crate::stage::StageKind::Result => {
                    let mut out = Vec::new();
                    for part in 0..stage.num_tasks {
                        let mut c = task_ctx(&stage.input_shuffles, part, &tracker, &store);
                        let data = stage.terminal.compute(&mut c, part);
                        out.extend(rows::<T>(&data).iter().cloned());
                    }
                    return out;
                }
            }
        }
        unreachable!("graph always ends in a result stage")
    }

    fn task_ctx(
        inputs: &[Arc<ShuffleDep>],
        part: usize,
        tracker: &crate::tracker::MapOutputTracker,
        store: &std::collections::HashMap<(u64, usize, usize), Bytes>,
    ) -> TaskContext {
        let mut m = splitserve_rt::FastMap::default();
        for dep in inputs {
            let blocks: Vec<Bytes> = tracker
                .inputs_for_reduce(dep.id, part)
                .into_iter()
                .map(|(mi, _, _)| store[&(dep.id.0, mi, part)].clone())
                .collect();
            m.insert(dep.id, blocks);
        }
        TaskContext::new(WorkModel::default(), m)
    }

    #[test]
    fn count_counts() {
        let ds = Dataset::parallelize((0..777u32).collect(), 5).filter(|x| x % 3 == 0);
        let got = run_plan(&ds.count());
        assert_eq!(got, vec![259]);
    }

    #[test]
    fn aggregate_by_key_computes_means() {
        let data: Vec<(u32, f64)> = (0..100).map(|i| (i % 4, i as f64)).collect();
        let ds = Dataset::parallelize(data.clone(), 6);
        let agg = ds.aggregate_by_key(
            3,
            (0.0f64, 0u64),
            |acc, v| (acc.0 + v, acc.1 + 1),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        let mut got = run_plan(&agg);
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got.len(), 4);
        for (k, (sum, n)) in got {
            assert_eq!(n, 25);
            let expect: f64 = data
                .iter()
                .filter(|(kk, _)| *kk == k)
                .map(|(_, v)| v)
                .sum();
            assert!((sum - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn distinct_keys_dedups() {
        let data: Vec<(u16, ())> = (0..1000).map(|i| (i % 37, ())).collect();
        let ds = Dataset::parallelize(data, 4);
        let mut got = run_plan(&ds.distinct_keys(3));
        got.sort();
        assert_eq!(got, (0..37u16).collect::<Vec<_>>());
    }

    #[test]
    fn cogroup_pairs_full_value_lists() {
        let left: Vec<(u8, u32)> = vec![(1, 10), (1, 11), (2, 20)];
        let right: Vec<(u8, String)> = vec![(1, "a".into()), (3, "c".into())];
        let l = Dataset::parallelize(left, 2);
        let r = Dataset::parallelize(right, 2);
        let mut got = run_plan(&l.cogroup(&r, 2));
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (1, (vec![10, 11], vec!["a".into()])));
        assert_eq!(got[1], (2, (vec![20], vec![])));
        assert_eq!(got[2], (3, (vec![], vec!["c".into()])));
    }

    #[test]
    fn sort_by_key_totally_orders_across_partitions() {
        let data: Vec<(u64, u64)> = (0..2_000).map(|i| ((i * 7919) % 5_000, i)).collect();
        let ds = Dataset::parallelize(data.clone(), 8);
        let sample: Vec<u64> = data.iter().step_by(10).map(|(k, _)| *k).collect();
        let bounds = sample_sort_bounds(sample, 4);
        assert_eq!(bounds.len(), 3);
        let sorted = ds.sort_by_key(bounds);
        // run_plan concatenates partition 0..n in order: globally sorted.
        let got = run_plan(&sorted);
        assert_eq!(got.len(), 2_000);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0, "global order violated");
        }
        // Same multiset.
        let mut keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        let mut expect: Vec<u64> = data.iter().map(|(k, _)| *k).collect();
        keys.sort();
        expect.sort();
        assert_eq!(keys, expect);
    }

    #[test]
    fn sample_sort_bounds_are_monotone() {
        let bounds = sample_sort_bounds((0..100u32).rev().collect(), 5);
        assert_eq!(bounds.len(), 4);
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(sample_sort_bounds(Vec::<u32>::new(), 4).is_empty());
        assert!(sample_sort_bounds(vec![1u32, 2], 1).is_empty());
    }
}
