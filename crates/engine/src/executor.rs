//! Executor descriptors: the engine's view of a compute slot.
//!
//! Following the paper (§5.1) every executor has exactly one core, so
//! "executor" and "core" are synonymous throughout.

use splitserve_des::LinkId;
use splitserve_rt::Interned;
use splitserve_storage::ClientLoc;

/// Unique executor id — also the executor's directory prefix in the block
/// store (paper §4.3: "executors use their uniquely identifiable and
/// distinguishable IDs as an entry point into this directory structure").
///
/// A `Copy` handle over a process-wide interned name (see
/// [`splitserve_rt::intern`]): equality and hashing are O(1) symbol
/// compares, while `Ord` keeps the old `String` lexicographic order so
/// id-sorted tables — and therefore dispatch order and every
/// virtual-time artifact — are unchanged by the interning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecutorId(Interned);

impl ExecutorId {
    /// Interns `name` (or finds it) and returns the id.
    pub fn new(name: impl AsRef<str>) -> ExecutorId {
        ExecutorId(Interned::new(name.as_ref()))
    }

    /// The executor's name.
    #[inline]
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The interned handle backing this id.
    #[inline]
    pub fn interned(&self) -> Interned {
        self.0
    }

    /// The dense `u32` symbol backing this id — index for sparse
    /// per-engine side tables.
    #[inline]
    pub fn sym(&self) -> u32 {
        self.0.sym()
    }
}

impl std::fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for ExecutorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExecutorId({:?})", self.as_str())
    }
}

impl From<&str> for ExecutorId {
    fn from(s: &str) -> Self {
        ExecutorId::new(s)
    }
}

impl From<&String> for ExecutorId {
    fn from(s: &String) -> Self {
        ExecutorId::new(s)
    }
}

impl From<String> for ExecutorId {
    fn from(s: String) -> Self {
        ExecutorId::new(&s)
    }
}

impl From<ExecutorId> for Interned {
    fn from(id: ExecutorId) -> Self {
        id.0
    }
}

/// Whether the executor runs on a VM or inside a cloud function — the
/// distinction SplitServe adds to Spark's scheduler data structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// IaaS-backed: long-lived, full core speed, large memory.
    Vm,
    /// FaaS-backed: agile but memory-limited, lifetime-limited, with
    /// memory-proportional CPU and network.
    Lambda,
}

impl std::fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorKind::Vm => f.write_str("vm"),
            ExecutorKind::Lambda => f.write_str("lambda"),
        }
    }
}

/// Everything the scheduler needs to know about an executor.
#[derive(Debug, Clone)]
pub struct ExecutorDesc {
    /// Unique id.
    pub id: ExecutorId,
    /// VM- or Lambda-backed.
    pub kind: ExecutorKind,
    /// Network link of the hosting node/container.
    pub nic: Option<LinkId>,
    /// Local-disk link, if the host has one (Lambdas effectively don't:
    /// their 512 MB `/tmp` is too small for shuffle service duty).
    pub disk: Option<LinkId>,
    /// Memory available to the executor in MB (drives GC pressure).
    pub memory_mb: u64,
    /// Core speed relative to a reference VM core (Lambdas get
    /// `memory / 1769 MB`, capped at one core).
    pub core_speed: f64,
}

impl ExecutorDesc {
    /// A full-speed VM executor.
    pub fn vm(id: impl AsRef<str>, nic: LinkId, disk: LinkId, memory_mb: u64) -> Self {
        ExecutorDesc {
            id: ExecutorId::new(id),
            kind: ExecutorKind::Vm,
            nic: Some(nic),
            disk: Some(disk),
            memory_mb,
            core_speed: 1.0,
        }
    }

    /// A Lambda executor with `memory_mb` of memory. CPU scales with
    /// memory at AWS's measured rate of one full vCPU per 1 769 MB, so the
    /// paper's 1 536 MB executors run at ~0.87 of a VM core.
    pub fn lambda(id: impl AsRef<str>, nic: LinkId, memory_mb: u64) -> Self {
        ExecutorDesc {
            id: ExecutorId::new(id),
            kind: ExecutorKind::Lambda,
            nic: Some(nic),
            disk: None,
            memory_mb,
            core_speed: (memory_mb as f64 / 1769.0).min(1.0),
        }
    }

    /// The executor's location for block-store transfers.
    pub fn client_loc(&self) -> ClientLoc {
        ClientLoc {
            nic: self.nic,
            disk: self.disk,
        }
    }

    /// Memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_mb * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_des::Fabric;

    #[test]
    fn lambda_speed_scales_with_memory() {
        let fabric = Fabric::new();
        let nic = fabric.add_link(1.0, "n");
        let full = ExecutorDesc::lambda("l1", nic, 1769);
        let paper = ExecutorDesc::lambda("l2", nic, 1536);
        let max = ExecutorDesc::lambda("l3", nic, 3008);
        assert!((full.core_speed - 1.0).abs() < 1e-12);
        assert!((paper.core_speed - 1536.0 / 1769.0).abs() < 1e-12);
        assert_eq!(max.core_speed, 1.0, "capped at one core");
    }

    #[test]
    fn vm_executor_has_disk_lambda_does_not() {
        let fabric = Fabric::new();
        let nic = fabric.add_link(1.0, "n");
        let disk = fabric.add_link(1.0, "d");
        let vm = ExecutorDesc::vm("v", nic, disk, 4096);
        let la = ExecutorDesc::lambda("l", nic, 1536);
        assert!(vm.client_loc().disk.is_some());
        assert!(la.client_loc().disk.is_none());
        assert_eq!(vm.kind, ExecutorKind::Vm);
        assert_eq!(la.kind, ExecutorKind::Lambda);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ExecutorId::from("e-1").to_string(), "e-1");
        assert_eq!(ExecutorKind::Lambda.to_string(), "lambda");
    }
}
