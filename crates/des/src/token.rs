//! Token-bucket rate limiter, used to model per-bucket S3 request throttling
//! and SQS API limits.

use crate::time::{SimDuration, SimTime};

/// A token bucket that refills continuously at `rate` tokens/second up to a
/// `burst` ceiling.
///
/// Callers *reserve* tokens: [`TokenBucket::reserve`] debits the bucket
/// (possibly driving it negative, i.e. borrowing from the future) and
/// returns how long the caller must wait until its reservation is covered.
/// This models a throttled service that queues requests rather than
/// rejecting them.
///
/// # Examples
///
/// ```
/// use splitserve_des::{SimTime, TokenBucket};
///
/// // 10 requests/second, burst of 10.
/// let mut tb = TokenBucket::new(10.0, 10.0);
/// let t0 = SimTime::ZERO;
/// // The burst is absorbed instantly…
/// for _ in 0..10 {
///     assert!(tb.reserve(t0, 1.0).is_zero());
/// }
/// // …then requests are paced at 10/s.
/// assert_eq!(tb.reserve(t0, 1.0).as_secs_f64(), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate` tokens/second with capacity
    /// `burst`, initially full.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `burst` is not strictly positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "token rate must be positive: {rate}");
        assert!(burst > 0.0, "burst must be positive: {burst}");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Refill rate in tokens/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Burst capacity in tokens.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
    }

    /// Current token balance at `now` (may be negative when the bucket has
    /// pending reservations).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Debits `n` tokens at `now` and returns the delay until the request
    /// is admitted (zero when tokens are available immediately).
    ///
    /// # Panics
    ///
    /// Panics if `n` is negative.
    pub fn reserve(&mut self, now: SimTime, n: f64) -> SimDuration {
        assert!(n >= 0.0, "cannot reserve negative tokens: {n}");
        self.refill(now);
        self.tokens -= n;
        if self.tokens >= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(-self.tokens / self.rate)
        }
    }

    /// Non-queueing variant: takes `n` tokens only if available now.
    pub fn try_take(&mut self, now: SimTime, n: f64) -> bool {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_absorbed_then_paced() {
        let mut tb = TokenBucket::new(100.0, 5.0);
        let t0 = SimTime::ZERO;
        for _ in 0..5 {
            assert!(tb.reserve(t0, 1.0).is_zero());
        }
        let d = tb.reserve(t0, 1.0);
        assert!((d.as_secs_f64() - 0.01).abs() < 1e-9, "delay {d}");
    }

    #[test]
    fn refill_restores_tokens() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        assert!(tb.try_take(SimTime::ZERO, 10.0));
        assert!(!tb.try_take(SimTime::ZERO, 1.0));
        // After 0.5 s, 5 tokens refilled.
        let t = SimTime::from_millis(500);
        assert!(tb.try_take(t, 5.0));
        assert!(!tb.try_take(t, 0.5));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        let later = SimTime::from_secs(1000);
        assert!((tb.available(later) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reservations_queue_fifo_delay_grows() {
        let mut tb = TokenBucket::new(10.0, 1.0);
        let t0 = SimTime::ZERO;
        assert!(tb.reserve(t0, 1.0).is_zero()); // burst
        let d1 = tb.reserve(t0, 1.0).as_secs_f64();
        let d2 = tb.reserve(t0, 1.0).as_secs_f64();
        let d3 = tb.reserve(t0, 1.0).as_secs_f64();
        assert!((d1 - 0.1).abs() < 1e-9);
        assert!((d2 - 0.2).abs() < 1e-9);
        assert!((d3 - 0.3).abs() < 1e-9);
    }

    #[test]
    fn zero_reserve_is_free() {
        let mut tb = TokenBucket::new(1.0, 1.0);
        assert!(tb.reserve(SimTime::ZERO, 0.0).is_zero());
    }
}
