//! The event loop: a deterministic, cancellable discrete-event scheduler.
//!
//! [`Sim`] owns the virtual clock and a priority queue of events. Each event
//! is a boxed `FnOnce(&mut Sim)`; domain components (cloud, storage, engine)
//! live in `Rc<RefCell<…>>` handles captured by those closures. Two events
//! scheduled for the same instant fire in scheduling order (a monotonically
//! increasing sequence number breaks ties), which makes every run with the
//! same seed bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use splitserve_rt::Rng;

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable with [`Sim::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// An event callback. It receives the simulator so it can read the clock and
/// schedule follow-up events.
pub type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

// Order entries so the *earliest* (time, seq) pops first from a max-heap.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Liveness of scheduled events, one bit per sequence number.
///
/// Sequence numbers are dense and monotonically increasing, so a bitmap
/// beats a hash set on the scheduler's hottest edge: every event is
/// inserted once at schedule time and cleared once at fire/cancel time,
/// and both become single word operations instead of hashes. Memory is
/// one bit per event ever scheduled (an 8 M-event run costs 1 MB).
#[derive(Default)]
struct LiveBits {
    words: Vec<u64>,
}

impl LiveBits {
    #[inline]
    fn insert(&mut self, seq: u64) {
        let (w, b) = ((seq >> 6) as usize, seq & 63);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    /// Clears the bit, reporting whether it was set — the cancel
    /// contract: `true` exactly once per scheduled event, then `false`
    /// forever (fired and cancelled events look identical).
    #[inline]
    fn remove(&mut self, seq: u64) -> bool {
        let (w, b) = ((seq >> 6) as usize, seq & 63);
        match self.words.get_mut(w) {
            Some(word) if *word & (1 << b) != 0 => {
                *word &= !(1 << b);
                true
            }
            _ => false,
        }
    }

    #[inline]
    fn contains(&self, seq: u64) -> bool {
        let (w, b) = ((seq >> 6) as usize, seq & 63);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }
}

/// A deterministic discrete-event simulator.
///
/// # Examples
///
/// ```
/// use splitserve_des::{Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(42);
/// let fired = Rc::new(Cell::new(false));
/// let flag = Rc::clone(&fired);
/// sim.schedule_in(SimDuration::from_secs(5), move |sim| {
///     assert_eq!(sim.now(), SimTime::from_secs(5));
///     flag.set(true);
/// });
/// sim.run();
/// assert!(fired.get());
/// ```
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Entry>,
    live: LiveBits,
    next_seq: u64,
    executed: u64,
    rng: Rng,
    seed: u64,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .field("seed", &self.seed)
            .finish()
    }
}

impl Sim {
    /// Creates a simulator with its clock at [`SimTime::ZERO`] and a
    /// deterministic RNG seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            live: LiveBits::default(),
            next_seq: 0,
            executed: 0,
            rng: Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones not
    /// yet reaped).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The simulator's deterministic random number generator.
    ///
    /// All stochastic behaviour in a simulation must draw from this RNG so
    /// runs are reproducible from the seed alone.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events cannot fire
    /// in the past).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.queue.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` to run after `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(at, f)
    }

    /// Schedules `f` to run at the current instant, after all callbacks
    /// already queued for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired (or been cancelled); cancelling an already-fired event is a
    /// harmless no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // The live set is the source of truth; heap entries for dead ids
        // are skipped when popped.
        self.live.remove(id.0)
    }

    /// Executes the next pending event, advancing the clock to its time.
    /// Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        while let Some(entry) = self.queue.pop() {
            if !self.live.remove(entry.seq) {
                continue; // cancelled
            }
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.executed += 1;
            (entry.f)(self);
            return true;
        }
        false
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `time <= deadline`, then sets the clock to
    /// `deadline` (if it is later than the last event executed).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Peek for the next live event.
            let next_at = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(e) if !self.live.contains(e.seq) => {
                        self.queue.pop();
                    }
                    Some(e) => break Some(e.at),
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn recorder() -> (Rc<RefCell<Vec<u32>>>, impl Fn(u32) -> EventFn) {
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        let make = move |tag: u32| -> EventFn {
            let l = Rc::clone(&l);
            Box::new(move |_sim: &mut Sim| l.borrow_mut().push(tag))
        };
        (log, make)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let (log, make) = recorder();
        sim.schedule_at(SimTime::from_secs(3), make(3));
        sim.schedule_at(SimTime::from_secs(1), make(1));
        sim.schedule_at(SimTime::from_secs(2), make(2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Sim::new(0);
        let (log, make) = recorder();
        for tag in 0..10 {
            sim.schedule_at(SimTime::from_secs(1), make(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut sim = Sim::new(0);
        let (log, make) = recorder();
        let keep = sim.schedule_at(SimTime::from_secs(1), make(1));
        let drop_id = sim.schedule_at(SimTime::from_secs(2), make(2));
        sim.schedule_at(SimTime::from_secs(3), make(3));
        assert!(sim.cancel(drop_id));
        assert!(!sim.cancel(drop_id), "double-cancel reports false");
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 3]);
        assert!(!sim.cancel(keep), "cancelling a fired event reports false");
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        sim.schedule_in(SimDuration::from_secs(1), move |sim| {
            l.borrow_mut().push(sim.now().as_micros());
            let l2 = Rc::clone(&l);
            sim.schedule_in(SimDuration::from_secs(2), move |sim| {
                l2.borrow_mut().push(sim.now().as_micros());
            });
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1_000_000, 3_000_000]);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0);
        let (log, make) = recorder();
        sim.schedule_at(SimTime::from_secs(1), make(1));
        sim.schedule_at(SimTime::from_secs(10), make(10));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 10]);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut sim = Sim::new(0);
        let (log, make) = recorder();
        let head = sim.schedule_at(SimTime::from_secs(1), make(1));
        sim.schedule_at(SimTime::from_secs(2), make(2));
        sim.cancel(head);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_secs(5), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Sim::new(7);
        let mut b = Sim::new(7);
        let mut c = Sim::new(8);
        let xa: u64 = a.rng().gen();
        let xb: u64 = b.rng().gen();
        let xc: u64 = c.rng().gen();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn executed_and_pending_counters() {
        let mut sim = Sim::new(0);
        let (_log, make) = recorder();
        sim.schedule_at(SimTime::from_secs(1), make(1));
        sim.schedule_at(SimTime::from_secs(2), make(2));
        assert_eq!(sim.pending_events(), 2);
        sim.step();
        assert_eq!(sim.executed_events(), 1);
        assert_eq!(sim.pending_events(), 1);
    }
}
