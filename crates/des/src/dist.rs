//! Random distributions used by the cloud and storage models.
//!
//! Implemented in-tree on `splitserve_rt::Rng` — the hermetic build has no
//! external crates at all. All samplers draw from the simulator's seeded
//! RNG, so experiments are reproducible.

use splitserve_rt::Rng;

/// A one-dimensional random distribution.
///
/// # Examples
///
/// ```
/// use splitserve_des::Dist;
/// use splitserve_rt::Rng;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let boot = Dist::normal(110.0, 15.0).clamped(60.0, 240.0);
/// let s = boot.sample(&mut rng);
/// assert!((60.0..=240.0).contains(&s));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation (Box–Muller).
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Mean of the underlying normal (of the log).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given rate (mean `1/rate`).
    Exp {
        /// Rate parameter λ.
        rate: f64,
    },
    /// Pareto with scale `x_m` and shape `alpha` (heavy-tailed).
    Pareto {
        /// Scale (minimum value).
        scale: f64,
        /// Shape (tail index); larger is lighter-tailed.
        shape: f64,
    },
    /// Any distribution, clamped into `[min, max]`.
    Clamped {
        /// The wrapped distribution.
        inner: Box<Dist>,
        /// Inclusive lower clamp.
        min: f64,
        /// Inclusive upper clamp.
        max: f64,
    },
}

impl Dist {
    /// A point mass at `v`.
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// Uniform over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi})");
        Dist::Uniform { lo, hi }
    }

    /// Gaussian with `mean` and standard deviation `sd`.
    pub fn normal(mean: f64, sd: f64) -> Dist {
        assert!(sd >= 0.0, "negative standard deviation: {sd}");
        Dist::Normal { mean, sd }
    }

    /// Log-normal whose *median* is `exp(mu)`.
    pub fn log_normal(mu: f64, sigma: f64) -> Dist {
        assert!(sigma >= 0.0, "negative sigma: {sigma}");
        Dist::LogNormal { mu, sigma }
    }

    /// Log-normal parameterized by the desired mean and standard deviation
    /// of the *resulting* distribution (convenient for latency models).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn log_normal_mean_sd(mean: f64, sd: f64) -> Dist {
        assert!(mean > 0.0, "log-normal mean must be positive: {mean}");
        let cv2 = (sd / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Dist::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Exponential with rate λ (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exp(rate: f64) -> Dist {
        assert!(rate > 0.0, "exponential rate must be positive: {rate}");
        Dist::Exp { rate }
    }

    /// Pareto with `scale` (minimum) and `shape` (tail index).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn pareto(scale: f64, shape: f64) -> Dist {
        assert!(scale > 0.0 && shape > 0.0, "pareto parameters must be positive");
        Dist::Pareto { scale, shape }
    }

    /// Wraps `self` so samples are clamped into `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn clamped(self, min: f64, max: f64) -> Dist {
        assert!(min <= max, "clamp bounds out of order: [{min}, {max}]");
        Dist::Clamped {
            inner: Box::new(self),
            min,
            max,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Dist::Normal { mean, sd } => mean + sd * standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Exp { rate } => {
                // Inverse-CDF; 1-u avoids ln(0).
                let u: f64 = rng.gen_range(0.0..1.0);
                -(1.0 - u).ln() / rate
            }
            Dist::Pareto { scale, shape } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                scale / (1.0 - u).powf(1.0 / shape)
            }
            Dist::Clamped { inner, min, max } => inner.sample(rng).clamp(*min, *max),
        }
    }

    /// The distribution's mean (exact, not estimated).
    ///
    /// For [`Dist::Clamped`] this returns the *unclamped* inner mean, which
    /// is an approximation documented as such; clamps in this codebase trim
    /// only far tails.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => *mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exp { rate } => 1.0 / rate,
            Dist::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Clamped { inner, .. } => inner.mean(),
        }
    }
}

/// One standard-normal sample via the Box–Muller transform.
fn standard_normal(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    fn sample_stats(d: &Dist, n: usize) -> (f64, f64) {
        let mut rng = Rng::seed_from_u64(99);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn constant_is_constant() {
        let (mean, sd) = sample_stats(&Dist::constant(4.2), 100);
        assert!((mean - 4.2).abs() < 1e-12);
        assert!(sd.abs() < 1e-9);
    }

    #[test]
    fn uniform_stays_in_bounds_and_centers() {
        let d = Dist::uniform(2.0, 6.0);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let (mean, _) = sample_stats(&d, 20_000);
        assert!((mean - 4.0).abs() < 0.05, "uniform mean off: {mean}");
    }

    #[test]
    fn normal_matches_moments() {
        let d = Dist::normal(10.0, 3.0);
        let (mean, sd) = sample_stats(&d, 50_000);
        assert!((mean - 10.0).abs() < 0.1, "normal mean off: {mean}");
        assert!((sd - 3.0).abs() < 0.1, "normal sd off: {sd}");
    }

    #[test]
    fn exp_matches_mean() {
        let d = Dist::exp(0.5);
        let (mean, _) = sample_stats(&d, 50_000);
        assert!((mean - 2.0).abs() < 0.1, "exp mean off: {mean}");
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn log_normal_mean_sd_hits_target_mean() {
        let d = Dist::log_normal_mean_sd(0.05, 0.02);
        let (mean, _) = sample_stats(&d, 50_000);
        assert!((mean - 0.05).abs() < 0.002, "lognormal mean off: {mean}");
        assert!((d.mean() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let d = Dist::pareto(1.0, 3.0);
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert_eq!(Dist::pareto(1.0, 0.5).mean(), f64::INFINITY);
    }

    #[test]
    fn clamp_trims_tails() {
        let d = Dist::normal(0.0, 100.0).clamped(-1.0, 1.0);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Dist::normal(5.0, 2.0);
        let mut a = Rng::seed_from_u64(3);
        let mut b = Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
