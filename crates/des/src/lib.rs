//! # splitserve-des — deterministic discrete-event simulation kernel
//!
//! The timing substrate for the SplitServe reproduction. Everything that
//! "takes time" in the simulated cloud — VM boots, Lambda cold starts,
//! shuffle transfers, S3 throttling — is expressed as events on the single
//! virtual clock owned by [`Sim`].
//!
//! The crate provides four building blocks:
//!
//! - [`Sim`] — the event loop: a cancellable priority queue of
//!   `FnOnce(&mut Sim)` callbacks with deterministic FIFO tie-breaking and a
//!   seeded RNG, so every run is reproducible from its seed.
//! - [`SimTime`] / [`SimDuration`] — exact microsecond-resolution time.
//! - [`Fabric`] — a fluid-flow network with max–min fair bandwidth sharing,
//!   modeling NICs, EBS pipes and Lambda uplinks under contention.
//! - [`TokenBucket`] — request-rate limiting (S3/SQS throttling).
//! - [`Dist`] — seedable distributions (normal, log-normal, exponential,
//!   Pareto) for latency and boot-time models.
//!
//! # Examples
//!
//! ```
//! use splitserve_des::{Dist, Sim, SimDuration};
//!
//! let mut sim = Sim::new(7);
//! let boot = Dist::normal(110.0, 15.0).clamped(60.0, 240.0);
//! let delay = SimDuration::from_secs_f64(boot.sample(sim.rng()));
//! sim.schedule_in(delay, |sim| println!("VM ready at {}", sim.now()));
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dist;
mod fabric;
mod sim;
mod time;
mod token;

pub use dist::Dist;
pub use fabric::{Fabric, FlowId, LinkId};
pub use sim::{EventFn, EventId, Sim};
pub use time::{SimDuration, SimTime};
pub use token::TokenBucket;
