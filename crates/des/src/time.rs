//! Simulated time: instants ([`SimTime`]) and durations ([`SimDuration`]).
//!
//! The simulation clock counts **microseconds** since the start of the
//! simulation in a `u64`, which gives ~584 000 years of range — far beyond
//! any experiment in this repository — while keeping arithmetic exact and
//! ordering total (no floating-point time).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, measured in microseconds since the
/// simulation epoch (time zero).
///
/// # Examples
///
/// ```
/// use splitserve_des::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(60);
/// assert_eq!(t.as_secs_f64(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use splitserve_des::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration in seconds: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Rounds this duration *up* to the next multiple of `quantum`.
    ///
    /// This is the billing primitive: AWS rounds Lambda run time up to
    /// 100 ms and VM run time up to 1 s.
    ///
    /// # Examples
    ///
    /// ```
    /// use splitserve_des::SimDuration;
    ///
    /// let d = SimDuration::from_millis(230);
    /// assert_eq!(
    ///     d.round_up_to(SimDuration::from_millis(100)),
    ///     SimDuration::from_millis(300),
    /// );
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn round_up_to(self, quantum: SimDuration) -> SimDuration {
        assert!(!quantum.is_zero(), "zero billing quantum");
        let q = quantum.0;
        SimDuration(self.0.div_ceil(q) * q)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(SimTime::from_secs(14) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn round_up_to_quantum() {
        let q = SimDuration::from_millis(100);
        assert_eq!(SimDuration::ZERO.round_up_to(q), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(1).round_up_to(q), q);
        assert_eq!(SimDuration::from_millis(100).round_up_to(q), q);
        assert_eq!(
            SimDuration::from_millis(101).round_up_to(q),
            SimDuration::from_millis(200)
        );
    }

    #[test]
    #[should_panic(expected = "zero billing quantum")]
    fn round_up_zero_quantum_panics() {
        let _ = SimDuration::from_secs(1).round_up_to(SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
