//! A fluid-flow network fabric with max–min fair bandwidth sharing.
//!
//! Nodes' NICs and disks are modeled as [`Link`]s with a fixed capacity in
//! bytes/second. A [`Flow`] is a bulk transfer that traverses one or more
//! links; at any instant every active flow receives its *max–min fair*
//! rate (computed by water-filling across all links it touches). When flows
//! start or finish, rates are recomputed and the simulated completion times
//! of the remaining flows are rescheduled.
//!
//! This is the standard fluid approximation for bulk data movement in
//! cluster simulators: it captures the contention effects the SplitServe
//! paper measures (e.g. the single HDFS node's 750 Mbps EBS pipe shared by
//! 16 shuffling executors) without per-packet simulation.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_rt::FastMap;

use crate::sim::{EventId, Sim};
use crate::time::{SimDuration, SimTime};

/// Identifies a link within a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(usize);

/// Identifies an in-flight flow within a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(u64);

struct Link {
    capacity: f64, // bytes per second
    label: String,
    active: Vec<u64>, // flow ids (kept sorted-by-insertion; deterministic)
}

/// Completion continuation of a flow.
type FlowComplete = Box<dyn FnOnce(&mut Sim)>;

/// The links a flow crosses, stored inline: every real path is at most
/// NIC → peer NIC → disk, so a heap `Vec` per flow (flows are created per
/// block transfer) would be pure allocator churn.
#[derive(Clone, Copy)]
struct FlowLinks {
    ids: [LinkId; 4],
    len: u8,
}

impl FlowLinks {
    fn new(links: &[LinkId]) -> Self {
        assert!(links.len() <= 4, "a flow crosses at most 4 links");
        let mut ids = [LinkId(0); 4];
        ids[..links.len()].copy_from_slice(links);
        FlowLinks {
            ids,
            len: links.len() as u8,
        }
    }

    fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.ids[..self.len as usize].iter().copied()
    }
}

struct Flow {
    total: f64,     // bytes
    remaining: f64, // bytes
    rate: f64,      // bytes per second
    last_update: SimTime,
    links: FlowLinks,
    /// Water-fill round this flow was last frozen in (see [`Inner::water_fill`]).
    frozen_round: u64,
    event: Option<EventId>,
    on_complete: Option<FlowComplete>,
}

#[derive(Default)]
struct Inner {
    links: Vec<Link>,
    flows: FastMap<u64, Flow>,
    order: Vec<u64>, // deterministic iteration order of live flows
    next_flow: u64,
    bytes_completed: f64,
    /// Monotone counter distinguishing water-fill rounds, so freezing a
    /// flow is a field write instead of a per-call hash-map insert.
    round: u64,
    /// Reusable (flow, completion time) buffer for rebalance.
    scratch: Vec<(u64, SimTime)>,
    /// Reusable per-link buffers for water-fill (residual capacity and
    /// unfrozen-flow counts).
    residual: Vec<f64>,
    unfrozen_on: Vec<usize>,
}

/// A cloneable handle to the shared flow-network state.
///
/// # Examples
///
/// ```
/// use splitserve_des::{Fabric, Sim};
/// use std::{cell::Cell, rc::Rc};
///
/// let mut sim = Sim::new(0);
/// let fabric = Fabric::new();
/// let nic = fabric.add_link(100.0, "nic"); // 100 B/s
/// let done = Rc::new(Cell::new(0.0));
/// let d = Rc::clone(&done);
/// fabric.start_flow(&mut sim, &[nic], 200, move |sim| {
///     d.set(sim.now().as_secs_f64());
/// });
/// sim.run();
/// assert_eq!(done.get(), 2.0); // 200 bytes at 100 B/s
/// ```
#[derive(Clone, Default)]
pub struct Fabric {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Fabric")
            .field("links", &inner.links.len())
            .field("active_flows", &inner.flows.len())
            .finish()
    }
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Adds a link with `capacity` bytes/second and a debugging label.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_link(&self, capacity: f64, label: impl Into<String>) -> LinkId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "link capacity must be positive and finite: {capacity}"
        );
        let mut inner = self.inner.borrow_mut();
        let id = inner.links.len();
        inner.links.push(Link {
            capacity,
            label: label.into(),
            active: Vec::new(),
        });
        LinkId(id)
    }

    /// The capacity of `link` in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.inner.borrow().links[link.0].capacity
    }

    /// The label given to `link` at creation.
    pub fn link_label(&self, link: LinkId) -> String {
        self.inner.borrow().links[link.0].label.clone()
    }

    /// Number of flows currently in flight.
    pub fn active_flows(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Total bytes delivered by completed flows so far.
    pub fn bytes_completed(&self) -> f64 {
        self.inner.borrow().bytes_completed
    }

    /// The instantaneous rate of `flow` in bytes/second, or `None` if it
    /// already completed or was cancelled.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.inner.borrow().flows.get(&flow.0).map(|f| f.rate)
    }

    /// Starts a bulk transfer of `bytes` across `links`, invoking
    /// `on_complete` when the last byte arrives.
    ///
    /// A flow spanning several links (e.g. the sender's NIC and the
    /// receiver's NIC) is bottlenecked by whichever gives it the smallest
    /// fair share. An empty `links` slice means an uncontended local move,
    /// which completes immediately at the current instant.
    pub fn start_flow(
        &self,
        sim: &mut Sim,
        links: &[LinkId],
        bytes: u64,
        on_complete: impl FnOnce(&mut Sim) + 'static,
    ) -> FlowId {
        if links.is_empty() || bytes == 0 {
            let mut inner = self.inner.borrow_mut();
            inner.bytes_completed += bytes as f64;
            drop(inner);
            sim.schedule_now(on_complete);
            // A pseudo-id that is never live; cancel on it is a no-op.
            return FlowId(u64::MAX);
        }
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_flow;
            inner.next_flow += 1;
            let now = sim.now();
            inner.flows.insert(
                id,
                Flow {
                    total: bytes as f64,
                    remaining: bytes as f64,
                    rate: 0.0,
                    last_update: now,
                    links: FlowLinks::new(links),
                    frozen_round: 0,
                    event: None,
                    on_complete: Some(Box::new(on_complete)),
                },
            );
            inner.order.push(id);
            for l in links {
                inner.links[l.0].active.push(id);
            }
            id
        };
        self.rebalance(sim);
        FlowId(id)
    }

    /// Cancels an in-flight flow without invoking its completion callback.
    /// Returns `true` if the flow was still live.
    pub fn cancel_flow(&self, sim: &mut Sim, flow: FlowId) -> bool {
        let existed = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            inner.settle(now);
            match inner.remove_flow(flow.0) {
                Some(f) => {
                    if let Some(ev) = f.event {
                        sim.cancel(ev);
                    }
                    true
                }
                None => false,
            }
        };
        if existed {
            self.rebalance(sim);
        }
        existed
    }

    /// Called by the completion event of `flow_id`.
    fn complete(&self, sim: &mut Sim, flow_id: u64) {
        let cb = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            inner.settle(now);
            match inner.remove_flow(flow_id) {
                Some(mut f) => {
                    inner.bytes_completed += f.total;
                    f.on_complete.take()
                }
                None => None,
            }
        };
        self.rebalance(sim);
        if let Some(cb) = cb {
            cb(sim);
        }
    }

    /// Recomputes max–min fair rates and reschedules completion events.
    fn rebalance(&self, sim: &mut Sim) {
        let mut schedule = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            inner.settle(now);
            inner.water_fill();

            let mut schedule = std::mem::take(&mut inner.scratch);
            schedule.clear();
            for i in 0..inner.order.len() {
                let id = inner.order[i];
                let flow = inner.flows.get_mut(&id).expect("live flow in order list");
                if let Some(ev) = flow.event.take() {
                    sim.cancel(ev);
                }
                debug_assert!(flow.rate > 0.0, "water-fill left a flow with zero rate");
                let secs = (flow.remaining / flow.rate).max(0.0);
                let at = now + SimDuration::from_secs_f64(secs);
                schedule.push((id, at));
            }
            schedule
        };
        for &(id, at) in &schedule {
            let handle = self.clone();
            let ev = sim.schedule_at(at, move |sim| handle.complete(sim, id));
            self.inner
                .borrow_mut()
                .flows
                .get_mut(&id)
                .expect("flow vanished while scheduling")
                .event = Some(ev);
        }
        schedule.clear();
        self.inner.borrow_mut().scratch = schedule;
    }
}

impl Inner {
    /// Advances every flow's `remaining` to `now` at its current rate.
    fn settle(&mut self, now: SimTime) {
        for id in &self.order {
            let f = self.flows.get_mut(id).expect("live flow in order list");
            let dt = now.saturating_since(f.last_update).as_secs_f64();
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
            f.last_update = now;
        }
    }

    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let f = self.flows.remove(&id)?;
        self.order.retain(|x| *x != id);
        for l in f.links.iter() {
            self.links[l.0].active.retain(|x| *x != id);
        }
        Some(f)
    }

    /// Progressive-filling (water-filling) max–min fair allocation.
    ///
    /// Runs on every flow arrival and departure, so it allocates nothing:
    /// freezing a flow writes its `rate` in place, and membership in the
    /// current round's frozen set is the `frozen_round == round` check
    /// against the monotone round counter.
    fn water_fill(&mut self) {
        self.round += 1;
        let round = self.round;
        let mut residual = std::mem::take(&mut self.residual);
        let mut unfrozen_on = std::mem::take(&mut self.unfrozen_on);
        residual.clear();
        residual.extend(self.links.iter().map(|l| l.capacity));
        unfrozen_on.clear();
        unfrozen_on.extend(self.links.iter().map(|l| l.active.len()));
        let mut nfrozen = 0usize;

        while nfrozen < self.flows.len() {
            // Bottleneck link: smallest per-flow share among links that
            // still carry unfrozen flows.
            let mut best: Option<(usize, f64)> = None;
            for (li, _link) in self.links.iter().enumerate() {
                if unfrozen_on[li] == 0 {
                    continue;
                }
                let share = residual[li] / unfrozen_on[li] as f64;
                match best {
                    Some((_, s)) if s <= share => {}
                    _ => best = Some((li, share)),
                }
            }
            let (bottleneck, share) =
                best.expect("unfrozen flows remain but no link carries them");
            // Freeze every unfrozen flow crossing the bottleneck at `share`.
            let frozen_before = nfrozen;
            for j in 0..self.links[bottleneck].active.len() {
                let id = self.links[bottleneck].active[j];
                let f = self.flows.get_mut(&id).expect("active flow is live");
                if f.frozen_round == round {
                    continue;
                }
                f.frozen_round = round;
                f.rate = share;
                nfrozen += 1;
                for l in f.links.iter() {
                    residual[l.0] = (residual[l.0] - share).max(0.0);
                    unfrozen_on[l.0] -= 1;
                }
            }
            debug_assert!(nfrozen > frozen_before);
        }
        self.residual = residual;
        self.unfrozen_on = unfrozen_on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn finish_log() -> (
        Rc<RefCell<Vec<(u32, f64)>>>,
        impl Fn(u32) -> Box<dyn FnOnce(&mut Sim)>,
    ) {
        let log: Rc<RefCell<Vec<(u32, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        let make = move |tag: u32| -> Box<dyn FnOnce(&mut Sim)> {
            let l = Rc::clone(&l);
            Box::new(move |sim: &mut Sim| l.borrow_mut().push((tag, sim.now().as_secs_f64())))
        };
        (log, make)
    }

    #[test]
    fn single_flow_full_rate() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(1000.0, "l");
        let (log, make) = finish_log();
        fabric.start_flow(&mut sim, &[link], 5000, make(1));
        sim.run();
        assert_eq!(*log.borrow(), vec![(1, 5.0)]);
        assert!((fabric.bytes_completed() - 5000.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_equally() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(1000.0, "l");
        let (log, make) = finish_log();
        fabric.start_flow(&mut sim, &[link], 1000, make(1));
        fabric.start_flow(&mut sim, &[link], 1000, make(2));
        sim.run();
        // Both at 500 B/s → both finish at t=2.
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        for (_, t) in log.iter() {
            assert!((t - 2.0).abs() < 1e-3, "finish at {t}");
        }
    }

    #[test]
    fn departing_flow_speeds_up_survivor() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(1000.0, "l");
        let (log, make) = finish_log();
        fabric.start_flow(&mut sim, &[link], 1000, make(1)); // small
        fabric.start_flow(&mut sim, &[link], 3000, make(2)); // large
        sim.run();
        // Phase 1: both at 500 B/s until small finishes at t=2 (1000 B).
        // Large has 2000 B left, now at 1000 B/s → finishes at t=4.
        let log = log.borrow();
        assert!((log[0].1 - 2.0).abs() < 1e-3, "small at {}", log[0].1);
        assert!((log[1].1 - 4.0).abs() < 1e-3, "large at {}", log[1].1);
    }

    #[test]
    fn max_min_respects_multi_link_bottleneck() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let big = fabric.add_link(1000.0, "big");
        let small = fabric.add_link(100.0, "small");
        let (log, make) = finish_log();
        // Flow A crosses both links: bottlenecked at 100 B/s.
        fabric.start_flow(&mut sim, &[big, small], 100, make(1));
        // Flow B crosses only the big link: gets the residual 900 B/s.
        fabric.start_flow(&mut sim, &[big], 900, make(2));
        sim.run();
        let log = log.borrow();
        assert!((log[0].1 - 1.0).abs() < 1e-3 || (log[1].1 - 1.0).abs() < 1e-3);
        for (_, t) in log.iter() {
            assert!((t - 1.0).abs() < 1e-3, "finish at {t}");
        }
    }

    #[test]
    fn empty_links_complete_immediately() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let (log, make) = finish_log();
        fabric.start_flow(&mut sim, &[], 10_000, make(1));
        sim.run();
        assert_eq!(*log.borrow(), vec![(1, 0.0)]);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(10.0, "l");
        let (log, make) = finish_log();
        fabric.start_flow(&mut sim, &[link], 0, make(7));
        sim.run();
        assert_eq!(*log.borrow(), vec![(7, 0.0)]);
    }

    #[test]
    fn cancel_suppresses_completion_and_frees_bandwidth() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(1000.0, "l");
        let (log, make) = finish_log();
        let doomed = fabric.start_flow(&mut sim, &[link], 10_000, make(1));
        fabric.start_flow(&mut sim, &[link], 1000, make(2));
        // Cancel the big flow at t=0 (before running): survivor gets full rate.
        assert!(fabric.cancel_flow(&mut sim, doomed));
        assert!(!fabric.cancel_flow(&mut sim, doomed));
        sim.run();
        assert_eq!(*log.borrow(), vec![(2, 1.0)]);
    }

    #[test]
    fn arriving_flow_slows_existing_one() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(100.0, "l");
        let (log, make) = finish_log();
        fabric.start_flow(&mut sim, &[link], 1000, make(1));
        // At t=5, half transferred; a second flow arrives.
        let f2 = fabric.clone();
        let cb = make(2);
        sim.schedule_at(SimTime::from_secs(5), move |sim| {
            f2.start_flow(sim, &[link], 500, cb);
        });
        sim.run();
        // Flow 1: 500 B at t=5 → 500 left at 50 B/s → t=15.
        // Flow 2: 500 B at 50 B/s → t=15 too.
        let log = log.borrow();
        for (_, t) in log.iter() {
            assert!((t - 15.0).abs() < 1e-3, "finish at {t}");
        }
    }

    #[test]
    fn rates_are_work_conserving() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(1000.0, "l");
        let f1 = fabric.start_flow(&mut sim, &[link], 100_000, |_| {});
        let f2 = fabric.start_flow(&mut sim, &[link], 100_000, |_| {});
        let r1 = fabric.flow_rate(f1).expect("flow 1 live");
        let r2 = fabric.flow_rate(f2).expect("flow 2 live");
        assert!((r1 + r2 - 1000.0).abs() < 1e-9, "sum {}", r1 + r2);
    }
}
