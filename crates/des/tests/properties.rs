//! Property-based tests for the DES kernel: event ordering, fabric
//! conservation laws, token-bucket pacing and distribution sanity.

use proptest::prelude::*;
use splitserve_des::{Dist, Fabric, Sim, SimDuration, SimTime, TokenBucket};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always fire in non-decreasing time order, and ties fire in
    /// scheduling order.
    #[test]
    fn event_order_is_total_and_monotonic(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, t) in times.iter().enumerate() {
            let l = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(*t), move |sim| {
                l.borrow_mut().push((sim.now().as_micros(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of scheduling order");
            }
        }
    }

    /// Cancelling an arbitrary subset of events suppresses exactly those.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..100, 1..100),
        mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut ids = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let l = Rc::clone(&log);
            ids.push(sim.schedule_at(SimTime::from_millis(*t), move |_| {
                l.borrow_mut().push(i);
            }));
        }
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] {
                sim.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        sim.run();
        let mut got = log.borrow().clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// With a single shared link, total transfer time equals total bytes /
    /// capacity regardless of how the bytes are split across flows
    /// (work conservation of max–min fair sharing).
    #[test]
    fn fabric_is_work_conserving(
        sizes in prop::collection::vec(1u64..1_000_000, 1..20),
        capacity in 1_000.0f64..1e9,
    ) {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(capacity, "l");
        let total: u64 = sizes.iter().sum();
        for s in &sizes {
            fabric.start_flow(&mut sim, &[link], *s, |_| {});
        }
        sim.run();
        let expected = total as f64 / capacity;
        let got = sim.now().as_secs_f64();
        // micro-second rounding accumulates at most ~1 us per completion
        let tol = expected * 1e-3 + 1e-3 * sizes.len() as f64;
        prop_assert!((got - expected).abs() <= tol,
            "makespan {got} vs expected {expected}");
        prop_assert!((fabric.bytes_completed() - total as f64).abs() < 1.0);
    }

    /// Instantaneous rates never exceed any link capacity.
    #[test]
    fn fabric_rates_respect_capacity(
        sizes in prop::collection::vec(1u64..1_000_000, 1..16),
        capacity in 1_000.0f64..1e8,
    ) {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(capacity, "l");
        let mut flows = Vec::new();
        for s in &sizes {
            flows.push(fabric.start_flow(&mut sim, &[link], *s, |_| {}));
        }
        let sum: f64 = flows.iter().filter_map(|f| fabric.flow_rate(*f)).sum();
        prop_assert!(sum <= capacity * (1.0 + 1e-9), "sum {sum} > cap {capacity}");
        sim.run();
    }

    /// Token-bucket delay for the k-th over-burst request is exactly
    /// k/rate, i.e. pacing is linear and never admits above the rate.
    #[test]
    fn token_bucket_paces_linearly(rate in 0.5f64..1_000.0, burst in 1.0f64..100.0) {
        let mut tb = TokenBucket::new(rate, burst);
        let t0 = SimTime::ZERO;
        let whole_burst = burst.floor() as usize;
        for _ in 0..whole_burst {
            prop_assert!(tb.reserve(t0, 1.0).as_secs_f64() <= (1.0 - (burst - burst.floor())).max(0.0) / rate + 1e-9);
        }
        let mut last = 0.0f64;
        for _ in 0..10 {
            let d = tb.reserve(t0, 1.0).as_secs_f64();
            prop_assert!(d >= last - 1e-9, "pacing delay decreased: {d} < {last}");
            let step = d - last;
            prop_assert!(step <= 1.0 / rate + 1e-6, "step {step} exceeds 1/rate");
            last = d;
        }
    }

    /// Samples from clamped distributions always stay within the clamp.
    #[test]
    fn clamped_samples_in_range(
        mean in -100.0f64..100.0,
        sd in 0.0f64..50.0,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let d = Dist::normal(mean, sd).clamped(mean - 1.0, mean + 1.0);
        for _ in 0..100 {
            let x = d.sample(sim.rng());
            prop_assert!(x >= mean - 1.0 && x <= mean + 1.0);
        }
    }

    /// Two simulators with the same seed running the same stochastic
    /// workload produce identical event traces.
    #[test]
    fn identical_seeds_identical_traces(seed in any::<u64>(), n in 1usize..50) {
        let run = |seed: u64| -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            let d = Dist::exp(2.0);
            for _ in 0..n {
                let delay = SimDuration::from_secs_f64(d.sample(sim.rng()));
                let l = Rc::clone(&log);
                sim.schedule_in(delay, move |sim| l.borrow_mut().push(sim.now().as_micros()));
            }
            sim.run();
            let trace = log.borrow().clone();
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
