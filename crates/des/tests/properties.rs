//! Property-based tests for the DES kernel: event ordering, fabric
//! conservation laws, token-bucket pacing and distribution sanity.

use splitserve_des::{Dist, Fabric, Sim, SimDuration, SimTime, TokenBucket};
use splitserve_rt::check;
use std::cell::RefCell;
use std::rc::Rc;

/// Events always fire in non-decreasing time order, and ties fire in
/// scheduling order.
#[test]
fn event_order_is_total_and_monotonic() {
    check::run("event_order_is_total_and_monotonic", 64, |g| {
        let times = g.vec(1, 200, |g| g.u64_in(0, 1_000));
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, t) in times.iter().enumerate() {
            let l = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(*t), move |sim| {
                l.borrow_mut().push((sim.now().as_micros(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "tie broke out of scheduling order");
            }
        }
    });
}

/// Cancelling an arbitrary subset of events suppresses exactly those.
#[test]
fn cancellation_is_exact() {
    check::run("cancellation_is_exact", 64, |g| {
        let times = g.vec(1, 100, |g| g.u64_in(0, 100));
        let mask: Vec<bool> = g.vec(100, 101, |g| g.bool());
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut ids = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let l = Rc::clone(&log);
            ids.push(sim.schedule_at(SimTime::from_millis(*t), move |_| {
                l.borrow_mut().push(i);
            }));
        }
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] {
                sim.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        sim.run();
        let mut got = log.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    });
}

/// With a single shared link, total transfer time equals total bytes /
/// capacity regardless of how the bytes are split across flows
/// (work conservation of max–min fair sharing).
#[test]
fn fabric_is_work_conserving() {
    check::run("fabric_is_work_conserving", 48, |g| {
        let sizes = g.vec(1, 20, |g| g.u64_in(1, 1_000_000));
        let capacity = g.f64_in(1_000.0, 1e9);
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(capacity, "l");
        let total: u64 = sizes.iter().sum();
        for s in &sizes {
            fabric.start_flow(&mut sim, &[link], *s, |_| {});
        }
        sim.run();
        let expected = total as f64 / capacity;
        let got = sim.now().as_secs_f64();
        // micro-second rounding accumulates at most ~1 us per completion
        let tol = expected * 1e-3 + 1e-3 * sizes.len() as f64;
        assert!(
            (got - expected).abs() <= tol,
            "makespan {got} vs expected {expected}"
        );
        assert!((fabric.bytes_completed() - total as f64).abs() < 1.0);
    });
}

/// Instantaneous rates never exceed any link capacity.
#[test]
fn fabric_rates_respect_capacity() {
    check::run("fabric_rates_respect_capacity", 48, |g| {
        let sizes = g.vec(1, 16, |g| g.u64_in(1, 1_000_000));
        let capacity = g.f64_in(1_000.0, 1e8);
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let link = fabric.add_link(capacity, "l");
        let mut flows = Vec::new();
        for s in &sizes {
            flows.push(fabric.start_flow(&mut sim, &[link], *s, |_| {}));
        }
        let sum: f64 = flows.iter().filter_map(|f| fabric.flow_rate(*f)).sum();
        assert!(sum <= capacity * (1.0 + 1e-9), "sum {sum} > cap {capacity}");
        sim.run();
    });
}

/// Token-bucket delay for the k-th over-burst request is exactly
/// k/rate, i.e. pacing is linear and never admits above the rate.
#[test]
fn token_bucket_paces_linearly() {
    check::run("token_bucket_paces_linearly", 64, |g| {
        let rate = g.f64_in(0.5, 1_000.0);
        let burst = g.f64_in(1.0, 100.0);
        let mut tb = TokenBucket::new(rate, burst);
        let t0 = SimTime::ZERO;
        let whole_burst = burst.floor() as usize;
        for _ in 0..whole_burst {
            assert!(
                tb.reserve(t0, 1.0).as_secs_f64()
                    <= (1.0 - (burst - burst.floor())).max(0.0) / rate + 1e-9
            );
        }
        let mut last = 0.0f64;
        for _ in 0..10 {
            let d = tb.reserve(t0, 1.0).as_secs_f64();
            assert!(d >= last - 1e-9, "pacing delay decreased: {d} < {last}");
            let step = d - last;
            assert!(step <= 1.0 / rate + 1e-6, "step {step} exceeds 1/rate");
            last = d;
        }
    });
}

/// Samples from clamped distributions always stay within the clamp.
#[test]
fn clamped_samples_in_range() {
    check::run("clamped_samples_in_range", 64, |g| {
        let mean = g.f64_in(-100.0, 100.0);
        let sd = g.f64_in(0.0, 50.0);
        let seed = g.u64();
        let mut sim = Sim::new(seed);
        let d = Dist::normal(mean, sd).clamped(mean - 1.0, mean + 1.0);
        for _ in 0..100 {
            let x = d.sample(sim.rng());
            assert!(x >= mean - 1.0 && x <= mean + 1.0);
        }
    });
}

/// Two simulators with the same seed running the same stochastic
/// workload produce identical event traces.
#[test]
fn identical_seeds_identical_traces() {
    check::run("identical_seeds_identical_traces", 48, |g| {
        let seed = g.u64();
        let n = g.usize_in(1, 50);
        let run = |seed: u64| -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            let d = Dist::exp(2.0);
            for _ in 0..n {
                let delay = SimDuration::from_secs_f64(d.sample(sim.rng()));
                let l = Rc::clone(&log);
                sim.schedule_in(delay, move |sim| l.borrow_mut().push(sim.now().as_micros()));
            }
            sim.run();
            let trace = log.borrow().clone();
            trace
        };
        assert_eq!(run(seed), run(seed));
    });
}
