//! Invariant suite for the multi-tenant [`AdmissionController`]: no
//! starvation under random load, weighted fair-share bounds within an
//! ε of one maximal job, strict-priority ordering, per-tenant caps at
//! every event-log step, and head-of-line blocking attribution —
//! all driven through a toy executor (a completion heap) so the
//! controller is exercised with realistic interleavings but no engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use splitserve::tenancy::{
    verify_log, AdmissionController, AdmissionEvent, AdmissionEventKind, AdmissionRequest,
    SloClass, TenantSpec,
};
use splitserve_obs::TenantId;
use splitserve_rt::check::{self, Gen};

fn spec(id: &str, class: SloClass, weight: u32, cap: u32) -> TenantSpec {
    TenantSpec {
        id: TenantId::new(id),
        class,
        weight,
        max_concurrent: cap,
    }
}

fn req(job: u64, tenant: &str, cores: u32, estimate_us: u64) -> AdmissionRequest {
    AdmissionRequest {
        job,
        tenant: TenantId::new(tenant),
        cores,
        service_estimate_us: estimate_us,
    }
}

/// One arrival for the toy executor: `(at_us, request, duration_us)`.
type Arrival = (u64, AdmissionRequest, u64);

/// Drives the controller through a full workload against a toy executor:
/// every dispatch immediately starts "running" and completes after its
/// duration; completions and arrivals interleave in time order
/// (completions first on ties, so slots free up before same-instant
/// arrivals). Returns the final event log.
fn run_toy(mut ctrl: AdmissionController, mut arrivals: Vec<Arrival>) -> Vec<AdmissionEvent> {
    arrivals.sort_by_key(|(at, r, _)| (*at, r.job));
    let durations: HashMap<u64, u64> = arrivals.iter().map(|(_, r, d)| (r.job, *d)).collect();
    // Min-heap of (finish_us, job).
    let mut running: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let start = |now: u64,
                     dispatches: Vec<splitserve::tenancy::Dispatch>,
                     running: &mut BinaryHeap<Reverse<(u64, u64)>>| {
        for d in dispatches {
            running.push(Reverse((now + durations[&d.job], d.job)));
        }
    };
    for (at, r, _) in arrivals {
        while let Some(Reverse((finish, job))) = running.peek().copied() {
            if finish > at {
                break;
            }
            running.pop();
            let freed = ctrl.on_complete(finish, job);
            start(finish, freed, &mut running);
        }
        let new = ctrl.on_arrival(at, r);
        start(at, new, &mut running);
    }
    while let Some(Reverse((finish, job))) = running.pop() {
        let freed = ctrl.on_complete(finish, job);
        start(finish, freed, &mut running);
    }
    assert!(ctrl.is_idle(), "controller left work stranded");
    ctrl.into_log()
}

/// A random tenant population plus a random workload over it.
fn arb_population(g: &mut Gen) -> (u32, Vec<TenantSpec>, Vec<Arrival>) {
    let n_tenants = g.usize_in(2, 6);
    let slots = g.u64_in(2, 12) as u32;
    let classes = SloClass::all();
    let specs: Vec<TenantSpec> = (0..n_tenants)
        .map(|i| {
            spec(
                &format!("t{i}"),
                classes[g.usize_in(0, 2)],
                g.u64_in(1, 4) as u32,
                g.u64_in(1, 4) as u32,
            )
        })
        .collect();
    let n_jobs = g.usize_in(30, 120);
    let mut t = 0u64;
    let arrivals = (0..n_jobs as u64)
        .map(|job| {
            t += g.u64_in(0, 300_000);
            let owner = &specs[g.usize_in(0, n_tenants - 1)].id;
            let cores = g.u64_in(1, u64::from(slots)) as u32;
            let est = g.u64_in(50_000, 2_000_000);
            (t, req(job, owner.as_str(), cores, est), g.u64_in(50_000, 1_500_000))
        })
        .collect();
    (slots, specs, arrivals)
}

#[test]
fn random_load_never_starves_and_log_replays_clean() {
    check::run("admission/no-starvation", 40, |g| {
        let (slots, specs, arrivals) = arb_population(g);
        let n_jobs = arrivals.len();
        let log = run_toy(AdmissionController::new(slots, &specs), arrivals);
        verify_log(slots, &specs, &log).expect("log replay");
        let dispatched = log
            .iter()
            .filter(|e| matches!(e.kind, AdmissionEventKind::Dispatched { .. }))
            .count();
        let completed = log
            .iter()
            .filter(|e| matches!(e.kind, AdmissionEventKind::Completed))
            .count();
        assert_eq!(dispatched, n_jobs, "every job must eventually dispatch");
        assert_eq!(completed, n_jobs, "every job must eventually complete");
    });
}

#[test]
fn caps_and_slots_hold_at_every_log_step() {
    check::run("admission/caps", 40, |g| {
        let (slots, specs, arrivals) = arb_population(g);
        let caps: HashMap<&TenantId, u32> =
            specs.iter().map(|s| (&s.id, s.max_concurrent)).collect();
        let log = run_toy(AdmissionController::new(slots, &specs), arrivals);
        for e in &log {
            assert!(
                e.tenant_running_after <= caps[&e.tenant],
                "cap violated at t={}: {} running {} > cap {}",
                e.at_us,
                e.tenant.as_str(),
                e.tenant_running_after,
                caps[&e.tenant]
            );
            assert!(e.slots_free_after <= slots, "slot pool overflowed");
        }
    });
}

/// Saturating same-class workload: every tenant keeps a backlog the
/// whole run, so dispatched service must track the weights. The bound
/// is ε = one maximal job's service — fair share can never be exact
/// because service is granted in whole-job quanta.
#[test]
fn fair_share_tracks_weights_within_one_job_quantum() {
    check::run("admission/fair-share", 24, |g| {
        let w_a = g.u64_in(1, 3) as u32;
        let w_b = g.u64_in(1, 3) as u32;
        let specs = vec![
            spec("a", SloClass::Standard, w_a, 8),
            spec("b", SloClass::Standard, w_b, 8),
        ];
        // Everyone arrives at t=0 with far more work than the pool can
        // hold, so both queues stay backlogged until the tail.
        let est = 1_000_000u64;
        let dur = 1_000_000u64;
        let n_each = 40u64;
        let mut arrivals = Vec::new();
        for j in 0..n_each {
            arrivals.push((0, req(j, "a", 1, est), dur));
            arrivals.push((0, req(n_each + j, "b", 1, est), dur));
        }
        let log = run_toy(AdmissionController::new(4, &specs), arrivals);
        // Measure shares over the saturated window: the first `n_each`
        // dispatches cannot have drained either queue even at a 3:1
        // weight ratio (the favored tenant holds `n_each` jobs).
        let window = n_each as usize;
        let mut svc: HashMap<String, u64> = HashMap::new();
        for e in log
            .iter()
            .filter(|e| matches!(e.kind, AdmissionEventKind::Dispatched { .. }))
            .take(window)
        {
            *svc.entry(e.tenant.as_str().to_string()).or_default() += est;
        }
        let sa = svc.get("a").copied().unwrap_or(0) as f64;
        let sb = svc.get("b").copied().unwrap_or(0) as f64;
        // Weight-normalized services must agree within one job quantum
        // per unit weight.
        let gap = (sa / f64::from(w_a) - sb / f64::from(w_b)).abs();
        let quantum = est as f64 * (1.0 / f64::from(w_a) + 1.0 / f64::from(w_b));
        assert!(
            gap <= quantum + 1.0,
            "weighted shares diverged: a={sa} (w{w_a}), b={sb} (w{w_b}), gap {gap} > ε {quantum}"
        );
    });
}

#[test]
fn strict_priority_never_lets_lower_classes_overtake() {
    // Batch tenant saturates the pool; an interactive job arriving later
    // must be the very next dispatch once slots free up.
    let specs = vec![
        spec("batch", SloClass::Batch, 1, 8),
        spec("inter", SloClass::Interactive, 1, 8),
    ];
    let mut arrivals: Vec<Arrival> = (0..10)
        .map(|j| (0, req(j, "batch", 2, 500_000), 1_000_000))
        .collect();
    arrivals.push((100_000, req(100, "inter", 2, 200_000), 300_000));
    let log = run_toy(AdmissionController::new(4, &specs), arrivals);
    verify_log(4, &specs, &log).unwrap();
    let order: Vec<(u64, String)> = log
        .iter()
        .filter(|e| matches!(e.kind, AdmissionEventKind::Dispatched { .. }))
        .map(|e| (e.job, e.tenant.as_str().to_string()))
        .collect();
    // Two batch jobs dispatch at t=0 (4 slots / 2 cores); the first
    // dispatch after the interactive arrival must be the interactive job.
    let inter_pos = order.iter().position(|(j, _)| *j == 100).unwrap();
    assert_eq!(inter_pos, 2, "interactive job must dispatch ahead of queued batch: {order:?}");
}

#[test]
fn random_priority_runs_dispatch_higher_classes_first_at_equal_instants() {
    check::run("admission/strict-priority", 24, |g| {
        let (slots, specs, arrivals) = arb_population(g);
        let log = run_toy(AdmissionController::new(slots, &specs), arrivals);
        // verify_log carries the strict-priority invariant (a class-C
        // dispatch requires every higher class to be capped or empty);
        // here we just confirm it holds for the random population too.
        verify_log(slots, &specs, &log).expect("strict priority / replay");
    });
}

#[test]
fn hol_blocking_is_measured_and_bounded_by_wait() {
    // One wide job behind a long narrow job: the wide job's wait is
    // pure head-of-line blocking once it reaches the queue head.
    let specs = vec![spec("a", SloClass::Standard, 1, 8)];
    let arrivals = vec![
        (0, req(0, "a", 3, 4_000_000), 4_000_000),
        (100_000, req(1, "a", 4, 1_000_000), 1_000_000),
    ];
    let log = run_toy(AdmissionController::new(4, &specs), arrivals);
    let (waited, hol) = log
        .iter()
        .find_map(|e| match e.kind {
            AdmissionEventKind::Dispatched { waited_us, hol_us } if e.job == 1 => {
                Some((waited_us, hol_us))
            }
            _ => None,
        })
        .unwrap();
    assert_eq!(waited, 3_900_000, "wide job waits for the narrow one to finish");
    assert_eq!(hol, waited, "its whole wait is head-of-line blocking");

    check::run("admission/hol-bounded", 32, |g| {
        let (slots, specs, arrivals) = arb_population(g);
        let log = run_toy(AdmissionController::new(slots, &specs), arrivals);
        for e in &log {
            if let AdmissionEventKind::Dispatched { waited_us, hol_us } = e.kind {
                assert!(hol_us <= waited_us, "HOL time cannot exceed total wait");
            }
        }
    });
}
