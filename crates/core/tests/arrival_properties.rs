//! Property suite for the trace-style arrival generators
//! (`tenancy::arrivals`): determinism as byte-identity, monotone
//! integer-microsecond clocks, calibration of the empirical rates
//! against the configured processes, and burst windows actually
//! containing their configured surplus.

use splitserve::tenancy::{
    generate_jobs, schedule_bytes, schedule_digest, tenant_seed, ArrivalProcess, ArrivalSpec,
    BurstSpec, DurationModel,
};
use splitserve_rt::check::{self, Gen};

/// Draws a random-but-sane spec: any of the three processes, a
/// log-normal duration model, and a small weighted cores menu.
fn arb_spec(g: &mut Gen) -> ArrivalSpec {
    let process = match g.usize_in(0, 2) {
        0 => ArrivalProcess::Poisson {
            rate_per_sec: g.f64_in(0.2, 5.0),
        },
        1 => ArrivalProcess::Bursty {
            base_rate_per_sec: g.f64_in(0.2, 2.0),
            burst: BurstSpec {
                every_secs: g.f64_in(40.0, 120.0),
                len_secs: g.f64_in(5.0, 20.0),
                multiplier: g.f64_in(2.0, 6.0),
            },
        },
        _ => ArrivalProcess::Diurnal {
            mean_rate_per_sec: g.f64_in(0.2, 3.0),
            amplitude: g.f64_in(0.1, 0.9),
            period_secs: g.f64_in(100.0, 400.0),
        },
    };
    let n_choices = g.usize_in(1, 3);
    let cores_choices = (0..n_choices)
        .map(|_| (g.u64_in(1, 8) as u32, g.u64_in(1, 4) as u32))
        .collect();
    ArrivalSpec {
        process,
        duration: DurationModel {
            mean_secs: g.f64_in(0.2, 5.0),
            cv: g.f64_in(0.1, 1.5),
        },
        cores_choices,
        slo_multiple: g.f64_in(2.0, 8.0),
        slo_floor_secs: g.f64_in(1.0, 10.0),
        horizon_secs: g.f64_in(100.0, 400.0),
        max_jobs: 50_000,
    }
}

#[test]
fn same_seed_is_byte_identical_and_seeds_decorrelate() {
    check::run("arrivals/determinism", 48, |g| {
        let spec = arb_spec(g);
        let seed = g.u64();
        let a = generate_jobs(&spec, seed);
        let b = generate_jobs(&spec, seed);
        assert_eq!(schedule_bytes(&a), schedule_bytes(&b));
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        // A different seed must change the schedule whenever there is
        // anything to change (an empty schedule is trivially equal).
        let c = generate_jobs(&spec, seed ^ 0x5555_5555_5555_5555);
        if !a.is_empty() || !c.is_empty() {
            assert_ne!(
                schedule_bytes(&a),
                schedule_bytes(&c),
                "seed change did not move the schedule ({} jobs)",
                a.len()
            );
        }
    });
}

#[test]
fn schedules_are_monotone_nonnegative_and_in_spec() {
    check::run("arrivals/monotone", 48, |g| {
        let spec = arb_spec(g);
        let seed = g.u64();
        let jobs = generate_jobs(&spec, seed);
        let horizon_us = (spec.horizon_secs * 1e6).round() as u64;
        let menu: Vec<u32> = spec.cores_choices.iter().map(|(c, _)| *c).collect();
        let mut prev = 0u64;
        for j in &jobs {
            assert!(j.arrive_at_us >= prev, "arrivals must be non-decreasing");
            prev = j.arrive_at_us;
            // Rounding can push the last arrival onto the horizon edge,
            // never past it by more than half a microsecond.
            assert!(j.arrive_at_us <= horizon_us);
            assert!(
                (50_000..=120_000_000).contains(&j.duration_us),
                "duration outside the clamp band: {}",
                j.duration_us
            );
            assert!(menu.contains(&j.cores), "cores {} not on the menu", j.cores);
            // slo = max(duration · multiple, floor): it must clear both
            // bounds, up to microsecond-rounding slack.
            let floor_us = (spec.slo_floor_secs * 1e6).round() as u64;
            assert!(j.slo_us + 1 >= floor_us, "slo below the floor");
            assert!(
                j.slo_us as f64 + 16.0 >= j.duration_us as f64 * spec.slo_multiple,
                "slo {} below duration {} x multiple {}",
                j.slo_us,
                j.duration_us,
                spec.slo_multiple
            );
        }
    });
}

#[test]
fn poisson_empirical_rate_matches_configured_rate() {
    check::run("arrivals/poisson-rate", 24, |g| {
        let rate = g.f64_in(1.0, 6.0);
        let horizon = 600.0;
        let spec = ArrivalSpec {
            process: ArrivalProcess::Poisson { rate_per_sec: rate },
            duration: DurationModel {
                mean_secs: 1.0,
                cv: 0.5,
            },
            cores_choices: vec![(1, 1)],
            slo_multiple: 4.0,
            slo_floor_secs: 2.0,
            horizon_secs: horizon,
            max_jobs: 100_000,
        };
        let jobs = generate_jobs(&spec, g.u64());
        let expected = rate * horizon;
        // n ~ Poisson(expected): 6 sigma of slack keeps the flake rate
        // effectively zero while still catching a mis-scaled rate.
        let sigma = expected.sqrt();
        let n = jobs.len() as f64;
        assert!(
            (n - expected).abs() < 6.0 * sigma + 5.0,
            "poisson rate {rate}/s over {horizon}s: expected ~{expected:.0} jobs, got {n}"
        );
        // Mean inter-arrival must sit near 1/rate as well.
        if jobs.len() > 50 {
            let span_secs = (jobs.last().unwrap().arrive_at_us - jobs[0].arrive_at_us) as f64 / 1e6;
            let mean_gap = span_secs / (jobs.len() - 1) as f64;
            assert!(
                (mean_gap - 1.0 / rate).abs() < 0.25 / rate,
                "mean inter-arrival {mean_gap:.3}s vs expected {:.3}s",
                1.0 / rate
            );
        }
    });
}

#[test]
fn burst_windows_contain_the_configured_surplus() {
    check::run("arrivals/burst-surplus", 16, |g| {
        let base = g.f64_in(0.5, 1.5);
        let burst = BurstSpec {
            every_secs: 100.0,
            len_secs: 20.0,
            multiplier: g.f64_in(3.0, 6.0),
        };
        let horizon = 2_000.0; // 20 burst cycles
        let spec = ArrivalSpec {
            process: ArrivalProcess::Bursty {
                base_rate_per_sec: base,
                burst,
            },
            duration: DurationModel {
                mean_secs: 1.0,
                cv: 0.5,
            },
            cores_choices: vec![(1, 1)],
            slo_multiple: 4.0,
            slo_floor_secs: 2.0,
            horizon_secs: horizon,
            max_jobs: 200_000,
        };
        let jobs = generate_jobs(&spec, g.u64());
        let (mut inside, mut outside) = (0usize, 0usize);
        for j in &jobs {
            if burst.contains(j.arrive_at_us as f64 / 1e6) {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        // Time shares: 20% of the horizon is in-burst. The in-window
        // rate is `multiplier` times the out-window rate, so the
        // empirical per-second ratio must reflect the surplus.
        let in_rate = inside as f64 / (horizon * 0.2);
        let out_rate = outside as f64 / (horizon * 0.8);
        assert!(
            in_rate > out_rate * (burst.multiplier * 0.6),
            "burst windows carry no surplus: in {in_rate:.2}/s vs out {out_rate:.2}/s \
             (multiplier {})",
            burst.multiplier
        );
        assert!(
            in_rate < out_rate * (burst.multiplier * 1.5),
            "burst surplus overshoots: in {in_rate:.2}/s vs out {out_rate:.2}/s"
        );
    });
}

#[test]
fn diurnal_peak_half_outdraws_trough_half() {
    check::run("arrivals/diurnal-shape", 16, |g| {
        let mean = g.f64_in(0.5, 2.0);
        let amplitude = g.f64_in(0.4, 0.9);
        let period = 400.0;
        let spec = ArrivalSpec {
            process: ArrivalProcess::Diurnal {
                mean_rate_per_sec: mean,
                amplitude,
                period_secs: period,
            },
            duration: DurationModel {
                mean_secs: 1.0,
                cv: 0.5,
            },
            cores_choices: vec![(1, 1)],
            slo_multiple: 4.0,
            slo_floor_secs: 2.0,
            horizon_secs: 2.0 * period,
            max_jobs: 100_000,
        };
        let jobs = generate_jobs(&spec, g.u64());
        // sin > 0 on the first half of each period — the "day" half.
        let day = jobs
            .iter()
            .filter(|j| (j.arrive_at_us as f64 / 1e6).rem_euclid(period) < period / 2.0)
            .count();
        let night = jobs.len() - day;
        assert!(
            day > night,
            "diurnal day half ({day}) should outdraw the night half ({night})"
        );
    });
}

#[test]
fn tenant_seed_depends_only_on_fleet_seed_and_id() {
    check::run("arrivals/tenant-seed", 64, |g| {
        let fleet = g.u64();
        let id = g.lowercase(1, 12);
        assert_eq!(tenant_seed(fleet, &id), tenant_seed(fleet, &id));
        let other = format!("{id}x");
        assert_ne!(tenant_seed(fleet, &id), tenant_seed(fleet, &other));
        assert_ne!(tenant_seed(fleet, &id), tenant_seed(fleet ^ 1, &id));
    });
}
