//! Tenant-isolation differential: a tenant running on disjoint resources
//! gets byte-identical outcome rows, ledger charges, and latency-digest
//! bytes whether or not noisy neighbors run "alongside" it (in their own
//! dedicated deployments), because per-tenant schedules are seeded from
//! `(fleet_seed, tenant_id)` alone and every run is a pure function of
//! its config. Also pins the fleet artifact to byte-identity across
//! worker-thread counts (the PR-6 guarantee, extended to the control
//! plane).

use splitserve::tenancy::{
    combined_fingerprint, default_fleet_jobs, default_tenant_specs, fleet_workload,
    render_fleet_json, run_tenant_fleet, tenant_slice, FleetJob, FleetOutcome, FleetPolicy,
    TenantFleetConfig, TenantSpec,
};
use splitserve_obs::TenantId;

/// Runs one tenant's slice of the fleet on its own dedicated deployment
/// (8 dedicated cores, its own admission queue) and returns the outcome
/// plus the data fingerprint.
fn run_dedicated(all: &[TenantSpec], jobs: &[FleetJob], idx: usize) -> (FleetOutcome, u64) {
    let slice = tenant_slice(jobs, idx);
    assert!(!slice.is_empty(), "tenant {idx} drew no jobs");
    let cfg = TenantFleetConfig::for_policy(
        FleetPolicy::SplitServe,
        vec![all[idx].clone()],
        8,
    );
    let (wl, sink) = fleet_workload(8);
    let r = run_tenant_fleet(&cfg, &slice, wl);
    let fp = combined_fingerprint(&sink.borrow());
    (r, fp)
}

#[test]
fn dedicated_tenant_is_unperturbed_by_noisy_neighbors() {
    let tenants = default_tenant_specs(8);
    let jobs = default_fleet_jobs(&tenants, 11, 160, 240.0);
    let focus = 4;
    let t = tenants[focus].id.clone();

    let (before, fp_before) = run_dedicated(&tenants, &jobs, focus);

    // The noisy neighborhood: every other tenant runs its own slice on
    // its own resources. If any global state (thread-locals, shared
    // RNGs, statics) leaked between runs, the focus tenant's re-run
    // below would drift.
    for idx in (0..tenants.len()).filter(|i| *i != focus) {
        let (r, _) = run_dedicated(&tenants, &jobs, idx);
        assert_eq!(
            r.outcomes.len(),
            tenant_slice(&jobs, idx).len(),
            "neighbor {idx} lost jobs"
        );
    }

    let (after, fp_after) = run_dedicated(&tenants, &jobs, focus);

    // Outcome rows: byte-identical canonical strings.
    assert_eq!(before.tenant_rows(&t), after.tenant_rows(&t));
    // Ledger charges: identical point-for-point (accrued charges land on
    // the tenant; settlement goes to the fleet key, also compared).
    assert_eq!(before.bill.curve(&t), after.bill.curve(&t));
    let fleet_key = TenantId::new("fleet");
    assert_eq!(before.bill.curve(&fleet_key), after.bill.curve(&fleet_key));
    assert!((before.cost_usd - after.cost_usd).abs() < 1e-12);
    // Digest bytes: the latency quantile sketch serializes identically.
    let da = before.slo.latency_digest(&t).expect("digest").canonical_bytes();
    let db = after.slo.latency_digest(&t).expect("digest").canonical_bytes();
    assert_eq!(da, db);
    // And the computed data is bit-identical too.
    assert_eq!(fp_before, fp_after);
}

/// A tenant's dedicated run must not depend on which neighbors exist in
/// the fleet population either: regenerating the fleet with a different
/// neighbor mix leaves the focus tenant's slice — and thus its dedicated
/// outcome — unchanged, because schedules derive from `(fleet_seed, id)`.
#[test]
fn dedicated_run_survives_a_reshuffled_neighbor_mix() {
    let small = default_tenant_specs(6);
    let big = default_tenant_specs(12);
    // Same per-tenant arrival rate in both populations so the focus
    // tenant's spec-derived schedule matches: rate = (target/tenants)/horizon.
    let jobs_small = default_fleet_jobs(&small, 11, 120, 240.0);
    let jobs_big = default_fleet_jobs(&big, 11, 240, 240.0);
    let focus = 2;
    assert_eq!(small[focus].id, big[focus].id);

    let a = tenant_slice(&jobs_small, focus);
    let b = tenant_slice(&jobs_big, focus);
    assert_eq!(a, b, "schedule depends on the neighbor mix");

    let (ra, fa) = run_dedicated(&small, &jobs_small, focus);
    let (rb, fb) = run_dedicated(&big, &jobs_big, focus);
    let t = small[focus].id.clone();
    assert_eq!(ra.tenant_rows(&t), rb.tenant_rows(&t));
    assert_eq!(ra.bill.curve(&t), rb.bill.curve(&t));
    assert_eq!(fa, fb);
}

#[test]
fn fleet_artifact_is_byte_identical_across_worker_counts() {
    let tenants = default_tenant_specs(5);
    let jobs = default_fleet_jobs(&tenants, 11, 45, 120.0);
    let render = |workers: usize| -> String {
        let mut results = Vec::new();
        for policy in FleetPolicy::all() {
            let mut cfg = TenantFleetConfig::for_policy(policy, tenants.clone(), 8);
            cfg.engine.workers = workers;
            let (wl, sink) = fleet_workload(8);
            let r = run_tenant_fleet(&cfg, &jobs, wl);
            let fp = combined_fingerprint(&sink.borrow());
            results.push((r, fp));
        }
        // Fixed `workers` label so the only possible byte difference is
        // a real result difference.
        render_fleet_json(0, &tenants, jobs.len(), &results)
    };
    let w1 = render(1);
    let w2 = render(2);
    let w8 = render(8);
    assert_eq!(w1, w2, "artifact drifts between workers=1 and workers=2");
    assert_eq!(w1, w8, "artifact drifts between workers=1 and workers=8");
}
