//! Byte-identity pins for the hot-loop fast path. The interned-id /
//! pre-resolved-handle / dense-table optimizations claim to change *no
//! output byte*: these tests pin the reduced-scale fleet artifact and
//! the Prometheus exposition to hard xxhash64 constants, at both 1 and
//! 4 engine worker threads. Any drift — a reordered map, a changed
//! float path, a renamed label — fails here first, in debug mode, long
//! before `scripts/verify.sh` re-derives the full-scale pins.
//!
//! Updating a pin is a deliberate act: rerun with the new value printed
//! in the assertion message and justify the byte change in review.

use std::hash::Hasher;

use splitserve::tenancy::{
    combined_fingerprint, default_fleet_jobs, default_tenant_specs, fleet_workload,
    render_fleet_json, run_tenant_fleet, FleetPolicy, TenantFleetConfig,
};
use splitserve_rt::hash::XxHash64;

fn digest(bytes: &str) -> u64 {
    let mut h = XxHash64::with_seed(0);
    h.write(bytes.as_bytes());
    h.finish()
}

/// The reduced fleet: 5 tenants, 45 jobs, 120 s horizon, all three
/// policies — the same machinery as `examples/tenant_fleet.rs`, small
/// enough for debug-mode CI. `workers` is rendered as a fixed label so
/// both counts must produce the same bytes.
fn fleet_json(workers: usize) -> String {
    let tenants = default_tenant_specs(5);
    let jobs = default_fleet_jobs(&tenants, 11, 45, 120.0);
    let mut results = Vec::new();
    for policy in FleetPolicy::all() {
        let mut cfg = TenantFleetConfig::for_policy(policy, tenants.clone(), 8);
        cfg.engine.workers = workers;
        let (wl, sink) = fleet_workload(8);
        let r = run_tenant_fleet(&cfg, &jobs, wl);
        let fp = combined_fingerprint(&sink.borrow());
        results.push((r, fp));
    }
    render_fleet_json(0, &tenants, jobs.len(), &results)
}

#[test]
fn fleet_artifact_digest_is_pinned_at_w1_and_w4() {
    const PIN: u64 = 0x15ce_aee7_5e06_1437;
    let w1 = fleet_json(1);
    assert_eq!(
        digest(&w1),
        PIN,
        "fleet artifact drifted at workers=1: digest {:016x} (len {})",
        digest(&w1),
        w1.len()
    );
    let w4 = fleet_json(4);
    assert_eq!(
        digest(&w4),
        PIN,
        "fleet artifact drifted at workers=4: digest {:016x}",
        digest(&w4)
    );
}

/// One obs-enabled reduced fleet run; returns the full Prometheus
/// exposition. Every metric value is sim-derived (admission waits,
/// HOL blocking, task spans, store ops), so the bytes are a pure
/// function of the config — including across worker-thread counts.
fn prometheus_render(workers: usize) -> String {
    let tenants = default_tenant_specs(4);
    let jobs = default_fleet_jobs(&tenants, 11, 30, 120.0);
    let mut cfg =
        TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.clone(), 8);
    cfg.engine.workers = workers;
    let obs = splitserve_obs::Obs::enabled();
    cfg.engine.obs = obs.clone();
    let (wl, _sink) = fleet_workload(8);
    let r = run_tenant_fleet(&cfg, &jobs, wl);
    assert_eq!(r.outcomes.len(), jobs.len());
    obs.metrics.render_prometheus()
}

#[test]
fn prometheus_exposition_is_pinned_at_w1_and_w4() {
    // Re-pinned when the cold-start policy plane landed: `Deployment::
    // shutdown` now emits `lambda_cold_start_fraction`,
    // `lambda_wasted_memory_seconds_total`, `lambda_pool_evictions_total`
    // and the `lambda_start_seconds{policy}` quantile digest, all
    // sim-derived and worker-count-invariant like the rest.
    const PIN: u64 = 0x7829_df41_24ce_7f6d;
    let w1 = prometheus_render(1);
    // (`hol_blocking_seconds` is legitimately absent at this scale: the
    // reduced fleet never blocks a queue head, and an unobserved handle
    // stays unmaterialized — the lazy-handle contract.)
    assert!(
        w1.contains("admission_wait_seconds"),
        "fleet run must populate the pre-resolved admission histograms:\n{w1}"
    );
    assert_eq!(
        digest(&w1),
        PIN,
        "prometheus exposition drifted at workers=1: digest {:016x} (len {})",
        digest(&w1),
        w1.len()
    );
    let w4 = prometheus_render(4);
    assert_eq!(
        digest(&w4),
        PIN,
        "prometheus exposition drifted at workers=4: digest {:016x}",
        digest(&w4)
    );
}
