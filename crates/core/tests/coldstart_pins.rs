//! Byte-identity pins for the cold-start policy sweep artifact. The
//! policy plane claims scheduler-neutrality: it schedules no events and
//! draws no RNG, so the sweep artifact is a pure function of the config
//! — including across engine worker-thread counts. Pinned to a hard
//! xxhash64 constant at both 1 and 4 workers, like `hot_loop_pins.rs`.
//!
//! Updating the pin is a deliberate act: rerun with the new value
//! printed in the assertion message and justify the byte change in
//! review.

use std::hash::Hasher;

use splitserve::tenancy::{
    default_tenant_specs, recurrent_fleet_jobs, render_coldstart_sweep_json, run_coldstart_sweep,
};
use splitserve_rt::hash::XxHash64;

fn digest(bytes: &str) -> u64 {
    let mut h = XxHash64::with_seed(0);
    h.write(bytes.as_bytes());
    h.finish()
}

/// The reduced sweep: 4 tenants, 3 bursts of 10 every 40 s, 4-core
/// pool — small enough for debug-mode CI, big enough that every arm
/// launches Lambdas. `workers` is rendered as a fixed label so both
/// counts must produce the same bytes.
fn sweep_json(workers: usize) -> String {
    let tenants = default_tenant_specs(4);
    let jobs = recurrent_fleet_jobs(&tenants, 3, 10, 40);
    let arms = run_coldstart_sweep(workers, &tenants, &jobs, 4);
    assert!(
        arms.iter().all(|a| a.outcome.lambdas_launched > 0),
        "every arm must exercise the warm pool"
    );
    render_coldstart_sweep_json(0, &tenants, jobs.len(), 30, 45, &arms)
}

#[test]
fn coldstart_sweep_digest_is_pinned_at_w1_and_w4() {
    const PIN: u64 = 0x8dfa_c80f_1512_b3a8;
    let w1 = sweep_json(1);
    assert_eq!(
        digest(&w1),
        PIN,
        "coldstart sweep artifact drifted at workers=1: digest {:016x} (len {})",
        digest(&w1),
        w1.len()
    );
    let w4 = sweep_json(4);
    assert_eq!(
        digest(&w4),
        PIN,
        "coldstart sweep artifact drifted at workers=4: digest {:016x}",
        digest(&w4)
    );
}
