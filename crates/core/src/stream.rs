//! The inter-job view (paper §4.1): a *stream* of latency-critical jobs
//! arriving at a fixed VM pool. Without SplitServe, a job that finds too
//! few free cores just runs slow (or queues); with it, the launching
//! facility bridges every shortfall with Lambdas the moment it appears.
//!
//! This is the "cost manager + SplitServe" composition of Figure 3: the
//! outcome metrics (SLO attainment, per-job latency, total bill) are what
//! a tenant would use to choose between the conservative `m(t)+2σ(t)` and
//! lean `m(t)` provisioning policies of Figure 2.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_cloud::InstanceType;
use splitserve_des::{SimDuration, SimTime};
use splitserve_obs::{BillLedger, SloLedger, TenantId};

use crate::allocator::AllocatorConfig;
use crate::deploy::ShuffleStoreKind;
use crate::scenario::{DriverProgram, ScenarioSpec};
use crate::tenancy::{
    run_tenant_fleet, FleetJob, FleetPolicy, SloClass, TenantFleetConfig, TenantSpec,
};

/// Pre-built driver programs, handed out one per dispatch.
type ProgramVec = Rc<RefCell<Vec<Option<Box<dyn DriverProgram>>>>>;

/// One job in the stream.
#[derive(Debug, Clone)]
pub struct StreamJob {
    /// Arrival time (seconds from stream start).
    pub arrive_at_secs: f64,
    /// The job's desired degree of parallelism.
    pub cores: u32,
    /// Its execution-time SLO in seconds.
    pub slo_secs: f64,
}

/// How the cluster meets the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPolicy {
    /// A fixed VM pool only — shortfalls mean slow jobs.
    VmPoolOnly,
    /// The same pool, plus the launching facility bridging backlog with
    /// Lambdas (retired when idle).
    SplitServe,
}

impl std::fmt::Display for StreamPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamPolicy::VmPoolOnly => f.write_str("vm-pool-only"),
            StreamPolicy::SplitServe => f.write_str("splitserve"),
        }
    }
}

/// Per-job outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// Arrival (seconds).
    pub arrived_at: f64,
    /// Completion (seconds).
    pub finished_at: f64,
    /// Its SLO.
    pub slo_secs: f64,
}

impl JobOutcome {
    /// The job's response time.
    pub fn latency(&self) -> f64 {
        self.finished_at - self.arrived_at
    }

    /// Whether the SLO was met.
    pub fn met_slo(&self) -> bool {
        self.latency() <= self.slo_secs
    }
}

/// Whole-stream outcome.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The policy that ran.
    pub policy: StreamPolicy,
    /// Per-job results, arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Total bill for the stream window.
    pub cost_usd: f64,
    /// Lambdas launched by the controller (0 for the VM-only policy).
    pub lambdas_launched: u32,
    /// SLO attainment ledger fed one point per job completion — the
    /// accounting source of truth (replaces counting `met_slo` ad hoc).
    pub slo: SloLedger,
    /// Cumulative-bill ledger: one accrued-cost point per job
    /// completion plus a final finalization charge.
    pub bill: BillLedger,
}

impl StreamOutcome {
    /// Fraction of jobs meeting their SLO across **all** tenants, from
    /// the [`SloLedger`]. (Historically this silently reported only
    /// `TenantId::default()`; multi-tenant streams were misreported.
    /// Use [`StreamOutcome::slo_attainment_for`] for one tenant.)
    pub fn slo_attainment(&self) -> f64 {
        self.slo.fleet_attainment()
    }

    /// One tenant's SLO attainment.
    pub fn slo_attainment_for(&self, tenant: &TenantId) -> f64 {
        self.slo.attainment(tenant)
    }

    /// Mean job latency in seconds across all jobs (fleet-wide).
    pub fn mean_latency(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(JobOutcome::latency).sum::<f64>() / self.jobs.len() as f64
    }
}

/// Runs a job stream against `vm_pool_cores` of fixed capacity under the
/// given policy. The `workload` factory receives each job's `cores` so it
/// can size itself (as the inter-job manager's prescription would).
///
/// This is now a thin wrapper over the multi-tenant control plane
/// ([`run_tenant_fleet`]): the whole stream runs as a single
/// default-tenant with unlimited admission slots and no concurrency cap,
/// so every job dispatches the instant it arrives — exactly the
/// pre-control-plane behavior — while the accounting (per-tenant
/// ledgers, accrual + settlement) flows through the shared path.
pub fn run_job_stream(
    policy: StreamPolicy,
    vm_pool_cores: u32,
    worker_type: InstanceType,
    spec: &ScenarioSpec,
    jobs: &[StreamJob],
    workload: &dyn Fn(u32) -> Box<dyn DriverProgram>,
) -> StreamOutcome {
    let tenant = TenantId::default();
    let cfg = TenantFleetConfig {
        seed: spec.seed,
        policy: match policy {
            StreamPolicy::VmPoolOnly => FleetPolicy::VmOnly,
            StreamPolicy::SplitServe => FleetPolicy::SplitServe,
        },
        tenants: vec![TenantSpec {
            id: tenant.clone(),
            class: SloClass::Standard,
            weight: 1,
            max_concurrent: u32::MAX,
        }],
        slots: u32::MAX,
        pool_cores: vm_pool_cores,
        worker_type,
        master_type: spec.master_type.clone(),
        store: ShuffleStoreKind::Hdfs,
        cloud: spec.cloud.clone(),
        engine: spec.engine.clone(),
        lambda_memory_mb: spec.lambda_memory_mb,
        allocator: (policy == StreamPolicy::SplitServe).then(|| AllocatorConfig {
            max_lambdas: 128,
            idle_timeout: SimDuration::from_secs(5),
            ..AllocatorConfig::default()
        }),
        settle_tenant: tenant,
    };
    let fleet_jobs: Vec<FleetJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| FleetJob {
            job: i as u64,
            tenant_idx: 0,
            arrive_at_us: SimTime::from_secs_f64(j.arrive_at_secs).as_micros(),
            // With unlimited slots the estimate never schedules anything;
            // the SLO is the natural stand-in.
            duration_us: SimTime::from_secs_f64(j.slo_secs).as_micros(),
            cores: j.cores,
            slo_us: SimTime::from_secs_f64(j.slo_secs).as_micros(),
        })
        .collect();
    // The stream API hands out a borrowed factory; the control plane
    // needs `'static` ones (it builds programs at dispatch time, inside
    // sim events). Unlimited admission dispatches exactly at arrival, so
    // building every program up front — the old behavior — is identical;
    // the dispatch hook just takes them out one by one.
    let programs: ProgramVec = Rc::new(RefCell::new(
        jobs.iter().map(|j| Some(workload(j.cores))).collect(),
    ));
    let r = run_tenant_fleet(
        &cfg,
        &fleet_jobs,
        Rc::new(move |fj: &FleetJob| {
            programs.borrow_mut()[fj.job as usize]
                .take()
                .expect("each stream job dispatches exactly once")
        }),
    );
    StreamOutcome {
        policy,
        jobs: r
            .outcomes
            .iter()
            .map(|o| JobOutcome {
                arrived_at: o.arrived_us as f64 / 1e6,
                finished_at: o.finished_us as f64 / 1e6,
                slo_secs: o.slo_us as f64 / 1e6,
            })
            .collect(),
        cost_usd: r.cost_usd,
        lambdas_launched: r.lambdas_launched,
        slo: r.slo,
        bill: r.bill,
    }
}

/// A bursty arrival pattern: `n` jobs in `waves` clusters over `window`
/// seconds (deterministic, for reproducible stream experiments).
pub fn bursty_arrivals(n: usize, waves: usize, window_secs: f64, slo_secs: f64) -> Vec<StreamJob> {
    assert!(waves > 0 && n > 0);
    (0..n)
        .map(|i| {
            let wave = i % waves;
            let within = (i / waves) as f64;
            StreamJob {
                arrive_at_secs: wave as f64 * (window_secs / waves as f64) + within * 2.0,
                cores: 8,
                slo_secs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_cloud::{CloudSpec, M4_4XLARGE};
    use splitserve_des::{Dist, Sim};
    use splitserve_engine::{Dataset, Engine};

    struct BurstLoad {
        cores: u32,
    }

    impl DriverProgram for BurstLoad {
        fn name(&self) -> String {
            "burst".into()
        }
        fn parallelism(&self) -> usize {
            self.cores as usize
        }
        fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
            let width = self.cores as usize * 2;
            let ds = Dataset::<u64>::generate(width, |p| {
                (0..1_000u64).map(|i| i + p as u64).collect()
            })
            .map_with_cost(|x| (*x % 4, 1u64), Some(1e-3))
            .reduce_by_key(4, |a, b| a + b);
            engine.submit_job(sim, ds.node(), move |sim, _| done(sim));
        }
    }

    fn quiet_spec() -> ScenarioSpec {
        ScenarioSpec {
            cloud: CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.12),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                ..CloudSpec::default()
            },
            ..ScenarioSpec::default()
        }
    }

    fn factory() -> impl Fn(u32) -> Box<dyn DriverProgram> {
        |cores| Box::new(BurstLoad { cores }) as Box<dyn DriverProgram>
    }

    #[test]
    fn splitserve_policy_lifts_slo_attainment_on_bursts() {
        // 3 overlapping jobs of 8 cores each against a 8-core pool.
        let jobs = vec![
            StreamJob { arrive_at_secs: 1.0, cores: 8, slo_secs: 8.0 },
            StreamJob { arrive_at_secs: 1.5, cores: 8, slo_secs: 8.0 },
            StreamJob { arrive_at_secs: 2.0, cores: 8, slo_secs: 8.0 },
        ];
        let spec = quiet_spec();
        let vm_only = run_job_stream(
            StreamPolicy::VmPoolOnly,
            8,
            M4_4XLARGE,
            &spec,
            &jobs,
            &factory(),
        );
        let ss = run_job_stream(
            StreamPolicy::SplitServe,
            8,
            M4_4XLARGE,
            &spec,
            &jobs,
            &factory(),
        );
        assert!(ss.lambdas_launched > 0, "bridging must have happened");
        assert!(
            ss.mean_latency() < vm_only.mean_latency(),
            "SplitServe {:.1}s vs VM-only {:.1}s",
            ss.mean_latency(),
            vm_only.mean_latency()
        );
        assert!(ss.slo_attainment() >= vm_only.slo_attainment());
    }

    #[test]
    fn quiet_stream_needs_no_lambdas() {
        // Jobs spaced far apart fit the pool; the controller stays idle.
        let jobs = vec![
            StreamJob { arrive_at_secs: 0.0, cores: 8, slo_secs: 60.0 },
            StreamJob { arrive_at_secs: 100.0, cores: 8, slo_secs: 60.0 },
        ];
        let spec = quiet_spec();
        let ss = run_job_stream(
            StreamPolicy::SplitServe,
            16,
            M4_4XLARGE,
            &spec,
            &jobs,
            &factory(),
        );
        assert_eq!(ss.slo_attainment(), 1.0);
        // With 16 cores for an 8-core job the backlog never exceeds the
        // live capacity enough to trigger scale-out.
        assert!(
            ss.lambdas_launched <= 8,
            "quiet stream should barely bridge: {}",
            ss.lambdas_launched
        );
    }

    #[test]
    fn bursty_arrivals_are_deterministic_and_ordered() {
        let a = bursty_arrivals(12, 3, 300.0, 30.0);
        let b = bursty_arrivals(12, 3, 300.0, 30.0);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrive_at_secs, y.arrive_at_secs);
        }
        assert!(a.iter().all(|j| j.arrive_at_secs < 300.0 + 24.0));
    }
}
