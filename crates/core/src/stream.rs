//! The inter-job view (paper §4.1): a *stream* of latency-critical jobs
//! arriving at a fixed VM pool. Without SplitServe, a job that finds too
//! few free cores just runs slow (or queues); with it, the launching
//! facility bridges every shortfall with Lambdas the moment it appears.
//!
//! This is the "cost manager + SplitServe" composition of Figure 3: the
//! outcome metrics (SLO attainment, per-job latency, total bill) are what
//! a tenant would use to choose between the conservative `m(t)+2σ(t)` and
//! lean `m(t)` provisioning policies of Figure 2.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_cloud::InstanceType;
use splitserve_des::{Sim, SimDuration};
use splitserve_obs::{BillLedger, SloLedger, TenantId};

use crate::allocator::{start_allocator, AllocatorConfig};
use crate::deploy::{Deployment, ShuffleStoreKind};
use crate::scenario::{DriverProgram, ScenarioSpec};

/// One job in the stream.
#[derive(Debug, Clone)]
pub struct StreamJob {
    /// Arrival time (seconds from stream start).
    pub arrive_at_secs: f64,
    /// The job's desired degree of parallelism.
    pub cores: u32,
    /// Its execution-time SLO in seconds.
    pub slo_secs: f64,
}

/// How the cluster meets the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPolicy {
    /// A fixed VM pool only — shortfalls mean slow jobs.
    VmPoolOnly,
    /// The same pool, plus the launching facility bridging backlog with
    /// Lambdas (retired when idle).
    SplitServe,
}

impl std::fmt::Display for StreamPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamPolicy::VmPoolOnly => f.write_str("vm-pool-only"),
            StreamPolicy::SplitServe => f.write_str("splitserve"),
        }
    }
}

/// Per-job outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// Arrival (seconds).
    pub arrived_at: f64,
    /// Completion (seconds).
    pub finished_at: f64,
    /// Its SLO.
    pub slo_secs: f64,
}

impl JobOutcome {
    /// The job's response time.
    pub fn latency(&self) -> f64 {
        self.finished_at - self.arrived_at
    }

    /// Whether the SLO was met.
    pub fn met_slo(&self) -> bool {
        self.latency() <= self.slo_secs
    }
}

/// Whole-stream outcome.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The policy that ran.
    pub policy: StreamPolicy,
    /// Per-job results, arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Total bill for the stream window.
    pub cost_usd: f64,
    /// Lambdas launched by the controller (0 for the VM-only policy).
    pub lambdas_launched: u32,
    /// SLO attainment ledger fed one point per job completion — the
    /// accounting source of truth (replaces counting `met_slo` ad hoc).
    pub slo: SloLedger,
    /// Cumulative-bill ledger: one accrued-cost point per job
    /// completion plus a final finalization charge.
    pub bill: BillLedger,
}

impl StreamOutcome {
    /// Fraction of jobs meeting their SLO, from the [`SloLedger`].
    pub fn slo_attainment(&self) -> f64 {
        self.slo.attainment(&TenantId::default())
    }

    /// Mean job latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(JobOutcome::latency).sum::<f64>() / self.jobs.len() as f64
    }
}

/// Runs a job stream against `vm_pool_cores` of fixed capacity under the
/// given policy. The `workload` factory receives each job's `cores` so it
/// can size itself (as the inter-job manager's prescription would).
pub fn run_job_stream(
    policy: StreamPolicy,
    vm_pool_cores: u32,
    worker_type: InstanceType,
    spec: &ScenarioSpec,
    jobs: &[StreamJob],
    workload: &dyn Fn(u32) -> Box<dyn DriverProgram>,
) -> StreamOutcome {
    let mut sim = Sim::new(spec.seed);
    let d = Deployment::with_engine_config(
        &mut sim,
        spec.cloud.clone(),
        ShuffleStoreKind::Hdfs,
        spec.master_type.clone(),
        spec.engine.clone(),
    );
    d.set_lambda_memory_mb(spec.lambda_memory_mb);
    // The fixed pool.
    let mut remaining = vm_pool_cores;
    while remaining > 0 {
        let batch = remaining.min(worker_type.vcpus);
        d.add_vm_workers(&mut sim, worker_type.clone(), batch);
        remaining -= batch;
    }
    // The launching facility, if enabled.
    let handle = (policy == StreamPolicy::SplitServe).then(|| {
        start_allocator(
            &mut sim,
            &d,
            AllocatorConfig {
                max_lambdas: 128,
                idle_timeout: SimDuration::from_secs(5),
                ..AllocatorConfig::default()
            },
        )
    });

    // Submit every job at its arrival time. When the last one completes,
    // stop the controller (its pending tick would otherwise keep the
    // event queue alive forever) and finalize the bill.
    let outcomes: Rc<RefCell<Vec<Option<JobOutcome>>>> =
        Rc::new(RefCell::new(vec![None; jobs.len()]));
    let remaining = Rc::new(std::cell::Cell::new(jobs.len()));
    let slo = SloLedger::new();
    let bill = BillLedger::new();
    // Running total already charged to the bill ledger; each completion
    // charges the accrued-cost delta since the previous point, so the
    // ledger's cumulative curve tracks `accrued_cost` exactly.
    let billed = Rc::new(std::cell::Cell::new(0.0f64));
    for (i, job) in jobs.iter().enumerate() {
        let program = workload(job.cores);
        let d2 = d.clone();
        let outcomes2 = Rc::clone(&outcomes);
        let remaining2 = Rc::clone(&remaining);
        let handle2 = handle.clone();
        let job2 = job.clone();
        let slo2 = slo.clone();
        let bill2 = bill.clone();
        let billed2 = Rc::clone(&billed);
        sim.schedule_at(
            splitserve_des::SimTime::from_secs_f64(job.arrive_at_secs),
            move |sim| {
                let arrived = sim.now().as_secs_f64();
                let outcomes3 = Rc::clone(&outcomes2);
                let engine = d2.engine().clone();
                program.submit(
                    sim,
                    &engine,
                    Box::new(move |sim| {
                        let finished = sim.now();
                        outcomes3.borrow_mut()[i] = Some(JobOutcome {
                            arrived_at: arrived,
                            finished_at: finished.as_secs_f64(),
                            slo_secs: job2.slo_secs,
                        });
                        slo2.record_job(
                            &TenantId::default(),
                            finished,
                            finished.as_secs_f64() - arrived,
                            job2.slo_secs,
                        );
                        let accrued = d2.cloud().accrued_cost(finished);
                        let delta = accrued - billed2.get();
                        if delta > 0.0 {
                            bill2.charge(&TenantId::default(), finished, delta, "accrued");
                            billed2.set(accrued);
                        }
                        remaining2.set(remaining2.get() - 1);
                        if remaining2.get() == 0 {
                            if let Some(h) = &handle2 {
                                h.stop();
                            }
                            d2.shutdown(sim);
                        }
                    }),
                );
            },
        );
    }
    sim.run();

    let jobs_done: Vec<JobOutcome> = outcomes
        .borrow()
        .iter()
        .map(|o| o.expect("every stream job must complete"))
        .collect();
    let cost_usd = d.cloud().total_cost();
    // Shutdown finalizes running resources; settle the ledger to the
    // exact final bill.
    let settle = cost_usd - billed.get();
    if settle > 0.0 {
        bill.charge(
            &TenantId::default(),
            splitserve_des::SimTime::from_secs_f64(
                jobs_done.iter().map(|j| j.finished_at).fold(0.0, f64::max),
            ),
            settle,
            "final",
        );
    }
    StreamOutcome {
        policy,
        jobs: jobs_done,
        cost_usd,
        lambdas_launched: handle.map(|h| h.lambdas_launched()).unwrap_or(0),
        slo,
        bill,
    }
}

/// A bursty arrival pattern: `n` jobs in `waves` clusters over `window`
/// seconds (deterministic, for reproducible stream experiments).
pub fn bursty_arrivals(n: usize, waves: usize, window_secs: f64, slo_secs: f64) -> Vec<StreamJob> {
    assert!(waves > 0 && n > 0);
    (0..n)
        .map(|i| {
            let wave = i % waves;
            let within = (i / waves) as f64;
            StreamJob {
                arrive_at_secs: wave as f64 * (window_secs / waves as f64) + within * 2.0,
                cores: 8,
                slo_secs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_cloud::{CloudSpec, M4_4XLARGE};
    use splitserve_des::Dist;
    use splitserve_engine::{Dataset, Engine};

    struct BurstLoad {
        cores: u32,
    }

    impl DriverProgram for BurstLoad {
        fn name(&self) -> String {
            "burst".into()
        }
        fn parallelism(&self) -> usize {
            self.cores as usize
        }
        fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
            let width = self.cores as usize * 2;
            let ds = Dataset::<u64>::generate(width, |p| {
                (0..1_000u64).map(|i| i + p as u64).collect()
            })
            .map_with_cost(|x| (*x % 4, 1u64), Some(1e-3))
            .reduce_by_key(4, |a, b| a + b);
            engine.submit_job(sim, ds.node(), move |sim, _| done(sim));
        }
    }

    fn quiet_spec() -> ScenarioSpec {
        ScenarioSpec {
            cloud: CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.12),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                ..CloudSpec::default()
            },
            ..ScenarioSpec::default()
        }
    }

    fn factory() -> impl Fn(u32) -> Box<dyn DriverProgram> {
        |cores| Box::new(BurstLoad { cores }) as Box<dyn DriverProgram>
    }

    #[test]
    fn splitserve_policy_lifts_slo_attainment_on_bursts() {
        // 3 overlapping jobs of 8 cores each against a 8-core pool.
        let jobs = vec![
            StreamJob { arrive_at_secs: 1.0, cores: 8, slo_secs: 8.0 },
            StreamJob { arrive_at_secs: 1.5, cores: 8, slo_secs: 8.0 },
            StreamJob { arrive_at_secs: 2.0, cores: 8, slo_secs: 8.0 },
        ];
        let spec = quiet_spec();
        let vm_only = run_job_stream(
            StreamPolicy::VmPoolOnly,
            8,
            M4_4XLARGE,
            &spec,
            &jobs,
            &factory(),
        );
        let ss = run_job_stream(
            StreamPolicy::SplitServe,
            8,
            M4_4XLARGE,
            &spec,
            &jobs,
            &factory(),
        );
        assert!(ss.lambdas_launched > 0, "bridging must have happened");
        assert!(
            ss.mean_latency() < vm_only.mean_latency(),
            "SplitServe {:.1}s vs VM-only {:.1}s",
            ss.mean_latency(),
            vm_only.mean_latency()
        );
        assert!(ss.slo_attainment() >= vm_only.slo_attainment());
    }

    #[test]
    fn quiet_stream_needs_no_lambdas() {
        // Jobs spaced far apart fit the pool; the controller stays idle.
        let jobs = vec![
            StreamJob { arrive_at_secs: 0.0, cores: 8, slo_secs: 60.0 },
            StreamJob { arrive_at_secs: 100.0, cores: 8, slo_secs: 60.0 },
        ];
        let spec = quiet_spec();
        let ss = run_job_stream(
            StreamPolicy::SplitServe,
            16,
            M4_4XLARGE,
            &spec,
            &jobs,
            &factory(),
        );
        assert_eq!(ss.slo_attainment(), 1.0);
        // With 16 cores for an 8-core job the backlog never exceeds the
        // live capacity enough to trigger scale-out.
        assert!(
            ss.lambdas_launched <= 8,
            "quiet stream should barely bridge: {}",
            ss.lambdas_launched
        );
    }

    #[test]
    fn bursty_arrivals_are_deterministic_and_ordered() {
        let a = bursty_arrivals(12, 3, 300.0, 30.0);
        let b = bursty_arrivals(12, 3, 300.0, 30.0);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrive_at_secs, y.arrive_at_secs);
        }
        assert!(a.iter().all(|j| j.arrive_at_secs < 300.0 + 24.0));
    }
}
