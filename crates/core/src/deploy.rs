//! The deployment layer: SplitServe's **launching facility** and
//! **VM/Lambda system state** (paper §4.2–4.3).
//!
//! A [`Deployment`] glues the simulated cloud, a shuffle store and the
//! engine together, and tracks where every executor runs — the state the
//! paper adds to `StandAloneSchedulerBackend` so it "may launch executors
//! on both VMs and Lambdas and divide a single job's tasks across them".

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use splitserve_cloud::{Cloud, CloudSpec, InstanceType, LambdaId, VmId};
use splitserve_des::{Fabric, Sim};
use splitserve_engine::{Engine, EngineConfig, ExecutorDesc, ExecutorId};
use splitserve_obs::SpanId;
use splitserve_storage::{
    HdfsSpec, HdfsStore, InstrumentedStore, LocalDiskStore, RedisSpec, RedisStore, S3Spec, S3Store,
    SharedStore, SqsSpec, SqsStore,
};

/// Which substrate holds intermediate shuffle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShuffleStoreKind {
    /// Executor-local disk (vanilla Spark dynamic allocation).
    Local,
    /// SplitServe's shared HDFS layer, colocated with the master.
    Hdfs,
    /// S3 (Qubole Spark-on-Lambda).
    S3,
    /// SQS queues (Flint).
    Sqs,
    /// A VM-backed Redis (Locus).
    Redis,
}

impl std::fmt::Display for ShuffleStoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShuffleStoreKind::Local => "local",
            ShuffleStoreKind::Hdfs => "hdfs",
            ShuffleStoreKind::S3 => "s3",
            ShuffleStoreKind::Sqs => "sqs",
            ShuffleStoreKind::Redis => "redis",
        };
        f.write_str(s)
    }
}

struct Inner {
    lambda_execs: HashMap<ExecutorId, LambdaId>,
    worker_vms: Vec<VmId>,
    next_lambda: u64,
    next_vm_exec: u64,
    lambda_memory_mb: u64,
}

/// A running SplitServe deployment: cloud + store + engine + the
/// executor-location state.
///
/// # Examples
///
/// ```
/// use splitserve::{Deployment, ShuffleStoreKind};
/// use splitserve_cloud::{CloudSpec, M4_XLARGE};
/// use splitserve_des::Sim;
///
/// let mut sim = Sim::new(1);
/// let d = Deployment::new(&mut sim, CloudSpec::default(), ShuffleStoreKind::Hdfs, M4_XLARGE);
/// assert_eq!(d.engine().active_executors(), 0);
/// ```
#[derive(Clone)]
pub struct Deployment {
    fabric: Fabric,
    cloud: Cloud,
    engine: Engine,
    store_kind: ShuffleStoreKind,
    master_vm: VmId,
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("store", &self.store_kind)
            .field("executors", &self.engine.active_executors())
            .finish()
    }
}

impl Deployment {
    /// Creates a deployment: provisions the master VM (long-running, per
    /// the paper's footnote: "the Spark master must itself be on a VM"),
    /// builds the chosen shuffle store (HDFS is colocated with the master,
    /// sharing its NIC and EBS bandwidth — the paper's setup), and starts
    /// an engine over it.
    pub fn new(
        sim: &mut Sim,
        cloud_spec: CloudSpec,
        store_kind: ShuffleStoreKind,
        master_type: InstanceType,
    ) -> Self {
        Self::with_engine_config(sim, cloud_spec, store_kind, master_type, EngineConfig::default())
    }

    /// Like [`Deployment::new`] with a custom engine configuration.
    pub fn with_engine_config(
        sim: &mut Sim,
        cloud_spec: CloudSpec,
        store_kind: ShuffleStoreKind,
        master_type: InstanceType,
        engine_cfg: EngineConfig,
    ) -> Self {
        Self::with_wrapped_store(sim, cloud_spec, store_kind, master_type, engine_cfg, |s| s)
    }

    /// Like [`Deployment::with_engine_config`], additionally threading the
    /// freshly built store through `wrap` before instrumentation. This is
    /// the seam the chaos plane uses to interpose its fault-injecting
    /// decorator *underneath* the metrics layer, so injected latency and
    /// errors are visible in `store_op_seconds` / `store_ops_total` like
    /// any organic slowness or failure would be.
    pub fn with_wrapped_store(
        sim: &mut Sim,
        cloud_spec: CloudSpec,
        store_kind: ShuffleStoreKind,
        master_type: InstanceType,
        engine_cfg: EngineConfig,
        wrap: impl FnOnce(SharedStore) -> SharedStore,
    ) -> Self {
        let fabric = Fabric::new();
        let cloud = Cloud::new(cloud_spec, fabric.clone());
        let master_vm = cloud.provision_vm_ready(sim, master_type);
        let store: SharedStore = match store_kind {
            ShuffleStoreKind::Local => Rc::new(LocalDiskStore::new(fabric.clone())),
            ShuffleStoreKind::Hdfs => {
                let hdfs = HdfsStore::new(HdfsSpec::default(), fabric.clone());
                hdfs.add_datanode(cloud.vm_nic(master_vm), cloud.vm_ebs(master_vm));
                Rc::new(hdfs)
            }
            ShuffleStoreKind::S3 => {
                Rc::new(S3Store::new(S3Spec::default(), fabric.clone(), cloud.clone()))
            }
            ShuffleStoreKind::Sqs => {
                Rc::new(SqsStore::new(SqsSpec::default(), fabric.clone(), cloud.clone()))
            }
            ShuffleStoreKind::Redis => {
                // Locus-style: a dedicated large VM hosts the store and is
                // billed for the whole run.
                let redis_vm = cloud.provision_vm_ready(sim, splitserve_cloud::M4_4XLARGE);
                Rc::new(RedisStore::new(
                    RedisSpec::default(),
                    fabric.clone(),
                    cloud.vm_nic(redis_vm),
                ))
            }
        };
        let store = wrap(store);
        // With observability on, every store op is measured on the shared
        // registry; with it off this is the identity function.
        let store = InstrumentedStore::wrap(store, engine_cfg.obs.metrics.clone());
        let engine = Engine::new(engine_cfg, store);
        Deployment {
            fabric,
            cloud,
            engine,
            store_kind,
            master_vm,
            inner: Rc::new(RefCell::new(Inner {
                lambda_execs: HashMap::new(),
                worker_vms: Vec::new(),
                next_lambda: 0,
                next_vm_exec: 0,
                lambda_memory_mb: 1_536,
            })),
        }
    }

    /// The network fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The simulated cloud (billing lives here).
    pub fn cloud(&self) -> &Cloud {
        &self.cloud
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Which shuffle substrate this deployment uses.
    pub fn store_kind(&self) -> ShuffleStoreKind {
        self.store_kind
    }

    /// The master's VM (hosts the driver, and HDFS when selected).
    pub fn master_vm(&self) -> VmId {
        self.master_vm
    }

    /// The first worker VM provisioned, if any — where "cores freeing up
    /// on an existing VM" materialize during a segue.
    pub fn first_worker_vm(&self) -> Option<VmId> {
        self.inner.borrow().worker_vms.first().copied()
    }

    /// Sets the memory size used for subsequently launched Lambda
    /// executors (default 1 536 MB = one vCPU).
    pub fn set_lambda_memory_mb(&self, mb: u64) {
        self.inner.borrow_mut().lambda_memory_mb = mb;
    }

    /// Provisions a ready VM of `itype` and registers `cores` executors on
    /// it (one core each). Returns the VM id and the executor ids.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the instance's vCPUs.
    pub fn add_vm_workers(
        &self,
        sim: &mut Sim,
        itype: InstanceType,
        cores: u32,
    ) -> (VmId, Vec<ExecutorId>) {
        assert!(
            cores <= itype.vcpus,
            "{} cores requested on {} ({} vCPUs)",
            cores,
            itype.name,
            itype.vcpus
        );
        let vm = self.cloud.provision_vm_ready(sim, itype);
        self.inner.borrow_mut().worker_vms.push(vm);
        let execs = self.add_executors_on_vm(sim, vm, cores);
        (vm, execs)
    }

    /// Registers `cores` additional executors on an existing, running VM —
    /// the "executor on an existing VM becomes available" segue target.
    pub fn add_executors_on_vm(&self, sim: &mut Sim, vm: VmId, cores: u32) -> Vec<ExecutorId> {
        let itype = self.cloud.vm_type(vm);
        let nic = self.cloud.vm_nic(vm);
        let ebs = self.cloud.vm_ebs(vm);
        let mem_per_core = itype.memory_mb / u64::from(itype.vcpus);
        let mut ids = Vec::new();
        for _ in 0..cores {
            let n = {
                let mut inner = self.inner.borrow_mut();
                let n = inner.next_vm_exec;
                inner.next_vm_exec += 1;
                n
            };
            let desc = ExecutorDesc::vm(format!("e-vm-{n:04}"), nic, ebs, mem_per_core);
            ids.push(desc.id);
            self.engine.register_executor(sim, desc);
        }
        ids
    }

    /// Requests a *new* VM (with its minutes-long boot) and registers
    /// `cores` executors when it becomes ready — VM-based autoscaling.
    /// `on_ready` receives the new executor ids.
    pub fn request_vm_workers(
        &self,
        sim: &mut Sim,
        itype: InstanceType,
        cores: u32,
        on_ready: impl FnOnce(&mut Sim, Vec<ExecutorId>) + 'static,
    ) {
        assert!(cores <= itype.vcpus, "too many cores for {}", itype.name);
        let this = self.clone();
        self.cloud.request_vm(sim, itype, move |sim, vm| {
            this.inner.borrow_mut().worker_vms.push(vm);
            let ids = this.add_executors_on_vm(sim, vm, cores);
            on_ready(sim, ids);
        });
    }

    /// The launching facility's core move: bridge a shortfall of `count`
    /// cores with Lambda-based executors *right now* (paper §4.2). Each
    /// Lambda registers as an executor when its container is ready; if the
    /// platform later kills it (the 15-minute *lifetime* limit on a
    /// running invocation), the engine sees an abrupt executor loss.
    ///
    /// Whether a start is ~100 ms warm or multi-second cold is decided by
    /// the cloud's [`splitserve_cloud::ColdStartPolicy`]: by default
    /// released containers stay warm for a fixed 15-minute *idle* window
    /// (matching observed AWS keepalive), with
    /// [`splitserve_cloud::ColdStartSpec::forever`] as the escape hatch
    /// the digest-pinned suites use to keep the legacy never-expiring
    /// pool. Start outcomes land in `lambda_starts_total{start}` and the
    /// per-policy `lambda_start_seconds` quantile digest.
    pub fn add_lambda_executors(&self, sim: &mut Sim, count: u32) -> Vec<ExecutorId> {
        let memory_mb = self.inner.borrow().lambda_memory_mb;
        let mut ids = Vec::new();
        for _ in 0..count {
            let n = {
                let mut inner = self.inner.borrow_mut();
                let n = inner.next_lambda;
                inner.next_lambda += 1;
                n
            };
            let exec_id = ExecutorId::new(format!("lambda-{n:04}"));
            ids.push(exec_id);
            let this_ready = self.clone();
            let this_kill = self.clone();
            let exec_ready = exec_id;
            let exec_kill = exec_id;
            // The start span covers invoke → executor ready. Whether this
            // invoke is warm or cold is decided synchronously inside
            // `invoke_lambda`, so the span (whose name we only know then)
            // is opened just after via a shared cell — still at `invoked_at`
            // on the virtual clock, before any callback can run.
            let obs = self.engine.obs().clone();
            let start_span = Rc::new(Cell::new(SpanId::NONE));
            let span_ready = Rc::clone(&start_span);
            let obs_ready = obs.clone();
            let invoked_at = sim.now();
            let policy = self.cloud.policy_name();
            let (warm_before, _) = self.cloud.start_counts();
            let lambda = self.cloud.invoke_lambda(
                sim,
                memory_mb,
                move |sim, lambda| {
                    obs_ready.spans.close(span_ready.get(), sim.now());
                    obs_ready.metrics.record_quantile(
                        "lambda_start_seconds",
                        &[("policy", policy)],
                        sim.now().saturating_since(invoked_at).as_secs_f64(),
                    );
                    let desc = ExecutorDesc::lambda(
                        exec_ready.as_str(),
                        this_ready.cloud.lambda_nic(lambda),
                        memory_mb,
                    );
                    this_ready.engine.register_executor(sim, desc);
                },
                move |sim, _lambda| {
                    this_kill.engine.kill_executor(sim, &exec_kill);
                },
            );
            let (warm_after, _) = self.cloud.start_counts();
            let start = if warm_after > warm_before {
                "warm start"
            } else {
                "cold start"
            };
            start_span.set(obs.spans.open(invoked_at, "lambda", exec_id.as_str(), start));
            obs.metrics
                .counter_add("lambda_starts_total", &[("start", start)], 1);
            self.inner.borrow_mut().lambda_execs.insert(exec_id, lambda);
        }
        ids
    }

    /// Executor ids of all Lambdas launched so far (registration order).
    pub fn lambda_executors(&self) -> Vec<ExecutorId> {
        let inner = self.inner.borrow();
        let mut v: Vec<ExecutorId> = inner.lambda_execs.keys().cloned().collect();
        v.sort();
        v
    }

    /// Gracefully drains one Lambda executor: the engine stops offering it
    /// tasks, it finishes its current one, and the underlying Lambda is
    /// released (billing stops, container re-warms) — the segue that
    /// avoids Spark's execution rollback.
    pub fn drain_lambda_executor(&self, sim: &mut Sim, exec: &ExecutorId) {
        let Some(lambda) = self.inner.borrow().lambda_execs.get(exec).copied() else {
            return;
        };
        let cloud = self.cloud.clone();
        // Only a live, not-yet-draining executor actually drains; bail like
        // the engine would so no span is left dangling on a no-op call.
        match self.engine.executor_info(exec) {
            Some(info) if info.alive && !info.draining => {}
            _ => return,
        }
        // The drain span gets a per-executor track on the segue lane: it
        // overlaps the executor's in-flight task span, and concurrent
        // drains overlap each other, so it can share a track with neither.
        let obs = self.engine.obs().clone();
        let drain_started = sim.now();
        let span = obs
            .spans
            .open(drain_started, "segue", exec.as_str(), &format!("segue drain {exec}"));
        self.engine.drain_executor(sim, exec, move |sim, _| {
            obs.spans.close(span, sim.now());
            obs.metrics.observe(
                "segue_drain_seconds",
                &[],
                sim.now().saturating_since(drain_started).as_secs_f64(),
            );
            cloud.release_lambda(sim, lambda);
        });
    }

    /// Drains every Lambda executor (the end state of a full segue).
    pub fn drain_all_lambdas(&self, sim: &mut Sim) {
        for exec in self.lambda_executors() {
            self.drain_lambda_executor(sim, &exec);
        }
    }

    /// Ends the run: terminates all VMs, releases all Lambdas, and
    /// finalizes the warm pool so the bill *and* the cold-start outcome
    /// metrics are final — `lambda_cold_start_fraction` (gauge),
    /// `lambda_wasted_memory_seconds_total` (GB·s of idle warm memory,
    /// gauge) and `lambda_pool_evictions_total{reason}` land on the obs
    /// registry here, labelled with the active policy.
    pub fn shutdown(&self, sim: &mut Sim) {
        self.cloud.shutdown_all(sim);
        let stats = self.cloud.pool_stats();
        let policy = self.cloud.policy_name();
        let m = &self.engine.obs().metrics;
        let labels = &[("policy", policy)];
        m.gauge_set("lambda_cold_start_fraction", labels, stats.cold_fraction());
        m.gauge_set(
            "lambda_wasted_memory_seconds_total",
            labels,
            stats.wasted_gb_seconds(),
        );
        for (reason, n) in [
            ("expired", stats.evicted_expired),
            ("pressure", stats.evicted_pressure),
            ("shutdown", stats.evicted_shutdown),
        ] {
            if n > 0 {
                m.counter_add("lambda_pool_evictions_total", &[("reason", reason)], n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_cloud::M4_XLARGE;
    use splitserve_des::{Dist, SimDuration, SimTime};
    use splitserve_engine::{collect_partitions, Dataset};
    use std::cell::RefCell;

    fn quiet_cloud() -> CloudSpec {
        CloudSpec {
            vm_boot: Dist::constant(110.0),
            lambda_warm_start: Dist::constant(0.1),
            lambda_cold_start: Dist::constant(3.0),
            lambda_net_jitter: Dist::constant(1.0),
            ..CloudSpec::default()
        }
    }

    fn run_sum_job(sim: &mut Sim, d: &Deployment) -> Vec<(u64, u64)> {
        let ds = Dataset::parallelize((0..1_000u64).map(|i| (i % 8, 1u64)).collect(), 8)
            .reduce_by_key(4, |a, b| a + b);
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine().submit_job(sim, ds.node(), move |_, r| {
            *o.borrow_mut() = Some(collect_partitions::<(u64, u64)>(r.partitions));
        });
        sim.run();
        let mut rows = out.borrow_mut().take().expect("job done");
        rows.sort();
        rows
    }

    #[test]
    fn vm_only_deployment_runs_jobs() {
        let mut sim = Sim::new(0);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_vm_workers(&mut sim, M4_XLARGE, 4);
        let rows = run_sum_job(&mut sim, &d);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|(_, c)| *c == 125));
    }

    #[test]
    fn lambda_only_deployment_runs_jobs() {
        let mut sim = Sim::new(0);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 4);
        let rows = run_sum_job(&mut sim, &d);
        assert_eq!(rows.len(), 8);
        // Lambdas actually did the work.
        let execs = d.engine().executors();
        assert!(execs.iter().all(|e| e.id.as_str().starts_with("lambda-")));
        assert!(execs.iter().any(|e| e.tasks_done > 0));
    }

    #[test]
    fn hybrid_splits_one_job_across_vms_and_lambdas() {
        let mut sim = Sim::new(0);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_vm_workers(&mut sim, M4_XLARGE, 2);
        d.add_lambda_executors(&mut sim, 2);
        // A wider, slower job so every executor gets work.
        let ds = Dataset::<u64>::generate(16, |p| {
            (0..50_000u64).map(|i| i + p as u64).collect()
        })
        .map(|x| (x % 5, *x))
        .reduce_by_key(4, |a, b| a + b);
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine().submit_job(&mut sim, ds.node(), move |_, r| {
            *o.borrow_mut() = Some(r.metrics);
        });
        sim.run();
        let metrics = out.borrow_mut().take().expect("job done");
        assert!(metrics.tasks_on_vm > 0, "VMs must run tasks");
        assert!(metrics.tasks_on_lambda > 0, "Lambdas must run tasks");
    }

    #[test]
    fn drained_lambda_is_released_and_rewarmed() {
        let mut sim = Sim::new(0);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 2);
        sim.run_until(SimTime::from_secs(1));
        let (warm_before, _) = d.cloud().start_counts();
        d.drain_all_lambdas(&mut sim);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(d.engine().active_executors(), 0);
        // Released Lambdas returned to the warm pool: invoking again is warm.
        d.add_lambda_executors(&mut sim, 1);
        sim.run_until(SimTime::from_secs(3));
        let (warm_after, cold) = d.cloud().start_counts();
        assert_eq!(warm_after, warm_before + 1);
        assert_eq!(cold, 0);
    }

    #[test]
    fn lambda_lifetime_kill_reaches_engine() {
        let mut sim = Sim::new(0);
        let spec = CloudSpec {
            lambda_lifetime: SimDuration::from_secs(5),
            ..quiet_cloud()
        };
        let d = Deployment::new(&mut sim, spec, ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 1);
        sim.run_until(SimTime::from_secs(60));
        let execs = d.engine().executors();
        assert_eq!(execs.len(), 1);
        assert!(!execs[0].alive, "lifetime kill must mark executor dead");
    }

    #[test]
    fn request_vm_workers_arrive_after_boot() {
        let mut sim = Sim::new(0);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let arrived = Rc::new(RefCell::new(None));
        let a = Rc::clone(&arrived);
        d.request_vm_workers(&mut sim, M4_XLARGE, 4, move |sim, ids| {
            *a.borrow_mut() = Some((sim.now().as_secs_f64(), ids.len()));
        });
        sim.run();
        let (at, n) = arrived.borrow_mut().take().expect("vm arrived");
        assert_eq!(at, 110.0);
        assert_eq!(n, 4);
        assert_eq!(d.engine().active_executors(), 4);
    }

    #[test]
    fn redis_deployment_provisions_backing_vm() {
        let mut sim = Sim::new(0);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Redis, M4_XLARGE);
        d.add_vm_workers(&mut sim, M4_XLARGE, 2);
        let rows = run_sum_job(&mut sim, &d);
        assert_eq!(rows.len(), 8);
        // Master + Redis VM + worker accrue cost.
        d.shutdown(&mut sim);
        let vm_cost = d.cloud().cost_for(splitserve_cloud::Category::VmCompute);
        assert!(vm_cost > 0.0);
    }
}
