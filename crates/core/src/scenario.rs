//! The paper's evaluation scenarios (§5.1 "Metrics and Scenarios"): eight
//! ways a latency-critical job can meet the cluster, from vanilla Spark on
//! too-few VMs to SplitServe's hybrid-with-segue.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_cloud::{CloudSpec, InstanceType, M4_4XLARGE, M4_XLARGE};
use splitserve_des::{Sim, SimDuration};
use splitserve_engine::{Engine, EngineConfig, EngineEvent, JobMetrics};
use splitserve_storage::StoreStats;

use crate::deploy::{Deployment, ShuffleStoreKind};
use crate::segue::{arm_segue, ReplacementSource, SegueConfig};

/// A workload's driver program: submits one or more jobs to the engine and
/// signals completion. Implementations live in `splitserve-workloads`.
pub trait DriverProgram {
    /// Workload name for tables ("PageRank", "K-means", "TPC-DS Q95", …).
    fn name(&self) -> String;

    /// The job's natural degree of parallelism (number of reduce/result
    /// partitions it was configured for).
    fn parallelism(&self) -> usize;

    /// Submits the workload; must call `done` exactly once when every job
    /// has finished.
    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>);
}

/// The eight evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// `Spark r VM`: vanilla Spark stuck on the `r < R` cores it found.
    SparkSmallVm,
    /// `Spark R VM`: vanilla Spark with all `R` cores already provisioned
    /// — the no-autoscaling best case.
    SparkRVm,
    /// `Spark r/R autoscale`: start on `r` cores, request the missing VMs
    /// after a detection delay, absorb them when they boot.
    SparkAutoscale,
    /// `Qubole R La`: everything on Lambdas, shuffling through S3.
    QuboleLambda,
    /// `SS R VM`: SplitServe with all cores on VMs (measures SplitServe's
    /// own overhead vs `Spark R VM` — the HDFS shuffle detour).
    SsRVm,
    /// `SS R La`: SplitServe all-Lambda, shuffling through HDFS.
    SsRLambda,
    /// `SS r VM / Δ La`: the hybrid — `r` VM cores plus `Δ = R - r`
    /// Lambdas, no segue.
    SsHybrid,
    /// `SS r VM / Δ La Segue`: the hybrid plus segue to VM cores that
    /// become available mid-job.
    SsHybridSegue,
}

impl Scenario {
    /// All scenarios in the paper's presentation order.
    pub fn all() -> [Scenario; 8] {
        [
            Scenario::SparkSmallVm,
            Scenario::SparkRVm,
            Scenario::SparkAutoscale,
            Scenario::QuboleLambda,
            Scenario::SsRVm,
            Scenario::SsRLambda,
            Scenario::SsHybrid,
            Scenario::SsHybridSegue,
        ]
    }

    /// The paper's label for this scenario given `R` and `r`.
    pub fn label(&self, required: u32, available: u32) -> String {
        let delta = required - available;
        match self {
            Scenario::SparkSmallVm => format!("Spark {available} VM"),
            Scenario::SparkRVm => format!("Spark {required} VM"),
            Scenario::SparkAutoscale => format!("Spark {available}/{required} autoscale"),
            Scenario::QuboleLambda => format!("Qubole {required} La"),
            Scenario::SsRVm => format!("SS {required} VM"),
            Scenario::SsRLambda => format!("SS {required} La"),
            Scenario::SsHybrid => format!("SS {available} VM / {delta} La"),
            Scenario::SsHybridSegue => format!("SS {available} VM / {delta} La Segue"),
        }
    }

    /// The shuffle substrate this scenario uses.
    pub fn store_kind(&self) -> ShuffleStoreKind {
        match self {
            Scenario::SparkSmallVm | Scenario::SparkRVm | Scenario::SparkAutoscale => {
                ShuffleStoreKind::Local
            }
            Scenario::QuboleLambda => ShuffleStoreKind::S3,
            Scenario::SsRVm
            | Scenario::SsRLambda
            | Scenario::SsHybrid
            | Scenario::SsHybridSegue => ShuffleStoreKind::Hdfs,
        }
    }
}

/// Cluster and policy parameters shared by a scenario sweep.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// `R`: the cores the job needs to meet its SLO.
    pub required_cores: u32,
    /// `r`: the cores free on VMs when the job arrives.
    pub available_cores: u32,
    /// Instance type hosting VM executors.
    pub worker_type: InstanceType,
    /// Instance type hosting the master (and HDFS, when used).
    pub master_type: InstanceType,
    /// Memory per Lambda executor.
    pub lambda_memory_mb: u64,
    /// `spark.lambda.executor.timeout` for the segue scenario.
    pub lambda_timeout: SimDuration,
    /// How long the autoscaler takes to decide it needs more VMs.
    pub autoscale_detect_delay: SimDuration,
    /// For the segue scenario: when cores free up on an existing VM; if
    /// `None`, a fresh VM is requested in the background at job start.
    pub segue_existing_cores_at: Option<SimDuration>,
    /// Cloud model parameters.
    pub cloud: CloudSpec,
    /// Engine parameters.
    pub engine: EngineConfig,
    /// Simulation seed (vary for error bars).
    pub seed: u64,
}

impl ScenarioSpec {
    /// Switches the observability layer on for runs of this spec and
    /// returns the shared handle: the engine, deployment and storage
    /// layers all record into it, and the caller reads/exports afterwards
    /// (Chrome trace, Prometheus text). Off by default — the layer costs
    /// nothing unless this is called.
    pub fn enable_observability(&mut self) -> splitserve_obs::Obs {
        let obs = splitserve_obs::Obs::enabled();
        self.engine.obs = obs.clone();
        obs
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            required_cores: 16,
            available_cores: 4,
            worker_type: M4_4XLARGE,
            master_type: M4_XLARGE,
            lambda_memory_mb: 1_536,
            lambda_timeout: SimDuration::from_secs(60),
            autoscale_detect_delay: SimDuration::from_secs(5),
            segue_existing_cores_at: Some(SimDuration::from_secs(45)),
            cloud: CloudSpec::default(),
            engine: EngineConfig::default(),
            seed: 42,
        }
    }
}

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// The paper-style label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Job(s) wall-clock execution time in (virtual) seconds.
    pub execution_secs: f64,
    /// Total marginal cost in USD (VMs + Lambdas + storage requests).
    pub cost_usd: f64,
    /// Per-job metrics, submission order — shared with the engine's job
    /// table ([`Engine::completed_job_metrics`] no longer deep-copies).
    pub jobs: Vec<std::sync::Arc<JobMetrics>>,
    /// Task completions on VM executors.
    pub tasks_on_vm: u64,
    /// Task completions on Lambda executors.
    pub tasks_on_lambda: u64,
    /// Tasks re-run due to failures or rollback.
    pub tasks_recomputed: u64,
    /// Store traffic counters.
    pub store_stats: StoreStats,
    /// The full engine event log (timelines).
    pub events: Vec<EngineEvent>,
}

impl ScenarioResult {
    /// Slowdown of this run relative to a baseline execution time.
    pub fn slowdown_vs(&self, baseline_secs: f64) -> f64 {
        self.execution_secs / baseline_secs
    }
}

/// Runs `scenario` with the given spec and workload.
///
/// The workload is built fresh inside the run (datasets are per-run), the
/// deployment is constructed per the scenario, the driver program is
/// submitted at t=0, and on completion all resources are shut down so the
/// bill is final.
pub fn run_scenario(
    scenario: Scenario,
    spec: &ScenarioSpec,
    workload: &dyn Fn() -> Box<dyn DriverProgram>,
) -> ScenarioResult {
    let mut sim = Sim::new(spec.seed);
    let d = Deployment::with_engine_config(
        &mut sim,
        spec.cloud.clone(),
        scenario.store_kind(),
        spec.master_type.clone(),
        spec.engine.clone(),
    );
    d.set_lambda_memory_mb(spec.lambda_memory_mb);
    let big_r = spec.required_cores;
    let small_r = spec.available_cores.min(big_r);
    let delta = big_r - small_r;

    // Initial executors.
    match scenario {
        Scenario::SparkRVm | Scenario::SsRVm => provision_vm_cores(&mut sim, &d, spec, big_r),
        Scenario::SparkSmallVm | Scenario::SparkAutoscale => {
            provision_vm_cores(&mut sim, &d, spec, small_r)
        }
        Scenario::QuboleLambda | Scenario::SsRLambda => {
            d.add_lambda_executors(&mut sim, big_r);
        }
        Scenario::SsHybrid | Scenario::SsHybridSegue => {
            provision_vm_cores(&mut sim, &d, spec, small_r);
            d.add_lambda_executors(&mut sim, delta);
        }
    }

    // Scenario-specific control actions.
    match scenario {
        Scenario::SparkAutoscale => {
            // After the detection delay, request VMs for the missing cores.
            let d2 = d.clone();
            let itype = spec.worker_type.clone();
            sim.schedule_in(spec.autoscale_detect_delay, move |sim| {
                let mut remaining = delta;
                while remaining > 0 {
                    let batch = remaining.min(itype.vcpus);
                    remaining -= batch;
                    d2.request_vm_workers(sim, itype.clone(), batch, |_, _| {});
                }
            });
        }
        Scenario::SsHybridSegue => {
            let replacement = match spec.segue_existing_cores_at {
                Some(at) => ReplacementSource::ExistingVmCores {
                    cores: delta,
                    available_in: at,
                },
                None => ReplacementSource::NewVms {
                    itype: spec.worker_type.clone(),
                    cores: delta,
                },
            };
            arm_segue(
                &mut sim,
                &d,
                SegueConfig {
                    lambda_timeout: spec.lambda_timeout,
                    replacement,
                },
            );
        }
        _ => {}
    }

    // Run the workload.
    let program = workload();
    let name = program.name();
    let finished_at: Rc<RefCell<Option<f64>>> = Rc::new(RefCell::new(None));
    let f = Rc::clone(&finished_at);
    let d2 = d.clone();
    let start = sim.now();
    program.submit(
        &mut sim,
        d.engine(),
        Box::new(move |sim| {
            *f.borrow_mut() = Some(sim.now().saturating_since(start).as_secs_f64());
            d2.shutdown(sim);
        }),
    );
    sim.run();

    let execution_secs = finished_at
        .borrow()
        .expect("workload must complete — deadlocked scenario?");
    let jobs = d.engine().completed_job_metrics();
    let tasks_on_vm = jobs.iter().map(|j| j.tasks_on_vm).sum();
    let tasks_on_lambda = jobs.iter().map(|j| j.tasks_on_lambda).sum();
    let tasks_recomputed = jobs.iter().map(|j| j.tasks_recomputed).sum();
    ScenarioResult {
        scenario,
        label: scenario.label(big_r, small_r),
        workload: name,
        execution_secs,
        cost_usd: d.cloud().total_cost(),
        jobs,
        tasks_on_vm,
        tasks_on_lambda,
        tasks_recomputed,
        store_stats: d.engine().store().stats(),
        events: d.engine().event_log().snapshot(),
    }
}

/// Provisions `cores` VM executor cores using as few `worker_type`
/// instances as possible.
fn provision_vm_cores(sim: &mut Sim, d: &Deployment, spec: &ScenarioSpec, cores: u32) {
    let mut remaining = cores;
    while remaining > 0 {
        let batch = remaining.min(spec.worker_type.vcpus);
        d.add_vm_workers(sim, spec.worker_type.clone(), batch);
        remaining -= batch;
    }
}

/// Convenience: run every scenario in `scenarios` and return the results
/// in order.
pub fn run_scenarios(
    scenarios: &[Scenario],
    spec: &ScenarioSpec,
    workload: &dyn Fn() -> Box<dyn DriverProgram>,
) -> Vec<ScenarioResult> {
    scenarios
        .iter()
        .map(|s| run_scenario(*s, spec, workload))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_des::Dist;
    use splitserve_engine::{collect_partitions, Dataset};

    /// A small shuffle-light test workload.
    struct TestLoad {
        parallelism: usize,
        work_per_record: f64,
    }

    impl DriverProgram for TestLoad {
        fn name(&self) -> String {
            "test-load".into()
        }
        fn parallelism(&self) -> usize {
            self.parallelism
        }
        fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
            let parts = self.parallelism;
            let ds = Dataset::<u64>::generate(parts * 4, |p| {
                (0..5_000u64).map(|i| i + p as u64).collect()
            })
            .map_with_cost(|x| (*x % 32, 1u64), Some(self.work_per_record))
            .reduce_by_key(parts, |a, b| a + b);
            engine.submit_job(sim, ds.node(), move |sim, out| {
                let rows = collect_partitions::<(u64, u64)>(out.partitions);
                assert_eq!(rows.len(), 32, "workload result must be correct");
                done(sim);
            });
        }
    }

    fn quiet_spec() -> ScenarioSpec {
        ScenarioSpec {
            required_cores: 8,
            available_cores: 2,
            cloud: CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.12),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                ..CloudSpec::default()
            },
            ..ScenarioSpec::default()
        }
    }

    fn load() -> Box<dyn Fn() -> Box<dyn DriverProgram>> {
        Box::new(|| {
            Box::new(TestLoad {
                parallelism: 8,
                work_per_record: 2e-4,
            })
        })
    }

    #[test]
    fn all_eight_scenarios_complete() {
        let spec = quiet_spec();
        let results = run_scenarios(&Scenario::all(), &spec, &load());
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.execution_secs > 0.0, "{}: no time elapsed", r.label);
            assert!(r.cost_usd > 0.0, "{}: no cost", r.label);
        }
    }

    #[test]
    fn labels_match_paper_convention() {
        assert_eq!(Scenario::SparkSmallVm.label(32, 8), "Spark 8 VM");
        assert_eq!(Scenario::SparkRVm.label(32, 8), "Spark 32 VM");
        assert_eq!(Scenario::QuboleLambda.label(32, 8), "Qubole 32 La");
        assert_eq!(Scenario::SsHybrid.label(32, 8), "SS 8 VM / 24 La");
        assert_eq!(
            Scenario::SsHybridSegue.label(16, 3),
            "SS 3 VM / 13 La Segue"
        );
    }

    #[test]
    fn under_provisioned_is_slower_than_full() {
        let spec = quiet_spec();
        let full = run_scenario(Scenario::SparkRVm, &spec, &load());
        let small = run_scenario(Scenario::SparkSmallVm, &spec, &load());
        assert!(
            small.execution_secs > full.execution_secs * 2.0,
            "8 vs 2 cores: {} vs {}",
            small.execution_secs,
            full.execution_secs
        );
    }

    #[test]
    fn hybrid_beats_vm_autoscale_for_latency_critical_jobs() {
        let spec = quiet_spec();
        let auto = run_scenario(Scenario::SparkAutoscale, &spec, &load());
        let hybrid = run_scenario(Scenario::SsHybrid, &spec, &load());
        assert!(
            hybrid.execution_secs < auto.execution_secs,
            "hybrid {} vs autoscale {}",
            hybrid.execution_secs,
            auto.execution_secs
        );
        assert!(hybrid.tasks_on_lambda > 0 && hybrid.tasks_on_vm > 0);
    }

    #[test]
    fn ss_r_vm_is_close_to_spark_r_vm() {
        let spec = quiet_spec();
        let spark = run_scenario(Scenario::SparkRVm, &spec, &load());
        let ss = run_scenario(Scenario::SsRVm, &spec, &load());
        let ratio = ss.execution_secs / spark.execution_secs;
        assert!(
            ratio < 1.8,
            "SS overhead should be modest (paper: ≤1.6x worst case): {ratio}"
        );
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let spec = quiet_spec();
        let a = run_scenario(Scenario::SsHybrid, &spec, &load());
        let b = run_scenario(Scenario::SsHybrid, &spec, &load());
        assert_eq!(a.execution_secs, b.execution_secs);
        assert_eq!(a.cost_usd, b.cost_usd);
        assert_eq!(a.events.len(), b.events.len());
    }

    #[test]
    fn observability_captures_the_hybrid_segue_run() {
        let mut spec = quiet_spec();
        // Make the segue land mid-job: replacements at 1 s, lambdas aged
        // out 2 s after registration.
        spec.segue_existing_cores_at = Some(SimDuration::from_secs(1));
        spec.lambda_timeout = SimDuration::from_secs(2);
        let obs = spec.enable_observability();
        let r = run_scenario(Scenario::SsHybridSegue, &spec, &load());
        assert!(r.tasks_on_vm > 0 && r.tasks_on_lambda > 0);

        let spans = obs.spans.finished_spans();
        assert!(
            spans.iter().any(|s| s.lane == "vm" && s.name.starts_with("task ")),
            "VM executor lane has task spans"
        );
        assert!(
            spans
                .iter()
                .any(|s| s.lane == "lambda" && s.name.starts_with("task ")),
            "Lambda executor lane has task spans"
        );
        assert!(
            spans.iter().any(|s| s.name == "warm start" || s.name == "cold start"),
            "lambda start spans recorded"
        );
        assert!(
            spans.iter().any(|s| s.name.starts_with("segue drain")),
            "segue drain span recorded"
        );
        assert_eq!(obs.spans.nesting_violation(), None);
        // The storage decorator saw the HDFS traffic.
        assert!(obs.metrics.counter_total("store_ops_total") > 0);
        assert!(
            obs.metrics
                .histogram("segue_drain_seconds", &[])
                .is_some_and(|h| h.count > 0),
            "drain latency observed"
        );
        // And the whole thing exports.
        let trace = obs.spans.to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(obs.metrics.render_prometheus().contains("# TYPE"));
    }

    #[test]
    fn scenario_obs_is_off_by_default() {
        let spec = quiet_spec();
        assert!(!spec.engine.obs.is_enabled());
        let r = run_scenario(Scenario::SsHybrid, &spec, &load());
        assert!(r.execution_secs > 0.0);
    }

    #[test]
    fn qubole_uses_s3_and_pays_request_costs() {
        let spec = quiet_spec();
        let q = run_scenario(Scenario::QuboleLambda, &spec, &load());
        assert_eq!(q.tasks_on_vm, 0, "Qubole runs everything on Lambdas");
        assert!(q.store_stats.puts > 0);
    }
}
