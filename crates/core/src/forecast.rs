//! The inter-job workload model of Figure 2: predicted executor demand
//! m(t) with confidence bands m(t) ± 2σ(t) over a workday, a realized
//! demand path w(t), and the provisioning policies a cost-conscious tenant
//! would compare.
//!
//! SplitServe itself handles *intra-job* resource management; this module
//! supplies the surrounding story — how often a job arrives to find fewer
//! VM cores than it needs (a *shortfall*, bridged by Lambdas) and how many
//! VM-core-hours each provisioning policy pays for.

use splitserve_des::Dist;
use splitserve_rt::rng::SmallRng;

/// Demand model for one workday: a base load plus morning and afternoon
/// peaks, with demand uncertainty proportional to the mean.
#[derive(Debug, Clone)]
pub struct DayModel {
    /// Overnight baseline demand in executors.
    pub base: f64,
    /// Peak heights in executors (morning, afternoon).
    pub peak_heights: (f64, f64),
    /// Peak centers in hours (e.g. 10.5, 15.0).
    pub peak_centers: (f64, f64),
    /// Peak widths in hours (standard deviation of the bumps).
    pub peak_widths: (f64, f64),
    /// σ(t) as a fraction of m(t).
    pub sigma_frac: f64,
    /// AR(1) correlation of the realized demand's deviation between
    /// consecutive samples.
    pub ar_rho: f64,
}

impl Default for DayModel {
    fn default() -> Self {
        DayModel {
            base: 20.0,
            peak_heights: (60.0, 45.0),
            peak_centers: (10.5, 15.5),
            peak_widths: (1.6, 2.2),
            sigma_frac: 0.15,
            ar_rho: 0.9,
        }
    }
}

/// One sample of the Figure 2 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandPoint {
    /// Time of day in hours.
    pub t_hours: f64,
    /// Predicted mean demand m(t), executors.
    pub mean: f64,
    /// Lower band m(t) − 2σ(t).
    pub lo: f64,
    /// Upper band m(t) + 2σ(t).
    pub hi: f64,
    /// Realized demand w(t).
    pub realized: f64,
}

impl DayModel {
    /// Predicted mean demand at `t_hours`.
    pub fn mean(&self, t_hours: f64) -> f64 {
        let bump = |h: f64, c: f64, w: f64| h * (-((t_hours - c) / w).powi(2) / 2.0).exp();
        self.base
            + bump(self.peak_heights.0, self.peak_centers.0, self.peak_widths.0)
            + bump(self.peak_heights.1, self.peak_centers.1, self.peak_widths.1)
    }

    /// Demand standard deviation at `t_hours`.
    pub fn sigma(&self, t_hours: f64) -> f64 {
        self.sigma_frac * self.mean(t_hours)
    }

    /// Generates `samples` points across a 24-hour day with a seeded AR(1)
    /// realized-demand path — the full Figure 2 series.
    pub fn series(&self, samples: usize, seed: u64) -> Vec<DemandPoint> {
        assert!(samples >= 2, "need at least two samples");
        let mut rng = SmallRng::seed_from_u64(seed);
        let noise = Dist::normal(0.0, 1.0);
        let mut dev = 0.0f64; // AR(1) deviation in units of σ(t)
        let innovation_scale = (1.0 - self.ar_rho * self.ar_rho).sqrt();
        (0..samples)
            .map(|i| {
                let t = 24.0 * i as f64 / (samples - 1) as f64;
                let m = self.mean(t);
                let s = self.sigma(t);
                dev = self.ar_rho * dev + innovation_scale * noise.sample(&mut rng);
                DemandPoint {
                    t_hours: t,
                    mean: m,
                    lo: (m - 2.0 * s).max(0.0),
                    hi: m + 2.0 * s,
                    realized: (m + dev * s).max(0.0),
                }
            })
            .collect()
    }
}

/// How a tenant sizes its VM fleet against predicted demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProvisionPolicy {
    /// Provision `m(t) + k·σ(t)` cores (the conservative band).
    MeanPlusSigma(f64),
    /// Provision exactly `m(t)` cores (lean; relies on Lambdas to bridge).
    Mean,
}

impl ProvisionPolicy {
    /// Cores provisioned at a demand point.
    pub fn provisioned(&self, p: &DemandPoint) -> f64 {
        let sigma = (p.hi - p.mean) / 2.0;
        match self {
            ProvisionPolicy::MeanPlusSigma(k) => p.mean + k * sigma,
            ProvisionPolicy::Mean => p.mean,
        }
    }

    /// A stable, filename-safe label for dashboards and artifacts, e.g.
    /// `"mean+2.0sigma"` or `"mean"`.
    pub fn label(&self) -> String {
        match self {
            ProvisionPolicy::MeanPlusSigma(k) => format!("mean+{k:.1}sigma"),
            ProvisionPolicy::Mean => "mean".to_string(),
        }
    }
}

/// What a provisioning policy costs and how often it falls short.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// Fraction of samples where realized demand exceeded provisioning
    /// (each is a SplitServe launching-facility invocation).
    pub shortfall_frac: f64,
    /// Total shortfall in core-hours (what Lambdas must bridge).
    pub shortfall_core_hours: f64,
    /// Total provisioned core-hours (the VM bill driver).
    pub provisioned_core_hours: f64,
    /// Idle (provisioned but unused) core-hours.
    pub idle_core_hours: f64,
}

/// Evaluates a policy against a realized demand series.
pub fn evaluate_policy(series: &[DemandPoint], policy: ProvisionPolicy) -> PolicyOutcome {
    assert!(series.len() >= 2, "need at least two samples");
    let dt_hours = series[1].t_hours - series[0].t_hours;
    let mut shortfalls = 0usize;
    let mut shortfall_ch = 0.0;
    let mut prov_ch = 0.0;
    let mut idle_ch = 0.0;
    for p in series {
        let prov = policy.provisioned(p);
        prov_ch += prov * dt_hours;
        if p.realized > prov {
            shortfalls += 1;
            shortfall_ch += (p.realized - prov) * dt_hours;
        } else {
            idle_ch += (prov - p.realized) * dt_hours;
        }
    }
    PolicyOutcome {
        shortfall_frac: shortfalls as f64 / series.len() as f64,
        shortfall_core_hours: shortfall_ch,
        provisioned_core_hours: prov_ch,
        idle_core_hours: idle_ch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_has_two_peaks_above_base() {
        let m = DayModel::default();
        assert!(m.mean(3.0) < m.mean(10.5));
        assert!(m.mean(10.5) > m.mean(13.0));
        assert!(m.mean(15.5) > m.mean(20.0));
        assert!(m.mean(0.0) >= m.base * 0.9);
    }

    #[test]
    fn series_is_deterministic_and_banded() {
        let m = DayModel::default();
        let a = m.series(288, 9);
        let b = m.series(288, 9);
        assert_eq!(a, b);
        for p in &a {
            assert!(p.lo <= p.mean && p.mean <= p.hi);
            assert!(p.realized >= 0.0);
        }
    }

    #[test]
    fn realized_path_sometimes_exceeds_conservative_band() {
        // With 2σ bands ~2.3% of samples should exceed; over a few days
        // of samples we must see at least one t₁-style excursion.
        let m = DayModel::default();
        let series = m.series(288 * 10, 4);
        let above = series.iter().filter(|p| p.realized > p.hi).count();
        assert!(above > 0, "no shortfall events in 10 days");
        let frac = above as f64 / series.len() as f64;
        assert!(frac < 0.15, "too many excursions: {frac}");
    }

    #[test]
    fn lean_policy_cheaper_but_more_shortfalls() {
        let m = DayModel::default();
        let series = m.series(288 * 5, 7);
        let conservative = evaluate_policy(&series, ProvisionPolicy::MeanPlusSigma(2.0));
        let lean = evaluate_policy(&series, ProvisionPolicy::Mean);
        assert!(lean.provisioned_core_hours < conservative.provisioned_core_hours);
        assert!(lean.idle_core_hours < conservative.idle_core_hours);
        assert!(lean.shortfall_frac > conservative.shortfall_frac);
        assert!(lean.shortfall_core_hours > conservative.shortfall_core_hours);
    }
}
