//! A dynamic-allocation controller: the closed-loop version of the
//! launching facility.
//!
//! Spark's `ExecutorAllocationManager` grows and shrinks the executor set
//! with the task backlog (paper §3: "dynamic allocation … lets an
//! application start with a predefined minimum number of executors, which
//! can grow … as and when the resources become available; if an executor
//! is idle for some time, it is killed"). SplitServe's twist is *what* it
//! grows with: the controller here bridges backlog with Lambdas
//! immediately, and retires them once idle past `idle_timeout` — billing
//! stops and the container goes back to the warm pool.

use std::cell::Cell;
use std::rc::Rc;

use splitserve_des::{Sim, SimDuration};
use splitserve_engine::ExecutorKind;

use crate::deploy::Deployment;

/// Controller knobs.
///
/// Note the saturation fixed point implied by the scale-out rule: the
/// loop launches `ceil(pending / tasks_per_executor) - live_total`
/// Lambdas, so under sustained backlog the live executor count converges
/// to `admitted_width / (1 + tasks_per_executor)` of the offered load —
/// with `tasks_per_executor = 1`, half the admitted slot width. A
/// provisioning policy that wants Lambdas to actually launch must admit
/// more than `(1 + tasks_per_executor) ×` the resident pool (see
/// `TenantFleetConfig::for_policy`).
#[derive(Debug, Clone)]
pub struct AllocatorConfig {
    /// Hard cap on concurrently live Lambda executors.
    pub max_lambdas: u32,
    /// How often the control loop runs.
    pub check_interval: SimDuration,
    /// Idle Lambdas older than this are drained (Spark's
    /// `spark.dynamicAllocation.executorIdleTimeout`).
    pub idle_timeout: SimDuration,
    /// Backlog-to-executor ratio: one new Lambda per this many pending
    /// tasks beyond current capacity.
    pub tasks_per_executor: u32,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            max_lambdas: 64,
            check_interval: SimDuration::from_millis(500),
            idle_timeout: SimDuration::from_secs(5),
            tasks_per_executor: 2,
        }
    }
}

/// Handle to a running allocation controller.
#[derive(Debug, Clone)]
pub struct AllocatorHandle {
    active: Rc<Cell<bool>>,
    launched: Rc<Cell<u32>>,
}

impl AllocatorHandle {
    /// Stops the control loop at its next tick.
    pub fn stop(&self) {
        self.active.set(false);
    }

    /// Total Lambda executors this controller has launched.
    pub fn lambdas_launched(&self) -> u32 {
        self.launched.get()
    }
}

/// Starts the control loop on `deployment`. The loop runs until
/// [`AllocatorHandle::stop`] — schedule jobs before or after; the
/// controller reacts to whatever backlog appears.
pub fn start_allocator(
    sim: &mut Sim,
    deployment: &Deployment,
    cfg: AllocatorConfig,
) -> AllocatorHandle {
    let handle = AllocatorHandle {
        active: Rc::new(Cell::new(true)),
        launched: Rc::new(Cell::new(0)),
    };
    tick(sim, deployment.clone(), cfg, handle.clone());
    handle
}

fn tick(sim: &mut Sim, d: Deployment, cfg: AllocatorConfig, handle: AllocatorHandle) {
    if !handle.active.get() {
        return;
    }
    let engine = d.engine().clone();
    let obs = engine.obs().clone();
    let pending = engine.pending_tasks();
    let execs = engine.executors();
    let live_lambdas: Vec<_> = execs
        .iter()
        .filter(|e| e.kind == ExecutorKind::Lambda && e.alive && !e.draining)
        .collect();
    let live_total = execs.iter().filter(|e| e.alive && !e.draining).count() as u32;
    obs.metrics
        .gauge_set("allocator_pending_tasks", &[], pending as f64);
    obs.metrics
        .gauge_set("allocator_live_executors", &[], f64::from(live_total));
    obs.metrics.gauge_set(
        "allocator_live_lambdas",
        &[],
        live_lambdas.len() as f64,
    );

    if pending > 0 {
        // Scale out: one Lambda per `tasks_per_executor` of backlog beyond
        // what the live executors will absorb.
        let want = (pending as u32).div_ceil(cfg.tasks_per_executor);
        let deficit = want.saturating_sub(live_total);
        let room = cfg.max_lambdas.saturating_sub(live_lambdas.len() as u32);
        let add = deficit.min(room);
        if add > 0 {
            d.add_lambda_executors(sim, add);
            handle.launched.set(handle.launched.get() + add);
            obs.metrics.counter_add(
                "allocator_scale_out_lambdas_total",
                &[],
                u64::from(add),
            );
        }
    } else {
        // Scale in: retire Lambdas idle past the timeout.
        let now = sim.now();
        for e in &live_lambdas {
            if !e.busy && now.saturating_since(e.idle_since) >= cfg.idle_timeout {
                d.drain_lambda_executor(sim, &e.id);
                obs.metrics
                    .counter_add("allocator_scale_in_lambdas_total", &[], 1);
            }
        }
    }

    let interval = cfg.check_interval;
    let h = handle.clone();
    sim.schedule_in(interval, move |sim| tick(sim, d, cfg, h));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ShuffleStoreKind;
    use splitserve_cloud::{CloudSpec, M4_XLARGE};
    use splitserve_des::Dist;
    use splitserve_engine::Dataset;
    use std::cell::RefCell;

    fn quiet_cloud() -> CloudSpec {
        CloudSpec {
            lambda_warm_start: Dist::constant(0.1),
            lambda_net_jitter: Dist::constant(1.0),
            ..CloudSpec::default()
        }
    }

    fn burst_job(width: usize) -> Dataset<(u64, u64)> {
        Dataset::<u64>::generate(width, |p| (0..2_000u64).map(|i| i + p as u64).collect())
            .map_with_cost(|x| (*x % 4, 1u64), Some(5e-4))
            .reduce_by_key(4, |a, b| a + b)
    }

    #[test]
    fn allocator_scales_out_for_backlog_and_back_in_when_idle() {
        let mut sim = Sim::new(21);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let handle = start_allocator(
            &mut sim,
            &d,
            AllocatorConfig {
                max_lambdas: 8,
                idle_timeout: SimDuration::from_secs(3),
                ..AllocatorConfig::default()
            },
        );
        let done_at = Rc::new(RefCell::new(None));
        let da = Rc::clone(&done_at);
        d.engine()
            .submit_job(&mut sim, burst_job(16).node(), move |sim, _| {
                *da.borrow_mut() = Some(sim.now().as_secs_f64());
            });
        // Run well past job completion + idle timeout.
        sim.run_until(splitserve_des::SimTime::from_secs(120));
        handle.stop();
        sim.run();

        assert!(done_at.borrow().is_some(), "job completed");
        assert!(
            handle.lambdas_launched() >= 4,
            "backlog must have triggered scale-out: {}",
            handle.lambdas_launched()
        );
        // After the idle timeout every Lambda is drained and released.
        let live = d
            .engine()
            .executors()
            .iter()
            .filter(|e| e.alive)
            .count();
        assert_eq!(live, 0, "idle lambdas must be retired");
        // And billing stopped at release: cost stays bounded even though
        // the sim ran to 120 s.
        let lambda_cost = d
            .cloud()
            .cost_for(splitserve_cloud::Category::LambdaCompute);
        assert!(lambda_cost > 0.0);
        let done = done_at.borrow().expect("done");
        let worst_case = handle.lambdas_launched() as f64
            * splitserve_cloud::lambda_compute_cost(
                1536,
                SimDuration::from_secs_f64(done + 4.0),
            );
        assert!(
            lambda_cost <= worst_case,
            "cost {lambda_cost} exceeds bound {worst_case}"
        );
    }

    #[test]
    fn allocator_respects_the_lambda_cap() {
        let mut sim = Sim::new(22);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let handle = start_allocator(
            &mut sim,
            &d,
            AllocatorConfig {
                max_lambdas: 3,
                ..AllocatorConfig::default()
            },
        );
        d.engine()
            .submit_job(&mut sim, burst_job(64).node(), |_, _| {});
        sim.run_until(splitserve_des::SimTime::from_secs(10));
        let live_lambdas = d
            .engine()
            .executors()
            .iter()
            .filter(|e| e.kind == ExecutorKind::Lambda && e.alive)
            .count();
        assert!(live_lambdas <= 3, "cap violated: {live_lambdas}");
        handle.stop();
        sim.run_until(splitserve_des::SimTime::from_secs(2_000));
    }

    #[test]
    fn stopped_allocator_stops_reacting() {
        let mut sim = Sim::new(23);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let handle = start_allocator(&mut sim, &d, AllocatorConfig::default());
        handle.stop();
        d.engine()
            .submit_job(&mut sim, burst_job(8).node(), |_, _| {});
        sim.run_until(splitserve_des::SimTime::from_secs(5));
        assert_eq!(
            handle.lambdas_launched(),
            0,
            "stopped controller must not launch"
        );
    }
}
