//! The multi-tenant control plane (ROADMAP: "multi-tenant job server at
//! trace scale"): trace-style arrival generation, an admission queue
//! with strict-priority classes + weighted fair share + per-tenant
//! concurrency caps, and a job server binding admission to a live
//! deployment with per-tenant SLO/bill accounting.
//!
//! Layering, bottom up:
//!
//! - [`arrivals`] — pure seeded generators (Poisson / bursty / diurnal
//!   inter-arrival, log-normal durations) producing integer-microsecond
//!   [`JobTemplate`]s.
//! - [`admission`] — the engine-free [`AdmissionController`] and its
//!   replayable event log ([`verify_log`] checks caps, strict priority,
//!   FIFO-per-tenant and slot conservation at every step).
//! - [`server`] — [`run_tenant_fleet`]: schedules arrivals on the sim,
//!   dispatches through the controller onto a shared [`Deployment`],
//!   records outcomes into the tenant-keyed ledgers and the
//!   `admission_wait_seconds{tenant_class}` / `hol_blocking_seconds`
//!   series.
//! - [`fleet`] — population builders and the deterministic JSON
//!   artifact for `examples/tenant_fleet.rs`.
//! - [`policy_sweep`] — the cold-start policy sweep: the same fleet
//!   under each [`ColdStartSpec`] arm plus an engine-free recurrent
//!   microtrace, rendered for `examples/coldstart_sweep.rs`.
//!
//! [`ColdStartSpec`]: splitserve_cloud::ColdStartSpec
//!
//! [`JobTemplate`]: arrivals::JobTemplate
//! [`AdmissionController`]: admission::AdmissionController
//! [`verify_log`]: admission::verify_log
//! [`run_tenant_fleet`]: server::run_tenant_fleet
//! [`Deployment`]: crate::Deployment

pub mod admission;
pub mod arrivals;
pub mod fleet;
pub mod policy_sweep;
pub mod server;

pub use admission::{
    verify_log, AdmissionController, AdmissionEvent, AdmissionEventKind, AdmissionRequest,
    Dispatch, SloClass, TenantSpec,
};
pub use arrivals::{
    generate_jobs, schedule_bytes, schedule_digest, tenant_seed, ArrivalProcess, ArrivalSpec,
    BurstSpec, DurationModel, JobTemplate,
};
pub use fleet::{
    class_arrival_spec, default_fleet_jobs, default_tenant_specs, policy_json, render_fleet_json,
};
pub use policy_sweep::{
    coldstart_arms, recurrent_fleet_jobs, recurrent_microtrace, render_coldstart_sweep_json,
    run_coldstart_sweep, ColdstartArm,
};
pub use server::{
    combined_fingerprint, fleet_workload, run_tenant_fleet, run_tenant_fleet_with, tenant_slice,
    FleetJob, FleetOutcome, FleetPolicy, TenantFleetConfig, TenantJobOutcome, WorkloadFn,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenancy::admission::verify_log;

    /// End-to-end smoke: a 3-tenant fleet runs through admission onto a
    /// real deployment, every job completes, and the admission log
    /// replays clean.
    #[test]
    fn small_fleet_end_to_end() {
        let tenants = default_tenant_specs(3);
        let jobs = default_fleet_jobs(&tenants, 5, 18, 60.0);
        assert!(!jobs.is_empty());
        let cfg = TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.clone(), 8);
        let (wl, sink) = fleet_workload(8);
        let r = run_tenant_fleet(&cfg, &jobs, wl);
        assert_eq!(r.outcomes.len(), jobs.len());
        assert_eq!(sink.borrow().len(), jobs.len());
        verify_log(cfg.slots, &tenants, &r.admission).unwrap();
        // Dispatch must never precede arrival, completion never precede
        // dispatch.
        for o in &r.outcomes {
            assert!(o.dispatched_us >= o.arrived_us);
            assert!(o.finished_us > o.dispatched_us);
        }
        assert!(r.cost_usd > 0.0);
        // Accrual + settlement must land the ledger exactly on the bill.
        let billed: f64 = r
            .bill
            .tenants()
            .iter()
            .map(|t| r.bill.total(t))
            .sum();
        assert!((billed - r.cost_usd).abs() < 1e-9);
    }
}
