//! The multi-tenant job server: binds the [`AdmissionController`] to a
//! live [`Deployment`], runs a fleet of tenant jobs through it, and
//! accounts outcomes into the per-tenant [`SloLedger`]/[`BillLedger`]
//! plus the obs plane (`admission_wait_seconds{tenant_class}` and
//! `hol_blocking_seconds` histograms).
//!
//! The server owns the *when* (admission order, slots); the engine owns
//! the *how fast* (task scheduling on VM/Lambda executors). Admission
//! slots are a provisioning-policy knob, deliberately distinct from live
//! executor cores: a lean pool with a Lambda allocator can honestly back
//! more slots than its resident VMs (the SplitServe bet), while a
//! vm-only policy's slots mirror its fixed pool.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::rc::Rc;

use splitserve_cloud::{CloudSpec, ColdStartSpec, InstanceType, PoolStats, M4_4XLARGE, M4_XLARGE};
use splitserve_des::{Dist, Sim, SimDuration, SimTime};
use splitserve_engine::{collect_partitions, Dataset, Engine, EngineConfig};
use splitserve_obs::{BillLedger, SloLedger, TenantId};
use splitserve_rt::hash::XxHash64;
use splitserve_storage::SharedStore;

use crate::allocator::{start_allocator, AllocatorConfig, AllocatorHandle};
use crate::deploy::{Deployment, ShuffleStoreKind};
use crate::scenario::DriverProgram;
use crate::tenancy::admission::{
    AdmissionController, AdmissionEvent, AdmissionRequest, Dispatch, SloClass, TenantSpec,
};

/// How the shared fleet is provisioned underneath the admission plane —
/// the Figure 2/3 axis at fleet scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetPolicy {
    /// A fixed VM pool sized to the full slot count; no Lambdas.
    VmOnly,
    /// A lean VM pool plus the launching facility bridging backlog with
    /// Lambdas.
    SplitServe,
    /// A minimal VM pool; almost everything runs on Lambdas.
    LambdaHeavy,
}

impl FleetPolicy {
    /// All policies, in sweep order.
    pub fn all() -> [FleetPolicy; 3] {
        [
            FleetPolicy::VmOnly,
            FleetPolicy::SplitServe,
            FleetPolicy::LambdaHeavy,
        ]
    }

    /// Stable label for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetPolicy::VmOnly => "vm-only",
            FleetPolicy::SplitServe => "splitserve",
            FleetPolicy::LambdaHeavy => "lambda-heavy",
        }
    }
}

impl std::fmt::Display for FleetPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One job of a fleet run, fully resolved (tenant, shape, SLO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetJob {
    /// Dense global id: `jobs[i].job == i`.
    pub job: u64,
    /// Index into the config's tenant list.
    pub tenant_idx: usize,
    /// Arrival on the virtual clock, microseconds.
    pub arrive_at_us: u64,
    /// Intrinsic compute duration, microseconds (also the fair-share
    /// service estimate).
    pub duration_us: u64,
    /// Degree of parallelism / slots occupied.
    pub cores: u32,
    /// Latency SLO, microseconds.
    pub slo_us: u64,
}

/// Configuration of one fleet run.
#[derive(Clone)]
pub struct TenantFleetConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Provisioning-policy label carried into the outcome.
    pub policy: FleetPolicy,
    /// The tenants (admission contracts; `FleetJob::tenant_idx` indexes
    /// this list).
    pub tenants: Vec<TenantSpec>,
    /// Admission slots over the shared fleet.
    pub slots: u32,
    /// Resident VM pool size in cores.
    pub pool_cores: u32,
    /// Instance type backing pool VMs.
    pub worker_type: InstanceType,
    /// Instance type backing the master.
    pub master_type: InstanceType,
    /// Shuffle substrate.
    pub store: ShuffleStoreKind,
    /// Cloud model.
    pub cloud: CloudSpec,
    /// Engine parameters (worker threads, obs handle, …).
    pub engine: EngineConfig,
    /// Memory per Lambda executor.
    pub lambda_memory_mb: u64,
    /// The launching facility, if this policy bridges with Lambdas.
    pub allocator: Option<AllocatorConfig>,
    /// Tenant charged the final settlement (idle-resource tail the
    /// per-completion accrual can't attribute to anyone).
    pub settle_tenant: TenantId,
}

impl TenantFleetConfig {
    /// A quiet-cloud config for `policy` over `pool_cores` of notional
    /// capacity: vm-only admits exactly what the resident pool can run;
    /// splitserve trims the resident pool to ¾ and oversubscribes
    /// admission 3×, bridging overflow with Lambdas (the paper's
    /// launching facility); lambda-heavy keeps a token pool and leans
    /// almost entirely on elastic executors.
    ///
    /// The 3× oversubscription is what lights the bridge: the allocation
    /// controller launches one Lambda per pending task *beyond* the live
    /// executor count, so its saturation fixed point is `slots / 2` live
    /// executors — admission has to let through more than twice the
    /// resident pool before any Lambda launches.
    pub fn for_policy(policy: FleetPolicy, tenants: Vec<TenantSpec>, pool_cores: u32) -> Self {
        let (resident, slots, allocator) = match policy {
            FleetPolicy::VmOnly => (pool_cores, pool_cores, None),
            FleetPolicy::SplitServe => (
                pool_cores - pool_cores / 4,
                pool_cores * 3,
                Some(AllocatorConfig {
                    max_lambdas: pool_cores * 2,
                    idle_timeout: SimDuration::from_secs(5),
                    tasks_per_executor: 1,
                    ..AllocatorConfig::default()
                }),
            ),
            FleetPolicy::LambdaHeavy => (
                (pool_cores / 8).max(2),
                pool_cores * 2,
                Some(AllocatorConfig {
                    max_lambdas: pool_cores * 4,
                    idle_timeout: SimDuration::from_secs(10),
                    tasks_per_executor: 1,
                    ..AllocatorConfig::default()
                }),
            ),
        };
        TenantFleetConfig {
            seed: 11,
            policy,
            tenants,
            slots,
            pool_cores: resident,
            worker_type: M4_4XLARGE,
            master_type: M4_XLARGE,
            store: ShuffleStoreKind::Hdfs,
            cloud: CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.12),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                // The fleet digests are pinned byte-for-byte against the
                // legacy infinite warm pool; policy sweeps override this.
                coldstart: ColdStartSpec::forever(),
                ..CloudSpec::default()
            },
            engine: EngineConfig::default(),
            lambda_memory_mb: 1_536,
            allocator,
            settle_tenant: TenantId::new("fleet"),
        }
    }
}

/// One job's outcome, integer-timestamped for canonical serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantJobOutcome {
    /// Global job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Its class.
    pub class: SloClass,
    /// Width in cores.
    pub cores: u32,
    /// Arrival, microseconds.
    pub arrived_us: u64,
    /// Admission grant, microseconds.
    pub dispatched_us: u64,
    /// Completion, microseconds.
    pub finished_us: u64,
    /// SLO, microseconds.
    pub slo_us: u64,
}

impl TenantJobOutcome {
    /// Response time (arrival to completion), seconds.
    pub fn latency_secs(&self) -> f64 {
        (self.finished_us - self.arrived_us) as f64 / 1e6
    }

    /// Time spent queued in admission, seconds.
    pub fn queue_wait_secs(&self) -> f64 {
        (self.dispatched_us - self.arrived_us) as f64 / 1e6
    }

    /// Whether the SLO was met.
    pub fn met_slo(&self) -> bool {
        self.finished_us - self.arrived_us <= self.slo_us
    }
}

/// What one fleet run produced.
pub struct FleetOutcome {
    /// The policy that ran.
    pub policy: FleetPolicy,
    /// Per-job outcomes, global job-id order.
    pub outcomes: Vec<TenantJobOutcome>,
    /// Per-tenant SLO ledger.
    pub slo: SloLedger,
    /// Per-tenant bill ledger (settlement under the config's
    /// `settle_tenant`).
    pub bill: BillLedger,
    /// The full admission event log.
    pub admission: Vec<AdmissionEvent>,
    /// Total cloud bill.
    pub cost_usd: f64,
    /// Lambdas the launching facility started (0 without an allocator).
    pub lambdas_launched: u32,
    /// The cold-start policy the warm pool ran under.
    pub coldstart_policy: &'static str,
    /// Warm-pool outcome: warm/cold/prewarm starts, evictions by reason,
    /// wasted warm memory.
    pub pool: PoolStats,
}

impl FleetOutcome {
    /// Total head-of-line blocked seconds across all dispatches.
    pub fn hol_blocking_secs(&self) -> f64 {
        self.admission
            .iter()
            .filter_map(|e| match e.kind {
                crate::tenancy::admission::AdmissionEventKind::Dispatched { hol_us, .. } => {
                    Some(hol_us as f64 / 1e6)
                }
                _ => None,
            })
            .sum()
    }

    /// Mean admission wait in seconds across all jobs.
    pub fn mean_admission_wait_secs(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(TenantJobOutcome::queue_wait_secs)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// A tenant's outcome rows in canonical per-tenant form: jobs
    /// renumbered by the tenant's own arrival sequence, so the bytes are
    /// comparable between a shared fleet and a dedicated run where
    /// global ids differ. The tenant-isolation differential diffs this.
    pub fn tenant_rows(&self, tenant: &TenantId) -> String {
        let mut rows: Vec<&TenantJobOutcome> = self
            .outcomes
            .iter()
            .filter(|o| &o.tenant == tenant)
            .collect();
        rows.sort_by_key(|o| (o.arrived_us, o.job));
        let mut out = String::new();
        for (k, o) in rows.iter().enumerate() {
            use std::fmt::Write as _;
            let _ = write!(
                out,
                "k={k} a={} d={} f={} c={} s={} met={};",
                o.arrived_us,
                o.dispatched_us,
                o.finished_us,
                o.cores,
                o.slo_us,
                o.met_slo()
            );
        }
        out
    }
}

/// A fleet workload factory: builds one job's driver program from its
/// admitted shape. Must be `'static` — programs are built at dispatch
/// time, inside sim events.
pub type WorkloadFn = Rc<dyn Fn(&FleetJob) -> Box<dyn DriverProgram>>;

/// The standard fleet workload factory plus its fingerprint sink. Each
/// job runs a `cores`-wide map (virtual cost calibrated so one map task
/// ≈ the job's drawn duration) into a 2-partition `reduce_by_key`; the
/// reduced rows are hashed (sorted, seeded by the job id) into the
/// returned map — the data fingerprint the chaos differential compares
/// across store kinds.
pub fn fleet_workload(
    records_per_task: usize,
) -> (WorkloadFn, Rc<RefCell<BTreeMap<u64, u64>>>) {
    let sink: Rc<RefCell<BTreeMap<u64, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
    let sink2 = Rc::clone(&sink);
    let factory = move |fj: &FleetJob| {
        Box::new(FleetLoad {
            job: fj.job,
            cores: fj.cores,
            duration_us: fj.duration_us,
            records: records_per_task,
            sink: Rc::clone(&sink2),
        }) as Box<dyn DriverProgram>
    };
    (Rc::new(factory), sink)
}

/// Folds a fingerprint sink into one digest (job-id order).
pub fn combined_fingerprint(map: &BTreeMap<u64, u64>) -> u64 {
    let mut h = XxHash64::with_seed(0);
    for (job, fp) in map {
        h.write_u64(*job);
        h.write_u64(*fp);
    }
    h.finish()
}

struct FleetLoad {
    job: u64,
    cores: u32,
    duration_us: u64,
    records: usize,
    sink: Rc<RefCell<BTreeMap<u64, u64>>>,
}

impl DriverProgram for FleetLoad {
    fn name(&self) -> String {
        format!("fleet-job-{}", self.job)
    }
    fn parallelism(&self) -> usize {
        self.cores as usize
    }
    fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
        let width = self.cores as usize;
        let records = self.records as u64;
        let base = self.job.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let cost = (self.duration_us as f64 / 1e6) / self.records as f64;
        let ds = Dataset::<u64>::generate(width, move |p| {
            (0..records)
                .map(|i| base ^ i.wrapping_mul(31).wrapping_add(p as u64))
                .collect()
        })
        .map_with_cost(|x| (*x % 7, *x), Some(cost))
        .reduce_by_key(2, |a, b| a.wrapping_add(*b));
        let job = self.job;
        let sink = Rc::clone(&self.sink);
        engine.submit_job(sim, ds.node(), move |sim, out| {
            let mut rows = collect_partitions::<(u64, u64)>(out.partitions);
            rows.sort_unstable();
            let mut h = XxHash64::with_seed(job);
            for (k, v) in &rows {
                h.write_u64(*k);
                h.write_u64(*v);
            }
            sink.borrow_mut().insert(job, h.finish());
            done(sim);
        });
    }
}

struct Ctx {
    d: Deployment,
    ctrl: RefCell<AdmissionController>,
    jobs: Vec<FleetJob>,
    specs: Vec<TenantSpec>,
    workload: WorkloadFn,
    outcomes: RefCell<Vec<Option<TenantJobOutcome>>>,
    remaining: Cell<usize>,
    billed: Cell<f64>,
    slo: SloLedger,
    bill: BillLedger,
    /// `admission_wait_seconds{tenant_class}` handles, one per tenant
    /// spec (specs sharing a class share the underlying series) — the
    /// dispatch loop records per job and must not rebuild metric keys.
    admission_wait: Vec<splitserve_obs::HistogramHandle>,
    /// `hol_blocking_seconds` handle, same reasoning.
    hol_blocking: splitserve_obs::HistogramHandle,
    handle: Option<AllocatorHandle>,
}

fn dispatch_all(sim: &mut Sim, ctx: &Rc<Ctx>, dispatches: Vec<Dispatch>) {
    for dsp in dispatches {
        let fj = ctx.jobs[dsp.job as usize];
        let spec = ctx.specs[fj.tenant_idx].clone();
        ctx.admission_wait[fj.tenant_idx].observe(dsp.waited_us as f64 / 1e6);
        if dsp.hol_us > 0 {
            ctx.hol_blocking.observe(dsp.hol_us as f64 / 1e6);
        }
        let dispatched_us = sim.now().as_micros();
        let program = (ctx.workload)(&fj);
        let ctx2 = Rc::clone(ctx);
        program.submit(
            sim,
            ctx.d.engine(),
            Box::new(move |sim| {
                let finished = sim.now();
                let outcome = TenantJobOutcome {
                    job: fj.job,
                    tenant: spec.id.clone(),
                    class: spec.class,
                    cores: fj.cores,
                    arrived_us: fj.arrive_at_us,
                    dispatched_us,
                    finished_us: finished.as_micros(),
                    slo_us: fj.slo_us,
                };
                let latency = (outcome.finished_us - outcome.arrived_us) as f64 / 1e6;
                ctx2.slo
                    .record_job(&spec.id, finished, latency, fj.slo_us as f64 / 1e6);
                let accrued = ctx2.d.cloud().accrued_cost(finished);
                let delta = accrued - ctx2.billed.get();
                if delta > 0.0 {
                    ctx2.bill.charge(&spec.id, finished, delta, "accrued");
                    ctx2.billed.set(accrued);
                }
                ctx2.outcomes.borrow_mut()[fj.job as usize] = Some(outcome);
                ctx2.remaining.set(ctx2.remaining.get() - 1);
                let more = ctx2
                    .ctrl
                    .borrow_mut()
                    .on_complete(finished.as_micros(), fj.job);
                dispatch_all(sim, &ctx2, more);
                if ctx2.remaining.get() == 0 {
                    if let Some(h) = &ctx2.handle {
                        h.stop();
                    }
                    ctx2.d.shutdown(sim);
                }
            }),
        );
    }
}

/// Runs a tenant fleet: every job is scheduled at its arrival, flows
/// through the admission controller, and executes on the shared
/// deployment once granted slots. Returns when the last job completes.
///
/// `jobs` must be dense (`jobs[i].job == i`); arrival times need not be
/// sorted (the event queue orders them).
pub fn run_tenant_fleet(
    cfg: &TenantFleetConfig,
    jobs: &[FleetJob],
    workload: WorkloadFn,
) -> FleetOutcome {
    run_tenant_fleet_with(cfg, jobs, workload, |s| s, |_, _| {})
}

/// [`run_tenant_fleet`] with the chaos seams exposed: `wrap` interposes
/// on the freshly built shuffle store (the `FaultStore` hook) and `arm`
/// runs against the live deployment before any job arrives (the
/// `inject::arm` hook).
pub fn run_tenant_fleet_with(
    cfg: &TenantFleetConfig,
    jobs: &[FleetJob],
    workload: WorkloadFn,
    wrap: impl FnOnce(SharedStore) -> SharedStore,
    arm: impl FnOnce(&mut Sim, &Deployment),
) -> FleetOutcome {
    for (i, j) in jobs.iter().enumerate() {
        assert_eq!(j.job, i as u64, "fleet jobs must be dense in job id");
        assert!(j.tenant_idx < cfg.tenants.len(), "tenant_idx out of range");
    }
    let mut sim = Sim::new(cfg.seed);
    let d = Deployment::with_wrapped_store(
        &mut sim,
        cfg.cloud.clone(),
        cfg.store,
        cfg.master_type.clone(),
        cfg.engine.clone(),
        wrap,
    );
    d.set_lambda_memory_mb(cfg.lambda_memory_mb);
    let mut remaining_cores = cfg.pool_cores;
    while remaining_cores > 0 {
        let batch = remaining_cores.min(cfg.worker_type.vcpus);
        d.add_vm_workers(&mut sim, cfg.worker_type.clone(), batch);
        remaining_cores -= batch;
    }
    let handle = cfg
        .allocator
        .clone()
        .map(|alloc| start_allocator(&mut sim, &d, alloc));
    arm(&mut sim, &d);

    let obs = cfg.engine.obs.clone();
    let admission_wait = cfg
        .tenants
        .iter()
        .map(|spec| {
            obs.metrics
                .histogram_handle("admission_wait_seconds", &[("tenant_class", spec.class.as_str())])
        })
        .collect();
    let hol_blocking = obs.metrics.histogram_handle("hol_blocking_seconds", &[]);
    let ctx = Rc::new(Ctx {
        d,
        ctrl: RefCell::new(AdmissionController::new(cfg.slots, &cfg.tenants)),
        jobs: jobs.to_vec(),
        specs: cfg.tenants.clone(),
        workload,
        outcomes: RefCell::new(vec![None; jobs.len()]),
        remaining: Cell::new(jobs.len()),
        billed: Cell::new(0.0),
        slo: SloLedger::new(),
        bill: BillLedger::new(),
        admission_wait,
        hol_blocking,
        handle,
    });
    for j in jobs {
        let ctx2 = Rc::clone(&ctx);
        let req = AdmissionRequest {
            job: j.job,
            tenant: cfg.tenants[j.tenant_idx].id.clone(),
            cores: j.cores,
            service_estimate_us: j.duration_us,
        };
        sim.schedule_at(SimTime::from_micros(j.arrive_at_us), move |sim| {
            let now_us = sim.now().as_micros();
            let ds = ctx2.ctrl.borrow_mut().on_arrival(now_us, req);
            dispatch_all(sim, &ctx2, ds);
        });
    }
    sim.run();

    let outcomes: Vec<TenantJobOutcome> = ctx
        .outcomes
        .borrow()
        .iter()
        .enumerate()
        .map(|(i, o)| {
            o.clone()
                .unwrap_or_else(|| panic!("fleet job {i} never completed (stranded queue?)"))
        })
        .collect();
    assert!(
        ctx.ctrl.borrow().is_idle(),
        "admission controller left work behind"
    );
    let cost_usd = ctx.d.cloud().total_cost();
    let settle = cost_usd - ctx.billed.get();
    if settle > 0.0 {
        let at = outcomes.iter().map(|o| o.finished_us).max().unwrap_or(0);
        ctx.bill
            .charge(&cfg.settle_tenant, SimTime::from_micros(at), settle, "final");
    }
    let lambdas_launched = ctx.handle.as_ref().map_or(0, |h| h.lambdas_launched());
    let coldstart_policy = ctx.d.cloud().policy_name();
    let pool = ctx.d.cloud().pool_stats();
    let ctx = Rc::try_unwrap(ctx)
        .unwrap_or_else(|_| panic!("fleet context still referenced after run"));
    FleetOutcome {
        policy: cfg.policy,
        outcomes,
        slo: ctx.slo,
        bill: ctx.bill,
        admission: ctx.ctrl.into_inner().into_log(),
        cost_usd,
        lambdas_launched,
        coldstart_policy,
        pool,
    }
}

/// Projects `jobs` down to one tenant for a dedicated (partitioned) run:
/// the tenant's jobs keep their arrival times and shapes but are
/// renumbered densely with `tenant_idx` 0. Pair with a single-tenant
/// [`TenantFleetConfig`] to run a tenant "alone" on its own resources.
pub fn tenant_slice(jobs: &[FleetJob], tenant_idx: usize) -> Vec<FleetJob> {
    jobs.iter()
        .filter(|j| j.tenant_idx == tenant_idx)
        .enumerate()
        .map(|(i, j)| FleetJob {
            job: i as u64,
            tenant_idx: 0,
            ..*j
        })
        .collect()
}
