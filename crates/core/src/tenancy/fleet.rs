//! Fleet-scale sweep machinery: builds a ≥100-tenant population with
//! per-class trace generators, merges the per-tenant schedules into one
//! dense job list, runs it under each provisioning policy, and renders
//! the per-class SLO-attainment and bill curves as one deterministic
//! JSON artifact — the Figure 2/3 story at fleet scale.

use std::fmt::Write as _;

use splitserve_obs::{QuantileDigest, TenantId};

use crate::tenancy::admission::{SloClass, TenantSpec};
use crate::tenancy::arrivals::{
    generate_jobs, tenant_seed, ArrivalProcess, ArrivalSpec, BurstSpec, DurationModel,
};
use crate::tenancy::server::{FleetJob, FleetOutcome, TenantJobOutcome};

/// A default tenant population: classes round-robin
/// interactive/standard/batch, weights cycling 1–3, concurrency caps
/// cycling 2–4. Ids are `t000`, `t001`, … so orderings are stable.
pub fn default_tenant_specs(n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| TenantSpec {
            id: TenantId::new(format!("t{i:03}")),
            class: SloClass::all()[i % 3],
            weight: 1 + (i / 3) as u32 % 3,
            max_concurrent: 2 + (i % 3) as u32,
        })
        .collect()
}

/// The per-class trace shape: interactive tenants are Poisson with
/// short, tight-SLO jobs; standard tenants surge in bursts; batch
/// tenants follow a diurnal curve with long, loose jobs. `rate` is the
/// tenant's mean arrivals per second.
pub fn class_arrival_spec(class: SloClass, rate: f64, horizon_secs: f64) -> ArrivalSpec {
    match class {
        SloClass::Interactive => ArrivalSpec {
            process: ArrivalProcess::Poisson { rate_per_sec: rate },
            duration: DurationModel {
                mean_secs: 0.6,
                cv: 0.6,
            },
            cores_choices: vec![(1, 3), (2, 1)],
            slo_multiple: 4.0,
            slo_floor_secs: 2.5,
            horizon_secs,
            max_jobs: (rate * horizon_secs * 4.0).ceil() as usize + 8,
        },
        SloClass::Standard => {
            let burst = BurstSpec {
                every_secs: 120.0,
                len_secs: 20.0,
                multiplier: 4.0,
            };
            // Mean rate of the on/off curve is
            // base · (1 + (mult − 1) · len/every); solve for base.
            let base = rate
                / (1.0 + (burst.multiplier - 1.0) * burst.len_secs / burst.every_secs);
            ArrivalSpec {
                process: ArrivalProcess::Bursty {
                    base_rate_per_sec: base,
                    burst,
                },
                duration: DurationModel {
                    mean_secs: 1.2,
                    cv: 0.8,
                },
                cores_choices: vec![(2, 2), (4, 1)],
                slo_multiple: 5.0,
                slo_floor_secs: 5.0,
                horizon_secs,
                max_jobs: (rate * horizon_secs * 4.0).ceil() as usize + 8,
            }
        }
        SloClass::Batch => ArrivalSpec {
            process: ArrivalProcess::Diurnal {
                mean_rate_per_sec: rate,
                amplitude: 0.8,
                period_secs: horizon_secs / 2.0,
            },
            duration: DurationModel {
                mean_secs: 3.0,
                cv: 1.0,
            },
            cores_choices: vec![(2, 1), (4, 1)],
            slo_multiple: 8.0,
            slo_floor_secs: 20.0,
            horizon_secs,
            max_jobs: (rate * horizon_secs * 4.0).ceil() as usize + 8,
        },
    }
}

/// Generates the fleet's job list: each tenant's schedule comes from its
/// own seed (`tenant_seed(fleet_seed, id)` — independent of neighbors),
/// then all schedules merge sorted by `(arrival, tenant, sequence)` and
/// jobs are renumbered densely. `target_jobs` is the fleet-wide target;
/// each tenant gets `target_jobs / tenants` expected arrivals over the
/// horizon.
pub fn default_fleet_jobs(
    tenants: &[TenantSpec],
    fleet_seed: u64,
    target_jobs: usize,
    horizon_secs: f64,
) -> Vec<FleetJob> {
    assert!(!tenants.is_empty());
    let per_tenant = (target_jobs as f64 / tenants.len() as f64).max(1.0);
    let rate = per_tenant / horizon_secs;
    let mut merged: Vec<(u64, usize, usize, FleetJob)> = Vec::new();
    for (idx, t) in tenants.iter().enumerate() {
        let spec = class_arrival_spec(t.class, rate, horizon_secs);
        let seed = tenant_seed(fleet_seed, t.id.as_str());
        for (k, j) in generate_jobs(&spec, seed).into_iter().enumerate() {
            merged.push((
                j.arrive_at_us,
                idx,
                k,
                FleetJob {
                    job: 0, // renumbered below
                    tenant_idx: idx,
                    arrive_at_us: j.arrive_at_us,
                    duration_us: j.duration_us,
                    cores: j.cores,
                    slo_us: j.slo_us,
                },
            ));
        }
    }
    merged.sort_by_key(|(at, idx, k, _)| (*at, *idx, *k));
    merged
        .into_iter()
        .enumerate()
        .map(|(i, (_, _, _, mut j))| {
            j.job = i as u64;
            j
        })
        .collect()
}

fn decimate<T: Clone>(points: &[T], max: usize) -> Vec<T> {
    if points.len() <= max {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(max);
    let mut out: Vec<T> = points.iter().step_by(stride).cloned().collect();
    // Always keep the final point — the settled value.
    if !(points.len() - 1).is_multiple_of(stride) {
        out.push(points[points.len() - 1].clone());
    }
    out
}

fn class_block(out: &mut String, r: &FleetOutcome, tenants: &[TenantSpec], class: SloClass) {
    let class_tenants: Vec<&TenantSpec> =
        tenants.iter().filter(|t| t.class == class).collect();
    let mut rows: Vec<&TenantJobOutcome> = r
        .outcomes
        .iter()
        .filter(|o| o.class == class)
        .collect();
    rows.sort_by_key(|o| (o.finished_us, o.job));
    let jobs = rows.len();
    let met = rows.iter().filter(|o| o.met_slo()).count();
    let attainment = if jobs == 0 {
        1.0
    } else {
        met as f64 / jobs as f64
    };
    let mean_latency = if jobs == 0 {
        0.0
    } else {
        rows.iter().map(|o| o.latency_secs()).sum::<f64>() / jobs as f64
    };
    let mean_wait = if jobs == 0 {
        0.0
    } else {
        rows.iter().map(|o| o.queue_wait_secs()).sum::<f64>() / jobs as f64
    };
    // Class-wide latency quantiles from the merged per-tenant digests
    // (merge is exactly commutative, so the result is order-independent).
    let mut digest: Option<QuantileDigest> = None;
    for t in &class_tenants {
        if let Some(d) = r.slo.latency_digest(&t.id) {
            match &mut digest {
                Some(acc) => acc.merge(&d),
                None => digest = Some(d),
            }
        }
    }
    let q = |p: f64| digest.as_ref().and_then(|d| d.quantile(p));
    let _ = write!(
        out,
        "{{\"class\":\"{}\",\"tenants\":{},\"jobs\":{},\"slo_attainment\":{:.6},\
         \"mean_latency_secs\":{:.6},\"mean_queue_wait_secs\":{:.6},",
        class.as_str(),
        class_tenants.len(),
        jobs,
        attainment,
        mean_latency,
        mean_wait
    );
    for (label, p) in [("p50", 0.5), ("p99", 0.99)] {
        match q(p) {
            Some(v) => {
                let _ = write!(out, "\"{label}_latency_secs\":{v:.6},");
            }
            None => {
                let _ = write!(out, "\"{label}_latency_secs\":null,");
            }
        }
    }
    // The class attainment curve: cumulative met-fraction by completion.
    let curve: Vec<(u64, f64)> = {
        let mut met_so_far = 0usize;
        rows.iter()
            .enumerate()
            .map(|(i, o)| {
                if o.met_slo() {
                    met_so_far += 1;
                }
                (o.finished_us, met_so_far as f64 / (i + 1) as f64)
            })
            .collect()
    };
    out.push_str("\"attainment_curve\":[");
    for (i, (t_us, a)) in decimate(&curve, 128).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"t_us\":{t_us},\"attainment\":{a:.6}}}");
    }
    out.push_str("],");
    // The class bill curve: every class tenant's charges merged by
    // (time, tenant), cumulative recomputed class-wide.
    let mut charges: Vec<(u64, String, f64)> = Vec::new();
    for t in &class_tenants {
        for p in r.bill.curve(&t.id) {
            charges.push((p.at.as_micros(), t.id.to_string(), p.amount_usd));
        }
    }
    charges.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let bill_curve: Vec<(u64, f64)> = {
        let mut cum = 0.0;
        charges
            .iter()
            .map(|(at, _, usd)| {
                cum += usd;
                (*at, cum)
            })
            .collect()
    };
    out.push_str("\"bill_curve\":[");
    for (i, (t_us, cum)) in decimate(&bill_curve, 128).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"t_us\":{t_us},\"cumulative_usd\":{cum:.6}}}");
    }
    let _ = write!(
        out,
        "],\"bill_total_usd\":{:.6}}}",
        bill_curve.last().map_or(0.0, |(_, c)| *c)
    );
}

/// Renders one policy's outcome (plus its data fingerprint) as a JSON
/// object string.
pub fn policy_json(r: &FleetOutcome, tenants: &[TenantSpec], fingerprint: u64) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"policy\":\"{}\",\"jobs\":{},\"cost_usd\":{:.6},\"lambdas_launched\":{},\
         \"fingerprint\":\"{:016x}\",\"fleet_slo_attainment\":{:.6},\
         \"mean_admission_wait_secs\":{:.6},\"hol_blocking_secs\":{:.6},\
         \"admission_events\":{},",
        r.policy,
        r.outcomes.len(),
        r.cost_usd,
        r.lambdas_launched,
        fingerprint,
        r.slo.fleet_attainment(),
        r.mean_admission_wait_secs(),
        r.hol_blocking_secs(),
        r.admission.len()
    );
    out.push_str("\"classes\":[");
    for (i, class) in SloClass::all().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        class_block(&mut out, r, tenants, class);
    }
    out.push_str("],");
    // The settlement lands on the reserved settle tenant; class totals
    // plus this must equal the cloud bill exactly.
    let settle_tenant = TenantId::new("fleet");
    let settle = r.bill.total(&settle_tenant);
    let class_total: f64 = tenants.iter().map(|t| r.bill.total(&t.id)).sum();
    let _ = write!(
        out,
        "\"bill_settle_usd\":{:.6},\"bill_total_usd\":{:.6}}}",
        settle,
        class_total + settle
    );
    out
}

/// Renders the whole sweep artifact. `workers` is a display label only —
/// callers comparing artifacts across worker counts can pass a fixed
/// value (`scripts/verify.sh` instead normalizes the field with `sed`,
/// like the SLO dashboard).
pub fn render_fleet_json(
    workers: usize,
    tenants: &[TenantSpec],
    jobs_n: usize,
    results: &[(FleetOutcome, u64)],
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"workers\":{workers},\"tenants\":{},\"jobs\":{jobs_n},\"policies\":[",
        tenants.len()
    );
    for (i, (r, fp)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&policy_json(r, tenants, *fp));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_population_cycles_classes_and_weights() {
        let specs = default_tenant_specs(9);
        assert_eq!(specs.len(), 9);
        assert_eq!(specs[0].class, SloClass::Interactive);
        assert_eq!(specs[1].class, SloClass::Standard);
        assert_eq!(specs[2].class, SloClass::Batch);
        assert!(specs.iter().all(|s| s.weight >= 1 && s.max_concurrent >= 2));
        assert_eq!(specs[0].id.as_str(), "t000");
    }

    #[test]
    fn fleet_jobs_are_dense_and_deterministic() {
        let specs = default_tenant_specs(12);
        let a = default_fleet_jobs(&specs, 7, 240, 300.0);
        let b = default_fleet_jobs(&specs, 7, 240, 300.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.job, i as u64);
        }
        let mut prev = 0;
        for j in &a {
            assert!(j.arrive_at_us >= prev, "merged arrivals must be sorted");
            prev = j.arrive_at_us;
        }
    }

    #[test]
    fn a_tenants_schedule_ignores_neighbors() {
        let big = default_tenant_specs(12);
        let small = vec![big[4].clone()];
        let fleet = default_fleet_jobs(&big, 3, 240, 300.0);
        let alone = default_fleet_jobs(&small, 3, 20, 300.0);
        let from_fleet: Vec<(u64, u64, u32, u64)> = fleet
            .iter()
            .filter(|j| j.tenant_idx == 4)
            .map(|j| (j.arrive_at_us, j.duration_us, j.cores, j.slo_us))
            .collect();
        let from_alone: Vec<(u64, u64, u32, u64)> = alone
            .iter()
            .map(|j| (j.arrive_at_us, j.duration_us, j.cores, j.slo_us))
            .collect();
        assert_eq!(from_fleet, from_alone);
    }

    #[test]
    fn decimation_keeps_endpoints() {
        let pts: Vec<u32> = (0..1000).collect();
        let d = decimate(&pts, 128);
        assert!(d.len() <= 130);
        assert_eq!(*d.first().unwrap(), 0);
        assert_eq!(*d.last().unwrap(), 999);
    }
}
