//! Trace-style workload generation: seeded arrival processes and job-size
//! models in the shape of the Azure Functions traces the serverless
//! literature calibrates against (PAPERS.md: Shahrad et al., Lambada,
//! Wukong) — Poisson steady state, bursty on/off surges, and a diurnal
//! rate curve, with log-normal job durations.
//!
//! Everything here is a pure function of one `u64` seed: two calls with
//! the same spec and seed produce byte-identical schedules
//! ([`JobTemplate::to_line`] defines the canonical bytes), which is what
//! lets the fleet example and the chaos sweeps replay bit-for-bit.

use splitserve_des::Dist;
use splitserve_rt::hash::XxHash64;
use splitserve_rt::Rng;
use std::hash::Hasher;

/// Domain separator: arrival generation must not correlate with the sim
/// clock, fault plans, or workload data derived from the same seed.
pub const ARRIVAL_STREAM: u64 = 0xA221_7A1C_7E57_0002;

/// The shape of a burst window for [`ArrivalProcess::Bursty`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Window period: a burst starts every `every_secs`.
    pub every_secs: f64,
    /// Burst length in seconds (must be `< every_secs`).
    pub len_secs: f64,
    /// Rate multiplier inside the burst window (`> 1`).
    pub multiplier: f64,
}

/// An inter-arrival process, i.e. the `rate(t)` curve of an
/// inhomogeneous Poisson process. Sampling uses Lewis–Shedler thinning
/// against the peak rate, so every variant consumes randomness the same
/// way and stays deterministic per seed.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Constant rate: exponential inter-arrival times.
    Poisson {
        /// Arrivals per second.
        rate_per_sec: f64,
    },
    /// A base rate with periodic on/off surges — the shape under which
    /// the paper's launching facility earns its keep.
    Bursty {
        /// Off-window arrivals per second.
        base_rate_per_sec: f64,
        /// The burst window geometry.
        burst: BurstSpec,
    },
    /// A sinusoidal day curve: `mean · (1 + amplitude · sin(2πt/period))`.
    Diurnal {
        /// Mean arrivals per second across a full period.
        mean_rate_per_sec: f64,
        /// Relative swing, in `[0, 1)`.
        amplitude: f64,
        /// Period of the cycle in seconds.
        period_secs: f64,
    },
}

impl ArrivalProcess {
    /// The instantaneous rate at time `t` (seconds).
    pub fn rate_at(&self, t: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst,
            } => {
                if burst.contains(t) {
                    base_rate_per_sec * burst.multiplier
                } else {
                    *base_rate_per_sec
                }
            }
            ArrivalProcess::Diurnal {
                mean_rate_per_sec,
                amplitude,
                period_secs,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t / period_secs;
                mean_rate_per_sec * (1.0 + amplitude * phase.sin())
            }
        }
    }

    /// The peak of the rate curve — the thinning envelope.
    pub fn peak_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst,
            } => base_rate_per_sec * burst.multiplier,
            ArrivalProcess::Diurnal {
                mean_rate_per_sec,
                amplitude,
                ..
            } => mean_rate_per_sec * (1.0 + amplitude),
        }
    }
}

impl BurstSpec {
    /// Whether time `t` (seconds) falls inside a burst window.
    pub fn contains(&self, t: f64) -> bool {
        t.rem_euclid(self.every_secs) < self.len_secs
    }
}

/// A log-normal job-duration model, parameterized the way trace papers
/// report it: a mean and a coefficient of variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationModel {
    /// Mean duration in seconds.
    pub mean_secs: f64,
    /// Coefficient of variation (`sd / mean`).
    pub cv: f64,
}

/// A complete per-tenant workload spec: when jobs arrive, how long they
/// run, how wide they are, and how tight their SLOs sit.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// The inter-arrival process.
    pub process: ArrivalProcess,
    /// The duration model.
    pub duration: DurationModel,
    /// Weighted choice of job widths: `(cores, weight)` pairs.
    pub cores_choices: Vec<(u32, u32)>,
    /// SLO as a multiple of the drawn duration…
    pub slo_multiple: f64,
    /// …but never tighter than this floor (seconds).
    pub slo_floor_secs: f64,
    /// Generation horizon in seconds.
    pub horizon_secs: f64,
    /// Hard cap on generated jobs (guards runaway rates).
    pub max_jobs: usize,
}

/// One generated job, all-integer so schedules serialize canonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTemplate {
    /// Arrival on the virtual clock, microseconds.
    pub arrive_at_us: u64,
    /// Intrinsic compute duration, microseconds.
    pub duration_us: u64,
    /// Degree of parallelism.
    pub cores: u32,
    /// Latency SLO, microseconds.
    pub slo_us: u64,
}

impl JobTemplate {
    /// Canonical one-line serialization — the byte-identity unit for the
    /// determinism properties.
    pub fn to_line(&self) -> String {
        format!(
            "a={} d={} c={} s={};",
            self.arrive_at_us, self.duration_us, self.cores, self.slo_us
        )
    }
}

/// The canonical bytes of a whole schedule ([`JobTemplate::to_line`]
/// concatenated), for byte-identity assertions.
pub fn schedule_bytes(jobs: &[JobTemplate]) -> Vec<u8> {
    let mut out = Vec::new();
    for j in jobs {
        out.extend_from_slice(j.to_line().as_bytes());
    }
    out
}

/// A 64-bit digest of a schedule's canonical bytes.
pub fn schedule_digest(jobs: &[JobTemplate]) -> u64 {
    let mut h = XxHash64::with_seed(0);
    h.write(&schedule_bytes(jobs));
    h.finish()
}

/// Derives a per-tenant seed from a fleet seed and the tenant's id, so a
/// tenant's schedule depends only on `(fleet_seed, id)` — never on which
/// neighbors share the fleet. This is what the tenant-isolation
/// differential leans on.
pub fn tenant_seed(fleet_seed: u64, tenant: &str) -> u64 {
    let mut h = XxHash64::with_seed(fleet_seed ^ ARRIVAL_STREAM);
    h.write(tenant.as_bytes());
    h.finish()
}

/// Generates the job schedule for `spec` from `seed`: arrivals by
/// Lewis–Shedler thinning against [`ArrivalProcess::peak_rate`],
/// durations from the log-normal model (clamped to a sane band), widths
/// by weighted choice, SLOs as `max(duration · multiple, floor)`.
/// Deterministic: the same `(spec, seed)` yields byte-identical output.
pub fn generate_jobs(spec: &ArrivalSpec, seed: u64) -> Vec<JobTemplate> {
    let peak = spec.process.peak_rate();
    assert!(peak > 0.0, "arrival process must have a positive rate");
    assert!(
        !spec.cores_choices.is_empty(),
        "at least one cores choice required"
    );
    let total_weight: u64 = spec.cores_choices.iter().map(|(_, w)| u64::from(*w)).sum();
    assert!(total_weight > 0, "cores choices need a positive total weight");

    let mut rng = Rng::seed_from_u64(seed ^ ARRIVAL_STREAM);
    let dur = Dist::log_normal_mean_sd(
        spec.duration.mean_secs,
        spec.duration.mean_secs * spec.duration.cv,
    );
    let mut jobs = Vec::new();
    let mut t = 0.0f64;
    while jobs.len() < spec.max_jobs {
        // Candidate arrival from the homogeneous envelope…
        let u = rng.next_f64();
        t += -(1.0 - u).ln() / peak;
        if t >= spec.horizon_secs {
            break;
        }
        // …thinned down to the actual rate curve. The acceptance draw is
        // consumed for every candidate, so the stream position stays a
        // pure function of the candidate count.
        let accept = rng.next_f64();
        if accept * peak >= spec.process.rate_at(t) {
            continue;
        }
        let duration_secs = dur.sample(&mut rng).clamp(0.05, 120.0);
        let pick = rng.bounded_u64(total_weight);
        let mut acc = 0u64;
        let mut cores = spec.cores_choices[0].0;
        for (c, w) in &spec.cores_choices {
            acc += u64::from(*w);
            if pick < acc {
                cores = *c;
                break;
            }
        }
        let slo_secs = (duration_secs * spec.slo_multiple).max(spec.slo_floor_secs);
        jobs.push(JobTemplate {
            arrive_at_us: (t * 1e6).round() as u64,
            duration_us: (duration_secs * 1e6).round() as u64,
            cores,
            slo_us: (slo_secs * 1e6).round() as u64,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_spec() -> ArrivalSpec {
        ArrivalSpec {
            process: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            duration: DurationModel {
                mean_secs: 1.0,
                cv: 0.5,
            },
            cores_choices: vec![(1, 1), (2, 1)],
            slo_multiple: 4.0,
            slo_floor_secs: 2.0,
            horizon_secs: 200.0,
            max_jobs: 10_000,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = poisson_spec();
        let a = generate_jobs(&spec, 7);
        let b = generate_jobs(&spec, 7);
        assert!(!a.is_empty());
        assert_eq!(schedule_bytes(&a), schedule_bytes(&b));
        let c = generate_jobs(&spec, 8);
        assert_ne!(schedule_bytes(&a), schedule_bytes(&c));
    }

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let spec = poisson_spec();
        let jobs = generate_jobs(&spec, 3);
        let mut prev = 0;
        for j in &jobs {
            assert!(j.arrive_at_us >= prev);
            assert!(j.arrive_at_us < 200_000_000);
            assert!(j.duration_us >= 50_000);
            assert!(j.slo_us >= 2_000_000);
            prev = j.arrive_at_us;
        }
    }

    #[test]
    fn tenant_seed_is_stable_and_id_sensitive() {
        assert_eq!(tenant_seed(1, "a"), tenant_seed(1, "a"));
        assert_ne!(tenant_seed(1, "a"), tenant_seed(1, "b"));
        assert_ne!(tenant_seed(1, "a"), tenant_seed(2, "a"));
    }
}
