//! The cold-start policy sweep: the same tenant fleet run under each
//! [`ColdStartSpec`] arm, plus a pure recurrent microtrace driven
//! straight through [`WarmPool`] (no engine) whose cold-fraction
//! ordering is guaranteed by the property suites in
//! `crates/cloud/tests/policy_properties.rs`.
//!
//! `examples/coldstart_sweep.rs` renders both into one deterministic
//! JSON artifact (`target/coldstart_sweep.json`); `scripts/verify.sh`
//! diffs it across runs and worker counts and asserts the hybrid arm's
//! microtrace cold fraction never exceeds the fixed arm's.

use std::fmt::Write as _;

use splitserve_cloud::{ColdStartSpec, HybridHistogramSpec, PoolStats, WarmPool};

use crate::tenancy::admission::TenantSpec;
use crate::tenancy::server::{
    combined_fingerprint, fleet_workload, run_tenant_fleet, FleetJob, FleetOutcome, FleetPolicy,
    TenantFleetConfig,
};

/// The canonical sweep arms: the legacy infinite pool, a short fixed
/// window the recurrent gap defeats, an LRU memory cap, and the hybrid
/// histogram with the same short window as its fallback.
pub fn coldstart_arms() -> Vec<ColdStartSpec> {
    vec![
        ColdStartSpec::forever(),
        ColdStartSpec::fixed_secs(15),
        ColdStartSpec::UnloadOnPressure { cap_mb: 6_144 },
        ColdStartSpec::HybridHistogram(HybridHistogramSpec {
            min_samples: 4,
            fallback_keepalive_us: 15_000_000,
            ..HybridHistogramSpec::default()
        }),
    ]
}

/// The recurrent microtrace: `rounds` cycles of invoke → 1 s hold →
/// release → `gap_secs` idle, one function, 1536 MB containers. The gap
/// sits far beyond the fixed arm's window and well inside the hybrid
/// histogram's range, so the histogram converges.
pub fn recurrent_microtrace(spec: &ColdStartSpec, rounds: usize, gap_secs: u64) -> PoolStats {
    let mut pool = WarmPool::new(spec.build(), 0, 1_536);
    let mut t = 0u64;
    for _ in 0..rounds {
        pool.invoke(t, 0, 1_536);
        t += 1_000_000;
        pool.release(t, 0, 1_536);
        t += gap_secs * 1_000_000;
    }
    pool.finalize(t);
    pool.stats()
}

/// One fleet arm's outcome: the selector that configured it plus the
/// full fleet result and its metric-stream fingerprint.
pub struct ColdstartArm {
    /// Round-trippable selector (`forever`, `fixed:15`, …).
    pub selector: String,
    /// The fleet run.
    pub outcome: FleetOutcome,
    /// Fingerprint of the engine metric stream.
    pub fingerprint: u64,
}

/// Recurrent-burst fleet jobs: every `period_secs` a burst of
/// `burst_jobs` single-core jobs (staggered 50 ms apart, tenants
/// round-robin) lands on the fleet. The splitserve policy bridges each
/// burst's overflow with Lambdas, the allocator drains them in the lull,
/// and the next burst replays the cold-vs-warm question — the fleet-
/// scale version of the microtrace. For Lambdas to actually launch the
/// burst must out-run the allocator's saturation point: size
/// `burst_jobs` well past twice the resident pool.
pub fn recurrent_fleet_jobs(
    tenants: &[TenantSpec],
    bursts: usize,
    burst_jobs: usize,
    period_secs: u64,
) -> Vec<FleetJob> {
    let mut jobs = Vec::with_capacity(bursts * burst_jobs);
    for b in 0..bursts {
        for j in 0..burst_jobs {
            let id = (b * burst_jobs + j) as u64;
            jobs.push(FleetJob {
                job: id,
                tenant_idx: (id as usize) % tenants.len(),
                arrive_at_us: b as u64 * period_secs * 1_000_000 + j as u64 * 50_000,
                duration_us: 4_000_000,
                cores: 1,
                slo_us: 120_000_000,
            });
        }
    }
    jobs
}

/// Runs the full sweep: one splitserve-policy fleet per cold-start arm,
/// identical tenants/jobs/seed, only `cloud.coldstart` varying.
pub fn run_coldstart_sweep(
    workers: usize,
    tenants: &[TenantSpec],
    jobs: &[FleetJob],
    pool_cores: u32,
) -> Vec<ColdstartArm> {
    coldstart_arms()
        .into_iter()
        .map(|spec| {
            let mut cfg =
                TenantFleetConfig::for_policy(FleetPolicy::SplitServe, tenants.to_vec(), pool_cores);
            cfg.engine.workers = workers;
            cfg.cloud.coldstart = spec.clone();
            // No seeded warm pool: every warm start must be earned by the
            // policy under test.
            cfg.cloud.prewarmed_lambdas = 0;
            let (wl, sink) = fleet_workload(8);
            let outcome = run_tenant_fleet(&cfg, jobs, wl);
            let fingerprint = combined_fingerprint(&sink.borrow());
            ColdstartArm {
                selector: spec.selector(),
                outcome,
                fingerprint,
            }
        })
        .collect()
}

fn pool_block(out: &mut String, selector: &str, policy: &'static str, stats: &PoolStats) {
    let _ = write!(
        out,
        "{{\"coldstart\":\"{selector}\",\"policy\":\"{policy}\",\
         \"warm_starts\":{},\"cold_starts\":{},\"prewarm_starts\":{},\
         \"cold_fraction\":{:.6},\"wasted_gb_seconds\":{:.6},\
         \"evicted_expired\":{},\"evicted_pressure\":{},\"evicted_shutdown\":{}",
        stats.warm_starts,
        stats.cold_starts,
        stats.prewarm_starts,
        stats.cold_fraction(),
        stats.wasted_gb_seconds(),
        stats.evicted_expired,
        stats.evicted_pressure,
        stats.evicted_shutdown,
    );
}

/// Renders the sweep artifact. `workers` is a display label only —
/// callers comparing across worker counts pass a fixed value or
/// normalize the field like `scripts/verify.sh` does for the fleet
/// artifact.
pub fn render_coldstart_sweep_json(
    workers: usize,
    tenants: &[TenantSpec],
    jobs_n: usize,
    micro_rounds: usize,
    micro_gap_secs: u64,
    arms: &[ColdstartArm],
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"workers\":{workers},\"tenants\":{},\"jobs\":{jobs_n},",
        tenants.len()
    );
    let _ = write!(
        out,
        "\"microtrace\":{{\"rounds\":{micro_rounds},\"gap_secs\":{micro_gap_secs},\"policies\":["
    );
    for (i, spec) in coldstart_arms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let stats = recurrent_microtrace(spec, micro_rounds, micro_gap_secs);
        pool_block(&mut out, &spec.selector(), spec.name(), &stats);
        out.push('}');
    }
    out.push_str("]},\"arms\":[");
    for (i, arm) in arms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        pool_block(
            &mut out,
            &arm.selector,
            arm.outcome.coldstart_policy,
            &arm.outcome.pool,
        );
        let _ = write!(
            out,
            ",\"fleet_slo_attainment\":{:.6},\"cost_usd\":{:.6},\
             \"lambdas_launched\":{},\"fingerprint\":\"{:016x}\"}}",
            arm.outcome.slo.fleet_attainment(),
            arm.outcome.cost_usd,
            arm.outcome.lambdas_launched,
            arm.fingerprint,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenancy::fleet::default_tenant_specs;

    /// The microtrace orderings `verify.sh` gates on, checked at the
    /// exact sweep parameters the example uses.
    #[test]
    fn microtrace_orderings_hold_at_example_scale() {
        let arms = coldstart_arms();
        let stats: Vec<PoolStats> = arms
            .iter()
            .map(|s| recurrent_microtrace(s, 30, 45))
            .collect();
        let by_selector = |sel: &str| {
            arms.iter()
                .position(|a| a.selector() == sel)
                .unwrap_or_else(|| panic!("arm {sel} missing"))
        };
        let forever = &stats[by_selector("forever")];
        let fixed = &stats[by_selector("fixed:15")];
        let hybrid = &stats[by_selector("hybrid:15")];
        assert_eq!(forever.cold_starts, 1, "forever pool misses only round 0");
        assert_eq!(fixed.cold_starts, 30, "45s gap defeats the 15s window");
        assert!(
            hybrid.cold_fraction() <= fixed.cold_fraction(),
            "hybrid {:.3} vs fixed {:.3}",
            hybrid.cold_fraction(),
            fixed.cold_fraction()
        );
        assert!(hybrid.cold_starts < fixed.cold_starts);
        assert!(hybrid.prewarm_starts > 0, "the histogram must converge");
    }

    /// A reduced sweep is deterministic and arm outcomes actually
    /// diverge (the policy knob reaches the warm pool).
    #[test]
    fn reduced_sweep_is_deterministic_and_policy_sensitive() {
        let tenants = default_tenant_specs(4);
        let jobs = recurrent_fleet_jobs(&tenants, 3, 10, 40);
        let run = || {
            let arms = run_coldstart_sweep(1, &tenants, &jobs, 4);
            render_coldstart_sweep_json(0, &tenants, jobs.len(), 30, 45, &arms)
        };
        let a = run();
        assert_eq!(a, run(), "sweep artifact must be byte-deterministic");
        let arms = run_coldstart_sweep(1, &tenants, &jobs, 4);
        assert!(
            arms.iter().all(|a| a.outcome.lambdas_launched > 0),
            "bursts must overflow onto Lambdas or the sweep tests nothing"
        );
        for arm in &arms {
            assert_eq!(
                arm.outcome.outcomes.len(),
                jobs.len(),
                "{}: every job completes",
                arm.selector
            );
        }
        let forever = arms.iter().find(|a| a.selector == "forever").unwrap();
        let fixed = arms.iter().find(|a| a.selector == "fixed:15").unwrap();
        assert!(
            fixed.outcome.pool.cold_starts >= forever.outcome.pool.cold_starts,
            "a finite window cannot beat the infinite pool: {} < {}",
            fixed.outcome.pool.cold_starts,
            forever.outcome.pool.cold_starts
        );
    }
}
