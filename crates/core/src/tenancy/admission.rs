//! The admission queue and scheduler of the multi-tenant control plane:
//! strict priority across SLO classes, weighted fair share within a
//! class, per-tenant concurrency caps, and a slots model of the shared
//! executor fleet.
//!
//! The controller is deliberately engine-free: it sees arrivals and
//! completions as `(time, job)` pairs and answers with dispatch
//! decisions, so its invariants (no starvation, fairness bounds, strict
//! priority, caps) are testable against a toy executor without building
//! a deployment. Every decision is appended to an [`AdmissionEvent`]
//! log; [`verify_log`] replays that log and checks the invariants at
//! every step, which is what the property suites and the chaos sweep
//! share.
//!
//! Head-of-line blocking is a deliberate feature of the model: there is
//! no backfill. If the next job in priority-and-fairness order does not
//! fit the free slots, dispatching stops and the blocked time is
//! measured (`hol_us` on the eventual dispatch) — this is the
//! `hol_blocking_seconds` series the obs plane exports.

use std::collections::{BTreeMap, VecDeque};

use splitserve_obs::TenantId;

/// SLO class, in strict-priority order: an `Interactive` job never waits
/// behind a `Standard` or `Batch` job for the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Latency-critical, tightest SLOs — dispatched first.
    Interactive,
    /// The default class.
    Standard,
    /// Throughput-oriented, loosest SLOs — dispatched last.
    Batch,
}

impl SloClass {
    /// All classes, highest priority first.
    pub fn all() -> [SloClass; 3] {
        [SloClass::Interactive, SloClass::Standard, SloClass::Batch]
    }

    /// Stable lowercase label (metric label values, JSON artifacts).
    pub fn as_str(&self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Priority rank: lower dispatches first.
    pub fn rank(&self) -> u8 {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A tenant's contract with the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// The tenant key (ledgers are keyed by the same id).
    pub id: TenantId,
    /// Its SLO class.
    pub class: SloClass,
    /// Fair-share weight within the class (`>= 1`).
    pub weight: u32,
    /// Cap on concurrently dispatched jobs (`>= 1`).
    pub max_concurrent: u32,
}

/// An admission request: one job asking for slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionRequest {
    /// Globally unique job id.
    pub job: u64,
    /// The owning tenant (must be registered).
    pub tenant: TenantId,
    /// Slots (cores) the job occupies while running.
    pub cores: u32,
    /// Expected service time in microseconds — the fair-share accounting
    /// unit is `cores × service_estimate_us`.
    pub service_estimate_us: u64,
}

/// A dispatch decision returned by the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    /// The dispatched job.
    pub job: u64,
    /// Its tenant.
    pub tenant: TenantId,
    /// Slots it now occupies.
    pub cores: u32,
    /// Queue wait: dispatch time minus arrival time.
    pub waited_us: u64,
    /// Of that wait, how long the job sat at the head of the eligible
    /// order blocked only on free slots (head-of-line blocking).
    pub hol_us: u64,
}

/// What happened at one admission step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionEventKind {
    /// The job joined its tenant's queue.
    Arrived,
    /// The job was granted slots.
    Dispatched {
        /// Queue wait in microseconds.
        waited_us: u64,
        /// Head-of-line blocked time in microseconds.
        hol_us: u64,
    },
    /// The job finished and returned its slots.
    Completed,
}

/// One entry of the admission event log, with post-state snapshots so a
/// replay can cross-check the controller's own bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// Virtual time of the step, microseconds.
    pub at_us: u64,
    /// The job.
    pub job: u64,
    /// Its tenant.
    pub tenant: TenantId,
    /// The tenant's class.
    pub class: SloClass,
    /// The job's width in slots.
    pub cores: u32,
    /// What happened.
    pub kind: AdmissionEventKind,
    /// The tenant's running-job count just after this step.
    pub tenant_running_after: u32,
    /// Free slots just after this step.
    pub slots_free_after: u32,
}

#[derive(Debug)]
struct Queued {
    req: AdmissionRequest,
    arrived_us: u64,
    blocked_since: Option<u64>,
}

#[derive(Debug)]
struct TenantState {
    spec: TenantSpec,
    queue: VecDeque<Queued>,
    running: u32,
    /// Accumulated dispatched service (`Σ cores × estimate`), the
    /// fair-share currency. Compared weight-normalized across tenants.
    service: u128,
}

/// Outcome of one selection step, naming tenants by their dense index.
enum Pick {
    Dispatch(usize),
    Blocked(usize),
    Idle,
}

/// The admission controller: queues per tenant, one shared slots pool.
///
/// Tenant state lives in a dense `Vec` indexed by registration order;
/// the id→index map is consulted only on arrivals. The dispatch loop —
/// the control plane's hottest edge — walks the dense table and never
/// rebuilds keys or clones id strings.
#[derive(Debug)]
pub struct AdmissionController {
    slots_total: u32,
    slots_free: u32,
    tenants: Vec<TenantState>,
    index: BTreeMap<TenantId, u32>,
    /// job → (tenant index, cores held).
    running_jobs: BTreeMap<u64, (u32, u32)>,
    log: Vec<AdmissionEvent>,
    queued: usize,
}

impl AdmissionController {
    /// A controller over `slots_total` shared slots for the given
    /// tenants. Panics on duplicate tenant ids, zero weights or caps.
    pub fn new(slots_total: u32, specs: &[TenantSpec]) -> AdmissionController {
        let mut tenants = Vec::with_capacity(specs.len());
        let mut index = BTreeMap::new();
        for spec in specs {
            assert!(spec.weight >= 1, "tenant {} weight must be >= 1", spec.id);
            assert!(
                spec.max_concurrent >= 1,
                "tenant {} cap must be >= 1",
                spec.id
            );
            let prev = index.insert(spec.id.clone(), tenants.len() as u32);
            assert!(prev.is_none(), "duplicate tenant id {}", spec.id);
            tenants.push(TenantState {
                spec: spec.clone(),
                queue: VecDeque::new(),
                running: 0,
                service: 0,
            });
        }
        AdmissionController {
            slots_total,
            slots_free: slots_total,
            tenants,
            index,
            running_jobs: BTreeMap::new(),
            log: Vec::new(),
            queued: 0,
        }
    }

    /// An effectively unlimited controller (every arrival dispatches
    /// immediately) — the single-tenant stream wrapper uses this.
    pub fn unlimited(specs: &[TenantSpec]) -> AdmissionController {
        AdmissionController::new(u32::MAX, specs)
    }

    /// Total slots in the pool.
    pub fn slots_total(&self) -> u32 {
        self.slots_total
    }

    /// Currently free slots.
    pub fn slots_free(&self) -> u32 {
        self.slots_free
    }

    /// Jobs queued across all tenants.
    pub fn queued_jobs(&self) -> usize {
        self.queued
    }

    /// Jobs currently holding slots.
    pub fn running_jobs(&self) -> usize {
        self.running_jobs.len()
    }

    /// Whether nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.running_jobs.is_empty()
    }

    /// The event log so far.
    pub fn log(&self) -> &[AdmissionEvent] {
        &self.log
    }

    /// Consumes the controller, returning the full event log.
    pub fn into_log(self) -> Vec<AdmissionEvent> {
        self.log
    }

    /// A job arrives at `now_us`. Returns every dispatch the arrival
    /// unlocked (possibly including the new job itself).
    pub fn on_arrival(&mut self, now_us: u64, req: AdmissionRequest) -> Vec<Dispatch> {
        assert!(
            req.cores >= 1 && req.cores <= self.slots_total,
            "job {} wants {} cores against a {}-slot pool",
            req.job,
            req.cores,
            self.slots_total
        );
        let idx = *self
            .index
            .get(&req.tenant)
            .unwrap_or_else(|| panic!("unregistered tenant {}", req.tenant));
        let state = &mut self.tenants[idx as usize];
        let (tenant, class, cores) = (req.tenant.clone(), state.spec.class, req.cores);
        let (job, running) = (req.job, state.running);
        state.queue.push_back(Queued {
            req,
            arrived_us: now_us,
            blocked_since: None,
        });
        self.queued += 1;
        self.push_event(now_us, job, tenant, class, cores, AdmissionEventKind::Arrived, running);
        self.drain(now_us)
    }

    /// A dispatched job completes at `now_us`, returning its slots.
    /// Returns the dispatches the freed slots unlocked.
    pub fn on_complete(&mut self, now_us: u64, job: u64) -> Vec<Dispatch> {
        let (idx, cores) = self
            .running_jobs
            .remove(&job)
            .unwrap_or_else(|| panic!("completion for unknown job {job}"));
        self.slots_free += cores;
        let state = &mut self.tenants[idx as usize];
        state.running -= 1;
        let (tenant, class, running) = (state.spec.id.clone(), state.spec.class, state.running);
        self.push_event(
            now_us,
            job,
            tenant,
            class,
            cores,
            AdmissionEventKind::Completed,
            running,
        );
        self.drain(now_us)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_event(
        &mut self,
        at_us: u64,
        job: u64,
        tenant: TenantId,
        class: SloClass,
        cores: u32,
        kind: AdmissionEventKind,
        tenant_running_after: u32,
    ) {
        self.log.push(AdmissionEvent {
            at_us,
            job,
            tenant,
            class,
            cores,
            kind,
            tenant_running_after,
            slots_free_after: self.slots_free,
        });
    }

    /// Selection policy, one step: walk classes in strict-priority
    /// order; within the first class with an eligible tenant (non-empty
    /// queue, under its cap), walk tenants in weighted-fair order
    /// (minimum `service / weight`, ties by id) and take the first whose
    /// head job fits the free slots. If the class has eligible tenants
    /// but no head fits, the pool is head-of-line blocked: lower classes
    /// must NOT overtake (that would break strict priority), so
    /// dispatching stops there.
    /// Weighted fair order: `a.service/a.weight < b.service/b.weight`,
    /// compared exactly by cross-multiplication, ties by id. A total
    /// order (ids are unique), so a single min-scan picks the same
    /// tenant a full sort would put first.
    fn fair_before(a: &TenantState, b: &TenantState) -> bool {
        (a.service * u128::from(b.spec.weight))
            .cmp(&(b.service * u128::from(a.spec.weight)))
            .then_with(|| a.spec.id.cmp(&b.spec.id))
            .is_lt()
    }

    fn pick(&self) -> Pick {
        for class in SloClass::all() {
            // One pass over the dense table, no allocation: track the
            // fair-order minimum of all eligible tenants (the blocked
            // head if nothing fits) and of those whose head job fits
            // the free slots (the dispatch winner).
            let mut first: Option<usize> = None;
            let mut first_fit: Option<usize> = None;
            for (i, t) in self.tenants.iter().enumerate() {
                if t.spec.class != class
                    || t.running >= t.spec.max_concurrent
                    || t.queue.is_empty()
                {
                    continue;
                }
                if first.is_none_or(|b| Self::fair_before(t, &self.tenants[b])) {
                    first = Some(i);
                }
                let head = t.queue.front().expect("eligible tenant has a head");
                if head.req.cores <= self.slots_free
                    && first_fit.is_none_or(|b| Self::fair_before(t, &self.tenants[b]))
                {
                    first_fit = Some(i);
                }
            }
            if let Some(i) = first_fit {
                return Pick::Dispatch(i);
            }
            if let Some(i) = first {
                return Pick::Blocked(i);
            }
        }
        Pick::Idle
    }

    fn drain(&mut self, now_us: u64) -> Vec<Dispatch> {
        let mut out = Vec::new();
        loop {
            match self.pick() {
                Pick::Dispatch(idx) => {
                    let state = &mut self.tenants[idx];
                    let q = state.queue.pop_front().expect("picked tenant has a head");
                    let waited_us = now_us - q.arrived_us;
                    let hol_us = q.blocked_since.map_or(0, |since| now_us - since);
                    state.running += 1;
                    state.service +=
                        u128::from(q.req.cores) * u128::from(q.req.service_estimate_us);
                    let running = state.running;
                    let (tenant, class) = (state.spec.id.clone(), state.spec.class);
                    self.slots_free -= q.req.cores;
                    self.queued -= 1;
                    self.running_jobs
                        .insert(q.req.job, (idx as u32, q.req.cores));
                    self.push_event(
                        now_us,
                        q.req.job,
                        tenant.clone(),
                        class,
                        q.req.cores,
                        AdmissionEventKind::Dispatched { waited_us, hol_us },
                        running,
                    );
                    out.push(Dispatch {
                        job: q.req.job,
                        tenant,
                        cores: q.req.cores,
                        waited_us,
                        hol_us,
                    });
                }
                Pick::Blocked(idx) => {
                    let head = self.tenants[idx]
                        .queue
                        .front_mut()
                        .expect("blocked tenant has a head");
                    head.blocked_since.get_or_insert(now_us);
                    break;
                }
                Pick::Idle => break,
            }
        }
        out
    }
}

/// Replays an admission event log against the declared tenant set and
/// slots pool, re-deriving queues/running/slots at every step and
/// checking the control-plane invariants:
///
/// 1. timestamps are monotone non-decreasing;
/// 2. every job's lifecycle is `Arrived → Dispatched → Completed`, each
///    at most once, dispatch from the head of its tenant's FIFO queue;
/// 3. caps: a dispatch never lifts a tenant above `max_concurrent`;
/// 4. slots: free slots never go negative and every snapshot matches the
///    replayed state;
/// 5. strict priority: when a class-`C` job dispatches, every
///    strictly-higher-class tenant with a non-empty queue is at its cap
///    (a higher class never waits behind a lower one for the same slot);
/// 6. `waited_us` equals dispatch time minus arrival time.
///
/// Returns a description of the first violation, if any.
pub fn verify_log(
    slots_total: u32,
    specs: &[TenantSpec],
    events: &[AdmissionEvent],
) -> Result<(), String> {
    let spec_of: BTreeMap<&TenantId, &TenantSpec> =
        specs.iter().map(|s| (&s.id, s)).collect();
    let mut queues: BTreeMap<&TenantId, VecDeque<u64>> = BTreeMap::new();
    let mut running: BTreeMap<&TenantId, u32> = BTreeMap::new();
    let mut arrived_at: BTreeMap<u64, u64> = BTreeMap::new();
    let mut cores_of: BTreeMap<u64, u32> = BTreeMap::new();
    let mut dispatched: BTreeMap<u64, bool> = BTreeMap::new(); // job -> completed?
    let mut slots_free = slots_total;
    let mut prev_us = 0u64;

    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: String| Err(format!("event {i} ({:?} job {}): {msg}", ev.kind, ev.job));
        if ev.at_us < prev_us {
            return fail(format!("time went backwards: {} < {prev_us}", ev.at_us));
        }
        prev_us = ev.at_us;
        let Some(spec) = spec_of.get(&ev.tenant) else {
            return fail(format!("unknown tenant {}", ev.tenant));
        };
        if spec.class != ev.class {
            return fail(format!("class mismatch: log {}, spec {}", ev.class, spec.class));
        }
        match &ev.kind {
            AdmissionEventKind::Arrived => {
                if arrived_at.insert(ev.job, ev.at_us).is_some() {
                    return fail("job arrived twice".into());
                }
                cores_of.insert(ev.job, ev.cores);
                queues.entry(&ev.tenant).or_default().push_back(ev.job);
            }
            AdmissionEventKind::Dispatched { waited_us, hol_us } => {
                let q = queues.entry(&ev.tenant).or_default();
                match q.front() {
                    Some(&head) if head == ev.job => {
                        q.pop_front();
                    }
                    other => {
                        return fail(format!(
                            "dispatch not from queue head (head {other:?})"
                        ));
                    }
                }
                if dispatched.insert(ev.job, false).is_some() {
                    return fail("job dispatched twice".into());
                }
                let Some(&arr) = arrived_at.get(&ev.job) else {
                    return fail("dispatched before arrival".into());
                };
                if arr + waited_us != ev.at_us {
                    return fail(format!(
                        "waited_us {waited_us} inconsistent with arrival {arr}"
                    ));
                }
                if hol_us > waited_us {
                    return fail(format!("hol_us {hol_us} exceeds waited_us {waited_us}"));
                }
                if cores_of.get(&ev.job) != Some(&ev.cores) {
                    return fail("cores changed between arrival and dispatch".into());
                }
                let r = running.entry(&ev.tenant).or_default();
                *r += 1;
                if *r > spec.max_concurrent {
                    return fail(format!(
                        "cap violated: {} running > max_concurrent {}",
                        r, spec.max_concurrent
                    ));
                }
                if ev.tenant_running_after != *r {
                    return fail(format!(
                        "running snapshot {} != replayed {}",
                        ev.tenant_running_after, r
                    ));
                }
                if ev.cores > slots_free {
                    return fail(format!(
                        "dispatch of {} cores with only {slots_free} free",
                        ev.cores
                    ));
                }
                slots_free -= ev.cores;
                // Strict priority: every strictly-higher-class tenant
                // with queued work must be at its cap right now.
                for (tid, q) in &queues {
                    if q.is_empty() {
                        continue;
                    }
                    let other = spec_of[tid];
                    if other.class.rank() < ev.class.rank()
                        && running.get(tid).copied().unwrap_or(0) < other.max_concurrent
                    {
                        return fail(format!(
                            "priority inversion: {} ({}) queued and under cap while {} dispatched",
                            tid, other.class, ev.class
                        ));
                    }
                }
            }
            AdmissionEventKind::Completed => {
                match dispatched.get_mut(&ev.job) {
                    Some(done @ false) => *done = true,
                    Some(true) => return fail("job completed twice".into()),
                    None => return fail("completed before dispatch".into()),
                }
                let r = running.entry(&ev.tenant).or_default();
                if *r == 0 {
                    return fail("completion with no running jobs".into());
                }
                *r -= 1;
                if ev.tenant_running_after != *r {
                    return fail(format!(
                        "running snapshot {} != replayed {}",
                        ev.tenant_running_after, r
                    ));
                }
                slots_free += ev.cores;
                if slots_free > slots_total {
                    return fail("more slots freed than the pool holds".into());
                }
            }
        }
        if ev.slots_free_after != slots_free {
            return Err(format!(
                "event {i}: slots snapshot {} != replayed {slots_free}",
                ev.slots_free_after
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str, class: SloClass, weight: u32, cap: u32) -> TenantSpec {
        TenantSpec {
            id: TenantId::new(id),
            class,
            weight,
            max_concurrent: cap,
        }
    }

    fn req(job: u64, tenant: &str, cores: u32) -> AdmissionRequest {
        AdmissionRequest {
            job,
            tenant: TenantId::new(tenant),
            cores,
            service_estimate_us: 1_000_000,
        }
    }

    #[test]
    fn immediate_dispatch_when_slots_free() {
        let specs = [spec("a", SloClass::Standard, 1, 4)];
        let mut c = AdmissionController::new(8, &specs);
        let d = c.on_arrival(10, req(0, "a", 4));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].waited_us, 0);
        assert_eq!(c.slots_free(), 4);
        let d = c.on_complete(50, 0);
        assert!(d.is_empty());
        assert!(c.is_idle());
        verify_log(8, &specs, c.log()).unwrap();
    }

    #[test]
    fn strict_priority_dispatches_interactive_first() {
        let specs = [
            spec("batch", SloClass::Batch, 1, 8),
            spec("int", SloClass::Interactive, 1, 8),
        ];
        let mut c = AdmissionController::new(2, &specs);
        assert_eq!(c.on_arrival(0, req(0, "batch", 2)).len(), 1);
        // Pool full; both queue up.
        assert!(c.on_arrival(1, req(1, "batch", 2)).is_empty());
        assert!(c.on_arrival(2, req(2, "int", 2)).is_empty());
        // On release, the interactive job overtakes the earlier batch one.
        let d = c.on_complete(10, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, 2);
        let d = c.on_complete(20, 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, 1);
        c.on_complete(30, 1);
        verify_log(2, &specs, c.log()).unwrap();
    }

    #[test]
    fn caps_hold_even_with_free_slots() {
        let specs = [spec("a", SloClass::Standard, 1, 2)];
        let mut c = AdmissionController::new(100, &specs);
        let mut dispatched = 0;
        for j in 0..5 {
            dispatched += c.on_arrival(j, req(j, "a", 1)).len();
        }
        assert_eq!(dispatched, 2, "cap of 2 must bind");
        assert_eq!(c.queued_jobs(), 3);
        let d = c.on_complete(100, 0);
        assert_eq!(d.len(), 1);
        verify_log(100, &specs, c.log()).unwrap();
    }

    #[test]
    fn hol_blocking_is_attributed() {
        let specs = [spec("a", SloClass::Standard, 1, 8)];
        let mut c = AdmissionController::new(4, &specs);
        assert_eq!(c.on_arrival(0, req(0, "a", 3)).len(), 1);
        // 4-core job can't fit next to the 3-core one: HOL-blocked.
        assert!(c.on_arrival(5, req(1, "a", 4)).is_empty());
        let d = c.on_complete(25, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].waited_us, 20);
        assert_eq!(d[0].hol_us, 20, "blocked from arrival on");
        c.on_complete(30, 1);
        verify_log(4, &specs, c.log()).unwrap();
    }

    #[test]
    fn fair_share_alternates_equal_weights() {
        let specs = [
            spec("a", SloClass::Standard, 1, 9),
            spec("b", SloClass::Standard, 1, 9),
        ];
        let mut c = AdmissionController::new(1, &specs);
        for j in 0..4 {
            c.on_arrival(0, req(j, if j % 2 == 0 { "a" } else { "b" }, 1));
        }
        // One slot: dispatches must alternate a, b, a, b by service.
        let order: Vec<String> = {
            let mut out = Vec::new();
            let mut next = vec![0u64];
            let mut t = 1;
            while let Some(j) = next.pop() {
                for d in c.on_complete(t, j) {
                    out.push(d.tenant.to_string());
                    next.push(d.job);
                }
                t += 1;
            }
            out
        };
        assert_eq!(order, vec!["b", "a", "b"]);
        verify_log(1, &specs, c.log()).unwrap();
    }

    #[test]
    fn verify_log_catches_forged_snapshots() {
        let specs = [spec("a", SloClass::Standard, 1, 4)];
        let mut c = AdmissionController::new(8, &specs);
        c.on_arrival(0, req(0, "a", 2));
        let mut log = c.log().to_vec();
        log[1].slots_free_after = 99;
        assert!(verify_log(8, &specs, &log).is_err());
    }
}
