//! Knob selection (paper §6 "SplitServe dynamic parameter selection" and
//! the §5.1 profiling discussion): given offline profiling curves, an SLO
//! and pricing, pick the degree of parallelism, the VM/Lambda split, and
//! whether segueing is worthwhile.
//!
//! The paper walks exactly this decision: *"in case of a 'large' PageRank
//! job, if the execution time needs to be less than 70 s, then two
//! executors would be the lowest-cost choice; however, if the execution
//! time needs to be less than 60 s, then the only choice is 4 executors."*

use splitserve_des::SimDuration;

use crate::profiler::ProfilePoint;

/// The Figure 1 crossover for the default comparison (m4.large vCPU vs a
/// 1 536 MB Lambda), in seconds — the time-in-use after which keeping a
/// Lambda costs more than the VM.
pub fn fig1_crossover_default() -> f64 {
    splitserve_cloud::fig1_crossover(
        &splitserve_cloud::M4_LARGE,
        SimDuration::from_secs(7_200),
    )
    .expect("crossover exists for default pricing")
    .as_secs_f64()
}

/// The cheapest profiled configuration whose execution time meets
/// `slo_secs`, or `None` if no configuration does.
///
/// # Examples
///
/// ```
/// use splitserve::{cheapest_meeting_slo, ProfilePoint};
///
/// let profile = vec![
///     ProfilePoint { parallelism: 2, execution_secs: 65.0, cost_usd: 0.010 },
///     ProfilePoint { parallelism: 4, execution_secs: 55.0, cost_usd: 0.014 },
/// ];
/// // "< 70 s → two executors are the lowest-cost choice"
/// assert_eq!(cheapest_meeting_slo(&profile, 70.0).unwrap().parallelism, 2);
/// // "< 60 s → the only choice is 4 executors"
/// assert_eq!(cheapest_meeting_slo(&profile, 60.0).unwrap().parallelism, 4);
/// ```
pub fn cheapest_meeting_slo(profile: &[ProfilePoint], slo_secs: f64) -> Option<&ProfilePoint> {
    profile
        .iter()
        .filter(|p| p.execution_secs <= slo_secs)
        .min_by(|a, b| a.cost_usd.partial_cmp(&b.cost_usd).expect("no NaN costs"))
}

/// The fastest profiled configuration whose cost fits `budget_usd`.
pub fn fastest_within_budget(profile: &[ProfilePoint], budget_usd: f64) -> Option<&ProfilePoint> {
    profile
        .iter()
        .filter(|p| p.cost_usd <= budget_usd)
        .min_by(|a, b| {
            a.execution_secs
                .partial_cmp(&b.execution_secs)
                .expect("no NaN times")
        })
}

/// An intra-job resource plan for one arriving job.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// Cores to take from the free VM pool.
    pub vm_cores: u32,
    /// Lambdas to launch immediately (the shortfall Δ).
    pub lambdas: u32,
    /// Whether to launch replacement VMs in the background and segue.
    pub launch_replacement_vms: bool,
    /// Recommended `spark.lambda.executor.timeout`.
    pub lambda_timeout: SimDuration,
}

/// SplitServe's launch-time decision (paper §4.2): take every free VM
/// core, bridge the shortfall with Lambdas, and start replacement VMs in
/// the background *only if* the job's expected duration exceeds the
/// nominal VM start-up delay ("for jobs with SLO smaller than the VM start
/// up delay, starting new VMs would be futile").
///
/// The recommended Lambda timeout is the earlier of the Figure 1 cost
/// crossover and the moment replacements can be ready — after that,
/// keeping the Lambdas either costs more than VMs or is unnecessary.
pub fn plan_split(
    required_cores: u32,
    free_vm_cores: u32,
    expected_secs: f64,
    vm_boot_secs: f64,
    crossover_secs: f64,
) -> SplitPlan {
    let vm_cores = free_vm_cores.min(required_cores);
    let lambdas = required_cores - vm_cores;
    let launch_replacement_vms = lambdas > 0 && expected_secs > vm_boot_secs;
    let timeout = if launch_replacement_vms {
        vm_boot_secs.min(crossover_secs)
    } else {
        // No replacements coming: lambdas run to completion; the timeout
        // is advisory only and set past the job.
        expected_secs
    };
    SplitPlan {
        vm_cores,
        lambdas,
        launch_replacement_vms,
        lambda_timeout: SimDuration::from_secs_f64(timeout.max(1.0)),
    }
}

/// Records a chosen [`SplitPlan`] on the observability layer: an instant
/// on the driver's planner track whose annotations carry the decision —
/// the Figure-7 timelines then show *why* the executor mix looks the way
/// it does. A no-op when `obs` is disabled.
pub fn record_split_plan(obs: &splitserve_obs::Obs, at: splitserve_des::SimTime, plan: &SplitPlan) {
    if !obs.is_enabled() {
        return;
    }
    let span = obs.spans.open(at, "driver", "planner", "plan split");
    obs.spans.annotate(span, "vm_cores", &plan.vm_cores.to_string());
    obs.spans.annotate(span, "lambdas", &plan.lambdas.to_string());
    obs.spans.annotate(
        span,
        "launch_replacement_vms",
        &plan.launch_replacement_vms.to_string(),
    );
    obs.spans.annotate(
        span,
        "lambda_timeout_secs",
        &format!("{:.3}", plan.lambda_timeout.as_secs_f64()),
    );
    obs.spans.close(span, at);
    obs.metrics
        .gauge_set("planner_vm_cores", &[], f64::from(plan.vm_cores));
    obs.metrics
        .gauge_set("planner_lambdas", &[], f64::from(plan.lambdas));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Vec<ProfilePoint> {
        vec![
            ProfilePoint { parallelism: 1, execution_secs: 120.0, cost_usd: 0.008 },
            ProfilePoint { parallelism: 2, execution_secs: 65.0, cost_usd: 0.010 },
            ProfilePoint { parallelism: 4, execution_secs: 55.0, cost_usd: 0.014 },
            ProfilePoint { parallelism: 8, execution_secs: 50.0, cost_usd: 0.024 },
            ProfilePoint { parallelism: 16, execution_secs: 58.0, cost_usd: 0.046 },
        ]
    }

    #[test]
    fn paper_walkthrough_slo_70_then_60() {
        let p = profile();
        assert_eq!(cheapest_meeting_slo(&p, 70.0).expect("fits").parallelism, 2);
        assert_eq!(cheapest_meeting_slo(&p, 60.0).expect("fits").parallelism, 4);
        assert!(cheapest_meeting_slo(&p, 10.0).is_none(), "impossible SLO");
    }

    #[test]
    fn budget_constrained_choice() {
        let p = profile();
        assert_eq!(
            fastest_within_budget(&p, 0.015).expect("fits").parallelism,
            4
        );
        assert_eq!(
            fastest_within_budget(&p, 1.0).expect("fits").parallelism,
            8,
            "unlimited budget takes the global minimum time"
        );
        assert!(fastest_within_budget(&p, 0.001).is_none());
    }

    #[test]
    fn split_bridges_shortfall_with_lambdas() {
        let plan = plan_split(16, 3, 200.0, 110.0, 300.0);
        assert_eq!(plan.vm_cores, 3);
        assert_eq!(plan.lambdas, 13);
        assert!(plan.launch_replacement_vms, "200 s job > 110 s boot");
        assert_eq!(plan.lambda_timeout, SimDuration::from_secs_f64(110.0));
    }

    #[test]
    fn short_jobs_skip_replacement_vms() {
        // "for jobs with SLO smaller than the VM start up delay, starting
        // new VMs would be futile."
        let plan = plan_split(32, 8, 60.0, 110.0, 300.0);
        assert_eq!(plan.lambdas, 24);
        assert!(!plan.launch_replacement_vms);
    }

    #[test]
    fn fully_provisioned_jobs_use_no_lambdas() {
        let plan = plan_split(8, 12, 500.0, 110.0, 300.0);
        assert_eq!(plan.vm_cores, 8);
        assert_eq!(plan.lambdas, 0);
        assert!(!plan.launch_replacement_vms);
    }

    #[test]
    fn crossover_caps_the_timeout() {
        // If lambdas become uneconomical before the VM boots, drain at the
        // crossover.
        let plan = plan_split(16, 0, 500.0, 110.0, 45.0);
        assert_eq!(plan.lambda_timeout, SimDuration::from_secs_f64(45.0));
    }
}
