//! The **segueing facility** (paper §4.2–4.3): move ongoing work from
//! Lambda-based executors to VM-based ones without triggering Spark's
//! execution rollback.
//!
//! Two pieces cooperate:
//!
//! 1. *Background replacement* — when a job's expected duration exceeds the
//!    nominal VM boot delay, SplitServe launches VMs in the background to
//!    match the cores the launching facility obtained from Lambdas (or
//!    waits for executors to free up on existing VMs).
//! 2. *Graceful drain* — once replacements register, Lambda executors that
//!    have run longer than `spark.lambda.executor.timeout` stop receiving
//!    tasks, finish their current one, and are decommissioned. Their
//!    shuffle output lives on the shared HDFS layer, so nothing is lost
//!    and no recomputation cascade starts.

use splitserve_cloud::InstanceType;
use splitserve_des::{Sim, SimDuration, SimTime};
use splitserve_engine::EngineEventKind;

use crate::deploy::Deployment;

/// Where the replacement VM cores come from.
#[derive(Debug, Clone)]
pub enum ReplacementSource {
    /// Request fresh VMs now; they arrive after the boot delay.
    NewVms {
        /// Instance type to request.
        itype: InstanceType,
        /// Cores to provision across the new VMs.
        cores: u32,
    },
    /// Executors free up on an *existing* VM at a known time (the Fig. 7
    /// timeline example: "a core on an existing VM became available at
    /// 45 s").
    ExistingVmCores {
        /// Cores that become available.
        cores: u32,
        /// When they free up, relative to now.
        available_in: SimDuration,
    },
}

/// Segue policy knobs.
#[derive(Debug, Clone)]
pub struct SegueConfig {
    /// `spark.lambda.executor.timeout`: the minimum age before a Lambda
    /// executor is drained. The paper's configurable threshold guarding
    /// against GC slowdown and budget overrun.
    pub lambda_timeout: SimDuration,
    /// Where replacement cores come from.
    pub replacement: ReplacementSource,
}

impl SegueConfig {
    /// Replacement from a fresh VM with the default 60 s Lambda timeout.
    pub fn new_vms(itype: InstanceType, cores: u32) -> Self {
        SegueConfig {
            lambda_timeout: SimDuration::from_secs(60),
            replacement: ReplacementSource::NewVms { itype, cores },
        }
    }

    /// Replacement from cores freeing on an existing VM.
    pub fn existing_cores(cores: u32, available_in: SimDuration) -> Self {
        SegueConfig {
            lambda_timeout: SimDuration::from_secs(60),
            replacement: ReplacementSource::ExistingVmCores { cores, available_in },
        }
    }

    /// Overrides the Lambda executor timeout.
    pub fn with_lambda_timeout(mut self, t: SimDuration) -> Self {
        self.lambda_timeout = t;
        self
    }
}

/// Arms the segueing facility on a deployment: provisions the replacement
/// cores per `cfg.replacement`, and when they register, schedules the
/// graceful drain of every Lambda executor at
/// `max(now, its registration time + lambda_timeout)`.
pub fn arm_segue(sim: &mut Sim, deployment: &Deployment, cfg: SegueConfig) {
    let timeout = cfg.lambda_timeout;
    match cfg.replacement {
        ReplacementSource::NewVms { itype, cores } => {
            let d = deployment.clone();
            let mut remaining = cores;
            while remaining > 0 {
                let batch = remaining.min(itype.vcpus);
                remaining -= batch;
                let d2 = d.clone();
                deployment.request_vm_workers(sim, itype.clone(), batch, move |sim, _ids| {
                    commence_drain(sim, &d2, timeout);
                });
            }
        }
        ReplacementSource::ExistingVmCores { cores, available_in } => {
            let d = deployment.clone();
            sim.schedule_in(available_in, move |sim| {
                let vm = d.first_worker_vm().unwrap_or_else(|| d.master_vm());
                d.add_executors_on_vm(sim, vm, cores);
                commence_drain(sim, &d, timeout);
            });
        }
    }
}

/// Replacement cores are in place: drain each Lambda executor once it has
/// exceeded the timeout (immediately, if it already has).
fn commence_drain(sim: &mut Sim, deployment: &Deployment, timeout: SimDuration) {
    deployment.engine().event_log().push(
        sim.now(),
        EngineEventKind::Marker("segue commences".to_string()),
    );
    deployment
        .engine()
        .obs()
        .mark(sim.now(), "driver", "segue", "segue commences");
    deployment
        .engine()
        .obs()
        .flight
        .record(sim.now(), "segue-commences", &[]);
    for exec in deployment.lambda_executors() {
        let Some(info) = deployment.engine().executor_info(&exec) else {
            continue;
        };
        if !info.alive && !info.busy {
            continue;
        }
        let drain_at: SimTime = info.registered_at + timeout;
        let d = deployment.clone();
        if drain_at <= sim.now() {
            d.drain_lambda_executor(sim, &exec);
        } else {
            sim.schedule_at(drain_at, move |sim| {
                d.drain_lambda_executor(sim, &exec);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ShuffleStoreKind;
    use splitserve_cloud::{CloudSpec, M4_4XLARGE, M4_XLARGE};
    use splitserve_des::Dist;
    use splitserve_engine::{collect_partitions, Dataset};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn quiet_cloud() -> CloudSpec {
        CloudSpec {
            vm_boot: Dist::constant(110.0),
            lambda_warm_start: Dist::constant(0.1),
            lambda_cold_start: Dist::constant(3.0),
            lambda_net_jitter: Dist::constant(1.0),
            ..CloudSpec::default()
        }
    }

    /// A deliberately long job (~minutes of virtual time) so segue has
    /// room to happen mid-flight.
    fn long_job() -> Dataset<(u64, f64)> {
        Dataset::<u64>::generate(64, |p| (0..20_000u64).map(|i| i + p as u64).collect())
            .map_with_cost(|x| (*x % 16, 1.0f64), Some(8e-4))
            .reduce_by_key(16, |a, b| a + b)
    }

    #[test]
    fn segue_moves_work_from_lambdas_to_vms_without_recompute() {
        let mut sim = Sim::new(11);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        let (_vm, _) = d.add_vm_workers(&mut sim, M4_4XLARGE, 3);
        d.add_lambda_executors(&mut sim, 13);
        arm_segue(
            &mut sim,
            &d,
            SegueConfig::existing_cores(13, SimDuration::from_secs(45))
                .with_lambda_timeout(SimDuration::from_secs(30)),
        );
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine().submit_job(&mut sim, long_job().node(), move |sim, r| {
            *o.borrow_mut() = Some((sim.now().as_secs_f64(), r));
        });
        sim.run();
        let (done_at, r) = out.borrow_mut().take().expect("job completes");
        assert!(done_at > 45.0, "job long enough to straddle the segue");
        // Both kinds did work, nothing was recomputed, and all lambdas are
        // gone by the end.
        assert!(r.metrics.tasks_on_vm > 0);
        assert!(r.metrics.tasks_on_lambda > 0);
        assert_eq!(r.metrics.tasks_recomputed, 0, "graceful segue: no rollback");
        let lambdas_alive = d
            .engine()
            .executors()
            .iter()
            .filter(|e| e.id.as_str().starts_with("lambda-") && e.alive)
            .count();
        assert_eq!(lambdas_alive, 0, "all lambdas decommissioned");
        let correct = collect_partitions::<(u64, f64)>(r.partitions);
        assert_eq!(correct.len(), 16);
        assert!(correct.iter().all(|(_, v)| (*v - 80_000.0).abs() < 1e-9));
    }

    #[test]
    fn segue_with_new_vm_waits_for_boot() {
        let mut sim = Sim::new(3);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 4);
        arm_segue(
            &mut sim,
            &d,
            SegueConfig::new_vms(M4_XLARGE, 4).with_lambda_timeout(SimDuration::from_secs(10)),
        );
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine().submit_job(&mut sim, long_job().node(), move |sim, r| {
            *o.borrow_mut() = Some((sim.now().as_secs_f64(), r.metrics.clone()));
        });
        sim.run();
        let (done_at, m) = out.borrow_mut().take().expect("completes");
        // VM boots at 110 s; the drain marker must not precede it.
        let events = d.engine().event_log().snapshot();
        let marker_at = events
            .iter()
            .find(|e| matches!(&e.kind, EngineEventKind::Marker(s) if s == "segue commences"))
            .expect("segue marker present")
            .at;
        assert!(marker_at.as_secs_f64() >= 110.0);
        assert!(done_at > 110.0);
        assert_eq!(m.tasks_recomputed, 0);
    }

    #[test]
    fn timeout_respected_for_young_lambdas() {
        // Replacement arrives at t=1 s but the timeout is 50 s: lambdas
        // keep taking tasks until they age out.
        let mut sim = Sim::new(5);
        let d = Deployment::new(&mut sim, quiet_cloud(), ShuffleStoreKind::Hdfs, M4_XLARGE);
        d.add_lambda_executors(&mut sim, 2);
        arm_segue(
            &mut sim,
            &d,
            SegueConfig::existing_cores(2, SimDuration::from_secs(1))
                .with_lambda_timeout(SimDuration::from_secs(50)),
        );
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        d.engine().submit_job(&mut sim, long_job().node(), move |sim, r| {
            *o.borrow_mut() = Some((sim.now().as_secs_f64(), r.metrics.clone()));
        });
        sim.run();
        let events = d.engine().event_log().snapshot();
        let drain_at = events
            .iter()
            .find(|e| matches!(e.kind, EngineEventKind::ExecutorDraining { .. }))
            .expect("drain happened")
            .at;
        assert!(
            drain_at.as_secs_f64() >= 50.0,
            "drained too early: {drain_at}"
        );
    }
}
