//! # splitserve — efficiently splitting Spark-like jobs across FaaS and IaaS
//!
//! A reproduction of **SplitServe** (Jain et al., ACM Middleware 2020): an
//! enhancement of a Spark-like engine that lets a *single* job's tasks run
//! simultaneously on VM-based executors and cloud-function (Lambda-based)
//! executors, bridging VM shortfalls with the ~100 ms agility of warm
//! Lambdas and segueing work back to VMs when they become available.
//!
//! The three facilities of the paper's §4 map to:
//!
//! - **Launching facility** — [`Deployment`]: tracks the system-wide
//!   VM/Lambda state and launches executors on either substrate
//!   ([`Deployment::add_vm_workers`], [`Deployment::add_lambda_executors`]).
//! - **Segueing facility** — [`arm_segue`] with a [`SegueConfig`]: launches
//!   replacement VMs in the background and *gracefully drains* Lambda
//!   executors past `spark.lambda.executor.timeout`, avoiding Spark's
//!   execution rollback.
//! - **State-transfer facility** — [`ShuffleStoreKind::Hdfs`]: a shared
//!   HDFS layer colocated with the master that both VM- and Lambda-based
//!   executors read and write, keyed by their unique executor ids.
//!
//! The evaluation machinery is here too: the eight [`Scenario`]s of §5,
//! the offline [`profiler`](profile_sweep) of Figure 4, and the inter-job
//! demand [`forecast`](DayModel) of Figure 2.
//!
//! # Examples
//!
//! A job arrives needing 5 cores but finds only 2 free (the paper's §4.2
//! walkthrough):
//!
//! ```
//! use splitserve::{Deployment, ShuffleStoreKind};
//! use splitserve_cloud::{CloudSpec, M4_XLARGE};
//! use splitserve_des::{Sim, SimTime};
//!
//! let mut sim = Sim::new(0);
//! let d = Deployment::new(&mut sim, CloudSpec::default(), ShuffleStoreKind::Hdfs, M4_XLARGE);
//! d.add_vm_workers(&mut sim, M4_XLARGE, 2);   // the free cores
//! d.add_lambda_executors(&mut sim, 3);        // bridge the shortfall
//! sim.run_until(SimTime::from_secs(5));       // warm starts land in ~100 ms
//! assert_eq!(d.engine().active_executors(), 5);
//! ```

#![warn(missing_docs)]

mod allocator;
mod deploy;
mod forecast;
mod planner;
mod profiler;
mod scenario;
mod segue;
mod stream;
pub mod tenancy;

pub use allocator::{start_allocator, AllocatorConfig, AllocatorHandle};
pub use deploy::{Deployment, ShuffleStoreKind};
pub use forecast::{evaluate_policy, DayModel, DemandPoint, PolicyOutcome, ProvisionPolicy};
pub use planner::{
    cheapest_meeting_slo, fastest_within_budget, fig1_crossover_default, plan_split,
    record_split_plan, SplitPlan,
};
pub use profiler::{optimal_parallelism, profile_once, profile_sweep, ProfileMode, ProfilePoint};
pub use scenario::{
    run_scenario, run_scenarios, DriverProgram, Scenario, ScenarioResult, ScenarioSpec,
};
pub use segue::{arm_segue, ReplacementSource, SegueConfig};
pub use stream::{
    bursty_arrivals, run_job_stream, JobOutcome, StreamJob, StreamOutcome, StreamPolicy,
};
pub use tenancy::{
    run_tenant_fleet, run_tenant_fleet_with, AdmissionController, FleetJob, FleetOutcome,
    FleetPolicy, SloClass, TenantFleetConfig, TenantJobOutcome, TenantSpec,
};
