//! Offline workload profiling (paper §5.1, Figure 4): execution time and
//! cost versus degree of parallelism, for all-Lambda and all-VM
//! executions. The classic U-shaped curve emerges from the tension between
//! per-task parallelism gains and growing communication/coordination
//! overheads.

use splitserve_cloud::fewest_instances_for_cores;
use splitserve_des::Sim;

use crate::deploy::{Deployment, ShuffleStoreKind};
use crate::scenario::{DriverProgram, ScenarioSpec};

/// One profiling measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// Degree of parallelism (executors, one core each).
    pub parallelism: u32,
    /// Execution time in seconds.
    pub execution_secs: f64,
    /// Marginal cost in USD.
    pub cost_usd: f64,
}

/// Executor substrate being profiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// All executors on Lambdas (shuffle over HDFS at the master).
    LambdaOnly,
    /// All executors on VMs packed onto the fewest instances
    /// (vanilla-Spark-style local shuffle).
    VmOnly,
}

/// Profiles a workload at one degree of parallelism.
///
/// The `workload` factory receives the parallelism so it can size its
/// reduce side accordingly (as the paper's profiling does).
pub fn profile_once(
    mode: ProfileMode,
    parallelism: u32,
    spec: &ScenarioSpec,
    workload: &dyn Fn(u32) -> Box<dyn DriverProgram>,
) -> ProfilePoint {
    let mut sim = Sim::new(spec.seed);
    let store = match mode {
        ProfileMode::LambdaOnly => ShuffleStoreKind::Hdfs,
        ProfileMode::VmOnly => ShuffleStoreKind::Local,
    };
    let d = Deployment::with_engine_config(
        &mut sim,
        spec.cloud.clone(),
        store,
        spec.master_type.clone(),
        spec.engine.clone(),
    );
    d.set_lambda_memory_mb(spec.lambda_memory_mb);
    match mode {
        ProfileMode::LambdaOnly => {
            d.add_lambda_executors(&mut sim, parallelism);
        }
        ProfileMode::VmOnly => {
            // "For each degree of parallelism, we use the fewest number of
            // instances that provide the required number of cores."
            let mut remaining = parallelism;
            for itype in fewest_instances_for_cores(parallelism) {
                let batch = remaining.min(itype.vcpus);
                d.add_vm_workers(&mut sim, itype, batch);
                remaining -= batch;
            }
        }
    }
    let program = workload(parallelism);
    let done = std::rc::Rc::new(std::cell::Cell::new(None));
    let f = std::rc::Rc::clone(&done);
    let d2 = d.clone();
    program.submit(
        &mut sim,
        d.engine(),
        Box::new(move |sim| {
            f.set(Some(sim.now().as_secs_f64()));
            d2.shutdown(sim);
        }),
    );
    sim.run();
    ProfilePoint {
        parallelism,
        execution_secs: done.get().expect("profiled workload must complete"),
        cost_usd: d.cloud().total_cost(),
    }
}

/// Profiles a workload across a ladder of parallelism degrees
/// (the paper sweeps 1, 2, 4, …, 128).
pub fn profile_sweep(
    mode: ProfileMode,
    parallelisms: &[u32],
    spec: &ScenarioSpec,
    workload: &dyn Fn(u32) -> Box<dyn DriverProgram>,
) -> Vec<ProfilePoint> {
    parallelisms
        .iter()
        .map(|p| profile_once(mode, *p, spec, workload))
        .collect()
}

/// The parallelism with the lowest execution time in a sweep — the
/// "performance-optimal degree of parallelism" the profiling identifies.
pub fn optimal_parallelism(points: &[ProfilePoint]) -> Option<u32> {
    points
        .iter()
        .min_by(|a, b| {
            a.execution_secs
                .partial_cmp(&b.execution_secs)
                .expect("no NaN times")
        })
        .map(|p| p.parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DriverProgram;
    use splitserve_cloud::CloudSpec;
    use splitserve_des::Dist;
    use splitserve_engine::{Dataset, Engine};

    /// A parallel workload with a serial aggregation component and
    /// per-task shuffle overhead — enough structure for a U-curve.
    struct SweepLoad {
        parallelism: u32,
    }

    impl DriverProgram for SweepLoad {
        fn name(&self) -> String {
            "sweep-load".into()
        }
        fn parallelism(&self) -> usize {
            self.parallelism as usize
        }
        fn submit(&self, sim: &mut Sim, engine: &Engine, done: Box<dyn FnOnce(&mut Sim)>) {
            let p = self.parallelism as usize;
            // Fixed total work split across p partitions; every map task
            // sends a record to every reducer (all-to-all shuffle).
            let total: u64 = 200_000;
            let per = total / p as u64;
            let ds = Dataset::<u64>::generate(p, move |i| {
                (0..per).map(|x| x + i as u64).collect()
            })
            .map_with_cost(|x| (*x % 64, 1u64), Some(5e-5))
            .reduce_by_key(p, |a, b| a + b);
            engine.submit_job(sim, ds.node(), move |sim, _| done(sim));
        }
    }

    fn quiet_spec() -> ScenarioSpec {
        ScenarioSpec {
            cloud: CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.12),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                ..CloudSpec::default()
            },
            ..ScenarioSpec::default()
        }
    }

    fn factory() -> Box<dyn Fn(u32) -> Box<dyn DriverProgram>> {
        Box::new(|p| Box::new(SweepLoad { parallelism: p }))
    }

    #[test]
    fn lambda_sweep_produces_finite_points() {
        let pts = profile_sweep(
            ProfileMode::LambdaOnly,
            &[1, 2, 4, 8],
            &quiet_spec(),
            &factory(),
        );
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.execution_secs > 0.0 && p.execution_secs.is_finite());
            assert!(p.cost_usd > 0.0);
        }
        // Parallelism helps at the start of the ladder.
        assert!(pts[1].execution_secs < pts[0].execution_secs);
    }

    #[test]
    fn vm_only_is_faster_than_lambda_only_at_same_parallelism() {
        let spec = quiet_spec();
        let la = profile_once(ProfileMode::LambdaOnly, 8, &spec, &factory());
        let vm = profile_once(ProfileMode::VmOnly, 8, &spec, &factory());
        assert!(
            vm.execution_secs <= la.execution_secs,
            "vm {} vs lambda {}",
            vm.execution_secs,
            la.execution_secs
        );
    }

    #[test]
    fn optimal_parallelism_picks_the_minimum() {
        let pts = vec![
            ProfilePoint { parallelism: 1, execution_secs: 10.0, cost_usd: 1.0 },
            ProfilePoint { parallelism: 2, execution_secs: 6.0, cost_usd: 1.1 },
            ProfilePoint { parallelism: 4, execution_secs: 7.5, cost_usd: 1.4 },
        ];
        assert_eq!(optimal_parallelism(&pts), Some(2));
        assert_eq!(optimal_parallelism(&[]), None);
    }
}
