//! # splitserve-storage — shuffle/state storage substrates
//!
//! The paper's central storage question is *where intermediate shuffle data
//! lives* when executors are fleeting:
//!
//! | Store | Used by | Survives executor loss? | Catch |
//! |---|---|---|---|
//! | [`LocalDiskStore`] | vanilla Spark dynamic allocation | **no** → lineage rollback | executor death loses blocks |
//! | [`HdfsStore`] | **SplitServe** (§4.3) | yes | bottlenecked by the HDFS node's EBS pipe |
//! | [`S3Store`] | Qubole Spark-on-Lambda, PyWren | yes | throttled, high-latency, per-request cost |
//! | [`SqsStore`] | Flint | yes | 256 KB chunking, steep request cost |
//! | [`RedisStore`] | Locus | yes | needs an expensive always-on VM |
//!
//! All stores implement [`BlockStore`]: asynchronous `put`/`get` that charge
//! the right fabric links, latencies, throttles and dollars.

#![warn(missing_docs)]

mod api;
mod fault;
mod hdfs;
mod local;
mod obs;
mod redis;
mod s3;
mod sqs;
mod util;

pub use api::{
    BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats,
};
pub use fault::{FaultStore, StoreFaults};
pub use hdfs::{HdfsSpec, HdfsStore};
pub use local::LocalDiskStore;
pub use obs::InstrumentedStore;
pub use redis::{RedisSpec, RedisStore};
pub use s3::{S3Spec, S3Store};
pub use sqs::{SqsSpec, SqsStore, SQS_MESSAGE_BYTES};

use std::rc::Rc;

/// A reference-counted dynamic block store, the form the engine consumes.
pub type SharedStore = Rc<dyn BlockStore>;
