//! The common block-store API all shuffle/state substrates implement.

use std::fmt;

use splitserve_rt::{Bytes, Interned};
use splitserve_des::{LinkId, Sim};

/// A stored block, addressed Spark-style: each executor's *unique ID* is the
/// entry point into the directory structure (paper §4.3), and the block name
/// follows Spark's `shuffle_<shuffle>_<map>_<reduce>` convention.
///
/// `Copy`: the executor is an interned symbol and shuffle names are kept
/// structured (see [`BlockName`]), so block ids move through the store
/// request path — built per fetch and per write — without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// The executor that wrote the block (directory prefix).
    pub executor: Interned,
    /// Block name within the executor's directory.
    pub name: BlockName,
}

/// A block's name within its executor directory: either a structured
/// shuffle triple (rendered in Spark's `shuffle_<s>_<m>_<r>` convention)
/// or an interned free-form name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockName {
    /// A shuffle block: `shuffle_<shuffle>_<map>_<reduce>`.
    Shuffle {
        /// Shuffle id.
        shuffle: u64,
        /// Map partition index.
        map: u64,
        /// Reduce partition index.
        reduce: u64,
    },
    /// An arbitrary named block.
    Named(Interned),
}

impl BlockId {
    /// A shuffle block id in Spark's naming convention.
    pub fn shuffle(executor: impl Into<Interned>, shuffle: u64, map: u64, reduce: u64) -> Self {
        BlockId {
            executor: executor.into(),
            name: BlockName::Shuffle {
                shuffle,
                map,
                reduce,
            },
        }
    }

    /// An arbitrary named block.
    pub fn named(executor: impl Into<Interned>, name: impl Into<BlockName>) -> Self {
        BlockId {
            executor: executor.into(),
            name: name.into(),
        }
    }
}

impl From<Interned> for BlockName {
    fn from(name: Interned) -> Self {
        BlockName::Named(name)
    }
}

impl From<&str> for BlockName {
    fn from(name: &str) -> Self {
        BlockName::Named(Interned::new(name))
    }
}

impl fmt::Display for BlockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockName::Shuffle {
                shuffle,
                map,
                reduce,
            } => write!(f, "shuffle_{shuffle}_{map}_{reduce}"),
            BlockName::Named(name) => f.write_str(name.as_str()),
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.executor, self.name)
    }
}

/// Where the requesting executor runs, so the store can charge the right
/// links for the transfer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientLoc {
    /// The client's network link, if network is traversed.
    pub nic: Option<LinkId>,
    /// The client's local-disk link, for local reads/writes.
    pub disk: Option<LinkId>,
}

impl ClientLoc {
    /// A client with only a network link (e.g. a Lambda).
    pub fn net(nic: LinkId) -> Self {
        ClientLoc {
            nic: Some(nic),
            disk: None,
        }
    }

    /// A client with network and disk links (a VM executor).
    pub fn vm(nic: LinkId, disk: LinkId) -> Self {
        ClientLoc {
            nic: Some(nic),
            disk: Some(disk),
        }
    }
}

/// Errors surfaced by block stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The block does not exist (never written, or deleted).
    NotFound(BlockId),
    /// The block was lost because the executor holding it died — the event
    /// that triggers Spark's recompute-from-lineage rollback.
    ExecutorLost {
        /// The dead executor whose local blocks vanished.
        executor: String,
        /// The block that was being fetched.
        block: BlockId,
    },
    /// The store rejected the request (e.g. block exceeds a service limit).
    Rejected(String),
    /// A deliberately injected fault (chaos testing): which operation was
    /// struck and its 1-based ordinal in the store's request sequence.
    Injected {
        /// The struck operation ("get" or "put").
        op: &'static str,
        /// 1-based position in that operation's request sequence.
        ordinal: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(b) => write!(f, "block not found: {b}"),
            StoreError::ExecutorLost { executor, block } => {
                write!(f, "executor {executor} lost; block {block} gone")
            }
            StoreError::Rejected(m) => write!(f, "request rejected: {m}"),
            StoreError::Injected { op, ordinal } => {
                write!(f, "injected fault: {op} #{ordinal}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Completion continuation for writes.
pub type PutCallback = Box<dyn FnOnce(&mut Sim, Result<(), StoreError>)>;
/// Completion continuation for reads.
pub type GetCallback = Box<dyn FnOnce(&mut Sim, Result<Bytes, StoreError>)>;

/// Aggregate counters a store keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Completed writes.
    pub puts: u64,
    /// Completed reads.
    pub gets: u64,
    /// Bytes written.
    pub bytes_in: u64,
    /// Bytes read.
    pub bytes_out: u64,
    /// Failed reads (not-found / lost).
    pub failed_gets: u64,
    /// Cumulative seconds requests spent waiting on throttling.
    pub throttle_wait_secs: f64,
}

/// A shuffle/state storage substrate.
///
/// All operations are asynchronous in simulated time: they charge the
/// appropriate links/latencies and invoke the continuation when done.
/// Implementations differ in *where bytes live* — and therefore in whether
/// blocks survive the death of the executor that wrote them, which is the
/// architectural property SplitServe's HDFS-based state exchange provides.
pub trait BlockStore {
    /// Short name for logs and experiment tables ("hdfs", "s3", …).
    fn kind(&self) -> &'static str;

    /// Whether blocks survive the loss of the executor that wrote them.
    /// `false` for executor-local disk (vanilla dynamic allocation);
    /// `true` for the shared substrates (HDFS, S3, SQS, Redis).
    fn survives_executor_loss(&self) -> bool;

    /// Writes `data` under `block`, invoking `cb` when the bytes are
    /// durably placed.
    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback);

    /// Reads `block`, invoking `cb` with the bytes or an error.
    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback);

    /// Reacts to the death of `executor`: a local store drops its blocks;
    /// shared stores keep them.
    fn on_executor_lost(&self, sim: &mut Sim, executor: &str);

    /// Registers an executor's location so local stores can serve its
    /// blocks. Shared substrates don't care; the default is a no-op.
    fn register_executor(&self, executor: &str, loc: ClientLoc) {
        let _ = (executor, loc);
    }

    /// Whether the block currently exists.
    fn contains(&self, block: &BlockId) -> bool;

    /// Traffic counters.
    fn stats(&self) -> StoreStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_block_naming_matches_spark() {
        let b = BlockId::shuffle("exec-7", 1, 3, 9);
        assert_eq!(b.to_string(), "exec-7/shuffle_1_3_9");
    }

    #[test]
    fn block_ids_order_by_executor_then_name() {
        let a = BlockId::named("a", "z");
        let b = BlockId::named("b", "a");
        assert!(a < b);
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::ExecutorLost {
            executor: "exec-1".into(),
            block: BlockId::shuffle("exec-1", 0, 0, 0),
        };
        let s = e.to_string();
        assert!(s.contains("exec-1") && s.contains("shuffle_0_0_0"));
    }
}
