//! Small helpers shared by the store implementations.

use splitserve_des::{Fabric, LinkId, Sim, SimDuration};

/// Waits `delay`, then moves `bytes` across `links`, then runs `then`.
/// The standard shape of a storage operation: request latency followed by a
/// bandwidth-constrained transfer.
pub(crate) fn delay_then_flow(
    sim: &mut Sim,
    fabric: &Fabric,
    delay: SimDuration,
    links: Vec<LinkId>,
    bytes: u64,
    then: impl FnOnce(&mut Sim) + 'static,
) {
    let fabric = fabric.clone();
    if delay.is_zero() {
        fabric.start_flow(sim, &links, bytes, then);
    } else {
        sim.schedule_in(delay, move |sim| {
            fabric.start_flow(sim, &links, bytes, then);
        });
    }
}

/// Collects the `Some` links, deduplicated, preserving order — transfers
/// between colocated endpoints must not charge the same link twice.
pub(crate) fn link_path(candidates: &[Option<LinkId>]) -> Vec<LinkId> {
    let mut out: Vec<LinkId> = Vec::new();
    for l in candidates.iter().flatten() {
        if !out.contains(l) {
            out.push(*l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_path_dedups_and_drops_none() {
        let fabric = Fabric::new();
        let a = fabric.add_link(1.0, "a");
        let b = fabric.add_link(1.0, "b");
        let path = link_path(&[Some(a), None, Some(b), Some(a)]);
        assert_eq!(path, vec![a, b]);
    }

    #[test]
    fn delay_then_flow_sequences_latency_and_transfer() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let l = fabric.add_link(100.0, "l");
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let d = std::rc::Rc::clone(&done);
        delay_then_flow(
            &mut sim,
            &fabric,
            SimDuration::from_secs(2),
            vec![l],
            300,
            move |sim| d.set(sim.now().as_secs_f64()),
        );
        sim.run();
        assert_eq!(done.get(), 5.0); // 2 s latency + 3 s transfer
    }
}
