//! An S3-like object store: durable and shared, but throttled per bucket,
//! high-latency per request, and billed per request.
//!
//! This is Qubole-Spark-on-Lambda's shuffle substrate. The paper (§2)
//! attributes its slowness to the per-bucket request-rate caps ("the
//! service usually tends to throttle when the aggregate throughput reaches
//! a few thousands of requests per second") and notes that jobs like
//! CloudSort with ~10¹⁰ shuffle writes incur enormous request costs.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use splitserve_rt::Bytes;
use splitserve_cloud::{Category, Cloud};
use splitserve_des::{Dist, Fabric, LinkId, Sim, SimDuration, TokenBucket};

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats};
use crate::util::{delay_then_flow, link_path};

/// Behaviour knobs for [`S3Store`].
#[derive(Debug, Clone)]
pub struct S3Spec {
    /// Sustained PUT/POST/LIST requests per second per bucket prefix
    /// (AWS documents 3 500).
    pub put_rate: f64,
    /// Sustained GET requests per second per bucket prefix (AWS: 5 500).
    pub get_rate: f64,
    /// Burst above the sustained rate absorbed before throttling.
    pub burst: f64,
    /// First-byte latency per PUT, seconds.
    pub put_latency: Dist,
    /// First-byte latency per GET, seconds.
    pub get_latency: Dist,
    /// Per-connection bandwidth cap in bytes/second.
    pub connection_bytes_per_sec: f64,
    /// Number of modeled parallel service connections.
    pub connections: usize,
    /// Multiplier applied to throttle queueing delay: real clients hit
    /// 503 SlowDown and back off exponentially, achieving well below the
    /// nominal request-rate cap during shuffle storms.
    pub backoff_multiplier: f64,
}

impl Default for S3Spec {
    fn default() -> Self {
        S3Spec {
            put_rate: 3_500.0,
            get_rate: 5_500.0,
            burst: 500.0,
            // 2019-era S3 through the JVM's S3A path, per shuffle block
            // (connection setup + TLS + first byte): ~120 ms PUT, ~80 ms GET.
            put_latency: Dist::log_normal_mean_sd(0.12, 0.06).clamped(0.03, 1.0),
            get_latency: Dist::log_normal_mean_sd(0.08, 0.04).clamped(0.02, 0.8),
            connection_bytes_per_sec: 40.0e6, // ~40 MB/s per stream
            connections: 64,
            backoff_multiplier: 4.0,
        }
    }
}

struct Inner {
    spec: S3Spec,
    objects: HashMap<BlockId, Bytes>,
    put_bucket: TokenBucket,
    get_bucket: TokenBucket,
    conn_links: Vec<LinkId>,
    next_conn: usize,
    stats: StoreStats,
}

/// Simulated S3 bucket.
///
/// # Examples
///
/// ```
/// use splitserve_cloud::{Cloud, CloudSpec};
/// use splitserve_des::{Fabric, Sim};
/// use splitserve_storage::{S3Spec, S3Store};
///
/// let fabric = Fabric::new();
/// let cloud = Cloud::new(CloudSpec::default(), fabric.clone());
/// let s3 = S3Store::new(S3Spec::default(), fabric, cloud);
/// assert_eq!(s3.kind(), "s3");
/// # use splitserve_storage::BlockStore;
/// ```
#[derive(Clone)]
pub struct S3Store {
    inner: Rc<RefCell<Inner>>,
    fabric: Fabric,
    cloud: Cloud,
}

impl std::fmt::Debug for S3Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("S3Store")
            .field("objects", &inner.objects.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl S3Store {
    /// Creates a bucket; request fees are charged to `cloud`'s ledger.
    pub fn new(spec: S3Spec, fabric: Fabric, cloud: Cloud) -> Self {
        let conn_links = (0..spec.connections)
            .map(|i| fabric.add_link(spec.connection_bytes_per_sec, format!("s3-conn-{i}")))
            .collect();
        let put_bucket = TokenBucket::new(spec.put_rate, spec.burst);
        let get_bucket = TokenBucket::new(spec.get_rate, spec.burst);
        S3Store {
            inner: Rc::new(RefCell::new(Inner {
                spec,
                objects: HashMap::new(),
                put_bucket,
                get_bucket,
                conn_links,
                next_conn: 0,
                stats: StoreStats::default(),
            })),
            fabric,
            cloud,
        }
    }

    fn next_conn(&self) -> LinkId {
        let mut inner = self.inner.borrow_mut();
        let l = inner.conn_links[inner.next_conn % inner.conn_links.len()];
        inner.next_conn += 1;
        l
    }
}

impl BlockStore for S3Store {
    fn kind(&self) -> &'static str {
        "s3"
    }

    fn survives_executor_loss(&self) -> bool {
        true
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        let now = sim.now();
        self.cloud.charge(
            now,
            Category::S3Put,
            splitserve_cloud::S3_USD_PER_PUT,
            format!("put {block}"),
        );
        let (throttle, latency) = {
            let mut inner = self.inner.borrow_mut();
            let raw = inner.put_bucket.reserve(now, 1.0);
            let throttle = SimDuration::from_secs_f64(
                raw.as_secs_f64() * inner.spec.backoff_multiplier,
            );
            inner.stats.throttle_wait_secs += throttle.as_secs_f64();
            let lat = inner.spec.put_latency.clone();
            (throttle, lat)
        };
        let latency = SimDuration::from_secs_f64(latency.sample(sim.rng()));
        let conn = self.next_conn();
        let links = link_path(&[client.nic, Some(conn)]);
        let len = data.len() as u64;
        let this = self.clone();
        delay_then_flow(sim, &self.fabric, throttle + latency, links, len, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                inner.objects.insert(block, data);
                inner.stats.puts += 1;
                inner.stats.bytes_in += len;
            }
            cb(sim, Ok(()));
        });
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        let now = sim.now();
        self.cloud.charge(
            now,
            Category::S3Get,
            splitserve_cloud::S3_USD_PER_GET,
            format!("get {block}"),
        );
        let data = self.inner.borrow().objects.get(&block).cloned();
        match data {
            Some(data) => {
                let (throttle, latency) = {
                    let mut inner = self.inner.borrow_mut();
                    let raw = inner.get_bucket.reserve(now, 1.0);
                    let throttle = SimDuration::from_secs_f64(
                        raw.as_secs_f64() * inner.spec.backoff_multiplier,
                    );
                    inner.stats.throttle_wait_secs += throttle.as_secs_f64();
                    (throttle, inner.spec.get_latency.clone())
                };
                let latency = SimDuration::from_secs_f64(latency.sample(sim.rng()));
                let conn = self.next_conn();
                let links = link_path(&[Some(conn), client.nic]);
                let len = data.len() as u64;
                let this = self.clone();
                delay_then_flow(
                    sim,
                    &self.fabric,
                    throttle + latency,
                    links,
                    len,
                    move |sim| {
                        {
                            let mut inner = this.inner.borrow_mut();
                            inner.stats.gets += 1;
                            inner.stats.bytes_out += len;
                        }
                        cb(sim, Ok(data));
                    },
                );
            }
            None => {
                self.inner.borrow_mut().stats.failed_gets += 1;
                cb(sim, Err(StoreError::NotFound(block)));
            }
        }
    }

    fn on_executor_lost(&self, _sim: &mut Sim, _executor: &str) {}

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.borrow().objects.contains_key(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_cloud::CloudSpec;
    use std::cell::Cell;

    fn fixed_spec() -> S3Spec {
        S3Spec {
            put_rate: 10.0,
            get_rate: 10.0,
            burst: 1.0,
            put_latency: Dist::constant(0.05),
            get_latency: Dist::constant(0.03),
            connection_bytes_per_sec: 100.0,
            connections: 4,
            backoff_multiplier: 1.0,
        }
    }

    fn rig() -> (Sim, Fabric, Cloud, S3Store) {
        let sim = Sim::new(0);
        let fabric = Fabric::new();
        let cloud = Cloud::new(CloudSpec::default(), fabric.clone());
        let s3 = S3Store::new(fixed_spec(), fabric.clone(), cloud.clone());
        (sim, fabric, cloud, s3)
    }

    #[test]
    fn put_get_roundtrip_with_latency_and_bandwidth() {
        let (mut sim, fabric, _cloud, s3) = rig();
        let nic = fabric.add_link(1e9, "client");
        let block = BlockId::shuffle("e", 0, 0, 0);
        s3.put(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Bytes::from(vec![0u8; 100]),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        // 0.05 s latency + 100 B / 100 B/s = 1.05 s.
        assert!((sim.now().as_secs_f64() - 1.05).abs() < 1e-6);

        let done = Rc::new(Cell::new(0.0));
        let d = Rc::clone(&done);
        let t0 = sim.now().as_secs_f64();
        s3.get(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Box::new(move |sim, r| {
                assert_eq!(r.expect("get").len(), 100);
                d.set(sim.now().as_secs_f64());
            }),
        );
        sim.run();
        assert!((done.get() - t0 - 1.03).abs() < 1e-6);
    }

    #[test]
    fn requests_are_billed() {
        let (mut sim, fabric, cloud, s3) = rig();
        let nic = fabric.add_link(1e9, "client");
        for i in 0..5u64 {
            s3.put(
                &mut sim,
                ClientLoc::net(nic),
                BlockId::shuffle("e", 0, i, 0),
                Bytes::from_static(b"x"),
                Box::new(|_, r| r.expect("put")),
            );
        }
        sim.run();
        let expect = 5.0 * splitserve_cloud::S3_USD_PER_PUT;
        assert!((cloud.cost_for(Category::S3Put) - expect).abs() < 1e-15);
    }

    #[test]
    fn request_storm_gets_throttled() {
        let (mut sim, fabric, _cloud, s3) = rig();
        let nic = fabric.add_link(1e12, "client");
        // 50 puts at 10 req/s with burst 1: the last is admitted ~4.9 s in.
        for i in 0..50u64 {
            s3.put(
                &mut sim,
                ClientLoc::net(nic),
                BlockId::shuffle("e", 1, i, 0),
                Bytes::from_static(b"tiny"),
                Box::new(|_, r| r.expect("put")),
            );
        }
        sim.run();
        assert!(
            sim.now().as_secs_f64() > 4.5,
            "storm finished too fast: {}",
            sim.now()
        );
        assert!(s3.stats().throttle_wait_secs > 100.0, "cumulative waits");
    }

    #[test]
    fn survives_executor_loss() {
        let (mut sim, fabric, _cloud, s3) = rig();
        let nic = fabric.add_link(1e9, "client");
        let block = BlockId::shuffle("lambda-9", 0, 0, 0);
        s3.put(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Bytes::from_static(b"x"),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        s3.on_executor_lost(&mut sim, "lambda-9");
        assert!(s3.contains(&block));
    }

    #[test]
    fn get_missing_is_not_found_but_still_billed() {
        let (mut sim, fabric, cloud, s3) = rig();
        let nic = fabric.add_link(1e9, "client");
        let errored = Rc::new(Cell::new(false));
        let e = Rc::clone(&errored);
        s3.get(
            &mut sim,
            ClientLoc::net(nic),
            BlockId::shuffle("ghost", 0, 0, 0),
            Box::new(move |_, r| {
                assert!(matches!(r, Err(StoreError::NotFound(_))));
                e.set(true);
            }),
        );
        sim.run();
        assert!(errored.get());
        assert!(cloud.cost_for(Category::S3Get) > 0.0);
    }
}
