//! A miniature HDFS: one namenode's metadata plus datanodes whose disk and
//! network links live on tenant VMs.
//!
//! This is SplitServe's state-transfer substrate (paper §4.3): a *shared*
//! high-throughput layer both VM- and Lambda-based executors can reach, so
//! shuffle output survives executor decommission. In the paper's
//! experiments a single datanode is colocated with the Spark master (e.g.
//! on an m4.xlarge with 750 Mbps dedicated EBS bandwidth), making that pipe
//! the shuffle bottleneck they analyze — reproduced here by registering one
//! datanode whose links are that VM's NIC and EBS links.

use std::cell::RefCell;

use std::rc::Rc;

use splitserve_rt::{Bytes, FastMap};
use splitserve_des::{Dist, Fabric, LinkId, Sim, SimDuration};

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats};
use crate::util::{delay_then_flow, link_path};

/// Placement and behaviour knobs for [`HdfsStore`].
#[derive(Debug, Clone)]
pub struct HdfsSpec {
    /// Replication factor (the paper's single-node setup implies 1).
    pub replication: usize,
    /// Namenode metadata round-trip latency in seconds.
    pub namenode_latency: Dist,
}

impl Default for HdfsSpec {
    fn default() -> Self {
        HdfsSpec {
            replication: 1,
            namenode_latency: Dist::log_normal_mean_sd(0.002, 0.001).clamped(0.0005, 0.05),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DataNode {
    nic: LinkId,
    disk: LinkId,
}

struct Inner {
    spec: HdfsSpec,
    datanodes: Vec<DataNode>,
    /// block → datanode indices holding replicas, plus the bytes.
    blocks: FastMap<BlockId, (Vec<usize>, Bytes)>,
    next_dn: usize,
    used_bytes: u64,
    stats: StoreStats,
}

/// Shared HDFS-like block store.
///
/// # Examples
///
/// ```
/// use splitserve_des::{Fabric, Sim};
/// use splitserve_storage::{HdfsSpec, HdfsStore};
///
/// let fabric = Fabric::new();
/// let nic = fabric.add_link(93.75e6, "master-nic");  // 750 Mbps
/// let ebs = fabric.add_link(93.75e6, "master-ebs");
/// let hdfs = HdfsStore::new(HdfsSpec::default(), fabric);
/// hdfs.add_datanode(nic, ebs);
/// assert_eq!(hdfs.datanode_count(), 1);
/// ```
#[derive(Clone)]
pub struct HdfsStore {
    inner: Rc<RefCell<Inner>>,
    fabric: Fabric,
}

impl std::fmt::Debug for HdfsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("HdfsStore")
            .field("datanodes", &inner.datanodes.len())
            .field("blocks", &inner.blocks.len())
            .field("used_bytes", &inner.used_bytes)
            .finish()
    }
}

impl HdfsStore {
    /// Creates an HDFS with no datanodes yet.
    pub fn new(spec: HdfsSpec, fabric: Fabric) -> Self {
        HdfsStore {
            inner: Rc::new(RefCell::new(Inner {
                spec,
                datanodes: Vec::new(),
                blocks: FastMap::default(),
                next_dn: 0,
                used_bytes: 0,
                stats: StoreStats::default(),
            })),
            fabric,
        }
    }

    /// Adds a datanode reachable over `nic` whose disk writes go through
    /// `disk` (typically a VM's dedicated EBS link).
    pub fn add_datanode(&self, nic: LinkId, disk: LinkId) -> usize {
        let mut inner = self.inner.borrow_mut();
        inner.datanodes.push(DataNode { nic, disk });
        inner.datanodes.len() - 1
    }

    /// Number of datanodes registered.
    pub fn datanode_count(&self) -> usize {
        self.inner.borrow().datanodes.len()
    }

    /// Total bytes currently stored (across replicas).
    pub fn used_bytes(&self) -> u64 {
        self.inner.borrow().used_bytes
    }

    fn sample_nn_latency(&self, sim: &mut Sim) -> SimDuration {
        let d = self.inner.borrow().spec.namenode_latency.clone();
        SimDuration::from_secs_f64(d.sample(sim.rng()))
    }

    /// Chooses replica targets round-robin (deterministic).
    fn pick_targets(&self) -> Vec<usize> {
        let mut inner = self.inner.borrow_mut();
        let n = inner.datanodes.len();
        assert!(n > 0, "HDFS has no datanodes");
        let r = inner.spec.replication.min(n).max(1);
        let start = inner.next_dn;
        inner.next_dn = (inner.next_dn + 1) % n;
        (0..r).map(|i| (start + i) % n).collect()
    }
}

impl BlockStore for HdfsStore {
    fn kind(&self) -> &'static str {
        "hdfs"
    }

    fn survives_executor_loss(&self) -> bool {
        true
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        let targets = self.pick_targets();
        let len = data.len() as u64;
        let latency = self.sample_nn_latency(sim);

        // One flow per replica, all in parallel; completion when all land.
        let remaining = Rc::new(RefCell::new((targets.len(), Some(cb))));
        for (i, dn_idx) in targets.iter().enumerate() {
            let dn = self.inner.borrow().datanodes[*dn_idx];
            let links = link_path(&[client.nic, Some(dn.nic), Some(dn.disk)]);
            let this = self.clone();
            let data = data.clone();
            let remaining = Rc::clone(&remaining);
            let targets = targets.clone();
            let record = i == 0;
            delay_then_flow(sim, &self.fabric, latency, links, len, move |sim| {
                if record {
                    let mut inner = this.inner.borrow_mut();
                    inner.used_bytes += len * targets.len() as u64;
                    inner.blocks.insert(block, (targets, data));
                    inner.stats.puts += 1;
                    inner.stats.bytes_in += len;
                }
                let mut r = remaining.borrow_mut();
                r.0 -= 1;
                if r.0 == 0 {
                    let cb = r.1.take().expect("callback present at last replica");
                    drop(r);
                    cb(sim, Ok(()));
                }
            });
        }
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        let found = {
            let inner = self.inner.borrow();
            inner.blocks.get(&block).map(|(dns, data)| {
                // Read from the first replica (deterministic).
                (inner.datanodes[dns[0]], data.clone())
            })
        };
        match found {
            Some((dn, data)) => {
                let latency = self.sample_nn_latency(sim);
                let links = link_path(&[Some(dn.disk), Some(dn.nic), client.nic]);
                let len = data.len() as u64;
                let this = self.clone();
                delay_then_flow(sim, &self.fabric, latency, links, len, move |sim| {
                    {
                        let mut inner = this.inner.borrow_mut();
                        inner.stats.gets += 1;
                        inner.stats.bytes_out += len;
                    }
                    cb(sim, Ok(data));
                });
            }
            None => {
                self.inner.borrow_mut().stats.failed_gets += 1;
                cb(sim, Err(StoreError::NotFound(block)));
            }
        }
    }

    fn on_executor_lost(&self, _sim: &mut Sim, _executor: &str) {
        // Shared store: executor death loses nothing.
    }

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.borrow().blocks.contains_key(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn fixed_spec() -> HdfsSpec {
        HdfsSpec {
            replication: 1,
            namenode_latency: Dist::constant(0.0),
        }
    }

    #[test]
    fn put_then_get_roundtrips_bytes() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let nic = fabric.add_link(1e9, "nic");
        let ebs = fabric.add_link(1e9, "ebs");
        let hdfs = HdfsStore::new(fixed_spec(), fabric.clone());
        hdfs.add_datanode(nic, ebs);
        let client_nic = fabric.add_link(1e9, "client");
        let client = ClientLoc::net(client_nic);
        let block = BlockId::shuffle("lambda-3", 0, 1, 2);

        hdfs.put(
            &mut sim,
            client,
            block,
            Bytes::from_static(b"shuffle-bytes"),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        assert!(hdfs.contains(&block));
        assert_eq!(hdfs.used_bytes(), 13);

        let got = Rc::new(Cell::new(false));
        let g = Rc::clone(&got);
        hdfs.get(
            &mut sim,
            client,
            block,
            Box::new(move |_, r| {
                assert_eq!(&r.expect("get")[..], b"shuffle-bytes");
                g.set(true);
            }),
        );
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn writes_bottleneck_on_datanode_ebs() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let nic = fabric.add_link(1e9, "nic");
        let ebs = fabric.add_link(100.0, "ebs"); // 100 B/s
        let hdfs = HdfsStore::new(fixed_spec(), fabric.clone());
        hdfs.add_datanode(nic, ebs);
        let c1 = fabric.add_link(1e9, "c1");
        let c2 = fabric.add_link(1e9, "c2");
        // Two writers of 500 B each share 100 B/s → both land at t=10.
        for (i, c) in [c1, c2].iter().enumerate() {
            hdfs.put(
                &mut sim,
                ClientLoc::net(*c),
                BlockId::shuffle(format!("e{i}"), 0, i as u64, 0),
                Bytes::from(vec![0u8; 500]),
                Box::new(|_, r| r.expect("put")),
            );
        }
        sim.run();
        assert!((sim.now().as_secs_f64() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn survives_executor_loss() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let nic = fabric.add_link(1e9, "nic");
        let ebs = fabric.add_link(1e9, "ebs");
        let hdfs = HdfsStore::new(fixed_spec(), fabric.clone());
        hdfs.add_datanode(nic, ebs);
        let block = BlockId::shuffle("lambda-1", 0, 0, 0);
        hdfs.put(
            &mut sim,
            ClientLoc::default(),
            block,
            Bytes::from_static(b"x"),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        hdfs.on_executor_lost(&mut sim, "lambda-1");
        assert!(hdfs.contains(&block), "HDFS keeps dead executors' blocks");
        assert!(hdfs.survives_executor_loss());
    }

    #[test]
    fn replication_multiplies_usage_and_flows() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let hdfs = HdfsStore::new(
            HdfsSpec {
                replication: 2,
                namenode_latency: Dist::constant(0.0),
            },
            fabric.clone(),
        );
        for i in 0..2 {
            let nic = fabric.add_link(1e9, format!("nic{i}"));
            let ebs = fabric.add_link(1e9, format!("ebs{i}"));
            hdfs.add_datanode(nic, ebs);
        }
        hdfs.put(
            &mut sim,
            ClientLoc::default(),
            BlockId::shuffle("e", 0, 0, 0),
            Bytes::from(vec![1u8; 100]),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        assert_eq!(hdfs.used_bytes(), 200);
    }

    #[test]
    fn round_robin_spreads_blocks() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let hdfs = HdfsStore::new(fixed_spec(), fabric.clone());
        let mut ebs_links = Vec::new();
        for i in 0..2 {
            let nic = fabric.add_link(1e9, format!("nic{i}"));
            let ebs = fabric.add_link(50.0, format!("ebs{i}"));
            ebs_links.push(ebs);
            hdfs.add_datanode(nic, ebs);
        }
        // Two writes of 500 B round-robin across two 50 B/s datanodes →
        // no contention, both done at t=10 (vs t=20 on one node).
        for i in 0..2u64 {
            hdfs.put(
                &mut sim,
                ClientLoc::default(),
                BlockId::shuffle("e", 0, i, 0),
                Bytes::from(vec![0u8; 500]),
                Box::new(|_, r| r.expect("put")),
            );
        }
        sim.run();
        assert!((sim.now().as_secs_f64() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn missing_block_not_found() {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new();
        let hdfs = HdfsStore::new(fixed_spec(), fabric.clone());
        let nic = fabric.add_link(1e9, "nic");
        let ebs = fabric.add_link(1e9, "ebs");
        hdfs.add_datanode(nic, ebs);
        let errored = Rc::new(Cell::new(false));
        let e = Rc::clone(&errored);
        hdfs.get(
            &mut sim,
            ClientLoc::default(),
            BlockId::shuffle("nobody", 9, 9, 9),
            Box::new(move |_, r| {
                assert!(matches!(r, Err(StoreError::NotFound(_))));
                e.set(true);
            }),
        );
        sim.run();
        assert!(errored.get());
        assert_eq!(hdfs.stats().failed_gets, 1);
    }
}
