//! Metrics middleware over any [`BlockStore`].
//!
//! [`InstrumentedStore`] is a decorator: it forwards every call to the
//! wrapped store and records, on a shared
//! [`MetricsRegistry`](splitserve_obs::MetricsRegistry):
//!
//! - `store_op_seconds{store,op}` — per-operation latency histogram in
//!   simulated seconds, measured from the request to its continuation;
//! - `store_bytes_written_total{store}` / `store_bytes_read_total{store}`
//!   — payload bytes that actually moved;
//! - `store_ops_total{store,op,outcome}` — request counts by outcome.
//!
//! Wrapping is free when observability is off: [`InstrumentedStore::wrap`]
//! returns the inner store untouched for a disabled registry, so the hot
//! path gains no virtual-dispatch hop.

use std::rc::Rc;

use splitserve_des::Sim;
use splitserve_obs::{CounterHandle, HistogramHandle, MetricsRegistry, QuantileHandle};
use splitserve_rt::Bytes;

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreStats};
use crate::SharedStore;

/// Pre-resolved series for one operation (`put` or `get`): the op runs on
/// the data path of every task, so its metric keys are built once at wrap
/// time, not per request.
#[derive(Debug, Clone)]
struct OpHandles {
    seconds_hist: HistogramHandle,
    seconds_quant: QuantileHandle,
    ok: CounterHandle,
    err: CounterHandle,
    /// `store_bytes_written_total` for puts, `store_bytes_read_total` for
    /// gets.
    bytes: CounterHandle,
}

impl OpHandles {
    fn resolve(metrics: &MetricsRegistry, kind: &'static str, op: &'static str) -> Self {
        let labels = [("store", kind), ("op", op)];
        let bytes_name = match op {
            "put" => "store_bytes_written_total",
            _ => "store_bytes_read_total",
        };
        OpHandles {
            seconds_hist: metrics.histogram_handle("store_op_seconds", &labels),
            seconds_quant: metrics.quantile_handle("store_op_seconds", &labels),
            ok: metrics.counter_handle(
                "store_ops_total",
                &[("store", kind), ("op", op), ("outcome", "ok")],
            ),
            err: metrics.counter_handle(
                "store_ops_total",
                &[("store", kind), ("op", op), ("outcome", "err")],
            ),
            bytes: metrics.counter_handle(bytes_name, &[("store", kind)]),
        }
    }

    fn record(&self, secs: f64, ok: bool, bytes: u64) {
        self.seconds_hist.observe(secs);
        self.seconds_quant.record(secs);
        if ok {
            self.ok.inc();
            self.bytes.add(bytes);
        } else {
            self.err.inc();
        }
    }
}

/// A [`BlockStore`] decorator recording per-op latency and byte counters.
pub struct InstrumentedStore {
    inner: SharedStore,
    /// Cached `inner.kind()` so label construction never re-enters the
    /// wrapped store.
    kind: &'static str,
    put: OpHandles,
    get: OpHandles,
    executor_losses: CounterHandle,
}

impl InstrumentedStore {
    /// Wraps `inner` so its traffic is recorded on `metrics`. Returns
    /// `inner` unchanged when the registry is disabled.
    pub fn wrap(inner: SharedStore, metrics: MetricsRegistry) -> SharedStore {
        if !metrics.is_enabled() {
            return inner;
        }
        let kind = inner.kind();
        Rc::new(InstrumentedStore {
            inner,
            kind,
            put: OpHandles::resolve(&metrics, kind, "put"),
            get: OpHandles::resolve(&metrics, kind, "get"),
            executor_losses: metrics
                .counter_handle("store_executor_losses_total", &[("store", kind)]),
        })
    }
}

impl BlockStore for InstrumentedStore {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn survives_executor_loss(&self) -> bool {
        self.inner.survives_executor_loss()
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        let started = sim.now();
        let h = self.put.clone();
        let bytes = data.len() as u64;
        self.inner.put(
            sim,
            client,
            block,
            data,
            Box::new(move |sim, result| {
                let secs = sim.now().saturating_since(started).as_secs_f64();
                h.record(secs, result.is_ok(), bytes);
                cb(sim, result)
            }),
        );
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        let started = sim.now();
        let h = self.get.clone();
        self.inner.get(
            sim,
            client,
            block,
            Box::new(move |sim, result| {
                let secs = sim.now().saturating_since(started).as_secs_f64();
                let bytes = result.as_ref().map(|b| b.len() as u64).unwrap_or(0);
                h.record(secs, result.is_ok(), bytes);
                cb(sim, result)
            }),
        );
    }

    fn on_executor_lost(&self, sim: &mut Sim, executor: &str) {
        self.executor_losses.inc();
        self.inner.on_executor_lost(sim, executor)
    }

    fn register_executor(&self, executor: &str, loc: ClientLoc) {
        self.inner.register_executor(executor, loc)
    }

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.contains(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalDiskStore;
    use splitserve_des::Fabric;

    fn rig() -> (Sim, SharedStore, MetricsRegistry, ClientLoc) {
        let fabric = Fabric::new();
        let store: SharedStore = Rc::new(LocalDiskStore::new(fabric.clone()));
        let metrics = MetricsRegistry::enabled();
        let wrapped = InstrumentedStore::wrap(store, metrics.clone());
        let nic = fabric.add_link(1e9, "nic");
        let disk = fabric.add_link(1e9, "disk");
        wrapped.register_executor("e-0", ClientLoc::vm(nic, disk));
        (Sim::new(1), wrapped, metrics, ClientLoc::vm(nic, disk))
    }

    #[test]
    fn wrap_is_identity_when_disabled() {
        let fabric = Fabric::new();
        let store: SharedStore = Rc::new(LocalDiskStore::new(fabric));
        let wrapped = InstrumentedStore::wrap(Rc::clone(&store), MetricsRegistry::disabled());
        assert!(Rc::ptr_eq(&store, &wrapped), "disabled wrap adds no layer");
    }

    #[test]
    fn put_get_record_latency_bytes_and_outcomes() {
        let (mut sim, store, metrics, client) = rig();
        let block = BlockId::named("e-0", "blk");
        store.put(
            &mut sim,
            client,
            block,
            Bytes::from(vec![7u8; 1024]),
            Box::new(|_, r| r.expect("put ok")),
        );
        sim.run();
        store.get(
            &mut sim,
            client,
            block,
            Box::new(|_, r| {
                assert_eq!(r.expect("get ok").len(), 1024);
            }),
        );
        sim.run();

        let kind = store.kind();
        assert_eq!(
            metrics.counter_value(
                "store_ops_total",
                &[("store", kind), ("op", "put"), ("outcome", "ok")]
            ),
            1
        );
        assert_eq!(
            metrics.counter_value("store_bytes_written_total", &[("store", kind)]),
            1024
        );
        assert_eq!(
            metrics.counter_value("store_bytes_read_total", &[("store", kind)]),
            1024
        );
        let h = metrics
            .histogram("store_op_seconds", &[("store", kind), ("op", "get")])
            .expect("latency recorded");
        assert_eq!(h.count, 1);
        assert!(h.sum > 0.0, "a disk round-trip takes simulated time");
    }

    #[test]
    fn failed_get_counts_as_err() {
        let (mut sim, store, metrics, client) = rig();
        store.get(
            &mut sim,
            client,
            BlockId::named("e-0", "missing"),
            Box::new(|_, r| assert!(r.is_err())),
        );
        sim.run();
        let kind = store.kind();
        assert_eq!(
            metrics.counter_value(
                "store_ops_total",
                &[("store", kind), ("op", "get"), ("outcome", "err")]
            ),
            1
        );
        assert_eq!(
            metrics.counter_value("store_bytes_read_total", &[("store", kind)]),
            0
        );
    }
}
