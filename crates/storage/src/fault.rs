//! Fault-injection middleware over any [`BlockStore`].
//!
//! [`FaultStore`] is the storage arm of the chaos plane (the `splitserve-chaos`
//! crate): a decorator in the mold of [`InstrumentedStore`](crate::InstrumentedStore)
//! that forwards every call to the wrapped store, but can
//!
//! - fail the Nth `get` / Nth `put` with [`StoreError::Injected`] — the
//!   deterministic stand-in for a flaky fetch or a rejected shuffle write;
//! - inflate operation latency inside configured virtual-time windows —
//!   an HDFS node under pressure, an S3 throttling episode.
//!
//! All decisions are made from the shared [`StoreFaults`] schedule, so a
//! run is bit-reproducible: the Nth operation of a seeded simulation is
//! always the same operation. Faults injected are counted on the schedule
//! (and, when a registry is attached, as `faults_injected_total{kind}`).
//!
//! Like the instrumentation decorator, [`FaultStore::wrap`] is the
//! identity when the schedule is empty: an unarmed chaos run adds no
//! virtual-dispatch hop to the data path.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_des::{Sim, SimDuration, SimTime};
use splitserve_obs::MetricsRegistry;
use splitserve_rt::Bytes;

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats};
use crate::SharedStore;

#[derive(Debug, Default)]
struct FaultState {
    /// 1-based ordinals of `get`s to fail.
    fail_gets: Vec<u64>,
    /// 1-based ordinals of `put`s to fail.
    fail_puts: Vec<u64>,
    /// `[from, until)` windows adding latency to every operation started
    /// inside them.
    latency: Vec<(SimTime, SimTime, SimDuration)>,
    gets_seen: u64,
    puts_seen: u64,
    gets_failed: u64,
    puts_failed: u64,
    ops_delayed: u64,
    metrics: MetricsRegistry,
}

/// A shared, deterministic schedule of storage faults.
///
/// Cloneable handle; the injector arms it, the wrapping [`FaultStore`]
/// consumes it, and tests read the injection counters back.
#[derive(Debug, Clone, Default)]
pub struct StoreFaults {
    inner: Rc<RefCell<FaultState>>,
}

impl StoreFaults {
    /// An empty schedule (nothing armed).
    pub fn new() -> Self {
        StoreFaults::default()
    }

    /// Attaches a metrics registry so injections are also counted as
    /// `faults_injected_total{kind}`.
    pub fn with_metrics(self, metrics: MetricsRegistry) -> Self {
        self.inner.borrow_mut().metrics = metrics;
        self
    }

    /// Fails the `n`th `get` (1-based) with [`StoreError::Injected`].
    pub fn fail_nth_get(&self, n: u64) {
        assert!(n >= 1, "ordinals are 1-based");
        self.inner.borrow_mut().fail_gets.push(n);
    }

    /// Fails the `n`th `put` (1-based) with [`StoreError::Injected`].
    pub fn fail_nth_put(&self, n: u64) {
        assert!(n >= 1, "ordinals are 1-based");
        self.inner.borrow_mut().fail_puts.push(n);
    }

    /// Adds `extra` latency to every operation started in `[from, until)`.
    pub fn add_latency_window(&self, from: SimTime, until: SimTime, extra: SimDuration) {
        self.inner.borrow_mut().latency.push((from, until, extra));
    }

    /// Whether any fault is scheduled. An unarmed schedule makes
    /// [`FaultStore::wrap`] the identity.
    pub fn is_armed(&self) -> bool {
        let s = self.inner.borrow();
        !(s.fail_gets.is_empty() && s.fail_puts.is_empty() && s.latency.is_empty())
    }

    /// Injected `get` failures so far.
    pub fn gets_failed(&self) -> u64 {
        self.inner.borrow().gets_failed
    }

    /// Injected `put` failures so far.
    pub fn puts_failed(&self) -> u64 {
        self.inner.borrow().puts_failed
    }

    /// Operations delayed by a latency window so far.
    pub fn ops_delayed(&self) -> u64 {
        self.inner.borrow().ops_delayed
    }

    /// Total faults injected so far (failures + delays).
    pub fn total_injected(&self) -> u64 {
        let s = self.inner.borrow();
        s.gets_failed + s.puts_failed + s.ops_delayed
    }

    /// Decides the fate of the next `get`: `Err` with its ordinal if it
    /// must fail, otherwise the extra latency to apply (possibly zero).
    fn next_get(&self, now: SimTime) -> Result<SimDuration, u64> {
        let mut s = self.inner.borrow_mut();
        s.gets_seen += 1;
        let n = s.gets_seen;
        if s.fail_gets.contains(&n) {
            s.gets_failed += 1;
            s.metrics
                .counter_add("faults_injected_total", &[("kind", "fetch-fail")], 1);
            return Err(n);
        }
        Ok(Self::extra_latency(&mut s, now))
    }

    fn next_put(&self, now: SimTime) -> Result<SimDuration, u64> {
        let mut s = self.inner.borrow_mut();
        s.puts_seen += 1;
        let n = s.puts_seen;
        if s.fail_puts.contains(&n) {
            s.puts_failed += 1;
            s.metrics
                .counter_add("faults_injected_total", &[("kind", "write-fail")], 1);
            return Err(n);
        }
        Ok(Self::extra_latency(&mut s, now))
    }

    fn extra_latency(s: &mut FaultState, now: SimTime) -> SimDuration {
        let extra = s
            .latency
            .iter()
            .filter(|(from, until, _)| *from <= now && now < *until)
            .map(|(_, _, d)| *d)
            .fold(SimDuration::ZERO, |a, b| a + b);
        if extra > SimDuration::ZERO {
            s.ops_delayed += 1;
            s.metrics
                .counter_add("faults_injected_total", &[("kind", "latency")], 1);
        }
        extra
    }
}

/// A [`BlockStore`] decorator that injects the faults scheduled on a
/// [`StoreFaults`] handle.
pub struct FaultStore {
    inner: SharedStore,
    faults: StoreFaults,
    kind: &'static str,
}

impl FaultStore {
    /// Wraps `inner` so the faults scheduled on `faults` strike its
    /// traffic. Returns `inner` unchanged when nothing is armed.
    pub fn wrap(inner: SharedStore, faults: StoreFaults) -> SharedStore {
        if !faults.is_armed() {
            return inner;
        }
        let kind = inner.kind();
        Rc::new(FaultStore {
            inner,
            faults,
            kind,
        })
    }
}

impl BlockStore for FaultStore {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn survives_executor_loss(&self) -> bool {
        self.inner.survives_executor_loss()
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        match self.faults.next_put(sim.now()) {
            Err(ordinal) => {
                // Fail asynchronously, like a store round-trip would.
                sim.schedule_now(move |sim| {
                    cb(sim, Err(StoreError::Injected { op: "put", ordinal }))
                });
            }
            Ok(extra) if extra > SimDuration::ZERO => {
                let inner = Rc::clone(&self.inner);
                sim.schedule_in(extra, move |sim| inner.put(sim, client, block, data, cb));
            }
            Ok(_) => self.inner.put(sim, client, block, data, cb),
        }
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        match self.faults.next_get(sim.now()) {
            Err(ordinal) => {
                sim.schedule_now(move |sim| {
                    cb(sim, Err(StoreError::Injected { op: "get", ordinal }))
                });
            }
            Ok(extra) if extra > SimDuration::ZERO => {
                let inner = Rc::clone(&self.inner);
                sim.schedule_in(extra, move |sim| inner.get(sim, client, block, cb));
            }
            Ok(_) => self.inner.get(sim, client, block, cb),
        }
    }

    fn on_executor_lost(&self, sim: &mut Sim, executor: &str) {
        self.inner.on_executor_lost(sim, executor)
    }

    fn register_executor(&self, executor: &str, loc: ClientLoc) {
        self.inner.register_executor(executor, loc)
    }

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.contains(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalDiskStore;
    use splitserve_des::Fabric;

    fn rig(faults: StoreFaults) -> (Sim, SharedStore, ClientLoc) {
        let fabric = Fabric::new();
        let store: SharedStore = Rc::new(LocalDiskStore::new(fabric.clone()));
        let wrapped = FaultStore::wrap(store, faults);
        let nic = fabric.add_link(1e9, "nic");
        let disk = fabric.add_link(1e9, "disk");
        wrapped.register_executor("e-0", ClientLoc::vm(nic, disk));
        (Sim::new(1), wrapped, ClientLoc::vm(nic, disk))
    }

    #[test]
    fn wrap_is_identity_when_unarmed() {
        let fabric = Fabric::new();
        let store: SharedStore = Rc::new(LocalDiskStore::new(fabric));
        let wrapped = FaultStore::wrap(Rc::clone(&store), StoreFaults::new());
        assert!(Rc::ptr_eq(&store, &wrapped), "unarmed wrap adds no layer");
    }

    #[test]
    fn nth_put_and_get_fail_with_injected_error() {
        let faults = StoreFaults::new();
        faults.fail_nth_put(2);
        faults.fail_nth_get(1);
        let (mut sim, store, client) = rig(faults.clone());
        let a = BlockId::named("e-0", "a");
        let b = BlockId::named("e-0", "b");
        store.put(
            &mut sim,
            client,
            a,
            Bytes::from(vec![1u8; 64]),
            Box::new(|_, r| r.expect("put #1 passes through")),
        );
        sim.run();
        store.put(
            &mut sim,
            client,
            b,
            Bytes::from(vec![2u8; 64]),
            Box::new(|_, r| {
                assert_eq!(
                    r.expect_err("put #2 injected"),
                    StoreError::Injected { op: "put", ordinal: 2 }
                );
            }),
        );
        sim.run();
        store.get(
            &mut sim,
            client,
            a,
            Box::new(|_, r| {
                assert_eq!(
                    r.expect_err("get #1 injected"),
                    StoreError::Injected { op: "get", ordinal: 1 }
                );
            }),
        );
        sim.run();
        assert_eq!(faults.puts_failed(), 1);
        assert_eq!(faults.gets_failed(), 1);
        assert_eq!(faults.total_injected(), 2);
    }

    #[test]
    fn latency_window_delays_ops_inside_it_only() {
        let faults = StoreFaults::new();
        faults.add_latency_window(
            SimTime::ZERO,
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
        );
        let (mut sim, store, client) = rig(faults.clone());
        let blk = BlockId::named("e-0", "slow");
        let done_at = Rc::new(RefCell::new(SimTime::ZERO));
        let d = Rc::clone(&done_at);
        store.put(
            &mut sim,
            client,
            blk,
            Bytes::from(vec![0u8; 32]),
            Box::new(move |sim, r| {
                r.expect("delayed, not failed");
                *d.borrow_mut() = sim.now();
            }),
        );
        sim.run();
        assert!(
            *done_at.borrow() >= SimTime::from_secs(5),
            "write inside the window carries the extra latency"
        );
        assert_eq!(faults.ops_delayed(), 1);
        // Past the window: undisturbed.
        let mut sim2 = Sim::new(2);
        sim2.schedule_at(SimTime::from_secs(11), {
            let store = Rc::clone(&store);
            move |sim| {
                store.get(
                    sim,
                    client,
                    blk,
                    Box::new(|_, r| {
                        r.expect("outside the window");
                    }),
                );
            }
        });
        sim2.run();
        assert_eq!(faults.ops_delayed(), 1, "no extra delay outside the window");
    }

    /// Satellite check for the chaos plane: stacking the instrumentation
    /// decorator *over* the fault decorator (the order `Deployment`
    /// uses) makes injected errors visible as ordinary error outcomes.
    #[test]
    fn instrumented_over_fault_counts_injected_error_outcome() {
        let metrics = MetricsRegistry::enabled();
        let faults = StoreFaults::new();
        faults.fail_nth_put(1);
        let fabric = Fabric::new();
        let store: SharedStore = Rc::new(LocalDiskStore::new(fabric.clone()));
        let stacked =
            crate::InstrumentedStore::wrap(FaultStore::wrap(store, faults), metrics.clone());
        let nic = fabric.add_link(1e9, "nic");
        let disk = fabric.add_link(1e9, "disk");
        stacked.register_executor("e-0", ClientLoc::vm(nic, disk));
        let mut sim = Sim::new(1);
        stacked.put(
            &mut sim,
            ClientLoc::vm(nic, disk),
            BlockId::named("e-0", "x"),
            Bytes::from(vec![0u8; 8]),
            Box::new(|_, r| assert!(r.is_err())),
        );
        sim.run();
        assert_eq!(
            metrics.counter_value(
                "store_ops_total",
                &[("store", "local-disk"), ("op", "put"), ("outcome", "err")]
            ),
            1,
            "injected failure shows up as an ordinary error outcome"
        );
        assert_eq!(
            metrics.counter_value("store_bytes_written_total", &[("store", "local-disk")]),
            0,
            "nothing was actually written"
        );
    }

    /// Injected latency must be measured by the instrumentation layer
    /// like organic slowness would be.
    #[test]
    fn instrumented_over_fault_sees_injected_latency() {
        let metrics = MetricsRegistry::enabled();
        let faults = StoreFaults::new();
        faults.add_latency_window(
            SimTime::ZERO,
            SimTime::from_secs(60),
            SimDuration::from_secs(3),
        );
        let fabric = Fabric::new();
        let store: SharedStore = Rc::new(LocalDiskStore::new(fabric.clone()));
        let stacked =
            crate::InstrumentedStore::wrap(FaultStore::wrap(store, faults), metrics.clone());
        let nic = fabric.add_link(1e9, "nic");
        let disk = fabric.add_link(1e9, "disk");
        stacked.register_executor("e-0", ClientLoc::vm(nic, disk));
        let mut sim = Sim::new(1);
        let client = ClientLoc::vm(nic, disk);
        let blk = BlockId::named("e-0", "slow");
        stacked.put(
            &mut sim,
            client,
            blk,
            Bytes::from(vec![0u8; 128]),
            Box::new(|_, r| r.expect("delayed, not failed")),
        );
        sim.run();
        stacked.get(&mut sim, client, blk, Box::new(|_, r| {
            r.expect("delayed, not failed");
        }));
        sim.run();
        for op in ["put", "get"] {
            let h = metrics
                .histogram("store_op_seconds", &[("store", "local-disk"), ("op", op)])
                .expect("latency recorded");
            assert_eq!(h.count, 1);
            assert!(
                h.sum >= 3.0,
                "{op} latency must include the injected 3 s (got {})",
                h.sum
            );
        }
    }

    #[test]
    fn metrics_count_injections_by_kind() {
        let metrics = MetricsRegistry::enabled();
        let faults = StoreFaults::new().with_metrics(metrics.clone());
        faults.fail_nth_get(1);
        faults.add_latency_window(
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::from_millis(50),
        );
        let (mut sim, store, client) = rig(faults);
        store.put(
            &mut sim,
            client,
            BlockId::named("e-0", "x"),
            Bytes::from(vec![0u8; 16]),
            Box::new(|_, r| r.expect("delayed put")),
        );
        sim.run();
        store.get(
            &mut sim,
            client,
            BlockId::named("e-0", "x"),
            Box::new(|_, r| assert!(r.is_err())),
        );
        sim.run();
        assert_eq!(
            metrics.counter_value("faults_injected_total", &[("kind", "latency")]),
            1
        );
        assert_eq!(
            metrics.counter_value("faults_injected_total", &[("kind", "fetch-fail")]),
            1
        );
    }
}
