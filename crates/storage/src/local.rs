//! Executor-local disk storage — vanilla Spark's shuffle layout under
//! dynamic allocation.
//!
//! Blocks live on the disk of the executor that wrote them; other executors
//! fetch them over the network with the *owner* serving the bytes. When an
//! executor dies its blocks die with it ([`StoreError::ExecutorLost`]) and
//! the engine must recompute from lineage — the rollback cascade SplitServe
//! is designed to avoid.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_rt::{Bytes, FastMap, Interned};
use splitserve_des::{Fabric, LinkId, Sim};

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats};
use crate::util::{delay_then_flow, link_path};

#[derive(Debug, Clone, Copy)]
struct ExecutorLoc {
    nic: Option<LinkId>,
    disk: Option<LinkId>,
    alive: bool,
}

#[derive(Default)]
struct Inner {
    executors: FastMap<Interned, ExecutorLoc>,
    blocks: FastMap<BlockId, Bytes>,
    stats: StoreStats,
}

/// Per-executor local-disk block store.
///
/// # Examples
///
/// ```
/// use splitserve_rt::Bytes;
/// use splitserve_des::{Fabric, Sim};
/// use splitserve_storage::{BlockId, BlockStore, ClientLoc, LocalDiskStore};
///
/// let mut sim = Sim::new(0);
/// let fabric = Fabric::new();
/// let store = LocalDiskStore::new(fabric.clone());
/// let disk = fabric.add_link(1e9, "disk");
/// store.register_executor("exec-1", None, Some(disk));
/// store.put(
///     &mut sim,
///     ClientLoc { nic: None, disk: Some(disk) },
///     BlockId::shuffle("exec-1", 0, 0, 0),
///     Bytes::from_static(b"data"),
///     Box::new(|_, r| r.expect("write succeeds")),
/// );
/// sim.run();
/// ```
#[derive(Clone)]
pub struct LocalDiskStore {
    inner: Rc<RefCell<Inner>>,
    fabric: Fabric,
}

impl std::fmt::Debug for LocalDiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("LocalDiskStore")
            .field("executors", &inner.executors.len())
            .field("blocks", &inner.blocks.len())
            .finish()
    }
}

impl LocalDiskStore {
    /// Creates an empty store over `fabric`.
    pub fn new(fabric: Fabric) -> Self {
        LocalDiskStore {
            inner: Rc::new(RefCell::new(Inner::default())),
            fabric,
        }
    }

    /// Registers an executor's links so its blocks can be located. Must be
    /// called before the executor writes or serves blocks.
    pub fn register_executor(
        &self,
        executor: impl Into<Interned>,
        nic: Option<LinkId>,
        disk: Option<LinkId>,
    ) {
        self.inner.borrow_mut().executors.insert(
            executor.into(),
            ExecutorLoc {
                nic,
                disk,
                alive: true,
            },
        );
    }

    fn executor_loc(&self, executor: Interned) -> Option<ExecutorLoc> {
        self.inner.borrow().executors.get(&executor).copied()
    }
}

impl BlockStore for LocalDiskStore {
    fn kind(&self) -> &'static str {
        "local-disk"
    }

    fn survives_executor_loss(&self) -> bool {
        false
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        let len = data.len() as u64;
        // Writes land on the *writer's* disk.
        let links = link_path(&[client.disk]);
        let this = self.clone();
        delay_then_flow(
            sim,
            &self.fabric,
            splitserve_des::SimDuration::ZERO,
            links,
            len,
            move |sim| {
                {
                    let mut inner = this.inner.borrow_mut();
                    inner.blocks.insert(block, data);
                    inner.stats.puts += 1;
                    inner.stats.bytes_in += len;
                }
                cb(sim, Ok(()));
            },
        );
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        let owner = self.executor_loc(block.executor);
        let (data, owner) = {
            let inner = self.inner.borrow();
            (inner.blocks.get(&block).cloned(), owner)
        };
        match (owner, data) {
            (Some(loc), Some(data)) if loc.alive => {
                // Serve from the owner's disk; traverse NICs when remote.
                // If the client *is* the owner, `link_path` dedups the
                // shared links so no network hop is charged.
                let links = link_path(&[loc.disk, loc.nic, client.nic]);
                let links = if client.nic == loc.nic && client.disk == loc.disk {
                    link_path(&[loc.disk])
                } else {
                    links
                };
                let len = data.len() as u64;
                let this = self.clone();
                delay_then_flow(
                    sim,
                    &self.fabric,
                    splitserve_des::SimDuration::ZERO,
                    links,
                    len,
                    move |sim| {
                        {
                            let mut inner = this.inner.borrow_mut();
                            inner.stats.gets += 1;
                            inner.stats.bytes_out += len;
                        }
                        cb(sim, Ok(data));
                    },
                );
            }
            (Some(loc), _) if !loc.alive => {
                self.inner.borrow_mut().stats.failed_gets += 1;
                let executor = block.executor.to_string();
                cb(sim, Err(StoreError::ExecutorLost { executor, block }));
            }
            _ => {
                self.inner.borrow_mut().stats.failed_gets += 1;
                cb(sim, Err(StoreError::NotFound(block)));
            }
        }
    }

    fn register_executor(&self, executor: &str, loc: ClientLoc) {
        LocalDiskStore::register_executor(self, executor, loc.nic, loc.disk);
    }

    fn on_executor_lost(&self, _sim: &mut Sim, executor: &str) {
        let executor = Interned::new(executor);
        let mut inner = self.inner.borrow_mut();
        if let Some(loc) = inner.executors.get_mut(&executor) {
            loc.alive = false;
        }
        // Drop the bytes; metadata stays so reads report ExecutorLost.
        inner.blocks.retain(|b, _| b.executor != executor);
    }

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.borrow().blocks.contains_key(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct Rig {
        sim: Sim,
        fabric: Fabric,
        store: LocalDiskStore,
    }

    fn rig() -> Rig {
        let fabric = Fabric::new();
        let store = LocalDiskStore::new(fabric.clone());
        Rig {
            sim: Sim::new(0),
            fabric,
            store,
        }
    }

    fn put_ok(rig: &mut Rig, client: ClientLoc, block: BlockId, n: usize) {
        rig.store.put(
            &mut rig.sim,
            client,
            block,
            Bytes::from(vec![7u8; n]),
            Box::new(|_, r| r.expect("put")),
        );
    }

    #[test]
    fn local_write_charges_disk_bandwidth() {
        let mut rig = rig();
        let disk = rig.fabric.add_link(100.0, "disk");
        rig.store.register_executor("e1", None, Some(disk));
        let client = ClientLoc {
            nic: None,
            disk: Some(disk),
        };
        put_ok(&mut rig, client, BlockId::shuffle("e1", 0, 0, 0), 500);
        rig.sim.run();
        assert_eq!(rig.sim.now().as_secs_f64(), 5.0);
        assert_eq!(rig.store.stats().puts, 1);
        assert_eq!(rig.store.stats().bytes_in, 500);
    }

    #[test]
    fn remote_fetch_traverses_both_nics() {
        let mut rig = rig();
        let d1 = rig.fabric.add_link(1e9, "d1");
        let n1 = rig.fabric.add_link(100.0, "n1");
        let d2 = rig.fabric.add_link(1e9, "d2");
        let n2 = rig.fabric.add_link(1e9, "n2");
        rig.store.register_executor("e1", Some(n1), Some(d1));
        rig.store.register_executor("e2", Some(n2), Some(d2));
        let owner = ClientLoc::vm(n1, d1);
        put_ok(&mut rig, owner, BlockId::shuffle("e1", 0, 0, 0), 1000);
        rig.sim.run();

        // e2 fetches: bottleneck is e1's 100 B/s NIC.
        let got = Rc::new(Cell::new(0.0));
        let g = Rc::clone(&got);
        rig.store.get(
            &mut rig.sim,
            ClientLoc::vm(n2, d2),
            BlockId::shuffle("e1", 0, 0, 0),
            Box::new(move |sim, r| {
                assert_eq!(r.expect("get").len(), 1000);
                g.set(sim.now().as_secs_f64());
            }),
        );
        let before = rig.sim.now().as_secs_f64();
        rig.sim.run();
        assert!((got.get() - before - 10.0).abs() < 1e-6);
        assert_eq!(rig.store.stats().bytes_out, 1000);
    }

    #[test]
    fn owner_local_read_skips_network() {
        let mut rig = rig();
        let d1 = rig.fabric.add_link(1e9, "d1");
        let n1 = rig.fabric.add_link(1.0, "n1"); // 1 B/s: would take forever
        rig.store.register_executor("e1", Some(n1), Some(d1));
        let loc = ClientLoc::vm(n1, d1);
        put_ok(&mut rig, loc, BlockId::shuffle("e1", 0, 0, 0), 100);
        rig.sim.run();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        rig.store.get(
            &mut rig.sim,
            loc,
            BlockId::shuffle("e1", 0, 0, 0),
            Box::new(move |_, r| {
                r.expect("local read");
                d.set(true);
            }),
        );
        rig.sim.run();
        assert!(done.get());
        assert!(rig.sim.now().as_secs_f64() < 1.0, "network was charged");
    }

    #[test]
    fn executor_loss_loses_blocks() {
        let mut rig = rig();
        let d1 = rig.fabric.add_link(1e9, "d1");
        rig.store.register_executor("e1", None, Some(d1));
        let loc = ClientLoc {
            nic: None,
            disk: Some(d1),
        };
        put_ok(&mut rig, loc, BlockId::shuffle("e1", 1, 2, 3), 10);
        rig.sim.run();
        assert!(rig.store.contains(&BlockId::shuffle("e1", 1, 2, 3)));

        rig.store.on_executor_lost(&mut rig.sim, "e1");
        assert!(!rig.store.contains(&BlockId::shuffle("e1", 1, 2, 3)));
        let errored = Rc::new(Cell::new(false));
        let e = Rc::clone(&errored);
        rig.store.get(
            &mut rig.sim,
            loc,
            BlockId::shuffle("e1", 1, 2, 3),
            Box::new(move |_, r| {
                assert!(matches!(r, Err(StoreError::ExecutorLost { .. })));
                e.set(true);
            }),
        );
        rig.sim.run();
        assert!(errored.get());
        assert_eq!(rig.store.stats().failed_gets, 1);
        assert!(!rig.store.survives_executor_loss());
    }

    #[test]
    fn missing_block_reports_not_found() {
        let mut rig = rig();
        let errored = Rc::new(Cell::new(false));
        let e = Rc::clone(&errored);
        rig.store.get(
            &mut rig.sim,
            ClientLoc::default(),
            BlockId::shuffle("ghost", 0, 0, 0),
            Box::new(move |_, r| {
                assert!(matches!(r, Err(StoreError::NotFound(_))));
                e.set(true);
            }),
        );
        rig.sim.run();
        assert!(errored.get());
    }
}
