//! A Redis-like in-memory store on a tenant-provisioned VM — the Locus
//! approach (§2): fast shuffle I/O, "but quite expensive as it requires the
//! use of large VMs". The expense shows up automatically because the
//! backing VM accrues normal EC2 charges for the whole job.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use splitserve_rt::Bytes;
use splitserve_des::{Dist, Fabric, LinkId, Sim, SimDuration};

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats};
use crate::util::{delay_then_flow, link_path};

/// Behaviour knobs for [`RedisStore`].
#[derive(Debug, Clone)]
pub struct RedisSpec {
    /// Per-operation latency in seconds (in-memory: sub-millisecond).
    pub latency: Dist,
    /// Memory capacity of the backing VM in bytes; writes beyond it are
    /// rejected, as a real Redis with `maxmemory noeviction` would.
    pub capacity_bytes: u64,
}

impl Default for RedisSpec {
    fn default() -> Self {
        RedisSpec {
            latency: Dist::log_normal_mean_sd(0.0008, 0.0004).clamped(0.0002, 0.01),
            capacity_bytes: 48 * 1024 * 1024 * 1024, // a cache.r-class VM
        }
    }
}

struct Inner {
    spec: RedisSpec,
    objects: HashMap<BlockId, Bytes>,
    used: u64,
    stats: StoreStats,
}

/// Simulated Redis cluster node reachable over the backing VM's NIC.
#[derive(Clone)]
pub struct RedisStore {
    inner: Rc<RefCell<Inner>>,
    fabric: Fabric,
    server_nic: LinkId,
}

impl std::fmt::Debug for RedisStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("RedisStore")
            .field("objects", &inner.objects.len())
            .field("used", &inner.used)
            .finish()
    }
}

impl RedisStore {
    /// Creates a Redis store served from a VM whose NIC is `server_nic`.
    /// The caller is responsible for having provisioned (and paying for)
    /// that VM.
    pub fn new(spec: RedisSpec, fabric: Fabric, server_nic: LinkId) -> Self {
        RedisStore {
            inner: Rc::new(RefCell::new(Inner {
                spec,
                objects: HashMap::new(),
                used: 0,
                stats: StoreStats::default(),
            })),
            fabric,
            server_nic,
        }
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.inner.borrow().used
    }

    fn latency(&self, sim: &mut Sim) -> SimDuration {
        let d = self.inner.borrow().spec.latency.clone();
        SimDuration::from_secs_f64(d.sample(sim.rng()))
    }
}

impl BlockStore for RedisStore {
    fn kind(&self) -> &'static str {
        "redis"
    }

    fn survives_executor_loss(&self) -> bool {
        true
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        let len = data.len() as u64;
        {
            let inner = self.inner.borrow();
            if inner.used + len > inner.spec.capacity_bytes {
                drop(inner);
                self.inner.borrow_mut().stats.failed_gets += 0; // no-op; put failure tracked via error
                cb(
                    sim,
                    Err(StoreError::Rejected(format!(
                        "redis out of memory storing {block} ({len} bytes)"
                    ))),
                );
                return;
            }
        }
        let delay = self.latency(sim);
        let links = link_path(&[client.nic, Some(self.server_nic)]);
        let this = self.clone();
        delay_then_flow(sim, &self.fabric, delay, links, len, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                inner.used += len;
                inner.objects.insert(block, data);
                inner.stats.puts += 1;
                inner.stats.bytes_in += len;
            }
            cb(sim, Ok(()));
        });
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        let data = self.inner.borrow().objects.get(&block).cloned();
        match data {
            Some(data) => {
                let delay = self.latency(sim);
                let links = link_path(&[Some(self.server_nic), client.nic]);
                let len = data.len() as u64;
                let this = self.clone();
                delay_then_flow(sim, &self.fabric, delay, links, len, move |sim| {
                    {
                        let mut inner = this.inner.borrow_mut();
                        inner.stats.gets += 1;
                        inner.stats.bytes_out += len;
                    }
                    cb(sim, Ok(data));
                });
            }
            None => {
                self.inner.borrow_mut().stats.failed_gets += 1;
                cb(sim, Err(StoreError::NotFound(block)));
            }
        }
    }

    fn on_executor_lost(&self, _sim: &mut Sim, _executor: &str) {}

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.borrow().objects.contains_key(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn rig(capacity: u64) -> (Sim, Fabric, RedisStore) {
        let sim = Sim::new(0);
        let fabric = Fabric::new();
        let nic = fabric.add_link(1000.0, "redis-nic");
        let store = RedisStore::new(
            RedisSpec {
                latency: Dist::constant(0.001),
                capacity_bytes: capacity,
            },
            fabric.clone(),
            nic,
        );
        (sim, fabric, store)
    }

    #[test]
    fn roundtrip_is_fast() {
        let (mut sim, fabric, store) = rig(1 << 20);
        let nic = fabric.add_link(1e9, "client");
        let block = BlockId::shuffle("e", 0, 0, 0);
        store.put(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Bytes::from(vec![0u8; 100]),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        // 1 ms latency + 100 B over 1000 B/s server NIC = 0.101 s
        assert!((sim.now().as_secs_f64() - 0.101).abs() < 1e-6);
        assert_eq!(store.used_bytes(), 100);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        store.get(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Box::new(move |_, r| {
                assert_eq!(r.expect("get").len(), 100);
                d.set(true);
            }),
        );
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn capacity_limit_rejects_writes() {
        let (mut sim, fabric, store) = rig(150);
        let nic = fabric.add_link(1e9, "client");
        store.put(
            &mut sim,
            ClientLoc::net(nic),
            BlockId::shuffle("e", 0, 0, 0),
            Bytes::from(vec![0u8; 100]),
            Box::new(|_, r| r.expect("first write fits")),
        );
        sim.run();
        let rejected = Rc::new(Cell::new(false));
        let rj = Rc::clone(&rejected);
        store.put(
            &mut sim,
            ClientLoc::net(nic),
            BlockId::shuffle("e", 0, 1, 0),
            Bytes::from(vec![0u8; 100]),
            Box::new(move |_, r| {
                assert!(matches!(r, Err(StoreError::Rejected(_))));
                rj.set(true);
            }),
        );
        sim.run();
        assert!(rejected.get());
    }

    #[test]
    fn server_nic_is_shared_bottleneck() {
        let (mut sim, fabric, store) = rig(1 << 20);
        // Two clients writing 500 B each through the 1000 B/s server NIC.
        for i in 0..2u64 {
            let nic = fabric.add_link(1e9, format!("client-{i}"));
            store.put(
                &mut sim,
                ClientLoc::net(nic),
                BlockId::shuffle("e", 0, i, 0),
                Bytes::from(vec![0u8; 500]),
                Box::new(|_, r| r.expect("put")),
            );
        }
        sim.run();
        assert!((sim.now().as_secs_f64() - 1.001).abs() < 1e-3);
    }

    #[test]
    fn survives_executor_loss() {
        let (mut sim, fabric, store) = rig(1 << 20);
        let nic = fabric.add_link(1e9, "client");
        let block = BlockId::shuffle("lambda-1", 0, 0, 0);
        store.put(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Bytes::from_static(b"x"),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        store.on_executor_lost(&mut sim, "lambda-1");
        assert!(store.contains(&block));
    }
}
