//! An SQS-like queue used as a shuffle substrate (the Flint approach, §2):
//! better request throughput than S3 for many small writes, but a 256 KB
//! message limit forces chunking, and the per-request price is steeper.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use splitserve_rt::Bytes;
use splitserve_cloud::{Category, Cloud};
use splitserve_des::{Dist, Fabric, LinkId, Sim, SimDuration, TokenBucket};

use crate::api::{BlockId, BlockStore, ClientLoc, GetCallback, PutCallback, StoreError, StoreStats};
use crate::util::{delay_then_flow, link_path};

/// SQS message size limit: 256 KB.
pub const SQS_MESSAGE_BYTES: u64 = 256 * 1024;

/// Behaviour knobs for [`SqsStore`].
#[derive(Debug, Clone)]
pub struct SqsSpec {
    /// Messages per second the queue admits before pacing.
    pub message_rate: f64,
    /// Burst capacity in messages.
    pub burst: f64,
    /// Per-batch request latency in seconds.
    pub latency: Dist,
    /// Per-connection bandwidth in bytes/second.
    pub connection_bytes_per_sec: f64,
    /// Number of modeled parallel connections.
    pub connections: usize,
}

impl Default for SqsSpec {
    fn default() -> Self {
        SqsSpec {
            message_rate: 30_000.0,
            burst: 3_000.0,
            latency: Dist::log_normal_mean_sd(0.015, 0.008).clamped(0.004, 0.2),
            connection_bytes_per_sec: 60.0e6,
            connections: 64,
        }
    }
}

struct Inner {
    spec: SqsSpec,
    objects: HashMap<BlockId, Bytes>,
    bucket: TokenBucket,
    conn_links: Vec<LinkId>,
    next_conn: usize,
    stats: StoreStats,
}

/// Simulated SQS-backed block store: a block of `n` bytes becomes
/// `ceil(n / 256 KB)` messages, each a billable request on write *and* on
/// read.
#[derive(Clone)]
pub struct SqsStore {
    inner: Rc<RefCell<Inner>>,
    fabric: Fabric,
    cloud: Cloud,
}

impl std::fmt::Debug for SqsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("SqsStore")
            .field("objects", &inner.objects.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl SqsStore {
    /// Creates a queue-backed store; request fees go to `cloud`'s ledger.
    pub fn new(spec: SqsSpec, fabric: Fabric, cloud: Cloud) -> Self {
        let conn_links = (0..spec.connections)
            .map(|i| fabric.add_link(spec.connection_bytes_per_sec, format!("sqs-conn-{i}")))
            .collect();
        let bucket = TokenBucket::new(spec.message_rate, spec.burst);
        SqsStore {
            inner: Rc::new(RefCell::new(Inner {
                spec,
                objects: HashMap::new(),
                bucket,
                conn_links,
                next_conn: 0,
                stats: StoreStats::default(),
            })),
            fabric,
            cloud,
        }
    }

    /// Number of SQS messages a block of `len` bytes occupies.
    pub fn messages_for(len: u64) -> u64 {
        len.div_ceil(SQS_MESSAGE_BYTES).max(1)
    }

    fn admit(&self, sim: &mut Sim, messages: u64) -> SimDuration {
        let now = sim.now();
        let mut inner = self.inner.borrow_mut();
        let throttle = inner.bucket.reserve(now, messages as f64);
        inner.stats.throttle_wait_secs += throttle.as_secs_f64();
        let lat = inner.spec.latency.clone();
        drop(inner);
        throttle + SimDuration::from_secs_f64(lat.sample(sim.rng()))
    }

    fn next_conn(&self) -> LinkId {
        let mut inner = self.inner.borrow_mut();
        let l = inner.conn_links[inner.next_conn % inner.conn_links.len()];
        inner.next_conn += 1;
        l
    }

    fn bill(&self, sim: &Sim, messages: u64, what: &str) {
        self.cloud.charge(
            sim.now(),
            Category::SqsRequest,
            messages as f64 * splitserve_cloud::SQS_USD_PER_REQUEST,
            format!("{what} x{messages}"),
        );
    }
}

impl BlockStore for SqsStore {
    fn kind(&self) -> &'static str {
        "sqs"
    }

    fn survives_executor_loss(&self) -> bool {
        true
    }

    fn put(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, data: Bytes, cb: PutCallback) {
        let len = data.len() as u64;
        let messages = Self::messages_for(len);
        self.bill(sim, messages, "send");
        let delay = self.admit(sim, messages);
        let conn = self.next_conn();
        let links = link_path(&[client.nic, Some(conn)]);
        let this = self.clone();
        delay_then_flow(sim, &self.fabric, delay, links, len, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                inner.objects.insert(block, data);
                inner.stats.puts += 1;
                inner.stats.bytes_in += len;
            }
            cb(sim, Ok(()));
        });
    }

    fn get(&self, sim: &mut Sim, client: ClientLoc, block: BlockId, cb: GetCallback) {
        let data = self.inner.borrow().objects.get(&block).cloned();
        match data {
            Some(data) => {
                let len = data.len() as u64;
                let messages = Self::messages_for(len);
                self.bill(sim, messages, "receive");
                let delay = self.admit(sim, messages);
                let conn = self.next_conn();
                let links = link_path(&[Some(conn), client.nic]);
                let this = self.clone();
                delay_then_flow(sim, &self.fabric, delay, links, len, move |sim| {
                    {
                        let mut inner = this.inner.borrow_mut();
                        inner.stats.gets += 1;
                        inner.stats.bytes_out += len;
                    }
                    cb(sim, Ok(data));
                });
            }
            None => {
                self.inner.borrow_mut().stats.failed_gets += 1;
                cb(sim, Err(StoreError::NotFound(block)));
            }
        }
    }

    fn on_executor_lost(&self, _sim: &mut Sim, _executor: &str) {}

    fn contains(&self, block: &BlockId) -> bool {
        self.inner.borrow().objects.contains_key(block)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitserve_cloud::CloudSpec;
    use std::cell::Cell;

    fn rig() -> (Sim, Fabric, Cloud, SqsStore) {
        let sim = Sim::new(0);
        let fabric = Fabric::new();
        let cloud = Cloud::new(CloudSpec::default(), fabric.clone());
        let spec = SqsSpec {
            latency: Dist::constant(0.01),
            ..SqsSpec::default()
        };
        let sqs = SqsStore::new(spec, fabric.clone(), cloud.clone());
        (sim, fabric, cloud, sqs)
    }

    #[test]
    fn chunking_math() {
        assert_eq!(SqsStore::messages_for(0), 1);
        assert_eq!(SqsStore::messages_for(1), 1);
        assert_eq!(SqsStore::messages_for(SQS_MESSAGE_BYTES), 1);
        assert_eq!(SqsStore::messages_for(SQS_MESSAGE_BYTES + 1), 2);
        assert_eq!(SqsStore::messages_for(10 * SQS_MESSAGE_BYTES), 10);
    }

    #[test]
    fn roundtrip_and_billing_counts_chunks() {
        let (mut sim, fabric, cloud, sqs) = rig();
        let nic = fabric.add_link(1e9, "client");
        let big = Bytes::from(vec![0u8; (SQS_MESSAGE_BYTES * 3) as usize]);
        let block = BlockId::shuffle("e", 0, 0, 0);
        sqs.put(
            &mut sim,
            ClientLoc::net(nic),
            block,
            big,
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        let sent = cloud.cost_for(Category::SqsRequest);
        assert!((sent - 3.0 * splitserve_cloud::SQS_USD_PER_REQUEST).abs() < 1e-15);

        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sqs.get(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Box::new(move |_, r| {
                assert_eq!(r.expect("get").len(), (SQS_MESSAGE_BYTES * 3) as usize);
                d.set(true);
            }),
        );
        sim.run();
        assert!(done.get());
        let total = cloud.cost_for(Category::SqsRequest);
        assert!((total - 6.0 * splitserve_cloud::SQS_USD_PER_REQUEST).abs() < 1e-15);
    }

    #[test]
    fn sqs_is_pricier_per_byte_than_s3_for_small_writes() {
        // 1 KB block: S3 = one PUT; SQS = one send + one receive.
        let s3 = splitserve_cloud::S3_USD_PER_PUT + splitserve_cloud::S3_USD_PER_GET;
        let sqs = 2.0 * splitserve_cloud::SQS_USD_PER_REQUEST;
        // …but S3's PUT price dominates: SQS is cheaper per request yet the
        // paper calls it "costlier" at scale because shuffle blocks span
        // many messages. Check the chunk blow-up crosses over by 2 MB.
        let sqs_2mb = 2.0 * 8.0 * splitserve_cloud::SQS_USD_PER_REQUEST;
        assert!(sqs < s3);
        assert!(sqs_2mb > s3);
    }

    #[test]
    fn survives_executor_loss() {
        let (mut sim, fabric, _cloud, sqs) = rig();
        let nic = fabric.add_link(1e9, "client");
        let block = BlockId::shuffle("lambda-1", 0, 0, 0);
        sqs.put(
            &mut sim,
            ClientLoc::net(nic),
            block,
            Bytes::from_static(b"x"),
            Box::new(|_, r| r.expect("put")),
        );
        sim.run();
        sqs.on_executor_lost(&mut sim, "lambda-1");
        assert!(sqs.contains(&block));
        assert!(sqs.survives_executor_loss());
    }
}
