//! Conformance property tests: every store implementation must present
//! the same observable semantics — writes are durable, reads return the
//! exact bytes, only local stores lose data with their executor.

use splitserve_rt::{check, Bytes};
use std::cell::RefCell;
use std::rc::Rc;

use splitserve_cloud::{Cloud, CloudSpec};
use splitserve_des::{Fabric, Sim};
use splitserve_storage::{
    BlockId, BlockStore, ClientLoc, HdfsSpec, HdfsStore, LocalDiskStore, RedisSpec, RedisStore,
    S3Spec, S3Store, SqsSpec, SqsStore,
};

fn all_stores(fabric: &Fabric, sim: &mut Sim) -> Vec<(&'static str, Rc<dyn BlockStore>)> {
    let cloud = Cloud::new(CloudSpec::default(), fabric.clone());
    let local = LocalDiskStore::new(fabric.clone());
    let hdfs = HdfsStore::new(HdfsSpec::default(), fabric.clone());
    let nn = fabric.add_link(1e9, "hdfs-nic");
    let ebs = fabric.add_link(1e9, "hdfs-ebs");
    hdfs.add_datanode(nn, ebs);
    let redis_nic = fabric.add_link(1e9, "redis-nic");
    let _ = sim;
    vec![
        ("local", Rc::new(local) as Rc<dyn BlockStore>),
        ("hdfs", Rc::new(hdfs)),
        (
            "s3",
            Rc::new(S3Store::new(S3Spec::default(), fabric.clone(), cloud.clone())),
        ),
        (
            "sqs",
            Rc::new(SqsStore::new(SqsSpec::default(), fabric.clone(), cloud.clone())),
        ),
        (
            "redis",
            Rc::new(RedisStore::new(RedisSpec::default(), fabric.clone(), redis_nic)),
        ),
    ]
}

/// put → get roundtrips exact bytes on every store, for arbitrary
/// block contents and ids.
#[test]
fn every_store_roundtrips_blocks() {
    check::run("every_store_roundtrips_blocks", 12, |g| {
        let payloads = g.vec(1, 8, |g| g.bytes(0, 4_096));
        let seed = g.u64();
        let mut sim = Sim::new(seed);
        let fabric = Fabric::new();
        for (name, store) in all_stores(&fabric, &mut sim) {
            let nic = fabric.add_link(1e9, format!("client-{name}"));
            let disk = fabric.add_link(1e9, format!("disk-{name}"));
            let client = ClientLoc::vm(nic, disk);
            store.register_executor("exec-0", client);
            // Write all blocks.
            for (i, p) in payloads.iter().enumerate() {
                store.put(
                    &mut sim,
                    client,
                    BlockId::shuffle("exec-0", 0, i as u64, 0),
                    Bytes::from(p.clone()),
                    Box::new(move |_, r| {
                        r.expect("put must succeed");
                    }),
                );
            }
            sim.run();
            // Read them back and compare bytes.
            #[allow(clippy::type_complexity)]
            let results: Rc<RefCell<Vec<(usize, Vec<u8>)>>> =
                Rc::new(RefCell::new(Vec::new()));
            for (i, _) in payloads.iter().enumerate() {
                let res = Rc::clone(&results);
                store.get(
                    &mut sim,
                    client,
                    BlockId::shuffle("exec-0", 0, i as u64, 0),
                    Box::new(move |_, r| {
                        res.borrow_mut().push((i, r.expect("get must succeed").to_vec()));
                    }),
                );
            }
            sim.run();
            let mut got = results.borrow().clone();
            got.sort_by_key(|(i, _)| *i);
            assert_eq!(got.len(), payloads.len(), "store {name}");
            for (i, bytes) in got {
                assert_eq!(&bytes, &payloads[i], "store {name} block {i}");
            }
            let stats = store.stats();
            assert_eq!(stats.puts as usize, payloads.len());
            assert_eq!(stats.gets as usize, payloads.len());
        }
    });
}

/// Executor loss semantics: exactly the local store loses blocks.
#[test]
fn only_local_store_loses_blocks_on_executor_death() {
    check::run("only_local_store_loses_blocks_on_executor_death", 8, |g| {
        let seed = g.u64();
        let mut sim = Sim::new(seed);
        let fabric = Fabric::new();
        for (name, store) in all_stores(&fabric, &mut sim) {
            let nic = fabric.add_link(1e9, format!("c-{name}"));
            let disk = fabric.add_link(1e9, format!("d-{name}"));
            let client = ClientLoc::vm(nic, disk);
            store.register_executor("doomed", client);
            let block = BlockId::shuffle("doomed", 1, 0, 0);
            store.put(
                &mut sim,
                client,
                block,
                Bytes::from_static(b"payload"),
                Box::new(|_, r| {
                    r.expect("put");
                }),
            );
            sim.run();
            assert!(store.contains(&block), "store {name}");
            store.on_executor_lost(&mut sim, "doomed");
            let survives = store.contains(&block);
            assert_eq!(
                survives,
                store.survives_executor_loss(),
                "store {name} contradicts its own contract"
            );
            assert_eq!(name == "local", !survives);
        }
    });
}

/// Missing blocks consistently report NotFound (never panic, never
/// hang) on every store.
#[test]
fn missing_blocks_error_uniformly() {
    check::run("missing_blocks_error_uniformly", 8, |g| {
        let seed = g.u64();
        let mut sim = Sim::new(seed);
        let fabric = Fabric::new();
        for (name, store) in all_stores(&fabric, &mut sim) {
            let nic = fabric.add_link(1e9, format!("cl-{name}"));
            let client = ClientLoc::net(nic);
            let outcome = Rc::new(RefCell::new(None));
            let o = Rc::clone(&outcome);
            store.get(
                &mut sim,
                client,
                BlockId::shuffle("ghost", 9, 9, 9),
                Box::new(move |_, r| *o.borrow_mut() = Some(r.is_err())),
            );
            sim.run();
            assert_eq!(*outcome.borrow(), Some(true), "store {name}");
        }
    });
}
